//! Offline shim for the subset of `crossbeam` 0.8 used by this workspace:
//! `channel::{unbounded, bounded}` and `thread::scope`. Backed by
//! `std::sync::mpsc` and `std::thread::scope`, which on this toolchain
//! provide the same semantics the workspace relies on (MPSC channels whose
//! `recv` observes disconnection, blocking bounded sends, scoped spawns).

#![forbid(unsafe_code)]

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned when all receivers of a channel are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when all senders of a channel are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// Sending half; unbounded sends never block, bounded sends block when
    /// the channel is full (crossbeam semantics).
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// A channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// A channel of capacity `cap`; sends block while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }
}

pub mod thread {
    use std::any::Any;

    /// Mirrors `crossbeam::thread::Scope`: spawned closures receive the
    /// scope again so they can spawn siblings.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Run `f` with a scope handle; all threads it spawns are joined before
    /// this returns. Unlike crossbeam, a panic in an unjoined child
    /// propagates as a panic here rather than as `Err` — every caller in
    /// this workspace treats both identically (unwinds).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_observes_timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn bounded_capacity_one() {
        let (tx, rx) = bounded(1);
        tx.send(1u8).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }

    #[test]
    fn scoped_threads_exchange() {
        let (tx, rx) = unbounded();
        super::thread::scope(|s| {
            s.spawn(move |_| tx.send(41u64).unwrap());
            s.spawn(move |_| assert_eq!(rx.recv().unwrap(), 41));
        })
        .unwrap();
    }
}
