//! Offline shim for the subset of `parking_lot` 0.12 used by this
//! workspace: `Mutex` (non-poisoning `lock()` returning a guard directly)
//! and `Condvar` (`wait(&mut guard)`). Backed by `std::sync`; poisoning is
//! swallowed, matching parking_lot's behaviour of never poisoning.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during condvar wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during condvar wait")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wait until `condition(&mut *guard)` returns false.
    pub fn wait_while<T, F>(&self, guard: &mut MutexGuard<'_, T>, mut condition: F)
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = state.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*state;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
