//! Offline shim for the subset of `proptest` 1.x this workspace uses.
//!
//! The real proptest cannot be fetched in this build environment, so this
//! crate re-implements the pieces the test suites rely on: the
//! [`Strategy`] trait with range / tuple / `collection::vec` / `prop_map`
//! strategies, the `proptest!` macro (deterministically seeded per test
//! name, no shrinking), and `prop_assert!`/`prop_assert_eq!`. Each test
//! still runs its configured number of random cases; on failure the panic
//! message carries the case index so the deterministic seed reproduces it.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every test gets a stable, distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty strategy range");
                let span = (b as i128 - a as i128) as u128 + 1;
                (a as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                a + (rng.next_f64() as $t) * (b - a)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Something usable as the size argument of [`vec`]: an exact size or
    /// a half-open range of sizes.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy for vectors of `elem`-generated values.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: IntoSizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only the case count is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block macro: each contained `#[test] fn name(arg in
/// strategy, ...) { .. }` becomes a normal `#[test]` running `cases`
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let run = || {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                };
                if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest shim: {} failed on deterministic case {case}/{}",
                        stringify!($name),
                        cfg.cases
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, Vec<f32>)> {
        (0u32..10, prop::collection::vec(-1.0f32..1.0, 0..5))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn prop_map_applies(t in pair().prop_map(|(a, v)| (a as usize, v.len()))) {
            prop_assert!(t.0 < 10);
            prop_assert!(t.1 < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
