//! Offline shim for the subset of `criterion` 0.5 this workspace uses.
//!
//! Provides just enough API surface for the `harness = false` bench
//! binaries to build and run: `Criterion`, `benchmark_group`,
//! `bench_with_input`/`bench_function`, `Bencher::iter`, `Throughput`,
//! `BenchmarkId` and the `criterion_group!`/`criterion_main!` macros.
//! Timing is a simple mean over `sample_size` iterations printed to
//! stdout — no statistics, plots or comparisons.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark case within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Throughput annotation; recorded but only echoed in the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Runs the closure under timing.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up, then the timed batch.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// Top-level driver, handed to each bench target.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl fmt::Display, mut f: F) {
        let mut b = Bencher { iters: self.sample_size, last_ns: 0.0 };
        f(&mut b);
        report(&name.to_string(), b.last_ns, None);
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher { iters: self.criterion.sample_size, last_ns: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.last_ns, self.throughput);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher { iters: self.criterion.sample_size, last_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.last_ns, self.throughput);
    }

    pub fn finish(self) {}
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let time = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    };
    match throughput {
        Some(Throughput::Bytes(b) | Throughput::BytesDecimal(b)) if ns > 0.0 => {
            let gbs = b as f64 / ns; // bytes/ns == GB/s
            println!("{name:<48} {time:>12}  {gbs:>8.3} GB/s");
        }
        Some(Throughput::Elements(e)) if ns > 0.0 => {
            let meps = e as f64 * 1e3 / ns; // elements/ns -> M elem/s
            println!("{name:<48} {time:>12}  {meps:>8.3} Melem/s");
        }
        _ => println!("{name:<48} {time:>12}"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(1024));
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<usize>()
            });
        });
        g.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut hits = 0;
        c.bench_function("plain", |b| b.iter(|| hits += 1));
        assert!(hits >= 2);
    }
}
