//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic replacement: `StdRng` is a SplitMix64
//! generator (not the upstream ChaCha12), which keeps every seeded test
//! deterministic while providing uniform output of adequate quality for
//! synthetic workloads. Only the APIs the workspace actually calls are
//! provided: `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer
//! and float ranges, and `Rng::gen_bool`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform f64 in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "cannot sample from empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (a as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "cannot sample from empty range");
                a + (rng.next_f64() as $t) * (b - a)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing convenience methods, blanket-implemented for any core rng.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0,1]");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, seedable, passes BigCrush on its output stream —
    /// plenty for synthetic data generation in tests and workloads.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0xA076_1D64_78BD_642F }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3.0f32..=3.0);
            assert!((-3.0..=3.0).contains(&v));
            let i = rng.gen_range(5usize..8);
            assert!((5..8).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }
}
