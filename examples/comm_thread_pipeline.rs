//! Drive the full §5.1 architecture by hand: a background communication
//! thread per worker, backward hooks dumping prioritized operations into
//! its queue, and 2D-scheduling priorities deciding the drain order.
//!
//! ```text
//! cargo run --release --example comm_thread_pipeline
//! ```

use embrace_repro::collectives::{mesh, CommOp, CommResult, CommScheduler};
use embrace_repro::core::horizontal::{
    DELAYED_GRAD_PRIORITY, EMB_DATA_PRIORITY, PRIOR_GRAD_PRIORITY,
};
use embrace_repro::dlsim::HookRegistry;
use embrace_repro::tensor::{DenseTensor, RowSparse};

fn main() {
    const WORLD: usize = 3;
    let endpoints = mesh(WORLD);

    std::thread::scope(|scope| {
        for (rank, ep) in endpoints.into_iter().enumerate() {
            scope.spawn(move || {
                let mut comm = CommScheduler::spawn(ep);

                // A 3-module toy model: embedding + two dense blocks.
                // Hooks fire as each module's backward completes and dump
                // the corresponding communication into the queue — exactly
                // the prototype's mechanism.
                let mut hooks: HookRegistry<Vec<(i64, &'static str)>> = HookRegistry::new(3);
                hooks.register(2, |q| q.push((1, "allreduce blk2")));
                hooks.register(1, |q| q.push((0, "allreduce blk1")));
                hooks.register(0, |q| q.push((PRIOR_GRAD_PRIORITY, "prior emb grads")));
                hooks.register(0, |q| q.push((DELAYED_GRAD_PRIORITY, "delayed emb grads")));

                // "Backward pass": modules 2, 1, 0 in reverse FP order.
                let mut queued = Vec::new();
                for module in [2, 1, 0] {
                    hooks.fire(module, &mut queued);
                }
                if rank == 0 {
                    println!("hook-emitted ops in BP order: {queued:?}");
                }

                // Submit everything; the comm thread reorders by priority.
                let mut tickets = Vec::new();
                for (priority, name) in queued {
                    let op = match name {
                        "prior emb grads" | "delayed emb grads" => CommOp::AlltoAllSparse(
                            (0..WORLD)
                                .map(|_| {
                                    RowSparse::new(
                                        vec![rank as u32],
                                        DenseTensor::full(1, 2, rank as f32),
                                    )
                                })
                                .collect(),
                        ),
                        _ => CommOp::AllReduceDense(vec![rank as f32; 4]),
                    };
                    tickets.push((name, comm.submit(priority, name, op)));
                }
                // An urgent lookup-result exchange arrives while the queue
                // is busy — it jumps ahead of the dense transfers.
                let data = comm.submit(
                    EMB_DATA_PRIORITY,
                    "emb data",
                    CommOp::AlltoAllDense(
                        (0..WORLD).map(|_| DenseTensor::full(1, 2, rank as f32)).collect(),
                    ),
                );
                let CommResult::AlltoAllDense(blocks) = data.wait() else { unreachable!() };
                if rank == 0 {
                    println!("lookup blocks received from ranks: {}", blocks.len());
                }

                for (name, t) in tickets {
                    match t.wait() {
                        CommResult::AllReduceDense(buf) if rank == 0 => {
                            println!("{name:<16} -> summed[0] = {}", buf[0]);
                        }
                        CommResult::AlltoAllSparse(shards) if rank == 0 => {
                            println!("{name:<16} -> {} shard blocks", shards.len());
                        }
                        _ => {}
                    }
                }
                comm.flush();
            });
        }
    });
    println!("pipeline OK: hooks -> priority queue -> communication thread");
}
