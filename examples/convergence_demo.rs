//! Train a real model two ways — EmbRace hybrid communication vs Horovod
//! AllGather — and watch the loss curves coincide (the Fig. 11 claim).
//!
//! ```text
//! cargo run --release --example convergence_demo
//! ```

use embrace_repro::trainer::{train_convergence, ConvergenceConfig, TrainMethod};

fn main() {
    let cfg = ConvergenceConfig {
        world: 4,
        vocab: 300,
        dim: 16,
        tokens_per_batch: 64,
        steps: 50,
        lr: 0.05,
        zipf_s: 0.9,
        seed: 3,
        ..Default::default()
    };
    println!(
        "training a {}-token-vocab embedding model on {} workers, {} steps\n",
        cfg.vocab, cfg.world, cfg.steps
    );
    let allgather = train_convergence(TrainMethod::HorovodAllGather, &cfg);
    let embrace = train_convergence(TrainMethod::EmbRace, &cfg);

    println!("step   AllGather      EmbRace        bar (AllGather loss)");
    let max = allgather.losses[0];
    for (i, (a, e)) in allgather.losses.iter().zip(&embrace.losses).enumerate() {
        if i % 2 == 0 {
            let bar = "#".repeat((a / max * 40.0).round() as usize);
            println!("{i:>4}   {a:>10.3}   {e:>10.3}    {bar}");
        }
    }
    let rel = allgather.max_curve_diff(&embrace) / allgather.losses[0];
    println!("\nmax relative divergence between the curves: {rel:.2e}");
    println!("(synchronous semantics + the modified Adam keep them identical)");
}
