//! Explore communication scheduling with the discrete-event engine:
//! build a small translation-model step DAG by hand, run it under FIFO
//! and priority ordering, and render ASCII timelines — a hands-on
//! Fig. 6a/6b comparison.
//!
//! ```text
//! cargo run --release --example schedule_explorer
//! ```

use embrace_repro::simnet::{CommOrder, Res, Sim, Task};

/// One iteration of a 2-block model with an embedding:
/// BP (reverse order) fires gradient comms; the next FP waits on them.
fn build(order: CommOrder) -> Sim {
    let mut sim = Sim::new(order);
    // Backward pass of step 0: blk2, blk1, emb.
    let bp2 = sim.add(Task::compute("bp_blk2", 3.0));
    let bp1 = sim.add(Task::compute("bp_blk1", 3.0).after([bp2]));
    let bpe = sim.add(Task::compute("bp_emb", 1.0).after([bp1]));
    // Wait-free comm per gradient. Priorities follow next-FP order:
    // embedding (0) before blk1 (1) before blk2 (2).
    let c2 = sim.add(Task::comm("g_blk2", 4.0, 2).after([bp2]));
    let c1 = sim.add(Task::comm("g_blk1", 4.0, 1).after([bp1]));
    let ce = sim.add(Task::comm("e_emb", 2.0, 0).after([bpe]));
    // Forward pass of step 1, gated per-module on its gradients.
    let fpe = sim.add(Task::compute("fp_emb", 1.0).after([ce]));
    let fp1 = sim.add(Task::compute("fp_blk1", 3.0).after([c1, fpe]));
    let _fp2 = sim.add(Task::compute("fp_blk2", 3.0).after([c2, fp1]));
    sim
}

fn main() {
    for (label, order) in
        [("FIFO (Fig. 6a)", CommOrder::Fifo), ("priority queue (Fig. 6b)", CommOrder::Priority)]
    {
        let result = build(order).run();
        println!("=== {label} ===");
        println!("{}", result.trace.render_ascii(72));
        println!(
            "makespan {:.1}  compute busy {:.1}  comm busy {:.1}  stall {:.1}\n",
            result.makespan, result.compute_busy, result.comm_busy, result.stall
        );
        // The trace API lets you interrogate the schedule programmatically:
        let fp_start = result.trace.first_start("fp_emb").unwrap();
        println!("next-step embedding FP starts at t={fp_start:.1}");
        let net_busy = result.trace.busy_in(Res::Comm, 0.0, result.makespan);
        println!("network utilisation {:.0}%\n", net_busy / result.makespan * 100.0);
    }
    println!("Under FIFO the big blk2 gradient goes first and the embedding data");
    println!("arrives last, stalling the whole next FP; the priority queue reorders");
    println!("the queue so FP restarts as early as possible.");
}
