//! EmbRace's hybrid plane beyond NLP: a recommender-style workload.
//!
//! §4.1.1 imports AlltoAll from "recommender system training (Mudigere et
//! al.)" — DLRM-class models with many categorical embedding tables. This
//! example runs one synchronous hybrid-communication training step over
//! *eight* column-sharded tables with multi-hot lookups and checks the
//! result against replicated training, demonstrating the mechanism
//! generalises past the paper's NLP benchmarks.
//!
//! ```text
//! cargo run --release --example recsys_embedding_bag
//! ```

use embrace_repro::collectives::ops::allgather_tokens;
use embrace_repro::collectives::run_group;
use embrace_repro::core::ColumnShardedEmbedding;
use embrace_repro::dlsim::optim::{Optimizer, Sgd, UpdatePart};
use embrace_repro::tensor::{coalesce, DenseTensor, RowSparse};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WORLD: usize = 4;
const TABLES: usize = 8;
const VOCAB: usize = 1000;
const DIM: usize = 64;
const MULTI_HOT: usize = 4; // categorical features per sample per table
const SAMPLES: usize = 32;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let tables: Vec<DenseTensor> =
        (0..TABLES).map(|_| DenseTensor::uniform(VOCAB, DIM, 0.1, &mut rng)).collect();
    // Per-worker, per-table multi-hot index batches.
    let mut batches = vec![vec![Vec::new(); TABLES]; WORLD];
    for worker_batches in batches.iter_mut() {
        for feature in worker_batches.iter_mut() {
            *feature = (0..SAMPLES * MULTI_HOT).map(|_| rng.gen_range(0..VOCAB as u32)).collect();
        }
    }
    let lr = 0.1_f32;

    // Replicated reference: sum all workers' gradients per table.
    let mut reference = tables.clone();
    for (t, table) in reference.iter_mut().enumerate() {
        let parts: Vec<RowSparse> = (0..WORLD)
            .map(|w| {
                let toks = &batches[w][t];
                RowSparse::new(toks.clone(), DenseTensor::full(toks.len(), DIM, 1.0))
            })
            .collect();
        let summed = coalesce(&RowSparse::concat(&parts));
        Sgd::new(lr).step_sparse(table, &summed, UpdatePart::Whole);
    }

    // Hybrid plane: every table column-sharded, AlltoAll per table.
    let tables2 = tables.clone();
    let batches2 = batches.clone();
    let shards = run_group(WORLD, move |rank, ep| {
        let mut my_tables: Vec<ColumnShardedEmbedding> =
            tables2.iter().map(|t| ColumnShardedEmbedding::new(t, rank, WORLD)).collect();
        let mut bytes_moved = 0u64;
        for (t, emb) in my_tables.iter_mut().enumerate() {
            let toks = batches2[rank][t].clone();
            // Forward: embedding-bag style — gather tokens, AlltoAll.
            let all = allgather_tokens(ep, toks.clone());
            let lookup = emb.forward(ep, &all);
            assert_eq!(lookup.rows(), toks.len());
            // Backward with an all-ones output gradient.
            let grad_out = DenseTensor::full(toks.len(), DIM, 1.0);
            let shard_grad = emb.backward(ep, &toks, &grad_out);
            let mut opt = Sgd::new(lr);
            emb.apply_grad(&shard_grad, &mut opt, UpdatePart::Whole);
            bytes_moved = ep.bytes_sent();
        }
        (my_tables, bytes_moved)
    });

    // Verify every table matches the replicated reference.
    for t in 0..TABLES {
        let refs: Vec<&ColumnShardedEmbedding> = shards.iter().map(|(v, _)| &v[t]).collect();
        let assembled = ColumnShardedEmbedding::assemble_full(&refs);
        assert!(
            assembled.approx_eq(&reference[t], 1e-5),
            "table {t} diverged: {}",
            assembled.max_abs_diff(&reference[t])
        );
    }
    let per_worker_mib = shards[0].1 as f64 / (1024.0 * 1024.0);
    println!("{TABLES} tables x {VOCAB} rows x {DIM} dims, {WORLD} workers,");
    println!("{SAMPLES} samples x {MULTI_HOT}-hot features per table:");
    println!("  all tables match replicated training exactly");
    println!("  per-worker wire traffic: {per_worker_mib:.2} MiB");
    println!("recsys embedding-bag OK");
}
