//! Quickstart: one synchronous data-parallel step with EmbRace's
//! Sparsity-aware Hybrid Communication on 4 worker threads.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full §4.1.1 protocol: column-partition an embedding table,
//! gather every worker's batch tokens, AlltoAll #1 the lookup results,
//! run a toy backward, Algorithm-1-split the gradient, AlltoAll #2 the
//! prior and delayed parts, and apply them with the modified Adam.

use embrace_repro::collectives::ops::allgather_tokens;
use embrace_repro::collectives::run_group;
use embrace_repro::core::{vertical_split, ColumnShardedEmbedding};
use embrace_repro::dlsim::optim::{Adam, UpdatePart};
use embrace_repro::tensor::{DenseTensor, RowSparse};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    const WORLD: usize = 4;
    const VOCAB: usize = 32;
    const DIM: usize = 8;

    // The full table every worker starts from (normally a checkpoint).
    let mut rng = StdRng::seed_from_u64(1);
    let full = DenseTensor::uniform(VOCAB, DIM, 0.5, &mut rng);

    // Each worker's batch for this step and the prefetched next step.
    let batches: [&[u32]; WORLD] = [&[3, 7, 3], &[1, 30], &[7, 8, 9, 8], &[0, 31]];
    let next_batches: [&[u32]; WORLD] = [&[3, 4], &[9, 9], &[1], &[31, 5]];

    let results = run_group(WORLD, |rank, ep| {
        // 1. Column-wise model parallelism: my shard of the table.
        let mut emb = ColumnShardedEmbedding::new(&full, rank, WORLD);
        println!("[worker {rank}] owns columns of width {}", emb.shard_dim());

        // 2. Gather all batches, look everything up locally, AlltoAll #1.
        let all_tokens = allgather_tokens(ep, batches[rank].to_vec());
        let lookup = emb.forward(ep, &all_tokens);
        println!("[worker {rank}] lookup output: {} rows x {} dims", lookup.rows(), lookup.cols());

        // 3. Toy backward: pretend d(loss)/d(lookup) is all ones.
        let grad_out = DenseTensor::full(lookup.rows(), DIM, 1.0);
        let raw = RowSparse::new(batches[rank].to_vec(), grad_out);

        // 4. Algorithm 1: split by the (gathered) next batch.
        let d_next: Vec<u32> = allgather_tokens(ep, next_batches[rank].to_vec()).concat();
        let split = vertical_split(&raw, batches[rank], &d_next);
        println!(
            "[worker {rank}] prior rows {:?} / delayed rows {:?}",
            split.i_prior, split.i_delayed
        );

        // 5. AlltoAll #2 per part, modified-Adam updates (step advances once).
        let mut opt = Adam::new(VOCAB, emb.shard_dim(), 0.01);
        let prior = emb.exchange_grad_part(ep, &split.prior);
        emb.apply_grad(&prior, &mut opt, UpdatePart::Prior);
        let delayed = emb.exchange_grad_part(ep, &split.delayed);
        emb.apply_grad(&delayed, &mut opt, UpdatePart::Delayed);
        assert_eq!(opt.step_count(), 1);
        emb
    });

    // Stitch shards back together and confirm the step really updated
    // exactly the touched rows.
    let shards: Vec<&ColumnShardedEmbedding> = results.iter().collect();
    let updated = ColumnShardedEmbedding::assemble_full(&shards);
    let touched: usize = (0..VOCAB).filter(|&r| updated.row(r) != full.row(r)).count();
    println!("\nupdated {touched} of {VOCAB} vocabulary rows (the union of all batches)");
    assert_eq!(touched, 8); // unique tokens across the four batches
    println!("quickstart OK");
}
