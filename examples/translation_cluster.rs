//! Simulate distributed training of a translation model (GNMT-8) on the
//! paper's clusters and compare every method — a miniature of Fig. 7.
//!
//! ```text
//! cargo run --release --example translation_cluster [world]
//! ```

use embrace_repro::baselines::MethodId;
use embrace_repro::models::ModelId;
use embrace_repro::simnet::Cluster;
use embrace_repro::trainer::report::table;
use embrace_repro::trainer::{simulate, SimConfig};

fn main() {
    let world: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    for cluster in [Cluster::rtx3090(world), Cluster::rtx2080(world)] {
        println!(
            "GNMT-8 on {} x {} ({} nodes x {} GPUs):\n",
            world,
            cluster.gpu.name(),
            cluster.nodes,
            cluster.gpus_per_node
        );
        let mut rows = Vec::new();
        let mut best_baseline = 0.0_f64;
        let mut metrics = Vec::new();
        for method in MethodId::ALL {
            let m = simulate(&SimConfig::new(method, ModelId::Gnmt8, cluster));
            if method != MethodId::EmbRace {
                best_baseline = best_baseline.max(m.tokens_per_sec);
            }
            metrics.push((method, m));
        }
        for (method, m) in metrics {
            rows.push(vec![
                method.name().to_string(),
                format!("{:.1}", m.step_time * 1e3),
                format!("{:.1}", m.stall * 1e3),
                format!("{:.0}", m.tokens_per_sec),
                if method == MethodId::EmbRace {
                    format!("{:.2}x over best baseline", m.tokens_per_sec / best_baseline)
                } else {
                    String::new()
                },
            ]);
        }
        print!("{}", table(&["method", "step ms", "stall ms", "tokens/s", "note"], &rows));
        println!();
    }
}
