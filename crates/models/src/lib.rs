//! NLP model specifications and synthetic workloads.
//!
//! The paper evaluates four models (Table 1): **LM** (Jozefowicz et al.
//! big-LSTM on LM1B), **GNMT-8** (WMT16 En-De), **Transformer** (WMT14
//! En-De) and **BERT-base** (SQuAD). Reproducing the experiments needs
//! three things from each model, none of which require the actual weights:
//!
//! 1. **Sizes** — embedding and dense parameter volumes (Table 1), which we
//!    encode exactly: e.g. LM's two `793471 × 512` tables are precisely the
//!    paper's 3099.5 MiB of embedding parameters.
//! 2. **Workload statistics** — how many embedding rows a batch touches,
//!    how many are duplicates (coalescing, Table 3) and how much overlap
//!    consecutive batches have (prior/delayed split, Table 3). Generated
//!    synthetically with Zipf-distributed tokens plus padding, calibrated
//!    per model in [`spec`].
//! 3. **Compute costs** — per-module FP/BP times per GPU kind, estimated
//!    from the paper's setup (§5.2) and documented in [`spec::ModelSpec`].
//!
//! # Example
//!
//! ```
//! use embrace_models::{ModelId, ModelSpec};
//!
//! let lm = ModelSpec::get(ModelId::Lm);
//! assert_eq!(format!("{:.1}", lm.embedding_mib()), "3099.5"); // Table 1
//! assert!(lm.embedding_ratio() > 0.97);
//! ```

#![forbid(unsafe_code)]

pub mod data;
pub mod spec;

pub use data::{grad_stats, BatchGen, GradStats, ZipfSampler};
pub use spec::{EmbeddingDef, ModelId, ModelSpec};
