//! Model specifications: exact Table 1 sizes, workload parameters and
//! compute-time calibration.
//!
//! Calibration constants are estimates derived from the paper's *setup*
//! (GPU generations, batch sizes of §5.2.2), never fitted to its results:
//! per-model single-step compute times are typical published step times
//! for these models on the respective GPU class, and the synthetic
//! workload knobs (Zipf exponent, padding fraction) are tuned only against
//! the *gradient-size statistics* of Table 3.

use embrace_dlsim::graph::{ModelGraph, Module, ModuleKind};
use embrace_simnet::GpuKind;
use embrace_tensor::{F32_BYTES, INDEX_BYTES};

const MIB: f64 = 1024.0 * 1024.0;

/// One embedding table of a model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmbeddingDef {
    pub name: &'static str,
    pub vocab: usize,
    pub dim: usize,
}

impl EmbeddingDef {
    pub fn params(&self) -> usize {
        self.vocab * self.dim
    }

    pub fn bytes(&self) -> usize {
        self.params() * F32_BYTES
    }

    pub fn mib(&self) -> f64 {
        self.bytes() as f64 / MIB
    }
}

/// The four benchmark models of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelId {
    /// Jozefowicz et al. 2016 big-LSTM language model (LM1B).
    Lm,
    /// GNMT with 8+8 layers (WMT16 En-De).
    Gnmt8,
    /// Transformer big (WMT14 En-De).
    Transformer,
    /// BERT-base fine-tuned for SQuAD question answering.
    BertBase,
}

impl ModelId {
    pub const ALL: [ModelId; 4] =
        [ModelId::Lm, ModelId::Gnmt8, ModelId::Transformer, ModelId::BertBase];
}

/// Full specification of one benchmark model.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    pub id: ModelId,
    pub name: &'static str,
    pub embeddings: Vec<EmbeddingDef>,
    /// Dense blocks before the decoder boundary (all blocks for
    /// encoder-only / LM models).
    pub enc_blocks: usize,
    /// Decoder dense blocks (0 for LM / BERT).
    pub dec_blocks: usize,
    /// Parameters per dense block (blocks are uniform, §4.2.1).
    pub block_params: usize,
    /// Fraction of step compute spent in embedding modules (lookup +
    /// softmax-over-vocabulary where applicable). LM's 793k-way sampled
    /// softmax dominates its step; the translation/BERT models spend
    /// almost everything in their dense blocks.
    pub emb_compute_share: f64,
    /// Slowdown of embedding FP/BP when the (replicated, full-size) table
    /// must live in host memory on 8 GB RTX2080s (§5.3). Methods that
    /// partition the table (EmbRace) or keep it server-side (PS) are not
    /// affected. 1.0 = no penalty.
    pub cpu_emb_penalty_2080: f64,
    /// Zipf exponent of the synthetic token distribution.
    pub zipf_s: f64,
    /// Fraction of batch positions holding the PAD token (id 0).
    pub pad_fraction: f64,
    /// Embedding-gradient rows per worker batch on each GPU kind
    /// (≈ token positions; scales with the paper's batch sizes, §5.2.2).
    rows_3090: usize,
    rows_2080: usize,
    /// Single-worker step compute time (FP+BP, seconds) on each GPU kind.
    compute_3090: f64,
    compute_2080: f64,
}

impl ModelSpec {
    /// Look up a model spec.
    pub fn get(id: ModelId) -> ModelSpec {
        match id {
            // LM: two 793471×512 tables (input embedding + softmax) =
            // 3099.5 MiB, exactly Table 1. Dense: 2 LSTM layers.
            ModelId::Lm => ModelSpec {
                id,
                name: "LM",
                embeddings: vec![
                    EmbeddingDef { name: "word_emb", vocab: 793_471, dim: 512 },
                    EmbeddingDef { name: "softmax_emb", vocab: 793_471, dim: 512 },
                ],
                enc_blocks: 2,
                dec_blocks: 0,
                block_params: 11_403_264, // 87.0 MiB dense total
                emb_compute_share: 0.50,  // the 793k-way softmax dominates
                cpu_emb_penalty_2080: 5.0,
                zipf_s: 0.90,
                pad_fraction: 0.02,
                rows_3090: 4437, // batch 128 sentences ≈ 8.7 MiB raw grad
                rows_2080: 4437, // batch 128 on RTX2080 too (§5.2.2)
                compute_3090: 0.035,
                compute_2080: 0.075,
            },
            // GNMT-8: encoder+decoder embeddings 2×32320×1024 = 252.5 MiB
            // exactly; 8+8 LSTM blocks, 486.6 MiB dense.
            ModelId::Gnmt8 => ModelSpec {
                id,
                name: "GNMT-8",
                embeddings: vec![
                    EmbeddingDef { name: "enc_emb", vocab: 32_320, dim: 1024 },
                    EmbeddingDef { name: "dec_emb", vocab: 32_320, dim: 1024 },
                ],
                enc_blocks: 8,
                dec_blocks: 8,
                block_params: 7_972_454,
                emb_compute_share: 0.04,
                cpu_emb_penalty_2080: 1.0,
                zipf_s: 0.90,
                pad_fraction: 0.18,
                rows_3090: 6643, // batch 128 ≈ 26.0 MiB raw grad
                rows_2080: 1661, // batch 32
                compute_3090: 0.150,
                compute_2080: 0.085,
            },
            // Transformer big: 2×33715×1024 ≈ 263.4 MiB embeddings; 6+6
            // blocks, 804.1 MiB dense.
            ModelId::Transformer => ModelSpec {
                id,
                name: "Transformer",
                embeddings: vec![
                    EmbeddingDef { name: "enc_emb", vocab: 33_715, dim: 1024 },
                    EmbeddingDef { name: "dec_emb", vocab: 33_715, dim: 1024 },
                ],
                enc_blocks: 6,
                dec_blocks: 6,
                block_params: 17_565_969,
                emb_compute_share: 0.04,
                cpu_emb_penalty_2080: 1.0,
                zipf_s: 0.90,
                pad_fraction: 0.12,
                rows_3090: 8994, // 5120 max tokens/batch ≈ 35.2 MiB raw grad
                rows_2080: 878,  // 500 max tokens
                compute_3090: 0.180,
                compute_2080: 0.050,
            },
            // BERT-base: 30522×768 = 89.4 MiB exactly; 12 encoder blocks,
            // 328.3 MiB dense.
            ModelId::BertBase => ModelSpec {
                id,
                name: "BERT-base",
                embeddings: vec![EmbeddingDef { name: "wordpiece_emb", vocab: 30_522, dim: 768 }],
                enc_blocks: 12,
                dec_blocks: 0,
                block_params: 7_171_686,
                emb_compute_share: 0.04,
                cpu_emb_penalty_2080: 1.0,
                zipf_s: 1.17,
                pad_fraction: 0.30,
                rows_3090: 12_255, // batch 32 × seq 384 ≈ 36.0 MiB raw grad
                rows_2080: 1532,   // batch 4
                compute_3090: 0.110,
                compute_2080: 0.032,
            },
        }
    }

    pub fn all() -> Vec<ModelSpec> {
        ModelId::ALL.iter().map(|&id| Self::get(id)).collect()
    }

    /// Embedding dimension (uniform across a model's tables).
    pub fn dim(&self) -> usize {
        self.embeddings[0].dim
    }

    /// Vocabulary of the (first) embedding table.
    pub fn vocab(&self) -> usize {
        self.embeddings[0].vocab
    }

    /// Number of dense blocks.
    pub fn n_blocks(&self) -> usize {
        self.enc_blocks + self.dec_blocks
    }

    /// Wire bytes of one embedding-gradient COO row (values + i64 index).
    pub fn grad_row_bytes(&self) -> usize {
        self.dim() * F32_BYTES + INDEX_BYTES
    }

    /// Embedding-gradient rows produced per worker batch.
    pub fn rows_per_batch(&self, gpu: GpuKind) -> usize {
        match gpu {
            GpuKind::Rtx3090 => self.rows_3090,
            GpuKind::Rtx2080 => self.rows_2080,
        }
    }

    /// Single-worker FP+BP compute time per step.
    pub fn compute_time(&self, gpu: GpuKind) -> f64 {
        match gpu {
            GpuKind::Rtx3090 => self.compute_3090,
            GpuKind::Rtx2080 => self.compute_2080,
        }
    }

    /// Total embedding parameters (MiB) — the Table 1 "Embedding Size".
    pub fn embedding_mib(&self) -> f64 {
        self.embeddings.iter().map(EmbeddingDef::mib).sum()
    }

    /// Total dense parameters (MiB).
    pub fn dense_mib(&self) -> f64 {
        (self.n_blocks() * self.block_params * F32_BYTES) as f64 / MIB
    }

    /// Total model size (MiB) — the Table 1 "Model Size".
    pub fn model_mib(&self) -> f64 {
        self.embedding_mib() + self.dense_mib()
    }

    /// Embedding fraction of all parameters — the Table 1 "Ratio".
    pub fn embedding_ratio(&self) -> f64 {
        self.embedding_mib() / self.model_mib()
    }

    /// Average token count per batch (non-pad positions are sampled
    /// tokens; pads also produce gradient rows at index 0, as in the paper
    /// — "the same value will be padded", §4.2.2).
    pub fn tokens_per_batch(&self, gpu: GpuKind) -> usize {
        self.rows_per_batch(gpu)
    }

    /// Per-batch embedding-gradient density α: gradient rows over total
    /// table rows. §4.1.2 quotes the complements ("average sparsity"):
    /// 99.7% / 89.7% / 86.6% / 59.7% for the paper's batch sizes.
    pub fn batch_density(&self, gpu: GpuKind) -> f64 {
        let total_rows: usize = self.embeddings.iter().map(|e| e.vocab).sum();
        self.rows_per_batch(gpu) as f64 / total_rows as f64
    }

    /// Build the schedulable module graph (paper Fig. 5) with compute
    /// times calibrated for `gpu`. FP is budgeted 1/3 of step compute and
    /// BP 2/3 (the usual 1:2 ratio); embeddings take `emb_compute_share`
    /// of the total, dense blocks share the rest evenly (§4.2.1's
    /// uniform-block observation). With `cpu_embeddings`, embedding
    /// compute is additionally scaled by `cpu_emb_penalty_2080` —
    /// the host-memory table path of replicated methods on 8 GB GPUs.
    pub fn graph_for(&self, gpu: GpuKind, cpu_embeddings: bool) -> ModelGraph {
        let total = self.compute_time(gpu);
        let (fp_total, bp_total) = (total / 3.0, total * 2.0 / 3.0);
        let cpu_factor =
            if cpu_embeddings && gpu == GpuKind::Rtx2080 { self.cpu_emb_penalty_2080 } else { 1.0 };
        let emb_share = self.emb_compute_share / self.embeddings.len() as f64;
        let emb_fp = fp_total * emb_share * cpu_factor;
        let emb_bp = bp_total * emb_share * cpu_factor;
        let blocks = self.n_blocks() as f64;
        let blk_fp = fp_total * (1.0 - self.emb_compute_share) / blocks;
        let blk_bp = bp_total * (1.0 - self.emb_compute_share) / blocks;

        if self.dec_blocks > 0 {
            ModelGraph::translation(
                (self.embeddings[0].vocab, self.embeddings[0].dim),
                (self.embeddings[1].vocab, self.embeddings[1].dim),
                self.enc_blocks,
                self.dec_blocks,
                self.block_params,
                emb_fp,
                emb_bp,
                blk_fp,
                blk_bp,
            )
        } else {
            // Encoder-only / LM: embeddings feed a single chain of blocks.
            let mut g = ModelGraph::new();
            let mut emb_ids = Vec::new();
            for e in &self.embeddings {
                emb_ids.push(g.add(Module {
                    name: e.name.to_string(),
                    kind: ModuleKind::Embedding { vocab: e.vocab, dim: e.dim },
                    inputs: vec![],
                    fp_time: emb_fp,
                    bp_time: emb_bp,
                }));
            }
            let mut prev = emb_ids[0];
            for i in 0..self.enc_blocks {
                let inputs = if i == 0 { emb_ids.clone() } else { vec![prev] };
                prev = g.add(Module {
                    name: format!("blk{i}"),
                    kind: ModuleKind::Dense { params: self.block_params },
                    inputs,
                    fp_time: blk_fp,
                    bp_time: blk_bp,
                });
            }
            g
        }
    }

    /// Module graph with GPU-resident embeddings (EmbRace and PS methods).
    pub fn graph(&self, gpu: GpuKind) -> ModelGraph {
        self.graph_for(gpu, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes_match_paper() {
        // (model MiB, embedding MiB, ratio %) from the paper's Table 1.
        let expect = [
            (ModelId::Lm, 3186.5, 3099.5, 97.27),
            (ModelId::Gnmt8, 739.1, 252.5, 34.16),
            (ModelId::Transformer, 1067.5, 263.4, 24.67),
            (ModelId::BertBase, 417.7, 89.4, 21.42),
        ];
        for (id, model_mib, emb_mib, ratio_pct) in expect {
            let s = ModelSpec::get(id);
            assert!(
                (s.model_mib() - model_mib).abs() < 0.5,
                "{}: model {} vs paper {model_mib}",
                s.name,
                s.model_mib()
            );
            assert!(
                (s.embedding_mib() - emb_mib).abs() < 0.5,
                "{}: emb {} vs paper {emb_mib}",
                s.name,
                s.embedding_mib()
            );
            assert!(
                (s.embedding_ratio() * 100.0 - ratio_pct).abs() < 0.2,
                "{}: ratio {} vs paper {ratio_pct}",
                s.name,
                s.embedding_ratio() * 100.0
            );
        }
    }

    #[test]
    fn lm_embedding_tables_each_exceed_1_5_gib() {
        // §5.3: "two large embedding tables, each taking over 1.5GB".
        let s = ModelSpec::get(ModelId::Lm);
        for e in &s.embeddings {
            assert!(e.mib() > 1536.0);
        }
    }

    #[test]
    fn raw_grad_sizes_match_table3() {
        // rows_per_batch × row bytes ≈ Table 3 "Original Grad Size".
        let expect = [
            (ModelId::Lm, 8.7),
            (ModelId::Gnmt8, 26.0),
            (ModelId::Transformer, 35.2),
            (ModelId::BertBase, 36.0),
        ];
        for (id, mib) in expect {
            let s = ModelSpec::get(id);
            let got = (s.rows_per_batch(GpuKind::Rtx3090) * s.grad_row_bytes()) as f64 / MIB;
            assert!((got - mib).abs() < 0.1, "{}: {} vs {}", s.name, got, mib);
        }
    }

    #[test]
    fn graphs_validate_and_preserve_compute() {
        for s in ModelSpec::all() {
            for gpu in [GpuKind::Rtx3090, GpuKind::Rtx2080] {
                let g = s.graph(gpu);
                assert!(g.validate(), "{}", s.name);
                assert_eq!(g.embeddings().len(), s.embeddings.len());
                assert_eq!(g.dense_blocks().len(), s.n_blocks());
                let t = g.compute_time();
                assert!(
                    (t - s.compute_time(gpu)).abs() / s.compute_time(gpu) < 1e-9,
                    "{}: graph time {t} vs calib {}",
                    s.name,
                    s.compute_time(gpu)
                );
                // CPU-embedding variant is never faster.
                let cpu = s.graph_for(gpu, true);
                assert!(cpu.compute_time() >= t * 0.999);
            }
        }
    }

    #[test]
    fn graph_dense_bytes_match_spec() {
        for s in ModelSpec::all() {
            let g = s.graph(GpuKind::Rtx3090);
            assert_eq!(g.dense_bytes(), s.n_blocks() * s.block_params * F32_BYTES);
            let emb_bytes: usize = s.embeddings.iter().map(EmbeddingDef::bytes).sum();
            assert_eq!(g.embedding_bytes(), emb_bytes);
        }
    }

    #[test]
    fn batch_sparsities_match_section_4_1_2() {
        // "their corresponding average sparsity are 99.7%, 89.7%, 86.6%
        // and 59.7%" (§4.1.2, RTX3090 batch sizes).
        let expect = [
            (ModelId::Lm, 99.7),
            (ModelId::Gnmt8, 89.7),
            (ModelId::Transformer, 86.6),
            (ModelId::BertBase, 59.7),
        ];
        for (id, sparsity_pct) in expect {
            let s = ModelSpec::get(id);
            let got = (1.0 - s.batch_density(GpuKind::Rtx3090)) * 100.0;
            assert!(
                (got - sparsity_pct).abs() < 0.3,
                "{}: sparsity {got:.1}% vs paper {sparsity_pct}%",
                s.name
            );
        }
    }

    #[test]
    fn rtx2080_batches_shrink_except_lm() {
        for s in ModelSpec::all() {
            let r3090 = s.rows_per_batch(GpuKind::Rtx3090);
            let r2080 = s.rows_per_batch(GpuKind::Rtx2080);
            if s.id == ModelId::Lm {
                assert_eq!(r3090, r2080);
            } else {
                assert!(r2080 < r3090, "{}", s.name);
            }
        }
    }
}
