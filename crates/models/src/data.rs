//! Synthetic token workloads with Zipf-distributed vocabularies.
//!
//! NLP batch statistics drive everything in Vertical Sparse Scheduling:
//! duplicate/padded tokens make coalescing effective (Table 3), and
//! batch-to-batch overlap determines the prior/delayed split. Natural
//! corpora have Zipfian word frequencies, so a Zipf sampler plus a padding
//! fraction reproduces both effects; per-model exponents are calibrated in
//! [`crate::spec`].

use crate::spec::ModelSpec;
use embrace_simnet::GpuKind;
use embrace_tensor::{intersect, unique_sorted};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Token id reserved for padding (§4.2.2: "the same value will be padded").
pub const PAD_TOKEN: u32 = 0;

/// Inverse-CDF sampler over token ids `1..vocab` with Zipf weights
/// `P(k) ∝ 1/k^s`. The cumulative table is shared between clones so all
/// workers of a job sample the same corpus distribution cheaply.
#[derive(Clone)]
pub struct ZipfSampler {
    cum: Arc<Vec<f64>>,
}

impl ZipfSampler {
    pub fn new(vocab: usize, s: f64) -> Self {
        assert!(vocab >= 2, "need at least PAD + one real token");
        let mut cum = Vec::with_capacity(vocab - 1);
        let mut total = 0.0;
        for k in 1..vocab {
            total += 1.0 / (k as f64).powf(s);
            cum.push(total);
        }
        ZipfSampler { cum: Arc::new(cum) }
    }

    /// Number of samplable (non-pad) tokens.
    pub fn support(&self) -> usize {
        self.cum.len()
    }

    /// Draw one token id in `1..=support`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let total = *self.cum.last().unwrap();
        let u = rng.gen_range(0.0..total);
        // partition_point: first index with cum[i] > u.
        let idx = self.cum.partition_point(|&c| c <= u);
        (idx + 1) as u32
    }

    /// Draw a serving batch of `n` row ids. Duplicates are expected and
    /// intentional under the skew — deduplication, caching, and gradient
    /// coalescing all happen downstream, so a request replay must present
    /// the raw Zipf stream, never a pre-uniqued one.
    pub fn sample_batch<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<u32> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Per-worker batch generator: an infinite stream of token batches.
#[derive(Clone)]
pub struct BatchGen {
    sampler: ZipfSampler,
    tokens_per_batch: usize,
    pad_fraction: f64,
    rng: StdRng,
}

impl BatchGen {
    pub fn new(
        sampler: ZipfSampler,
        tokens_per_batch: usize,
        pad_fraction: f64,
        seed: u64,
    ) -> Self {
        BatchGen { sampler, tokens_per_batch, pad_fraction, rng: StdRng::seed_from_u64(seed) }
    }

    /// Generator for `spec`'s workload on `gpu`, for worker `rank`.
    /// The model's embedding tables are treated as one logical table of
    /// `Σ vocab` rows; token ids index into it.
    pub fn from_spec(spec: &ModelSpec, gpu: GpuKind, rank: usize, seed: u64) -> Self {
        let vocab: usize = spec.embeddings.iter().map(|e| e.vocab).sum();
        let sampler = ZipfSampler::new(vocab, spec.zipf_s);
        BatchGen::new(
            sampler,
            spec.tokens_per_batch(gpu),
            spec.pad_fraction,
            seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    pub fn tokens_per_batch(&self) -> usize {
        self.tokens_per_batch
    }

    /// Produce the next batch: `tokens_per_batch` positions, each PAD with
    /// probability `pad_fraction`, otherwise a Zipf draw.
    pub fn next_batch(&mut self) -> Vec<u32> {
        (0..self.tokens_per_batch)
            .map(|_| {
                if self.rng.gen_bool(self.pad_fraction) {
                    PAD_TOKEN
                } else {
                    self.sampler.sample(&mut self.rng)
                }
            })
            .collect()
    }
}

impl Iterator for BatchGen {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        Some(self.next_batch())
    }
}

/// Average per-worker-batch gradient statistics (the quantities of the
/// paper's Table 3), measured over a synthetic workload.
#[derive(Clone, Copy, Debug)]
pub struct GradStats {
    /// Average raw gradient rows per batch (token positions).
    pub rows_original: f64,
    /// Average rows after coalescing duplicates (unique tokens).
    pub rows_coalesced: f64,
    /// Average rows in the prior part: `unique(D_cur[rank]) ∩ D_next`.
    pub rows_prior: f64,
    /// Wire bytes per COO row.
    pub row_bytes: usize,
}

impl GradStats {
    const MIB: f64 = 1024.0 * 1024.0;

    pub fn original_mib(&self) -> f64 {
        self.rows_original * self.row_bytes as f64 / Self::MIB
    }

    pub fn coalesced_mib(&self) -> f64 {
        self.rows_coalesced * self.row_bytes as f64 / Self::MIB
    }

    pub fn prior_mib(&self) -> f64 {
        self.rows_prior * self.row_bytes as f64 / Self::MIB
    }

    /// Fraction of rows surviving coalescing.
    pub fn coalesce_ratio(&self) -> f64 {
        self.rows_coalesced / self.rows_original
    }

    /// Fraction of coalesced rows that are prior (needed by next batch).
    pub fn prior_ratio(&self) -> f64 {
        self.rows_prior / self.rows_coalesced
    }
}

/// Measure Table 3 statistics for `spec` on `gpu` with `world` workers,
/// averaged over `steps` steps. Implements exactly Algorithm 1's set
/// algebra: `Du = UNIQUE(D_cur[rank])`, `i_prior = Du ∩ D_next` where
/// `D_next` is the *gathered* (all-worker) next-iteration data.
pub fn grad_stats(
    spec: &ModelSpec,
    gpu: GpuKind,
    world: usize,
    steps: usize,
    seed: u64,
) -> GradStats {
    assert!(steps > 0 && world > 0);
    let mut gens: Vec<BatchGen> =
        (0..world).map(|r| BatchGen::from_spec(spec, gpu, r, seed)).collect();
    let mut cur: Vec<Vec<u32>> = gens.iter_mut().map(|g| g.next_batch()).collect();

    let (mut orig, mut coal, mut prior) = (0.0, 0.0, 0.0);
    for _ in 0..steps {
        let next: Vec<Vec<u32>> = gens.iter_mut().map(|g| g.next_batch()).collect();
        let next_union = unique_sorted(&next.concat());
        for batch in &cur {
            let du = unique_sorted(batch);
            orig += batch.len() as f64;
            coal += du.len() as f64;
            prior += intersect(&du, &next_union).len() as f64;
        }
        cur = next;
    }
    let denom = (steps * world) as f64;
    GradStats {
        rows_original: orig / denom,
        rows_coalesced: coal / denom,
        rows_prior: prior / denom,
        row_bytes: spec.grad_row_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelId;

    #[test]
    fn zipf_prefers_head_tokens() {
        let s = ZipfSampler::new(10_000, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<u32> = (0..20_000).map(|_| s.sample(&mut rng)).collect();
        let head = draws.iter().filter(|&&t| t <= 100).count();
        let tail = draws.iter().filter(|&&t| t > 5_000).count();
        assert!(head > 10 * tail.max(1), "head {head} vs tail {tail}");
        assert!(draws.iter().all(|&t| (1..10_000).contains(&(t as usize))));
    }

    #[test]
    fn zipf_never_emits_pad() {
        let s = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert_ne!(s.sample(&mut rng), PAD_TOKEN);
        }
    }

    #[test]
    fn serving_batches_keep_duplicates_and_skew() {
        let s = ZipfSampler::new(1 << 16, 1.05);
        let mut rng = StdRng::seed_from_u64(9);
        let batch = s.sample_batch(512, &mut rng);
        assert_eq!(batch.len(), 512);
        let unique: std::collections::BTreeSet<u32> = batch.iter().copied().collect();
        assert!(unique.len() < batch.len(), "a skewed batch repeats hot rows");
        assert!(batch.iter().all(|&t| t != PAD_TOKEN));
        let mut rng2 = StdRng::seed_from_u64(9);
        assert_eq!(batch, s.sample_batch(512, &mut rng2), "replay must be deterministic");
    }

    #[test]
    fn batches_are_deterministic_per_seed() {
        let spec = ModelSpec::get(ModelId::Gnmt8);
        let mut a = BatchGen::from_spec(&spec, GpuKind::Rtx3090, 0, 42);
        let mut b = BatchGen::from_spec(&spec, GpuKind::Rtx3090, 0, 42);
        assert_eq!(a.next_batch(), b.next_batch());
        let mut c = BatchGen::from_spec(&spec, GpuKind::Rtx3090, 1, 42);
        assert_ne!(a.next_batch(), c.next_batch(), "ranks see different data shards");
    }

    #[test]
    fn batch_size_matches_spec() {
        let spec = ModelSpec::get(ModelId::BertBase);
        let mut g = BatchGen::from_spec(&spec, GpuKind::Rtx2080, 0, 7);
        assert_eq!(g.next_batch().len(), spec.tokens_per_batch(GpuKind::Rtx2080));
    }

    #[test]
    fn pad_fraction_realised() {
        let s = ZipfSampler::new(1000, 1.0);
        let mut g = BatchGen::new(s, 50_000, 0.3, 3);
        let batch = g.next_batch();
        let pads = batch.iter().filter(|&&t| t == PAD_TOKEN).count() as f64;
        let frac = pads / batch.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "pad fraction {frac}");
    }

    #[test]
    fn stats_are_internally_consistent() {
        let spec = ModelSpec::get(ModelId::Gnmt8);
        let st = grad_stats(&spec, GpuKind::Rtx3090, 4, 5, 11);
        assert!(st.rows_coalesced <= st.rows_original);
        assert!(st.rows_prior <= st.rows_coalesced);
        assert!(st.rows_prior > 0.0);
        assert!(st.original_mib() > st.coalesced_mib());
        assert!(st.coalesced_mib() > st.prior_mib());
        assert!((st.rows_original - spec.tokens_per_batch(GpuKind::Rtx3090) as f64).abs() < 1.0);
    }

    #[test]
    fn coalescing_shrinks_more_for_bert() {
        // The paper's Table 3 ordering: BERT coalesces hardest (84.7%
        // reduction), LM least (20.4%).
        let lm = grad_stats(&ModelSpec::get(ModelId::Lm), GpuKind::Rtx3090, 4, 3, 5);
        let bert = grad_stats(&ModelSpec::get(ModelId::BertBase), GpuKind::Rtx3090, 4, 3, 5);
        assert!(bert.coalesce_ratio() < lm.coalesce_ratio());
    }
}

#[cfg(test)]
mod calibration_probe {
    use super::*;
    use crate::spec::ModelId;

    /// Not an assertion — prints measured Table 3 ratios for tuning.
    /// Run with: cargo test -p embrace-models probe -- --ignored --nocapture
    #[test]
    #[ignore]
    fn probe_table3() {
        for id in ModelId::ALL {
            let spec = ModelSpec::get(id);
            let st = grad_stats(&spec, GpuKind::Rtx3090, 8, 10, 42);
            println!(
                "{:<12} orig {:6.1} MiB  coal {:6.1} MiB ({:.3})  prior {:6.1} MiB ({:.3})",
                spec.name,
                st.original_mib(),
                st.coalesced_mib(),
                st.coalesce_ratio(),
                st.prior_mib(),
                st.prior_ratio()
            );
        }
    }
}

#[cfg(test)]
mod table3_calibration {
    use super::*;
    use crate::spec::ModelId;

    /// The synthetic workloads must reproduce the paper's Table 3 gradient
    /// shrinkage: coalesce ratio within ±0.08 absolute, prior ratio within
    /// ±0.15 (the prior split is the noisier statistic; measured values
    /// are recorded in EXPERIMENTS.md).
    #[test]
    fn ratios_track_paper_table3() {
        let targets = [
            (ModelId::Lm, 6.9 / 8.7, 2.6 / 6.9),
            (ModelId::Gnmt8, 12.2 / 26.0, 5.8 / 12.2),
            (ModelId::Transformer, 16.6 / 35.2, 8.9 / 16.6),
            (ModelId::BertBase, 5.5 / 36.0, 3.2 / 5.5),
        ];
        for (id, coal_t, prior_t) in targets {
            let spec = ModelSpec::get(id);
            let st = grad_stats(&spec, GpuKind::Rtx3090, 8, 6, 42);
            assert!(
                (st.coalesce_ratio() - coal_t).abs() < 0.08,
                "{}: coalesce {:.3} vs paper {:.3}",
                spec.name,
                st.coalesce_ratio(),
                coal_t
            );
            assert!(
                (st.prior_ratio() - prior_t).abs() < 0.15,
                "{}: prior {:.3} vs paper {:.3}",
                spec.name,
                st.prior_ratio(),
                prior_t
            );
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::spec::ModelId;

    #[test]
    fn grad_stats_deterministic_for_seed() {
        let spec = ModelSpec::get(ModelId::BertBase);
        let a = grad_stats(&spec, GpuKind::Rtx3090, 4, 3, 9);
        let b = grad_stats(&spec, GpuKind::Rtx3090, 4, 3, 9);
        assert_eq!(a.rows_original, b.rows_original);
        assert_eq!(a.rows_coalesced, b.rows_coalesced);
        assert_eq!(a.rows_prior, b.rows_prior);
    }

    #[test]
    fn prior_rows_grow_with_world() {
        // D_next is gathered over all workers: more workers, more of this
        // worker's tokens reappear somewhere next step.
        let spec = ModelSpec::get(ModelId::Gnmt8);
        let small = grad_stats(&spec, GpuKind::Rtx3090, 2, 4, 5);
        let large = grad_stats(&spec, GpuKind::Rtx3090, 12, 4, 5);
        assert!(
            large.rows_prior > small.rows_prior,
            "world 12 prior {} vs world 2 prior {}",
            large.rows_prior,
            small.rows_prior
        );
        // Coalescing is world-independent (per-batch statistic).
        assert!((large.rows_coalesced - small.rows_coalesced).abs() / small.rows_coalesced < 0.05);
    }

    #[test]
    fn smaller_batches_coalesce_less() {
        // Fewer draws over the same vocabulary → fewer collisions →
        // higher surviving fraction.
        let spec = ModelSpec::get(ModelId::Transformer);
        let big = grad_stats(&spec, GpuKind::Rtx3090, 4, 3, 5); // 8994 tokens
        let small = grad_stats(&spec, GpuKind::Rtx2080, 4, 3, 5); // 878 tokens
        assert!(small.coalesce_ratio() > big.coalesce_ratio());
    }
}
