//! ByteScheduler-style tensor partitioning (Peng et al., SOSP'19).
//!
//! BytePS integrates ByteScheduler, which splits each gradient tensor into
//! fixed-size chunks so that high-priority chunks of *later-needed* tensors
//! can preempt at chunk granularity. The paper (§4.2.1) points out the two
//! costs EmbRace avoids by scheduling whole blocks instead: extra
//! per-message startup latency and poor bandwidth utilisation for small
//! chunks — both of which the simulator charges per chunk.

/// Split a tensor of `bytes` into chunks of at most `chunk_bytes`.
/// Returns the chunk sizes (all equal except possibly the last). A zero
/// or negative size yields no chunks.
pub fn partition_tensor(bytes: f64, chunk_bytes: f64) -> Vec<f64> {
    assert!(chunk_bytes > 0.0, "chunk size must be positive");
    if bytes <= 0.0 {
        return Vec::new();
    }
    let full = (bytes / chunk_bytes).floor() as usize;
    let rem = bytes - full as f64 * chunk_bytes;
    let mut out = vec![chunk_bytes; full];
    if rem > 1e-9 {
        out.push(rem);
    }
    out
}

/// ByteScheduler's default partition size (4 MB credits in the paper's
/// released implementation).
pub const DEFAULT_CHUNK_BYTES: f64 = 4.0 * 1024.0 * 1024.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple() {
        let chunks = partition_tensor(12.0, 4.0);
        assert_eq!(chunks, vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn remainder_chunk() {
        let chunks = partition_tensor(10.0, 4.0);
        assert_eq!(chunks, vec![4.0, 4.0, 2.0]);
    }

    #[test]
    fn small_tensor_single_chunk() {
        assert_eq!(partition_tensor(1.5, 4.0), vec![1.5]);
    }

    #[test]
    fn zero_bytes_no_chunks() {
        assert!(partition_tensor(0.0, 4.0).is_empty());
    }

    #[test]
    fn conserves_total_bytes() {
        for bytes in [1.0, 5.0, 4.0e6, 123456789.0] {
            let total: f64 = partition_tensor(bytes, DEFAULT_CHUNK_BYTES).iter().sum();
            assert!((total - bytes).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_size_panics() {
        partition_tensor(1.0, 0.0);
    }
}
