//! Functional Horovod-style data-parallel operations.
//!
//! Every worker holds a full model replica. Dense gradients are averaged
//! with ring AllReduce; sparse gradients either travel densified through
//! the same AllReduce (Horovod 0.21 behaviour) or as COO tensors through
//! AllGather (Horovod ≥ 0.22). These are the reference semantics the
//! convergence experiment (Fig. 11) compares EmbRace against.

use embrace_collectives::ops::{allgather_sparse, ring_allreduce};
use embrace_collectives::Endpoint;
use embrace_tensor::{coalesce, DenseTensor, RowSparse};

/// Sum a replicated *sparse* gradient across ranks via AllGather and
/// return the coalesced global gradient (identical on every rank).
pub fn allgather_sparse_grad(ep: &mut Endpoint, local: RowSparse) -> RowSparse {
    let gathered = allgather_sparse(ep, local);
    coalesce(&RowSparse::concat(&gathered))
}

/// Sum a replicated sparse gradient across ranks by densifying it and
/// ring-AllReducing the full table (Horovod-AllReduce semantics). `vocab`
/// is the table's row count. Returns the dense summed gradient.
pub fn allreduce_densified_grad(ep: &mut Endpoint, local: &RowSparse, vocab: usize) -> DenseTensor {
    let mut dense = local.to_dense(vocab);
    ring_allreduce(ep, dense.as_mut_slice());
    dense
}

/// Sum a dense gradient across ranks in place (the dense plane all
/// methods share).
pub fn allreduce_dense_grad(ep: &mut Endpoint, grad: &mut DenseTensor) {
    ring_allreduce(ep, grad.as_mut_slice());
}

#[cfg(test)]
mod tests {
    use super::*;
    use embrace_collectives::run_group;

    #[test]
    fn allgather_and_densified_allreduce_agree() {
        // Two sparse-aggregation paths must produce identical summed
        // gradients (Fig. 1's semantics equivalence).
        let vocab = 6;
        let out = run_group(3, move |rank, ep| {
            let local = RowSparse::new(
                vec![rank as u32, 5],
                DenseTensor::from_vec(2, 2, vec![1.0, 1.0, 10.0 * (rank + 1) as f32, 0.0]),
            );
            let via_gather = allgather_sparse_grad(ep, local.clone());
            let via_reduce = allreduce_densified_grad(ep, &local, vocab);
            (via_gather, via_reduce)
        });
        for (gathered, reduced) in out {
            assert!(gathered.to_dense(vocab).approx_eq(&reduced, 1e-5));
            // Row 5 was touched by all ranks: 10+20+30.
            assert!((reduced.row(5)[0] - 60.0).abs() < 1e-4);
        }
    }

    #[test]
    fn allgather_result_is_replicated() {
        let outs = run_group(4, |rank, ep| {
            let local = RowSparse::new(vec![rank as u32], DenseTensor::full(1, 3, 1.0));
            allgather_sparse_grad(ep, local)
        });
        for o in &outs[1..] {
            assert_eq!(o, &outs[0]);
        }
        assert_eq!(outs[0].nnz_rows(), 4);
    }

    #[test]
    fn dense_allreduce_sums() {
        let outs = run_group(2, |rank, ep| {
            let mut g = DenseTensor::full(2, 2, (rank + 1) as f32);
            allreduce_dense_grad(ep, &mut g);
            g
        });
        for o in outs {
            assert!(o.as_slice().iter().all(|&x| x == 3.0));
        }
    }
}
