//! Gradient compression (related work, §6): top-k sparsification (Deep
//! Gradient Compression, Lin et al. 2017) and uniform 8-bit quantization
//! (QSGD-style, Alistarh et al. 2017).
//!
//! The paper lists message-size reduction as *orthogonal and
//! complementary* to EmbRace; these reference implementations let the
//! ablation benches quantify how compression composes with (and differs
//! from) sparsity-aware communication: compression shrinks *dense*
//! gradients lossily, while EmbRace's embedding plane is lossless —
//! it only moves rows that are exactly non-zero.

use embrace_tensor::{DenseTensor, RowSparse, F32_BYTES, INDEX_BYTES};

/// Element-level sparse view of a compressed dense gradient: flat element
/// indices plus their values (a `k × 1` [`RowSparse`], so the existing
/// coalesce/select machinery applies).
pub type SparseElements = RowSparse;

/// Keep the `k` largest-magnitude elements of `grad` (DGC-style). Ties
/// break toward lower indices for determinism. Returns an element-level
/// sparse gradient.
pub fn topk_sparsify(grad: &DenseTensor, k: usize) -> SparseElements {
    let n = grad.len();
    let k = k.min(n);
    if k == 0 {
        return RowSparse::empty(1);
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        let ma = grad.as_slice()[a as usize].abs();
        let mb = grad.as_slice()[b as usize].abs();
        mb.partial_cmp(&ma).unwrap().then(a.cmp(&b))
    });
    let mut keep: Vec<u32> = order[..k].to_vec();
    keep.sort_unstable();
    let values: Vec<f32> = keep.iter().map(|&i| grad.as_slice()[i as usize]).collect();
    RowSparse::new(keep, DenseTensor::from_vec(k, 1, values))
}

/// Reconstruct the dense gradient a [`topk_sparsify`] result represents
/// (zeros elsewhere). `rows × cols` must match the original shape.
pub fn densify_elements(sparse: &SparseElements, rows: usize, cols: usize) -> DenseTensor {
    let mut out = DenseTensor::zeros(rows, cols);
    for (i, &idx) in sparse.indices().iter().enumerate() {
        out.as_mut_slice()[idx as usize] = sparse.values().as_slice()[i];
    }
    out
}

/// Wire bytes of a top-k message (values + element indices).
pub fn topk_nbytes(k: usize) -> usize {
    k * (F32_BYTES + INDEX_BYTES / 2) // 4-byte values + 4-byte u32 indices
}

/// A uniformly quantized tensor: signed 8-bit mantissas and one f32 scale.
#[derive(Clone, Debug, PartialEq)]
pub struct Quantized8 {
    pub rows: usize,
    pub cols: usize,
    pub scale: f32,
    pub data: Vec<i8>,
}

impl Quantized8 {
    /// Wire size: one byte per element plus the scale.
    pub fn nbytes(&self) -> usize {
        self.data.len() + F32_BYTES
    }
}

/// Quantize to 8 bits with a per-tensor scale (`max|x| / 127`), rounding
/// to nearest. The reconstruction error of any element is at most
/// `scale / 2`.
pub fn quantize_8bit(grad: &DenseTensor) -> Quantized8 {
    let max = grad.as_slice().iter().fold(0.0_f32, |a, &x| a.max(x.abs()));
    let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
    let data =
        grad.as_slice().iter().map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8).collect();
    Quantized8 { rows: grad.rows(), cols: grad.cols(), scale, data }
}

/// Reconstruct the f32 tensor from its quantized form.
pub fn dequantize_8bit(q: &Quantized8) -> DenseTensor {
    let data = q.data.iter().map(|&b| b as f32 * q.scale).collect();
    DenseTensor::from_vec(q.rows, q.cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn grad() -> DenseTensor {
        DenseTensor::from_vec(2, 4, vec![0.1, -5.0, 0.0, 2.0, -0.3, 4.0, 0.05, -1.0])
    }

    #[test]
    fn topk_keeps_largest_magnitudes() {
        let s = topk_sparsify(&grad(), 3);
        // |−5| > |4| > |2| — flat indices 1, 5, 3.
        assert_eq!(s.indices(), &[1, 3, 5]);
        let d = densify_elements(&s, 2, 4);
        assert_eq!(d.as_slice(), &[0.0, -5.0, 0.0, 2.0, 0.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn topk_with_k_ge_len_is_lossless() {
        let s = topk_sparsify(&grad(), 100);
        assert!(densify_elements(&s, 2, 4).approx_eq(&grad(), 0.0));
    }

    #[test]
    fn topk_zero_k_is_empty() {
        assert!(topk_sparsify(&grad(), 0).is_empty());
    }

    #[test]
    fn topk_preserves_l2_better_than_random_k() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = DenseTensor::uniform(16, 16, 1.0, &mut rng);
        let k = 32;
        let kept = densify_elements(&topk_sparsify(&g, k), 16, 16);
        // The retained energy must be at least k/n of the total (top-k is
        // optimal, a uniform pick achieves exactly k/n in expectation).
        assert!(kept.norm_sq() > g.norm_sq() * (k as f32 / 256.0));
    }

    #[test]
    fn quantize_roundtrip_error_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = DenseTensor::uniform(8, 8, 3.0, &mut rng);
        let q = quantize_8bit(&g);
        let back = dequantize_8bit(&q);
        assert!(g.max_abs_diff(&back) <= q.scale / 2.0 + 1e-6);
        assert_eq!(q.nbytes(), 64 + 4);
    }

    #[test]
    fn quantize_zero_tensor() {
        let q = quantize_8bit(&DenseTensor::zeros(2, 2));
        assert!(dequantize_8bit(&q).approx_eq(&DenseTensor::zeros(2, 2), 0.0));
    }

    #[test]
    fn quantize_saturates_at_max() {
        let g = DenseTensor::from_vec(1, 2, vec![127.0, -127.0]);
        let q = quantize_8bit(&g);
        let back = dequantize_8bit(&q);
        assert!(back.approx_eq(&g, 1e-4));
    }

    #[test]
    fn compression_ratios() {
        let g = DenseTensor::zeros(100, 10); // 4000 bytes dense
        assert_eq!(quantize_8bit(&g).nbytes(), 1004); // ~4x
        assert_eq!(topk_nbytes(10), 80); // 10 elements at 8 B each
    }
}
