//! Functional Parallax (Kim et al., EuroSys'19): hybrid PS/AllReduce.
//!
//! Embedding parameters live on a row-partitioned sparse parameter server
//! (`embrace-ps`); dense parameters are replicated and AllReduced. Each
//! step a worker pulls the embedding rows its batch needs, computes, then
//! pushes the sparse gradient back; the server applies the summed update
//! synchronously. Malformed batches surface as typed [`PsError`]s.

use embrace_ps::{PsError, ShardedStore};
use embrace_tensor::{coalesce, DenseTensor, RowSparse};

/// Pull the embedding rows for `tokens` (the per-step lookup in Parallax's
/// sparse-PS plane; duplicates allowed, as in a raw batch).
pub fn pull_lookup(store: &ShardedStore, tokens: &[u32]) -> Result<DenseTensor, PsError> {
    store.pull_rows(tokens)
}

/// Push this worker's raw (possibly uncoalesced) embedding gradient; the
/// gradient is coalesced locally first (Parallax sends unique keys), then
/// the store applies the synchronous summed SGD update at rate `lr`.
pub fn push_grad(store: &ShardedStore, grad: &RowSparse, lr: f32) -> Result<(), PsError> {
    let g = coalesce(grad);
    store.push_sparse(&g, lr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use embrace_dlsim::optim::{Optimizer, Sgd, UpdatePart};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn ps_training_matches_replicated_sgd() {
        // One synchronous Parallax step must equal a replicated table
        // updated with the sum of all workers' gradients.
        let vocab = 8;
        let dim = 2;
        let world = 3;
        let init = DenseTensor::full(vocab, dim, 0.5);
        let lr = 0.2_f32;
        let batches: Vec<Vec<u32>> = vec![vec![1, 1, 4], vec![4, 7], vec![0]];

        // Reference.
        let mut reference = init.clone();
        let parts: Vec<RowSparse> = batches
            .iter()
            .map(|b| RowSparse::new(b.clone(), DenseTensor::full(b.len(), dim, 1.0)))
            .collect();
        let summed = coalesce(&RowSparse::concat(&parts));
        Sgd::new(lr).step_sparse(&mut reference, &summed, UpdatePart::Whole);

        // Parallax plane.
        let store = Arc::new(ShardedStore::new(init, 2, world));
        thread::scope(|s| {
            for b in &batches {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let looked = pull_lookup(&store, b).expect("batch in range");
                    assert_eq!(looked.rows(), b.len());
                    let grad = RowSparse::new(b.clone(), DenseTensor::full(b.len(), 2, 1.0));
                    push_grad(&store, &grad, lr).expect("batch in range");
                });
            }
        });
        assert!(store.snapshot().approx_eq(&reference, 1e-6));
    }

    #[test]
    fn pull_after_push_sees_update() {
        let store = ShardedStore::new(DenseTensor::zeros(4, 1), 1, 1);
        let g = RowSparse::new(vec![2], DenseTensor::full(1, 1, 1.0));
        push_grad(&store, &g, 1.0).expect("row in range");
        let row = pull_lookup(&store, &[2]).expect("row in range");
        assert_eq!(row.as_slice(), &[-1.0]);
    }

    #[test]
    fn bad_batches_are_typed_errors() {
        let store = ShardedStore::new(DenseTensor::zeros(4, 1), 2, 1);
        assert!(matches!(
            pull_lookup(&store, &[99]),
            Err(PsError::RowOutOfRange { row: 99, vocab: 4 })
        ));
        let wide = RowSparse::new(vec![0], DenseTensor::zeros(1, 3));
        assert!(matches!(
            push_grad(&store, &wide, 1.0),
            Err(PsError::DimMismatch { expected: 1, got: 3 })
        ));
    }
}
