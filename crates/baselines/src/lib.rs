//! Baseline distributed-training methods (paper §5.2.3).
//!
//! Every method the paper compares against is implemented here against the
//! same substrate EmbRace uses:
//!
//! * **Horovod AllReduce** — sparse tensors densified, everything ring-
//!   AllReduced, FIFO communication ([`method`], functional ops in
//!   [`horovod`]);
//! * **Horovod AllGather** — COO sparse gradients AllGather'ed, dense
//!   AllReduced (Horovod ≥ 0.22 default; the convergence baseline of
//!   Fig. 11);
//! * **BytePS** — dense parameter-server push/pull plus ByteScheduler's
//!   tensor partitioning and priority scheduling ([`bytescheduler`]);
//! * **Parallax** — row-partitioned sparse PS for embeddings + AllReduce
//!   for dense parameters ([`parallax`], over `embrace-ps`);
//! * **OmniReduce** — block-sparse AllReduce (cost model in
//!   `embrace_simnet::cost`; appears in Fig. 4 only, matching the paper's
//!   1-GPU-per-node restriction).
//!
//! # Example
//!
//! ```
//! use embrace_baselines::bytescheduler::partition_tensor;
//! use embrace_baselines::compression::{dequantize_8bit, quantize_8bit};
//! use embrace_tensor::DenseTensor;
//!
//! // ByteScheduler chunks a 10 MB tensor into 4 MB credits.
//! let chunks = partition_tensor(10e6, 4e6);
//! assert_eq!(chunks.len(), 3);
//!
//! // QSGD-style quantization bounds the per-element error by scale/2.
//! let g = DenseTensor::from_vec(1, 2, vec![1.0, -0.5]);
//! let q = quantize_8bit(&g);
//! assert!(dequantize_8bit(&q).max_abs_diff(&g) <= q.scale / 2.0 + 1e-6);
//! ```

#![forbid(unsafe_code)]

pub mod bytescheduler;
pub mod compression;
pub mod horovod;
pub mod method;
pub mod parallax;

pub use bytescheduler::partition_tensor;
pub use compression::{dequantize_8bit, quantize_8bit, topk_sparsify};
pub use method::MethodId;
