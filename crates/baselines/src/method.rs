//! Method identifiers and their scheduling/communication properties.

use embrace_simnet::CommOrder;

/// Every end-to-end training method of the paper's evaluation, plus the
/// ablation variant (EmbRace with hybrid communication but without 2D
/// scheduling, Fig. 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodId {
    /// EmbRace: hybrid communication + 2D communication scheduling.
    EmbRace,
    /// EmbRace without scheduling (ablation): hybrid communication, FIFO
    /// queue, no vertical split, no FP hoisting.
    EmbRaceNoSched,
    /// EmbRace with Block-level Horizontal Scheduling only (Fig. 6b):
    /// priority queue + hoisted embedding FP, but whole-gradient embedding
    /// communication (no vertical split).
    EmbRaceHorizontal,
    /// Horovod with sparse-as-dense AllReduce (Horovod 0.21 PyTorch default).
    HorovodAllReduce,
    /// Horovod with sparse AllGather (Horovod ≥ 0.22 PyTorch default).
    HorovodAllGather,
    /// BytePS: dense PS + ByteScheduler partitioning/priority scheduling.
    BytePs,
    /// Parallax: sparse partitioned PS + dense AllReduce.
    Parallax,
}

impl MethodId {
    /// The four baselines the paper compares in Figs 7/8.
    pub const BASELINES: [MethodId; 4] = [
        MethodId::BytePs,
        MethodId::HorovodAllReduce,
        MethodId::HorovodAllGather,
        MethodId::Parallax,
    ];

    /// All end-to-end methods (EmbRace first).
    pub const ALL: [MethodId; 5] = [
        MethodId::EmbRace,
        MethodId::BytePs,
        MethodId::HorovodAllReduce,
        MethodId::HorovodAllGather,
        MethodId::Parallax,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            MethodId::EmbRace => "EmbRace",
            MethodId::EmbRaceNoSched => "EmbRace w/o Sched",
            MethodId::EmbRaceHorizontal => "EmbRace Horizontal",
            MethodId::HorovodAllReduce => "Horovod AllReduce",
            MethodId::HorovodAllGather => "Horovod AllGather",
            MethodId::BytePs => "BytePS",
            MethodId::Parallax => "Parallax",
        }
    }

    /// How the method's communication queue is ordered. Only EmbRace and
    /// BytePS (via ByteScheduler) schedule with priorities.
    pub fn comm_order(&self) -> CommOrder {
        match self {
            MethodId::EmbRace | MethodId::EmbRaceHorizontal | MethodId::BytePs => {
                CommOrder::Priority
            }
            _ => CommOrder::Fifo,
        }
    }

    /// Whether embedding gradients travel in dense format (full table).
    pub fn sparse_as_dense(&self) -> bool {
        matches!(self, MethodId::HorovodAllReduce | MethodId::BytePs)
    }

    /// Whether the method uses a parameter server.
    pub fn uses_ps(&self) -> bool {
        matches!(self, MethodId::BytePs | MethodId::Parallax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = MethodId::ALL.iter().map(|m| m.name()).collect();
        names.push(MethodId::EmbRaceNoSched.name());
        names.push(MethodId::EmbRaceHorizontal.name());
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn properties_match_paper() {
        assert!(MethodId::HorovodAllReduce.sparse_as_dense());
        assert!(MethodId::BytePs.sparse_as_dense(), "BytePS treats sparse as dense (§5.2.3)");
        assert!(!MethodId::HorovodAllGather.sparse_as_dense());
        assert!(!MethodId::Parallax.sparse_as_dense());
        assert!(MethodId::Parallax.uses_ps());
        assert_eq!(MethodId::EmbRace.comm_order(), CommOrder::Priority);
        assert_eq!(MethodId::HorovodAllGather.comm_order(), CommOrder::Fifo);
        assert_eq!(MethodId::EmbRaceNoSched.comm_order(), CommOrder::Fifo);
    }
}
