//! Criterion benchmarks of the analytic cost model: the Fig. 4 sparsity
//! sweep and the AlltoAllv rotation schedule on large payload matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use embrace_simnet::{Cluster, CostModel};

fn bench_fig4_sweep(c: &mut Criterion) {
    let cm = CostModel::new(Cluster::fig4b());
    let m = 252.5 * 1024.0 * 1024.0;
    c.bench_function("fig4_sparsity_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                let alpha = 1.0 - i as f64 / 100.0;
                acc += 2.0 * cm.alltoall(alpha * m)
                    + cm.ring_allreduce(m)
                    + cm.allgather(alpha * m)
                    + cm.ps(alpha * m, 4)
                    + cm.omnireduce(m, alpha);
            }
            acc
        });
    });
}

fn bench_alltoallv(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoallv_rotation");
    for world in [4usize, 8, 16] {
        let cm = CostModel::new(Cluster::rtx3090(world));
        let bytes = vec![vec![1e6; world]; world];
        g.bench_with_input(BenchmarkId::from_parameter(world), &bytes, |b, bytes| {
            b.iter(|| cm.alltoallv(bytes));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig4_sweep, bench_alltoallv);
criterion_main!(benches);
