//! Criterion microbenchmarks of the functional (thread-mesh) collectives:
//! ring AllReduce, sparse AllGather and AlltoAll at several world sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use embrace_collectives::ops::{allgather_sparse, alltoall_dense, ring_allreduce};
use embrace_collectives::run_group;
use embrace_tensor::{DenseTensor, RowSparse};

fn bench_ring_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_allreduce");
    let len = 64 * 1024;
    for world in [2usize, 4, 8] {
        g.throughput(Throughput::Bytes((len * 4 * world) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(world), &world, |b, &world| {
            b.iter(|| {
                run_group(world, |rank, ep| {
                    let mut buf = vec![rank as f32; len];
                    ring_allreduce(ep, &mut buf);
                    buf[0]
                })
            });
        });
    }
    g.finish();
}

fn bench_allgather_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("allgather_sparse");
    for world in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(world), &world, |b, &world| {
            b.iter(|| {
                run_group(world, |rank, ep| {
                    let local = RowSparse::new(
                        vec![rank as u32, (rank + 1) as u32 % 16, 7],
                        DenseTensor::full(3, 256, rank as f32),
                    );
                    allgather_sparse(ep, local).len()
                })
            });
        });
    }
    g.finish();
}

fn bench_alltoall_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoall_dense");
    for world in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(world), &world, |b, &world| {
            b.iter(|| {
                run_group(world, |rank, ep| {
                    let parts: Vec<DenseTensor> =
                        (0..world).map(|j| DenseTensor::full(16, 64, (rank * j) as f32)).collect();
                    alltoall_dense(ep, parts).len()
                })
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ring_allreduce, bench_allgather_sparse, bench_alltoall_dense);
criterion_main!(benches);
