//! Criterion benchmarks of the end-to-end step simulator (the engine
//! behind Figs 7-10): how fast one method×model×cluster configuration
//! simulates, and a whole Fig. 7 subplot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use embrace_baselines::MethodId;
use embrace_models::ModelId;
use embrace_simnet::Cluster;
use embrace_trainer::{simulate, SimConfig};

fn bench_single_config(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_one");
    for method in [MethodId::EmbRace, MethodId::HorovodAllGather, MethodId::BytePs] {
        g.bench_with_input(BenchmarkId::from_parameter(method.name()), &method, |b, &method| {
            b.iter(|| simulate(&SimConfig::new(method, ModelId::Gnmt8, Cluster::rtx3090(16))));
        });
    }
    g.finish();
}

fn bench_fig7_subplot(c: &mut Criterion) {
    c.bench_function("fig7_subplot_gnmt_rtx3090", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for method in MethodId::ALL {
                for world in [4, 8, 16] {
                    total +=
                        simulate(&SimConfig::new(method, ModelId::Gnmt8, Cluster::rtx3090(world)))
                            .tokens_per_sec;
                }
            }
            total
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_config, bench_fig7_subplot
}
criterion_main!(benches);
