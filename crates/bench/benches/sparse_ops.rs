//! Criterion benchmarks of the sparse-gradient machinery on the paper's
//! real gradient shapes: coalescing (Table 3, line 2 of Algorithm 1) and
//! the full vertical split (Algorithm 1) at each model's batch size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use embrace_core::vertical_split;
use embrace_models::{BatchGen, ModelSpec};
use embrace_simnet::GpuKind;
use embrace_tensor::{coalesce, DenseTensor, RowSparse};

fn model_grad(spec: &ModelSpec) -> (RowSparse, Vec<u32>, Vec<u32>) {
    let mut gen = BatchGen::from_spec(spec, GpuKind::Rtx3090, 0, 42);
    let tokens = gen.next_batch();
    let next = gen.next_batch();
    let values = DenseTensor::full(tokens.len(), spec.dim(), 1.0);
    (RowSparse::new(tokens.clone(), values), tokens, next)
}

fn bench_coalesce(c: &mut Criterion) {
    let mut g = c.benchmark_group("coalesce");
    for spec in ModelSpec::all() {
        let (grad, _, _) = model_grad(&spec);
        g.throughput(Throughput::Bytes(grad.nbytes() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(spec.name), &grad, |b, grad| {
            b.iter(|| coalesce(grad));
        });
    }
    g.finish();
}

fn bench_vertical_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("vertical_split");
    for spec in ModelSpec::all() {
        let (grad, cur, next) = model_grad(&spec);
        g.bench_with_input(
            BenchmarkId::from_parameter(spec.name),
            &(grad, cur, next),
            |b, (grad, cur, next)| {
                b.iter(|| vertical_split(grad, cur, next));
            },
        );
    }
    g.finish();
}

fn bench_to_dense_roundtrip(c: &mut Criterion) {
    // Densification cost — what Horovod-AllReduce pays per sparse tensor.
    let mut g = c.benchmark_group("densify");
    let spec = ModelSpec::get(embrace_models::ModelId::BertBase);
    let (grad, _, _) = model_grad(&spec);
    g.bench_function("bert_grad_to_dense", |b| {
        b.iter(|| grad.to_dense(spec.vocab()));
    });
    g.finish();
}

criterion_group!(benches, bench_coalesce, bench_vertical_split, bench_to_dense_roundtrip);
criterion_main!(benches);
