//! The `verify-plan` subcommand of `embrace_sim`: run the static
//! comm-plan verifier over all four paper model specs, demonstrate the
//! seeded-mutation detectors, model-check the six collectives (including
//! the sparse-native split allreduce) plus the elastic re-form handshake
//! for worlds 2–4, and prove the graph analyzer agrees with both
//! enumeration oracles.
//!
//! `--large [--quick] [--out FILE]` switches to the wait-for-graph sweep:
//! every plan family at worlds 64–1024 (64/256 with `--quick`), proving
//! deadlock-freedom and byte conservation structurally — in both the
//! unbounded (channel) mode and the credit mode that models the
//! one-sided slot transport's `SLOT_CAPACITY`-deep pools — and printing
//! a per-plan timing table (written to `FILE` for CI artifacts).
//!
//! Exits non-zero (returns `Err`) if any valid plan produces a
//! diagnostic, any seeded mutation goes undetected, any verdict pair
//! disagrees, or the model checker finds a deadlock or a
//! non-deterministic interleaving.

use embrace_analyzer::graph::{
    analyze_p2p, analyze_p2p_credits, byte_conservation, enumerate_p2p, enumerate_p2p_credits,
    graph_deadlocks,
};
use embrace_analyzer::model_check::{check, CheckConfig, Collective};
use embrace_analyzer::plan::{
    allgather_plan, alltoall_plan, barrier_plan, broadcast_plan, chunked_alltoall_plan,
    chunked_ring_allreduce_plan, grad_alltoall_bytes, horizontal_schedule_plan,
    lookup_alltoall_bytes, lookup_demo_plan, lookup_plan, reform_plan, ring_allreduce_plan,
    sparse_allreduce_demo_plan, sparse_allreduce_plan, P2pPlan,
};
use embrace_analyzer::verify::{mutate_p2p, mutate_partition, mutate_schedule};
use embrace_analyzer::{
    verify_horizontal, verify_p2p, verify_partition, verify_schedule, Diagnostic, DiagnosticKind,
    PlanMutation,
};
use embrace_collectives::SLOT_CAPACITY;
use embrace_core::horizontal::Priorities;
use embrace_models::{ModelId, ModelSpec};
use embrace_simnet::GpuKind;
use embrace_tensor::{column_partition, row_partition, TOKEN_BYTES};
use std::time::Instant;

/// Worlds the plan verifier sweeps.
const WORLDS: [usize; 3] = [4, 8, 16];
/// Worlds the model checker explores exhaustively.
const CHECK_WORLDS: [usize; 3] = [2, 3, 4];
/// Worlds of the wait-for-graph sweep (`--large`).
const LARGE_WORLDS: [usize; 5] = [64, 128, 256, 512, 1024];
/// The `--quick` subset used by CI.
const QUICK_WORLDS: [usize; 2] = [64, 256];

fn expect_clean(what: &str, diags: &[Diagnostic]) -> Result<(), String> {
    if diags.is_empty() {
        Ok(())
    } else {
        let lines: Vec<String> = diags.iter().map(|d| format!("  {d}")).collect();
        Err(format!("{what}: {} diagnostic(s)\n{}", diags.len(), lines.join("\n")))
    }
}

/// Statically verify every plan the stack would execute for `spec`.
fn verify_model(spec: &ModelSpec, world: usize) -> Result<usize, String> {
    let mut checked = 0usize;
    let graph = spec.graph(GpuKind::Rtx3090);
    let prios = Priorities::assign(&graph);

    // 2D-schedule invariants: SPMD consistency and §4.2.1 monotonicity.
    let schedule = horizontal_schedule_plan(&prios, world);
    expect_clean(&format!("{} w={world} schedule", spec.name), &verify_schedule(&schedule))?;
    expect_clean(
        &format!("{} horizontal order", spec.name),
        &verify_horizontal(&prios.schedule_ops()),
    )?;
    checked += 2;

    // Exact-once sharding of every embedding table, both axes.
    for emb in &spec.embeddings {
        let cols: Vec<(usize, usize)> =
            column_partition(emb.dim, world).iter().map(|c| (c.start, c.end)).collect();
        expect_clean(
            &format!("{} {} column partition", spec.name, emb.name),
            &verify_partition(&cols, emb.dim),
        )?;
        let rows: Vec<(usize, usize)> =
            row_partition(emb.vocab, world).iter().map(|r| (r.start, r.end)).collect();
        expect_clean(
            &format!("{} {} row partition", spec.name, emb.name),
            &verify_partition(&rows, emb.vocab),
        )?;
        checked += 2;
    }

    // Point-to-point plans for the collectives the pipeline issues.
    let rows = spec.rows_per_batch(GpuKind::Rtx3090);
    let batch_rows = vec![rows; world];
    for emb in &spec.embeddings {
        let lookup =
            alltoall_plan("alltoallv_sparse", &lookup_alltoall_bytes(&batch_rows, emb.dim));
        expect_clean(&format!("{} {} lookup alltoall", spec.name, emb.name), &verify_p2p(&lookup))?;
        let grads = alltoall_plan("alltoallv_sparse", &grad_alltoall_bytes(&batch_rows, emb.dim));
        expect_clean(&format!("{} {} grad alltoall", spec.name, emb.name), &verify_p2p(&grads))?;
        // Sparse-native split allreduce over the same gradient shape:
        // deterministic per-rank index draws at the batch's row count.
        let locals: Vec<Vec<u32>> = (0..world)
            .map(|r| (0..rows).map(|i| ((r * 7919 + i * 31) % emb.vocab) as u32).collect())
            .collect();
        let ssar = sparse_allreduce_plan(world, &locals, emb.dim, emb.vocab, 0.5);
        expect_clean(&format!("{} {} sparse allreduce", spec.name, emb.name), &verify_p2p(&ssar))?;
        // Serving-path lookup RPC over the same table: deterministic
        // skewed request counts (rank/owner-dependent, never uniform).
        let reqs: Vec<Vec<usize>> = (0..world)
            .map(|i| (0..world).map(|j| (i * 13 + j * 7 + rows) % (rows + 1)).collect())
            .collect();
        let serve = lookup_plan(&reqs, emb.dim);
        expect_clean(&format!("{} {} serving lookup", spec.name, emb.name), &verify_p2p(&serve))?;
        checked += 4;
    }
    let dense = ring_allreduce_plan(world, spec.block_params);
    expect_clean(&format!("{} dense ring", spec.name), &verify_p2p(&dense))?;
    // Chunked variants of the bulk plans (PR 5 preemptible execution):
    // same byte totals, deadlock-free per-unit programs.
    let seg = spec.block_params.div_ceil(world * 4).max(1);
    let chunked = chunked_ring_allreduce_plan(world, spec.block_params, seg);
    expect_clean(&format!("{} dense ring (chunked)", spec.name), &verify_p2p(&chunked))?;
    if let Some(emb) = spec.embeddings.first() {
        let grads = chunked_alltoall_plan(
            "alltoallv_sparse_chunked",
            &grad_alltoall_bytes(&batch_rows, emb.dim),
        );
        expect_clean(&format!("{} grad alltoall (chunked)", spec.name), &verify_p2p(&grads))?;
        checked += 1;
    }
    checked += 1;
    let tokens = allgather_plan(world, &vec![(rows * TOKEN_BYTES) as u64; world]);
    expect_clean(&format!("{} token gather", spec.name), &verify_p2p(&tokens))?;
    expect_clean(&format!("w={world} barrier"), &verify_p2p(&barrier_plan(world)))?;
    expect_clean(&format!("w={world} tag broadcast"), &verify_p2p(&broadcast_plan(world, 0, 64)))?;
    checked += 4;
    Ok(checked)
}

/// Seed the four canonical mutations and require each to be caught with
/// its distinct diagnostic kind.
fn demo_mutations() -> Result<(), String> {
    let world = 4;
    let mut caught: Vec<(&str, DiagnosticKind)> = Vec::new();

    let mut p = allgather_plan(world, &[8, 16, 24, 32]);
    assert!(mutate_p2p(&mut p, PlanMutation::DropSend { rank: 1, index: 2 }));
    let d = verify_p2p(&p);
    let kind = d
        .iter()
        .find(|d| d.kind == DiagnosticKind::RecvWithoutSend)
        .ok_or("dropped send not caught")?
        .kind;
    caught.push(("drop-send", kind));

    let mut p = ring_allreduce_plan(world, 21);
    assert!(mutate_p2p(&mut p, PlanMutation::ShrinkBytes { rank: 2, index: 1 }));
    let d = verify_p2p(&p);
    let kind = d
        .iter()
        .find(|d| d.kind == DiagnosticKind::ByteMismatch)
        .ok_or("shrunk bytes not caught")?
        .kind;
    caught.push(("shrink-bytes", kind));

    let spec = ModelSpec::get(ModelId::Transformer);
    let prios = Priorities::assign(&spec.graph(GpuKind::Rtx3090));
    let mut s = horizontal_schedule_plan(&prios, world);
    assert!(mutate_schedule(&mut s, PlanMutation::SkewPriority { rank: 3, index: 1, delta: 7 }));
    let d = verify_schedule(&s);
    let kind = d
        .iter()
        .find(|d| d.kind == DiagnosticKind::PrioritySkew)
        .ok_or("skewed priority not caught")?
        .kind;
    caught.push(("skew-priority", kind));

    let mut shards: Vec<(usize, usize)> =
        row_partition(1000, world).iter().map(|r| (r.start, r.end)).collect();
    assert!(mutate_partition(&mut shards, PlanMutation::DropPartitionRow { rank: 2 }));
    let d = verify_partition(&shards, 1000);
    let kind = d
        .iter()
        .find(|d| d.kind == DiagnosticKind::PartitionGap)
        .ok_or("dropped partition row not caught")?
        .kind;
    caught.push(("drop-partition-row", kind));

    println!("  seeded mutations caught:");
    for (name, kind) in &caught {
        println!("    {name:<20} -> {kind}");
    }
    let distinct: std::collections::BTreeSet<String> =
        caught.iter().map(|(_, k)| k.to_string()).collect();
    if distinct.len() != caught.len() {
        return Err(format!("mutations must map to distinct diagnostics, got {distinct:?}"));
    }
    Ok(())
}

/// Exhaustively model-check the six collectives plus the four chunked /
/// preempted programs for worlds 2–4, plus abort termination with a
/// crashed rank 0. Every fault-free run must also stay within
/// `SLOT_CAPACITY` in-flight messages per link over all reachable
/// states, proving the one-sided transport's rendezvous fallback is
/// unreachable in steady state.
fn model_check_all() -> Result<(), String> {
    let mut deepest = 0usize;
    for world in CHECK_WORLDS {
        for c in Collective::all(world).into_iter().chain(Collective::chunked(world)) {
            let r = check(&CheckConfig { world, collective: c, crash: None });
            println!("  {}", r.summary());
            if !r.deterministic_success() {
                return Err(format!("model check failed: {}", r.summary()));
            }
            if r.max_link_in_flight > SLOT_CAPACITY {
                return Err(format!(
                    "link depth {} exceeds SLOT_CAPACITY {SLOT_CAPACITY}: {}",
                    r.max_link_in_flight,
                    r.summary()
                ));
            }
            deepest = deepest.max(r.max_link_in_flight);
            let f = check(&CheckConfig { world, collective: c, crash: Some(0) });
            if !f.deadlock_free() {
                return Err(format!("abort does not terminate: {}", f.summary()));
            }
        }
    }
    println!(
        "  max in-flight per link over all reachable states: {deepest} <= SLOT_CAPACITY \
         {SLOT_CAPACITY} (slot rendezvous fallback unreachable)"
    );
    Ok(())
}

/// Model-check the elastic shrink re-form handshake for worlds 2–4:
/// fault-free (must commit full membership deterministically), every
/// dead-from-the-start rank (must commit exactly the survivors), and
/// every mid-handshake crash victim — including the coordinator, whose
/// death exercises failover — must stay deadlock-free with all survivors
/// agreeing on one membership.
fn model_check_reform() -> Result<(), String> {
    for world in CHECK_WORLDS {
        let r = check(&CheckConfig { world, collective: Collective::Reform, crash: None });
        println!("  {}", r.summary());
        if !r.deterministic_success() {
            return Err(format!("re-form model check failed: {}", r.summary()));
        }
        for crash in 0..world {
            let f =
                check(&CheckConfig { world, collective: Collective::Reform, crash: Some(crash) });
            if !f.deadlock_free() || f.outcomes.len() != 1 {
                return Err(format!("re-form with dead rank not safe: {}", f.summary()));
            }
        }
        for c in Collective::reform(world) {
            let m = check(&CheckConfig { world, collective: c, crash: None });
            if !m.deadlock_free() {
                return Err(format!("re-form handshake can deadlock: {}", m.summary()));
            }
            if matches!(c, Collective::ReformMidway { .. }) {
                println!("  {}", m.summary());
            }
        }
    }
    Ok(())
}

/// Every point-to-point plan family the stack executes, at sizes scaled
/// to `world` (payloads stay modest so the sweep measures analysis, not
/// plan construction).
fn plan_families(world: usize) -> Vec<P2pPlan> {
    let rows = vec![4 + world / 64; world];
    let dim = 4 * world;
    vec![
        barrier_plan(world),
        broadcast_plan(world, 0, 64),
        ring_allreduce_plan(world, 4 * world + 1),
        chunked_ring_allreduce_plan(world, 2 * world + 1, 2),
        allgather_plan(world, &vec![16; world]),
        alltoall_plan("alltoall_lookup", &lookup_alltoall_bytes(&rows, dim)),
        alltoall_plan("alltoallv_grad", &grad_alltoall_bytes(&rows, dim)),
        chunked_alltoall_plan("alltoall_chunked", &lookup_alltoall_bytes(&rows, dim)),
        sparse_allreduce_demo_plan(world),
        lookup_demo_plan(world),
        reform_plan(world),
    ]
}

/// The graph analyzer must agree with both enumeration oracles: the
/// exhaustive model checker on every collective it can model (worlds
/// 2–4), and the explicit-state plan executor on every plan family and
/// every seeded send-dropping mutation.
fn graph_agreement() -> Result<(), String> {
    for world in CHECK_WORLDS {
        let modeled: Vec<(Collective, P2pPlan)> = vec![
            (Collective::Barrier, barrier_plan(world)),
            (Collective::Broadcast { root: 0 }, broadcast_plan(world, 0, 12)),
            (
                Collective::RingAllreduce { elems: 2 * world + 1 },
                ring_allreduce_plan(world, 2 * world + 1),
            ),
            (
                Collective::ChunkedRingAllreduce { elems: 2 * world + 1, seg: 2 },
                chunked_ring_allreduce_plan(world, 2 * world + 1, 2),
            ),
            (Collective::SparseAllreduce, sparse_allreduce_demo_plan(world)),
            (Collective::Reform, reform_plan(world)),
        ];
        let modeled_count = modeled.len();
        for (collective, plan) in modeled {
            let report = check(&CheckConfig { world, collective, crash: None });
            let graph_dead = graph_deadlocks(&analyze_p2p(&plan));
            if report.deadlock_free() == graph_dead {
                return Err(format!(
                    "w={world} {}: graph verdict disagrees with model checker ({})",
                    plan.kind,
                    report.summary()
                ));
            }
        }
        let mut mutations = 0usize;
        for plan0 in plan_families(world) {
            let diags = analyze_p2p(&plan0);
            let exec = enumerate_p2p(&plan0);
            if !diags.is_empty() || !exec.deadlock_free() {
                return Err(format!("w={world} {}: valid plan not clean: {diags:?}", plan0.kind));
            }
            // The same plan must stay deadlock-free when every link is a
            // SLOT_CAPACITY-deep pool whose put blocks on credit
            // exhaustion — the worst case for the one-sided transport
            // (the real pool falls back to counted rendezvous instead).
            let cdiags = analyze_p2p_credits(&plan0, SLOT_CAPACITY);
            let cexec = enumerate_p2p_credits(&plan0, SLOT_CAPACITY);
            if graph_deadlocks(&cdiags) || !cexec.deadlock_free() {
                return Err(format!(
                    "w={world} {}: plan deadlocks under {SLOT_CAPACITY}-credit links \
                     (graph={}, exec={})",
                    plan0.kind,
                    graph_deadlocks(&cdiags),
                    !cexec.deadlock_free()
                ));
            }
            for rank in 0..world {
                for (label, m) in [
                    ("drop-send", PlanMutation::DropSend { rank, index: 0 }),
                    ("retarget-send", PlanMutation::RetargetSend { rank, index: 0 }),
                ] {
                    let mut plan = plan0.clone();
                    if !mutate_p2p(&mut plan, m) {
                        continue;
                    }
                    let diags = analyze_p2p(&plan);
                    let exec = enumerate_p2p(&plan);
                    if graph_deadlocks(&diags) == exec.deadlock_free() {
                        return Err(format!(
                            "w={world} {} {label} rank {rank}: graph says deadlock={}, \
                             enumeration says deadlock={}",
                            plan.kind,
                            graph_deadlocks(&diags),
                            !exec.deadlock_free()
                        ));
                    }
                    if diags.is_empty() {
                        return Err(format!(
                            "w={world} {} {label} rank {rank}: mutation went undetected",
                            plan.kind
                        ));
                    }
                    mutations += 1;
                }
            }
        }
        println!(
            "  w={world}: graph == model checker on {modeled_count} modeled plans, graph == \
             enumeration on {mutations} seeded mutations, every family clean under \
             {SLOT_CAPACITY}-credit links"
        );
    }
    Ok(())
}

/// The `--large` sweep: wait-for-graph analysis + explicit-state
/// execution of every plan family at large worlds, with a timing table.
fn large_sweep(quick: bool, out: Option<&str>) -> Result<(), String> {
    let worlds: &[usize] = if quick { &QUICK_WORLDS } else { &LARGE_WORLDS };
    let mut table = String::new();
    table.push_str(&format!(
        "{:<24} {:>6} {:>10} {:>12} {:>10} {:>10} {:>10}\n",
        "plan", "world", "ops", "bytes", "graph_ms", "credit_ms", "exec_ms"
    ));
    let t0 = Instant::now();
    for &world in worlds {
        for plan in plan_families(world) {
            let ops: usize = plan.ranks.iter().map(Vec::len).sum();
            let tg = Instant::now();
            let diags = analyze_p2p(&plan);
            let graph_ms = tg.elapsed().as_secs_f64() * 1e3;
            if !diags.is_empty() {
                let lines: Vec<String> = diags.iter().take(5).map(|d| format!("  {d}")).collect();
                return Err(format!(
                    "{} w={world}: {} diagnostic(s)\n{}",
                    plan.kind,
                    diags.len(),
                    lines.join("\n")
                ));
            }
            let bytes = byte_conservation(&plan).map_err(|d| format!("{d}"))?;
            // Credit mode: the same wait-for graph plus the slot
            // transport's send#k -> recv#(k - SLOT_CAPACITY) back-edges
            // must stay acyclic, proving a strictly blocking
            // SLOT_CAPACITY-deep pool cannot deadlock these plans.
            let tc = Instant::now();
            let cdiags = analyze_p2p_credits(&plan, SLOT_CAPACITY);
            let credit_ms = tc.elapsed().as_secs_f64() * 1e3;
            if graph_deadlocks(&cdiags) {
                return Err(format!(
                    "{} w={world}: deadlocks under {SLOT_CAPACITY}-credit links",
                    plan.kind
                ));
            }
            let te = Instant::now();
            let exec = enumerate_p2p(&plan);
            let exec_ms = te.elapsed().as_secs_f64() * 1e3;
            if !exec.deadlock_free() {
                return Err(format!(
                    "{} w={world}: enumeration stuck at {:?} though the graph is acyclic",
                    plan.kind, exec.stuck
                ));
            }
            table.push_str(&format!(
                "{:<24} {:>6} {:>10} {:>12} {:>10.1} {:>10.1} {:>10.1}\n",
                plan.kind, world, ops, bytes, graph_ms, credit_ms, exec_ms
            ));
        }
    }
    let total_s = t0.elapsed().as_secs_f64();
    print!("{table}");
    println!(
        "verify-plan --large: {} plan families x worlds {worlds:?} deadlock-free (unbounded and \
         {SLOT_CAPACITY}-credit links) and byte-conserving in {total_s:.1} s",
        plan_families(2).len()
    );
    if let Some(path) = out {
        let mut contents = table;
        contents.push_str(&format!("total_s {total_s:.3}\n"));
        std::fs::write(path, contents).map_err(|e| format!("writing {path}: {e}"))?;
        println!("timing table written to {path}");
    }
    Ok(())
}

/// Run the whole `verify-plan` pass; `Err` means a check failed.
/// Flags: `--large` (graph sweep at worlds 64–1024), `--quick` (worlds
/// 64/256 only), `--out FILE` (write the `--large` timing table).
pub fn run(args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut large = false;
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--large" => large = true,
            "--quick" => quick = true,
            "--out" => {
                out = Some(args.next().ok_or("--out needs a file path")?);
            }
            other => return Err(format!("unknown verify-plan flag: {other}")),
        }
    }
    if large {
        return large_sweep(quick, out.as_deref());
    }
    println!("comm-plan verifier: {} models x worlds {WORLDS:?}", ModelId::ALL.len());
    let mut total = 0usize;
    for id in ModelId::ALL {
        let spec = ModelSpec::get(id);
        for world in WORLDS {
            total += verify_model(&spec, world)?;
        }
        println!("  {:<12} plans clean", spec.name);
    }
    println!("  {total} plans verified, 0 diagnostics");
    demo_mutations()?;
    println!(
        "model checker: worlds {CHECK_WORLDS:?}, 6 collectives + 4 chunked, fault-free + crash(0)"
    );
    model_check_all()?;
    println!("model checker: elastic re-form handshake, fault-free + dead rank + midway crash");
    model_check_reform()?;
    println!("wait-for graph: agreement with the model checker and the plan executor");
    graph_agreement()?;
    println!("verify-plan: all checks passed");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_plan_pass_succeeds() {
        run(std::iter::empty()).expect("verify-plan must pass on the clean tree");
    }

    #[test]
    fn large_sweep_quick_succeeds() {
        large_sweep(true, None).expect("quick graph sweep must pass on the clean tree");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        assert!(run(["--bogus".to_string()].into_iter()).is_err());
    }
}
