//! `embrace_sim scenarios` — the elastic-training capacity-planning
//! matrix.
//!
//! Sweeps {fault profile × recovery policy} through the real elastic
//! trainer ([`embrace_trainer::run_elastic`]: live threads, epoch-tagged
//! transport, shrink re-form, checkpoint restarts) and reports per cell:
//!
//! * **goodput** — completed steps per wall-clock second, the number a
//!   capacity planner actually buys;
//! * **p99 step time** — tail step latency (stragglers widen it without
//!   tripping any fault path);
//! * **recovery cost** — wall-clock spent outside training steps
//!   (re-form handshakes, state redistribution, checkpoint replays);
//! * the final world size and how many shrinks / restarts it took.
//!
//! Two companion sections turn the measurements into planning guidance:
//! a [`RecoveryModel`] calibrated from the fault-free row prices the
//! shrink-vs-restart crossover analytically, and a two-tenant event-sim
//! comparison shows what priority link sharing does to a latency-critical
//! job co-located with a batch job.
//!
//! `--quick` shrinks the workload for CI smoke runs; `--out <file>`
//! additionally writes the full report to disk (the CI job persists it as
//! a build artifact).

use embrace_collectives::FaultPlan;
use embrace_simnet::{CommOrder, Recovery, RecoveryModel, Res, Sim, Task};
use embrace_trainer::report::table;
use embrace_trainer::{run_elastic, ConvergenceConfig, ElasticConfig, RecoveryPolicy};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The seeded fault profiles of the matrix: a clean baseline, crashes at
/// both ends of the run, a persistent (sub-deadline) straggler, and a
/// transient flaky link whose drops surface as receive timeouts.
fn profiles(world: usize, steps: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("fault-free", FaultPlan::new(0)),
        ("crash-early", FaultPlan::new(11).crash_rank_at_step(1, 1)),
        ("crash-midway", FaultPlan::new(12).crash_rank_at_step(world - 1, steps / 2)),
        ("straggler-3ms", FaultPlan::new(13).straggle_rank(1, Duration::from_millis(3))),
        ("flaky-link", FaultPlan::new(14).flaky_link(0, 1, 30, 32)),
    ]
}

/// One measured cell of the matrix.
struct Cell {
    profile: &'static str,
    policy: &'static str,
    row: Vec<String>,
    /// Median step seconds, used to calibrate the recovery model.
    median_step: Option<f64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn run_cell(
    profile: &'static str,
    plan: FaultPlan,
    policy_name: &'static str,
    policy: RecoveryPolicy,
    quick: bool,
) -> Cell {
    let mut cfg = ElasticConfig::quick(plan, policy);
    if !quick {
        cfg.train = ConvergenceConfig {
            world: 5,
            vocab: 60,
            dim: 8,
            tokens_per_batch: 16,
            steps: 16,
            ..Default::default()
        };
        cfg.checkpoint_interval = 4;
    }
    let start = Instant::now();
    let result = run_elastic(&cfg);
    let elapsed = start.elapsed().as_secs_f64();
    match result {
        Ok(report) => {
            let mut executed: Vec<f64> =
                report.step_secs.iter().copied().filter(|&s| s > 0.0).collect();
            executed.sort_by(|a, b| a.total_cmp(b));
            let step_total: f64 = executed.iter().sum();
            let goodput = report.losses.len() as f64 / elapsed;
            let p99 = percentile(&executed, 0.99);
            let median = percentile(&executed, 0.50);
            let recovery = (elapsed - step_total).max(0.0);
            Cell {
                profile,
                policy: policy_name,
                row: vec![
                    profile.into(),
                    policy_name.into(),
                    format!("{goodput:.1}"),
                    format!("{:.2}", p99 * 1e3),
                    format!("{:.0}", recovery * 1e3),
                    format!("{}->{}", cfg.train.world, report.final_world),
                    report.shrinks.to_string(),
                    report.restarts.to_string(),
                    "ok".into(),
                ],
                median_step: (profile == "fault-free").then_some(median),
            }
        }
        Err(e) => Cell {
            profile,
            policy: policy_name,
            row: vec![
                profile.into(),
                policy_name.into(),
                "-".into(),
                "-".into(),
                format!("{:.0}", elapsed * 1e3),
                format!("{}->?", cfg.train.world),
                "-".into(),
                "-".into(),
                match e {
                    embrace_trainer::ElasticRunError::RestartsExhausted { .. } => {
                        // A fault that outlives the restart budget (a
                        // crash the plan keeps re-injecting, a window
                        // wider than the budget can spend). Flaky windows
                        // no longer land here: they are keyed to the
                        // plan-shared clock, so a relaunch resumes the
                        // fault timeline instead of re-arming the window.
                        "failed: restarts exhausted".into()
                    }
                    other => format!("failed: {other}"),
                },
            ],
            median_step: None,
        },
    }
}

/// Price the shrink-vs-restart decision with a model calibrated from the
/// measured fault-free step time.
fn capacity_section(median_step: f64, world: usize, interval: u64) -> (RecoveryModel, String) {
    let t = median_step.max(1e-6);
    let model = RecoveryModel {
        step_time: t,
        checkpoint_write: 5.0 * t,
        checkpoint_interval: interval,
        // Restart pays scheduler + reload + communicator rebuild; shrink
        // only the re-form handshake and shard redistribution.
        restart_overhead: 200.0 * t,
        shrink_overhead: 20.0 * t,
        // Losing one of `world` ranks stretches every remaining step.
        shrink_slowdown: world as f64 / (world as f64 - 1.0),
    };
    let crossover = (model.restart_overhead + interval as f64 / 2.0 * t - model.shrink_overhead)
        / (t * (model.shrink_slowdown - 1.0));
    let mut rows = Vec::new();
    for &(since, remaining) in
        &[(0u64, 10u64), (0, 1000), (interval / 2, 100), (interval / 2, 2000)]
    {
        let restart = model.checkpoint_restart_cost(since, remaining);
        let shrink = model.group_shrink_cost(remaining);
        let cheaper = match model.cheaper(since, remaining) {
            Recovery::GroupShrink => "shrink",
            Recovery::CheckpointRestart => "restart",
        };
        rows.push(vec![
            since.to_string(),
            remaining.to_string(),
            format!("{:.1}", restart / t),
            format!("{:.1}", shrink / t),
            cheaper.into(),
        ]);
    }
    let mut s = String::new();
    let _ = writeln!(
        s,
        "calibration: step {:.2} ms, restart {:.0} steps, shrink {:.0} steps, slowdown {:.2}x",
        t * 1e3,
        model.restart_overhead / t,
        model.shrink_overhead / t,
        model.shrink_slowdown
    );
    s.push_str(&table(
        &["since-ckpt", "remaining", "restart cost (steps)", "shrink cost (steps)", "cheaper"],
        &rows,
    ));
    let _ =
        writeln!(s, "crossover at mid-interval: shrink wins below ~{crossover:.0} remaining steps");
    (model, s)
}

/// Two tenants sharing the network: a latency-critical job (priority 0)
/// against a batch job (priority 5), under priority vs FIFO link
/// scheduling. Mirrors the simnet two-tenant regression test.
fn tenant_section() -> String {
    let build = |order: CommOrder| {
        let mut sim = Sim::new(order);
        sim.add(Task::comm("batch/0", 2.0, 5));
        sim.add(Task::comm("latency/0", 1.0, 0));
        sim.add(Task::comm("batch/1", 2.0, 5));
        sim.add(Task::comm("latency/1", 1.0, 0));
        sim.run()
    };
    let mut rows = Vec::new();
    for (name, order) in [("priority", CommOrder::Priority), ("fifo", CommOrder::Fifo)] {
        let r = build(order);
        let end_of = |tenant: &str| {
            r.trace
                .spans
                .iter()
                .filter(|s| s.name.starts_with(tenant))
                .map(|s| s.end)
                .fold(0.0f64, f64::max)
        };
        rows.push(vec![
            name.into(),
            format!("{:.1}", end_of("latency")),
            format!("{:.1}", end_of("batch")),
            format!("{:.1}", r.makespan),
            format!("{:.0}%", r.occupancy(Res::Comm) * 100.0),
        ]);
    }
    table(
        &["link order", "latency job done (s)", "batch job done (s)", "makespan (s)", "link busy"],
        &rows,
    )
}

/// Run the whole `scenarios` pass. `Err` only on argument / IO problems;
/// individual failed cells are reported inside the table.
pub fn run(args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut it = args;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(it.next().ok_or("--out requires a file path")?),
            other => return Err(format!("scenarios: unknown flag '{other}'")),
        }
    }
    let (world, steps, interval) = if quick { (4usize, 8u64, 4u64) } else { (5, 16, 4) };

    let mut cells: Vec<Cell> = Vec::new();
    for (pname, policy) in
        [("shrink", RecoveryPolicy::Shrink), ("restart", RecoveryPolicy::Restart)]
    {
        for (profile, plan) in profiles(world, steps) {
            cells.push(run_cell(profile, plan, pname, policy, quick));
        }
    }
    let median_step = cells
        .iter()
        .find_map(|c| c.median_step)
        .ok_or("fault-free cell failed: cannot calibrate the recovery model")?;

    // A third policy row: the measured model decides per failure.
    let (model, capacity) = capacity_section(median_step, world, interval);
    for (profile, plan) in profiles(world, steps) {
        if profile == "fault-free" {
            continue;
        }
        cells.push(run_cell(profile, plan, "model", RecoveryPolicy::ModelDriven(model), quick));
    }

    let mut doc = String::new();
    let _ = writeln!(
        doc,
        "elastic scenario matrix: world {world}, {steps} steps, checkpoint every {interval}{}",
        if quick { " (quick)" } else { "" }
    );
    let rows: Vec<Vec<String>> = cells.iter().map(|c| c.row.clone()).collect();
    doc.push_str(&table(
        &[
            "profile",
            "policy",
            "goodput steps/s",
            "p99 step ms",
            "recovery ms",
            "world",
            "shrinks",
            "restarts",
            "status",
        ],
        &rows,
    ));
    doc.push_str("\ncapacity planning (recovery model calibrated from the fault-free row):\n");
    doc.push_str(&capacity);
    doc.push_str("\nmulti-tenant link sharing (event sim):\n");
    doc.push_str(&tenant_section());

    print!("{doc}");
    if let Some(path) = out {
        std::fs::write(&path, &doc).map_err(|e| format!("scenarios: write {path}: {e}"))?;
        println!("wrote {path}");
    }

    // The matrix must demonstrate recovery, not just report it: every
    // crash profile has to finish under both simple policies, and the
    // flaky link must heal under restart too now that windows are keyed
    // to the plan-shared clock instead of per-mesh delivery counters.
    let bad: Vec<String> = cells
        .iter()
        .filter(|c| {
            (c.profile.starts_with("crash") || c.profile == "flaky-link") && c.row[8] != "ok"
        })
        .map(|c| format!("{}/{}", c.profile, c.policy))
        .collect();
    if bad.is_empty() {
        Ok(())
    } else {
        Err(format!("crash profiles did not recover: {}", bad.join(", ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_recovers_and_persists_report() {
        let dir = std::env::temp_dir().join("embrace_scenarios_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = dir.join("scenarios.txt");
        let args = ["--quick".to_string(), "--out".to_string(), out.display().to_string()];
        run(args.into_iter()).expect("quick matrix must pass");
        let report = std::fs::read_to_string(&out).expect("report written");
        assert!(report.contains("elastic scenario matrix"));
        assert!(report.contains("crash-midway"));
        assert!(report.contains("capacity planning"));
        assert!(report.contains("multi-tenant link sharing"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = run(["--bogus".to_string()].into_iter()).unwrap_err();
        assert!(err.contains("--bogus"));
    }

    #[test]
    fn percentile_clamps() {
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[1.0], 0.99), 1.0);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 0.50), 50.0);
    }
}
