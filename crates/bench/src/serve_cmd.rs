//! `embrace_sim serve` — Zipf request replay against the sharded
//! embedding service ([`embrace_ps::EmbeddingService`]).
//!
//! Full mode drives a million-row table (2²⁰ rows × dim 16) at worlds
//! 2/4/8 with concurrent trainer + inference traffic: every step each
//! rank issues one trainer lookup followed by a gradient push through the
//! shard-colocated Adagrad state, interleaved with inference-only lookups
//! drawn from an independent Zipf stream (the paper's Fig. 2 skew is what
//! makes the hot-row cache and request dedup earn their keep). Lookups
//! and pushes are collectives, so each sample is the end-to-end latency a
//! rank observes including peer synchronisation — the number an online
//! serving path actually pays.
//!
//! p50/p99 are exact order statistics over the raw per-call nanosecond
//! samples of every rank, never a histogram sketch. Results merge into
//! BENCH_collectives.json under the label `pr10-serving` as the `serving`
//! op family:
//!
//! * `serving_lookup_p50` / `serving_lookup_p99` — latency cells
//!   (`gb_per_s = 0`, `ns_per_iter` = the percentile; `bytes` = the dense
//!   response payload of one lookup batch), trainer and inference lookups
//!   pooled.
//! * `serving_push_p50` / `serving_push_p99` — the same for gradient
//!   pushes (partition → `alltoallv_sparse` → coalesce → Adagrad).
//! * `serving_cache_hit_rate` — the hot-row cache hit rate carried in
//!   `gb_per_s` (a pure ratio, so `bench_comm --compare` reports hit-rate
//!   ratios across runs); `iters` is the probe count (hits + misses).
//!
//! `--quick` shrinks the table and worlds to the CI smoke size; `--out`
//! redirects the trajectory file.

use crate::record::{self, Entry, Mode};
use embrace_collectives::run_group;
use embrace_models::data::ZipfSampler;
use embrace_obs::Metrics;
use embrace_ps::{
    EmbeddingService, OptimizerKind, PartitionPolicy, PsError, PushTransport, ServiceConfig,
};
use embrace_tensor::{DenseTensor, RowSparse, F32_BYTES};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The run label BENCH_collectives.json stores this sweep under.
pub const LABEL: &str = "pr10-serving";

/// The paper-calibrated skew of the replayed request stream (between the
/// LM and GNMT exponents in `embrace_models::spec`).
const ZIPF_S: f64 = 1.05;

/// One replay configuration.
struct Sizing {
    vocab: usize,
    dim: usize,
    worlds: Vec<usize>,
    steps: usize,
    /// Ids per lookup request (trainer and inference batches alike).
    batch: usize,
    /// Inference-only lookups interleaved after each trainer step.
    infer_per_step: usize,
    cache_rows: usize,
}

fn sizing(mode: Mode) -> Sizing {
    match mode {
        Mode::Full => Sizing {
            vocab: 1 << 20,
            dim: 16,
            worlds: vec![2, 4, 8],
            steps: 48,
            batch: 512,
            infer_per_step: 2,
            cache_rows: 2048,
        },
        Mode::Quick => Sizing {
            vocab: 1 << 16,
            dim: 8,
            worlds: vec![2, 4],
            steps: 6,
            batch: 128,
            infer_per_step: 1,
            cache_rows: 512,
        },
    }
}

/// Merged measurements of one world size.
struct WorldReport {
    world: usize,
    /// Sorted per-call lookup latencies across all ranks (trainer +
    /// inference pooled).
    lookup_ns: Vec<u64>,
    /// Sorted per-call push latencies across all ranks.
    push_ns: Vec<u64>,
    hits: u64,
    misses: u64,
    rows_served: u64,
    rows_fetched: u64,
}

impl WorldReport {
    fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            return 0.0;
        }
        self.hits as f64 / (self.hits + self.misses) as f64
    }

    /// Fraction of requested rows the dedup + cache kept off the wire.
    fn wire_savings(&self) -> f64 {
        if self.rows_served == 0 {
            return 0.0;
        }
        1.0 - self.rows_fetched as f64 / self.rows_served as f64
    }

    fn entries(&self, sz: &Sizing) -> Vec<Entry> {
        let bytes = sz.batch * sz.dim * F32_BYTES;
        let lat = |op, ns| Entry {
            op,
            world: self.world,
            bytes,
            density: 0.0,
            iters: self.lookup_ns.len() as u64,
            ns_per_iter: ns,
            gb_per_s: 0.0,
        };
        vec![
            lat("serving_lookup_p50", percentile(&self.lookup_ns, 0.50)),
            lat("serving_lookup_p99", percentile(&self.lookup_ns, 0.99)),
            Entry {
                iters: self.push_ns.len() as u64,
                ..lat("serving_push_p50", percentile(&self.push_ns, 0.50))
            },
            Entry {
                iters: self.push_ns.len() as u64,
                ..lat("serving_push_p99", percentile(&self.push_ns, 0.99))
            },
            Entry {
                op: "serving_cache_hit_rate",
                world: self.world,
                bytes,
                density: 0.0,
                iters: self.hits + self.misses,
                ns_per_iter: 0,
                gb_per_s: self.hit_rate(),
            },
        ]
    }
}

/// Exact order statistic over an ascending-sorted sample vector (nearest-
/// rank on the `0..=n-1` index scale).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Deterministic non-zero initial table value — cheap enough to
/// materialise million-row shards without dominating the harness.
fn init_value(row: u32, col: usize) -> f32 {
    (row.wrapping_mul(31).wrapping_add(col as u32) % 1024) as f32 * 1e-3
}

fn replay_world(world: usize, sz: &Sizing) -> Result<WorldReport, String> {
    // One cumulative table per world, Arc-shared into every rank; trainer
    // and inference draw from the same distribution through independent
    // RNG streams (two tenants, one corpus).
    let stream = ZipfSampler::new(sz.vocab, ZIPF_S);
    let per_rank = run_group(world, |rank, ep| -> Result<_, PsError> {
        let cfg = ServiceConfig {
            vocab: sz.vocab,
            dim: sz.dim,
            policy: PartitionPolicy::Range,
            optimizer: OptimizerKind::Adagrad { lr: 0.05 },
            cache_rows: sz.cache_rows,
            push: PushTransport::Alltoallv,
        };
        let mut svc = EmbeddingService::new(rank, world, &cfg, &init_value);
        let mix = (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((world as u64) << 40);
        let mut train_rng = StdRng::seed_from_u64(0xE3B0 ^ mix);
        let mut infer_rng = StdRng::seed_from_u64(0xC442 ^ mix);
        let mut lookup_ns: Vec<u64> = Vec::with_capacity(sz.steps * (1 + sz.infer_per_step));
        let mut push_ns: Vec<u64> = Vec::with_capacity(sz.steps);
        for _ in 0..sz.steps {
            // Trainer: lookup, then push the batch gradient back through
            // the colocated optimizer (AlltoAll #1 then #2).
            let ids = stream.sample_batch(sz.batch, &mut train_rng);
            let t = Instant::now();
            svc.try_lookup(ep, &ids)?;
            lookup_ns.push(t.elapsed().as_nanos() as u64);
            let grad = RowSparse::new(ids, DenseTensor::full(sz.batch, sz.dim, 1e-3));
            let t = Instant::now();
            svc.try_push(ep, &grad)?;
            push_ns.push(t.elapsed().as_nanos() as u64);
            // Inference: read-only traffic against the same (hot) rows.
            for _ in 0..sz.infer_per_step {
                let ids = stream.sample_batch(sz.batch, &mut infer_rng);
                let t = Instant::now();
                svc.try_lookup(ep, &ids)?;
                lookup_ns.push(t.elapsed().as_nanos() as u64);
            }
        }
        let mut m = Metrics::new();
        svc.export_metrics(&mut m);
        Ok((lookup_ns, push_ns, m))
    });
    let mut rep = WorldReport {
        world,
        lookup_ns: Vec::new(),
        push_ns: Vec::new(),
        hits: 0,
        misses: 0,
        rows_served: 0,
        rows_fetched: 0,
    };
    for r in per_rank {
        let (lookups, pushes, m) = r.map_err(|e| format!("serve replay at world {world}: {e}"))?;
        rep.lookup_ns.extend(lookups);
        rep.push_ns.extend(pushes);
        rep.hits += m.counter("ps.cache.hits");
        rep.misses += m.counter("ps.cache.misses");
        rep.rows_served += m.counter("ps.lookup.rows_served");
        rep.rows_fetched += m.counter("ps.lookup.rows_fetched");
    }
    rep.lookup_ns.sort_unstable();
    rep.push_ns.sort_unstable();
    Ok(rep)
}

pub fn run(args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut mode = Mode::Full;
    let mut out = "BENCH_collectives.json".to_string();
    let mut it = args;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => mode = Mode::Quick,
            "--out" => out = it.next().ok_or("--out needs a file argument")?,
            other => return Err(format!("unknown serve flag: {other}")),
        }
    }
    let sz = sizing(mode);
    println!(
        "serve: {} rows x dim {}, Zipf s={ZIPF_S}, {} steps x {} ids, \
         {} inference lookups per trainer step, cache {} rows/rank",
        sz.vocab, sz.dim, sz.steps, sz.batch, sz.infer_per_step, sz.cache_rows
    );
    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>12} {:>12} {:>9} {:>12}",
        "world",
        "lookups",
        "lookup p50",
        "lookup p99",
        "push p50",
        "push p99",
        "hit rate",
        "wire saved"
    );
    let mut entries: Vec<Entry> = Vec::new();
    for &world in &sz.worlds {
        let rep = replay_world(world, &sz)?;
        let us = |ns: u64| format!("{:.1}us", ns as f64 / 1e3);
        println!(
            "{:>6} {:>9} {:>12} {:>12} {:>12} {:>12} {:>8.1}% {:>11.1}%",
            world,
            rep.lookup_ns.len(),
            us(percentile(&rep.lookup_ns, 0.50)),
            us(percentile(&rep.lookup_ns, 0.99)),
            us(percentile(&rep.push_ns, 0.50)),
            us(percentile(&rep.push_ns, 0.99)),
            rep.hit_rate() * 100.0,
            rep.wire_savings() * 100.0
        );
        entries.extend(rep.entries(&sz));
    }
    let doc = record::merge_into_file(&out, LABEL, record::fmt_run(LABEL, mode, &entries))?;
    std::fs::write(&out, doc).map_err(|e| format!("write {out}: {e}"))?;
    println!("recorded {} serving cells under label \"{LABEL}\" in {out}", entries.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use embrace_obs::json;

    #[test]
    fn percentiles_are_exact_order_statistics() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&sorted, 0.50), 51); // round(99 * 0.5) = 50
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn flag_errors_are_reported_not_panicked() {
        assert!(run(["--bogus".to_string()].into_iter()).is_err());
        assert!(run(["--out".to_string()].into_iter()).is_err());
    }

    #[test]
    fn quick_replay_records_the_serving_family() {
        let dir = std::env::temp_dir().join("embrace_serve_cmd_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("traj.json");
        let path = path.to_str().expect("utf8 path").to_string();
        std::fs::remove_file(&path).ok();
        run(["--quick".to_string(), "--out".to_string(), path.clone()].into_iter())
            .expect("quick replay");
        let doc = std::fs::read_to_string(&path).expect("trajectory written");
        let v = json::parse(&doc).expect("valid json");
        let runs = v.get("runs").and_then(|r| r.as_arr()).expect("runs array");
        let run_obj = runs
            .iter()
            .find(|r| r.get("label").and_then(|l| l.as_str()) == Some(LABEL))
            .expect("serving run present");
        let entries = run_obj.get("entries").and_then(|e| e.as_arr()).expect("entries");
        // 5 cells per world, worlds {2, 4} in quick mode.
        assert_eq!(entries.len(), 10);
        for world in [2.0, 4.0] {
            let cell = |op: &str| {
                entries
                    .iter()
                    .find(|e| {
                        e.get("op").and_then(|o| o.as_str()) == Some(op)
                            && e.get("world").and_then(json::Value::as_f64) == Some(world)
                    })
                    .unwrap_or_else(|| panic!("{op} cell at world {world}"))
            };
            let ns = |op: &str| {
                cell(op).get("ns_per_iter").and_then(json::Value::as_f64).expect("ns") as u64
            };
            assert!(ns("serving_lookup_p50") > 0);
            assert!(ns("serving_lookup_p99") >= ns("serving_lookup_p50"));
            assert!(ns("serving_push_p99") >= ns("serving_push_p50"));
            let hit = cell("serving_cache_hit_rate")
                .get("gb_per_s")
                .and_then(json::Value::as_f64)
                .expect("hit rate");
            assert!(
                (0.0..=1.0).contains(&hit) && hit > 0.0,
                "Zipf traffic must hit the hot-row cache, got {hit}"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
