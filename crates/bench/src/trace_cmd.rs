//! The `trace` subcommand of `embrace_sim`: simulate one configuration
//! and write its discrete-event timeline as Chrome `trace_event` JSON
//! (load in `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! ```text
//! embrace_sim trace --model gnmt8 --method embrace --gpus 16 --out trace.json
//! embrace_sim trace --smoke --out-dir traces/
//! ```
//!
//! `--smoke` sweeps one model across the four representative methods
//! (EmbRace, Horovod AllReduce, Parallax, BytePS), writes one trace per
//! method, and *validates* each: the JSON must re-parse and the latest
//! span end must reconcile with the DES makespan to within 1%. This is
//! the CI gate for the exporter.
//!
//! `--check-hb` additionally runs the scheduled trainer on a live
//! threaded mesh with observed comm schedulers and feeds the recorded
//! per-rank timing logs through `embrace_analyzer::hb`, the vector-clock
//! happens-before checker; any determinism violation, priority
//! inversion, or unordered conflicting access fails the command.

use crate::cli::{parse_args, CliArgs};
use embrace_baselines::MethodId;
use embrace_trainer::{chrome_export, ChromeExport};
use std::path::{Path, PathBuf};

/// Methods the smoke sweep exercises: EmbRace plus one representative of
/// each baseline family (collective, sparse PS, chunked PS).
const SMOKE_METHODS: [MethodId; 4] =
    [MethodId::EmbRace, MethodId::HorovodAllReduce, MethodId::Parallax, MethodId::BytePs];

/// Parsed `trace` arguments: the shared simulator flags plus the
/// trace-specific output controls.
pub struct TraceArgs {
    pub smoke: bool,
    pub check_hb: bool,
    pub out: Option<PathBuf>,
    pub out_dir: PathBuf,
    pub cli: CliArgs,
}

/// Split off `trace`-specific flags, delegating the rest to the shared
/// CLI parser.
pub fn parse_trace_args<I: IntoIterator<Item = String>>(argv: I) -> Result<TraceArgs, String> {
    let mut smoke = false;
    let mut check_hb = false;
    let mut out = None;
    let mut out_dir = PathBuf::from("traces");
    let mut rest = Vec::new();
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--check-hb" => check_hb = true,
            "--out" => {
                out = Some(PathBuf::from(it.next().ok_or("--out requires a path")?));
            }
            "--out-dir" => {
                out_dir = PathBuf::from(it.next().ok_or("--out-dir requires a path")?);
            }
            _ => rest.push(flag),
        }
    }
    Ok(TraceArgs { smoke, check_hb, out, out_dir, cli: parse_args(rest)? })
}

/// Validate an exported trace: parse the JSON back and check that the
/// latest `X`-event end reconciles with the DES makespan to within 1%.
/// Returns `(n_events, relative_error)`.
pub fn validate_export(exp: &ChromeExport) -> Result<(usize, f64), String> {
    let v = embrace_obs::json::parse(&exp.json).map_err(|e| format!("invalid JSON: {e}"))?;
    let events =
        v.get("traceEvents").and_then(|e| e.as_arr()).ok_or("missing traceEvents array")?;
    let mut horizon_us = 0.0f64;
    let mut n_spans = 0usize;
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let ts = e.get("ts").and_then(|t| t.as_f64()).ok_or("X event without ts")?;
        let dur = e.get("dur").and_then(|d| d.as_f64()).ok_or("X event without dur")?;
        horizon_us = horizon_us.max(ts + dur);
        n_spans += 1;
    }
    if n_spans == 0 {
        return Err("trace has no X events".into());
    }
    let makespan_us = exp.makespan * 1e6;
    let rel = (horizon_us - makespan_us).abs() / makespan_us;
    if rel >= 0.01 {
        return Err(format!(
            "span horizon {horizon_us:.1} µs does not reconcile with makespan \
             {makespan_us:.1} µs (relative error {:.3}%)",
            rel * 100.0
        ));
    }
    Ok((events.len(), rel))
}

fn write_trace(path: &Path, exp: &ChromeExport) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, &exp.json).map_err(|e| format!("write {}: {e}", path.display()))
}

fn report(label: &str, path: &Path, exp: &ChromeExport, n_events: usize, rel: f64) {
    println!(
        "{label:<24} {:>6} events  makespan {:>9.3} ms  network busy {:>9.3} ms  \
         reconciliation {:.4}%  -> {}",
        n_events,
        exp.makespan * 1e3,
        exp.network_busy * 1e3,
        rel * 100.0,
        path.display()
    );
}

/// Copy-accounting probe: run one fan-out round (broadcast + allgather)
/// of a dense payload on a *real* threaded mesh and total the transport's
/// logical-vs-copied byte counters. The DES timeline itself has no real
/// transport, so this is how `trace` surfaces the zero-copy payload
/// discipline next to the simulated numbers.
pub fn transport_copy_probe(world: usize) -> (u64, u64, f64) {
    use embrace_collectives::{ops, run_group, Packet};
    let local = embrace_tensor::DenseTensor::full(64, 64, 1.0);
    let counters = run_group(world, |rank, ep| {
        let payload = (rank == 0).then(|| Packet::Dense(local.share()));
        let _ = ops::broadcast(ep, 0, payload);
        let _ = ops::allgather_dense(ep, local.share());
        (ep.bytes_sent(), ep.bytes_copied())
    });
    let sent: u64 = counters.iter().map(|&(s, _)| s).sum();
    let copied: u64 = counters.iter().map(|&(_, c)| c).sum();
    let ratio = if sent == 0 { 0.0 } else { 1.0 - copied as f64 / sent as f64 };
    (sent, copied, ratio)
}

fn report_copy_probe(world: usize) {
    let (sent, copied, ratio) = transport_copy_probe(world);
    println!(
        "transport probe ({world} ranks): {sent} logical bytes moved, {copied} bytes copied \
         (copy elimination {:.1}%)",
        ratio * 100.0
    );
}

/// Happens-before probe (`--check-hb`): run the scheduled trainer on a
/// *real* threaded mesh with observed comm schedulers, then feed every
/// rank's recorded `OpTiming` log through the vector-clock
/// happens-before analyzer. Any diagnostic — determinism violation,
/// priority inversion, unordered conflicting access — fails the command.
pub fn check_hb_probe(world: usize, steps: usize) -> Result<(usize, usize), String> {
    use embrace_analyzer::hb;
    use embrace_trainer::{train_convergence_scheduled_observed, ConvergenceConfig};
    let cfg = ConvergenceConfig { world, steps, ..Default::default() };
    let (_, _, obs) = train_convergence_scheduled_observed(&cfg, true);
    if obs.len() != world {
        return Err(format!("expected {world} rank observations, got {}", obs.len()));
    }
    let timings: Vec<Vec<embrace_collectives::OpTiming>> =
        obs.iter().map(|(_, t)| t.clone()).collect();
    let n_ops: usize = timings.iter().map(Vec::len).sum();
    // The span log is the same events on the wall-clock track; its
    // extraction must see exactly the ops the timing log does.
    for (rank, (spans, t)) in obs.iter().enumerate() {
        let from_spans: usize = hb::from_spans(spans).iter().map(Vec::len).sum();
        if from_spans != t.len() {
            return Err(format!(
                "rank {rank}: span log has {from_spans} ops but timing log has {}",
                t.len()
            ));
        }
    }
    let diags = hb::check_op_timings(&timings);
    if !diags.is_empty() {
        let lines: Vec<String> = diags.iter().map(|d| format!("  {d}")).collect();
        return Err(format!(
            "happens-before check: {} diagnostic(s)\n{}",
            diags.len(),
            lines.join("\n")
        ));
    }
    Ok((n_ops, world))
}

fn report_check_hb() -> Result<(), String> {
    let (n_ops, world) = check_hb_probe(4, 8)?;
    println!(
        "happens-before probe ({world} ranks): {n_ops} observed ops, vector-clock check clean \
         (no determinism violations, inversions, or unordered accesses)"
    );
    Ok(())
}

/// Entry point for `embrace_sim trace`.
pub fn run<I: IntoIterator<Item = String>>(argv: I) -> Result<(), String> {
    let args = parse_trace_args(argv)?;
    if args.smoke {
        run_smoke(&args)
    } else {
        let cfg = args.cli.sim_config();
        let exp = chrome_export(&cfg);
        let (n_events, rel) = validate_export(&exp)?;
        let path = args.out.unwrap_or_else(|| PathBuf::from("trace.json"));
        write_trace(&path, &exp)?;
        report(args.cli.method.name(), &path, &exp, n_events, rel);
        report_copy_probe(4);
        if args.check_hb {
            report_check_hb()?;
        }
        Ok(())
    }
}

fn run_smoke(args: &TraceArgs) -> Result<(), String> {
    println!(
        "smoke: {:?} x {} GPUs across {} methods",
        args.cli.model,
        args.cli.gpus,
        SMOKE_METHODS.len()
    );
    for method in SMOKE_METHODS {
        let mut cli = args.cli.clone();
        cli.method = method;
        let cfg = cli.sim_config();
        let exp = chrome_export(&cfg);
        let (n_events, rel) =
            validate_export(&exp).map_err(|e| format!("{}: {e}", method.name()))?;
        let path = args.out_dir.join(format!("trace_{}.json", method.name().replace(' ', "_")));
        write_trace(&path, &exp)?;
        report(method.name(), &path, &exp, n_events, rel);
    }
    report_copy_probe(4);
    if args.check_hb {
        report_check_hb()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use embrace_models::ModelId;
    use embrace_trainer::SimConfig;

    #[test]
    fn trace_flags_parse_alongside_cli_flags() {
        let a = parse_trace_args(
            ["--smoke", "--out-dir", "/tmp/t", "--model", "lm", "--gpus", "8"].map(String::from),
        )
        .expect("valid args");
        assert!(a.smoke);
        assert_eq!(a.out_dir, PathBuf::from("/tmp/t"));
        assert_eq!(a.cli.model, ModelId::Lm);
        assert_eq!(a.cli.gpus, 8);
    }

    #[test]
    fn every_smoke_method_exports_a_valid_trace() {
        for method in SMOKE_METHODS {
            let mut cfg =
                SimConfig::new(method, ModelId::Gnmt8, embrace_simnet::Cluster::rtx3090(8));
            cfg.steps = 4;
            let exp = chrome_export(&cfg);
            let (n_events, rel) =
                validate_export(&exp).unwrap_or_else(|e| panic!("{}: {e}", method.name()));
            assert!(n_events > 0);
            assert!(rel < 0.01);
        }
    }

    #[test]
    fn copy_probe_reports_full_elimination_for_dense_fanout() {
        // broadcast forwards the received packet (O(1) clone of an
        // Arc-backed payload) and allgather sends share()d handles: no
        // payload byte is deep-copied anywhere in the round.
        let (sent, copied, ratio) = transport_copy_probe(4);
        assert!(sent > 0);
        assert_eq!(copied, 0, "dense fan-out must not deep-copy payloads");
        assert!((ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn check_hb_flag_parses_and_live_probe_is_clean() {
        let a = parse_trace_args(["--smoke", "--check-hb"].map(String::from)).expect("valid args");
        assert!(a.check_hb);
        let (n_ops, world) = check_hb_probe(3, 6).expect("live run must be hb-clean");
        assert_eq!(world, 3);
        // At least 7 submissions per step per rank (2 token gathers, emb
        // data, allreduce, prior, delayed, loss) plus scheduler-internal
        // ops, identical across ranks.
        assert!(n_ops >= 3 * 6 * 7, "observed only {n_ops} ops");
        assert_eq!(n_ops % 3, 0, "ranks observed different op counts: {n_ops}");
    }

    #[test]
    fn validation_rejects_garbage() {
        let exp =
            ChromeExport { json: "{\"traceEvents\":[]}".into(), makespan: 1.0, network_busy: 0.5 };
        assert!(validate_export(&exp).is_err());
    }
}
