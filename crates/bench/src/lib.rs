//! Benchmark harness for the EmbRace reproduction.
//!
//! Two kinds of targets:
//!
//! * **Binaries** (`src/bin/`) — one per paper table/figure; each prints
//!   the regenerated rows/series next to the paper's reported values.
//!   `cargo run --release -p embrace-bench --bin fig7` etc. The complete
//!   index lives in DESIGN.md §5.
//! * **Criterion benches** (`benches/`) — microbenchmarks of the
//!   substrate itself (real thread collectives, coalescing/Algorithm 1
//!   throughput, the discrete-event simulator, the cost model sweeps).

#![forbid(unsafe_code)]

pub mod cli;
pub mod record;
pub mod scenarios;
pub mod serve_cmd;
pub mod trace_cmd;
pub mod verify_plan;

use embrace_simnet::Cluster;

/// The GPU-count axis of the paper's end-to-end figures.
pub const WORLDS: [usize; 3] = [4, 8, 16];

/// Both evaluation clusters at a given world size.
pub fn clusters(world: usize) -> [Cluster; 2] {
    [Cluster::rtx3090(world), Cluster::rtx2080(world)]
}
