//! Argument parsing for the `embrace-sim` CLI (hand-rolled — no external
//! dependencies beyond the workspace policy).

use embrace_baselines::MethodId;
use embrace_models::ModelId;
use embrace_simnet::{Cluster, CommOrder};
use embrace_trainer::SimConfig;

/// A parsed CLI request.
#[derive(Clone, Debug, PartialEq)]
pub struct CliArgs {
    pub model: ModelId,
    pub method: MethodId,
    pub gpus: usize,
    pub rtx2080: bool,
    pub steps: usize,
    pub comm_order: Option<CommOrder>,
    pub fusion_mib: Option<f64>,
    /// Run the whole method × world grid for the chosen model/cluster.
    pub grid: bool,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            model: ModelId::Gnmt8,
            method: MethodId::EmbRace,
            gpus: 16,
            rtx2080: false,
            steps: 8,
            comm_order: None,
            fusion_mib: None,
            grid: false,
        }
    }
}

impl CliArgs {
    /// Build the simulator configuration this request describes.
    pub fn sim_config(&self) -> SimConfig {
        let cluster = self.cluster();
        let mut cfg = SimConfig::new(self.method, self.model, cluster);
        cfg.steps = self.steps;
        cfg.comm_order = self.comm_order;
        cfg.fusion_bucket = self.fusion_mib.map(|m| m * 1024.0 * 1024.0);
        cfg
    }

    pub fn cluster(&self) -> Cluster {
        if self.rtx2080 {
            Cluster::rtx2080(self.gpus)
        } else {
            Cluster::rtx3090(self.gpus)
        }
    }
}

/// The `--help` text.
pub const USAGE: &str = "\
embrace-sim — simulate one training configuration of the EmbRace reproduction

USAGE:
  embrace-sim [OPTIONS]
  embrace-sim verify-plan
  embrace-sim trace [OPTIONS] [--smoke] [--out <file>] [--out-dir <dir>]
  embrace-sim scenarios [--quick] [--out <file>]
  embrace-sim serve [--quick] [--out <file>]

SUBCOMMANDS:
  verify-plan   static comm-plan verification + interleaving model check
                (collectives, chunked programs, elastic re-form handshake)
  trace         export the simulated timeline as Chrome trace_event JSON
                (open in Perfetto); --smoke sweeps the four method
                families and validates each export against the makespan
  scenarios     elastic capacity planning: sweep {fault profile x recovery
                policy} through the live elastic trainer, report goodput /
                p99 step time / recovery cost, price the shrink-vs-restart
                crossover, compare multi-tenant link sharing; --quick for
                the CI smoke size, --out to persist the report
  serve         Zipf request replay against the sharded embedding service:
                million-row tables at worlds 2/4/8 under concurrent
                trainer + inference traffic; records lookup/push p50/p99
                and cache hit rate into BENCH_collectives.json (the
                serving op family); --quick for the CI smoke size

OPTIONS:
  --model <lm|gnmt8|transformer|bert>   benchmark model        [default: gnmt8]
  --method <embrace|embrace-nosched|embrace-horizontal|
            allreduce|allgather|byteps|parallax>               [default: embrace]
  --gpus <4|8|16|...>                   world size             [default: 16]
  --rtx2080                             use the RTX2080 testbed calibration
  --steps <n>                           simulated steps        [default: 8]
  --order <fifo|priority|preemptive>    override comm ordering
  --fusion-mib <f>                      fuse dense gradients into buckets
  --grid                                run every method at 4/8/16 GPUs
  --help                                print this text
";

/// Parse argv (without the program name). Returns `Err(message)` on any
/// unknown flag or malformed value.
pub fn parse_args<I: IntoIterator<Item = String>>(argv: I) -> Result<CliArgs, String> {
    let mut args = CliArgs::default();
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--model" => {
                args.model = match value("--model")?.as_str() {
                    "lm" => ModelId::Lm,
                    "gnmt8" => ModelId::Gnmt8,
                    "transformer" => ModelId::Transformer,
                    "bert" | "bert-base" => ModelId::BertBase,
                    other => return Err(format!("unknown model '{other}'")),
                };
            }
            "--method" => {
                args.method = match value("--method")?.as_str() {
                    "embrace" => MethodId::EmbRace,
                    "embrace-nosched" => MethodId::EmbRaceNoSched,
                    "embrace-horizontal" => MethodId::EmbRaceHorizontal,
                    "allreduce" => MethodId::HorovodAllReduce,
                    "allgather" => MethodId::HorovodAllGather,
                    "byteps" => MethodId::BytePs,
                    "parallax" => MethodId::Parallax,
                    other => return Err(format!("unknown method '{other}'")),
                };
            }
            "--gpus" => {
                args.gpus = value("--gpus")?
                    .parse()
                    .map_err(|_| "--gpus expects an integer".to_string())?;
            }
            "--steps" => {
                args.steps = value("--steps")?
                    .parse()
                    .map_err(|_| "--steps expects an integer".to_string())?;
                if args.steps < 3 {
                    return Err("--steps must be at least 3 (steady state)".into());
                }
            }
            "--order" => {
                args.comm_order = Some(match value("--order")?.as_str() {
                    "fifo" => CommOrder::Fifo,
                    "priority" => CommOrder::Priority,
                    "preemptive" => CommOrder::Preemptive,
                    other => return Err(format!("unknown order '{other}'")),
                });
            }
            "--fusion-mib" => {
                args.fusion_mib = Some(
                    value("--fusion-mib")?
                        .parse()
                        .map_err(|_| "--fusion-mib expects a number".to_string())?,
                );
            }
            "--rtx2080" => args.rtx2080 = true,
            "--grid" => args.grid = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<CliArgs, String> {
        parse_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let a = parse("").unwrap();
        assert_eq!(a, CliArgs::default());
        assert_eq!(a.sim_config().steps, 8);
    }

    #[test]
    fn full_flag_set() {
        let a = parse("--model lm --method parallax --gpus 8 --rtx2080 --steps 10 --order preemptive --fusion-mib 32 --grid").unwrap();
        assert_eq!(a.model, ModelId::Lm);
        assert_eq!(a.method, MethodId::Parallax);
        assert_eq!(a.gpus, 8);
        assert!(a.rtx2080);
        assert_eq!(a.steps, 10);
        assert_eq!(a.comm_order, Some(CommOrder::Preemptive));
        assert_eq!(a.fusion_mib, Some(32.0));
        assert!(a.grid);
        let cfg = a.sim_config();
        assert_eq!(cfg.fusion_bucket, Some(32.0 * 1024.0 * 1024.0));
        assert_eq!(a.cluster().gpu, embrace_simnet::GpuKind::Rtx2080);
    }

    #[test]
    fn rejects_unknown_model() {
        assert!(parse("--model resnet").is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        let err = parse("--frobnicate").unwrap_err();
        assert!(err.contains("unknown flag"));
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse("--gpus").is_err());
        assert!(parse("--gpus abc").is_err());
    }

    #[test]
    fn rejects_too_few_steps() {
        assert!(parse("--steps 2").is_err());
    }

    #[test]
    fn help_returns_usage() {
        let err = parse("--help").unwrap_err();
        assert!(err.starts_with("embrace-sim"));
    }
}
