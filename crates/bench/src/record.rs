//! The machine-readable bench trajectory (`bench-collectives-v1`):
//! shared between `bench_comm` (wall-clock collectives) and
//! `bench_kernels` (scalar vs explicit-width reduce kernels), both of
//! which merge labelled runs into the same JSON file so the repo
//! accumulates a before/after perf history across commits.
//!
//! ```text
//! { "schema": "bench-collectives-v1",
//!   "runs": [ { "label": "...", "mode": "quick|full",
//!               "entries": [ { "op", "world", "bytes", "density",
//!                              "iters", "ns_per_iter", "gb_per_s" } ] } ] }
//! ```
//!
//! [`compare`] joins two labelled runs on `(op, world, bytes, density)`
//! and prints a per-cell speedup table — the `bench_comm --compare A B`
//! subcommand, used to read the trajectory without re-running anything.

use embrace_obs::json;

/// One timed cell of a bench sweep.
pub struct Entry {
    pub op: &'static str,
    pub world: usize,
    pub bytes: usize,
    /// Gradient row density of a density-sweep cell, 0 for size-sweep ops.
    pub density: f64,
    pub iters: u64,
    pub ns_per_iter: u64,
    pub gb_per_s: f64,
}

#[derive(Clone, Copy, PartialEq)]
pub enum Mode {
    Quick,
    Full,
}

impl Mode {
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Quick => "quick",
            Mode::Full => "full",
        }
    }
}

fn fmt_entry(e: &Entry) -> String {
    format!(
        "{{\"op\":\"{}\",\"world\":{},\"bytes\":{},\"density\":{},\"iters\":{},\
         \"ns_per_iter\":{},\"gb_per_s\":{:.6}}}",
        e.op, e.world, e.bytes, e.density, e.iters, e.ns_per_iter, e.gb_per_s
    )
}

/// Serialise one run object.
pub fn fmt_run(label: &str, mode: Mode, entries: &[Entry]) -> String {
    let body: Vec<String> = entries.iter().map(fmt_entry).collect();
    format!(
        "{{\"label\":\"{}\",\"mode\":\"{}\",\"entries\":[{}]}}",
        json::escape(label),
        mode.as_str(),
        body.join(",")
    )
}

/// Merge the new run into an existing trajectory file: runs with other
/// labels are preserved verbatim (re-serialised), a run with the same
/// label is replaced.
pub fn merge_into_file(path: &str, label: &str, new_run: String) -> Result<String, String> {
    let mut kept: Vec<String> = Vec::new();
    if let Ok(prev) = std::fs::read_to_string(path) {
        let v = json::parse(&prev).map_err(|e| format!("existing {path} unparseable: {e}"))?;
        if let Some(runs) = v.get("runs").and_then(|r| r.as_arr()) {
            for run in runs {
                let run_label = run.get("label").and_then(|l| l.as_str()).unwrap_or("");
                if run_label != label {
                    kept.push(reserialise(run));
                }
            }
        }
    }
    kept.push(new_run);
    Ok(format!("{{\"schema\":\"bench-collectives-v1\",\"runs\":[{}]}}\n", kept.join(",")))
}

/// Re-emit a parsed JSON value (the parser keeps object key order).
fn reserialise(v: &json::Value) -> String {
    if let Some(obj) = v.as_obj() {
        let fields: Vec<String> = obj
            .iter()
            .map(|(k, val)| format!("\"{}\":{}", json::escape(k), reserialise(val)))
            .collect();
        return format!("{{{}}}", fields.join(","));
    }
    if let Some(arr) = v.as_arr() {
        let items: Vec<String> = arr.iter().map(reserialise).collect();
        return format!("[{}]", items.join(","));
    }
    if let Some(s) = v.as_str() {
        return format!("\"{}\"", json::escape(s));
    }
    if let Some(n) = v.as_f64() {
        if n.fract() == 0.0 && n.abs() < 9e15 {
            return format!("{}", n as i64);
        }
        return format!("{n}");
    }
    // Null / bool fall back to the f64/str accessors above in this
    // parser; anything else is outside the bench schema.
    "null".to_string()
}

/// Decoded key+throughput of one stored entry.
type Cell = (String, usize, usize, f64, f64, u64);

fn run_cells(run: &json::Value) -> Vec<Cell> {
    run.get("entries")
        .and_then(|e| e.as_arr())
        .map(|es| {
            es.iter()
                .filter_map(|e| {
                    Some((
                        e.get("op")?.as_str()?.to_string(),
                        e.get("world")?.as_f64()? as usize,
                        e.get("bytes")?.as_f64()? as usize,
                        e.get("density").and_then(json::Value::as_f64).unwrap_or(0.0),
                        e.get("gb_per_s")?.as_f64()?,
                        e.get("ns_per_iter")?.as_f64()? as u64,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Join runs `a` and `b` on `(op, world, bytes, density)` and print the
/// per-cell speedup of `b` over `a`. Pure throughput cells compare
/// `gb_per_s`; latency-style cells (`gb_per_s == 0`, e.g. the HoL p95
/// waits) compare `ns_per_iter` inverted so >1 still means "b is
/// faster". Errors if either label is missing or no cells overlap.
pub fn compare(doc: &json::Value, label_a: &str, label_b: &str) -> Result<(), String> {
    let runs = doc.get("runs").and_then(|r| r.as_arr()).ok_or("no runs in trajectory file")?;
    let find = |l: &str| {
        runs.iter()
            .find(|r| r.get("label").and_then(|v| v.as_str()) == Some(l))
            .ok_or(format!("no run labelled \"{l}\""))
    };
    let (a, b) = (run_cells(find(label_a)?), run_cells(find(label_b)?));
    println!(
        "{:<26} {:>6} {:>10} {:>8} {:>11} {:>11} {:>8}",
        "op", "world", "bytes", "density", label_a, label_b, "speedup"
    );
    let mut joined = 0usize;
    let mut product = 1.0f64;
    for (op, world, bytes, density, b_gbs, b_ns) in &b {
        let Some((.., a_gbs, a_ns)) =
            a.iter().find(|(o, w, by, d, ..)| o == op && w == world && by == bytes && d == density)
        else {
            continue;
        };
        let (ca, cb, speedup) = if *a_gbs > 0.0 && *b_gbs > 0.0 {
            (format!("{a_gbs:.3}"), format!("{b_gbs:.3}"), b_gbs / a_gbs)
        } else if *a_ns > 0 && *b_ns > 0 {
            (format!("{a_ns}ns"), format!("{b_ns}ns"), *a_ns as f64 / *b_ns as f64)
        } else {
            continue;
        };
        println!("{op:<26} {world:>6} {bytes:>10} {density:>8} {ca:>11} {cb:>11} {speedup:>7.2}x");
        joined += 1;
        product *= speedup;
    }
    if joined == 0 {
        return Err(format!("runs \"{label_a}\" and \"{label_b}\" share no cells"));
    }
    println!(
        "{joined} cells joined; geometric-mean speedup {:.2}x",
        product.powf(1.0 / joined as f64)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(op: &'static str, gbs: f64) -> Entry {
        Entry { op, world: 4, bytes: 1024, density: 0.0, iters: 3, ns_per_iter: 10, gb_per_s: gbs }
    }

    #[test]
    fn merge_replaces_same_label_and_keeps_others() {
        let dir = std::env::temp_dir().join("embrace_record_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("traj.json");
        let path = path.to_str().expect("utf8 path");
        let doc = merge_into_file(path, "a", fmt_run("a", Mode::Quick, &[entry("op", 1.0)]))
            .expect("fresh merge");
        std::fs::write(path, &doc).expect("write");
        let doc = merge_into_file(path, "b", fmt_run("b", Mode::Quick, &[entry("op", 2.0)]))
            .expect("second label");
        std::fs::write(path, &doc).expect("write");
        let doc = merge_into_file(path, "a", fmt_run("a", Mode::Full, &[entry("op", 3.0)]))
            .expect("replace");
        std::fs::write(path, &doc).expect("write");
        let v = json::parse(&doc).expect("reparse");
        let runs = v.get("runs").and_then(|r| r.as_arr()).expect("runs");
        assert_eq!(runs.len(), 2);
        let modes: Vec<&str> =
            runs.iter().filter_map(|r| r.get("mode").and_then(|m| m.as_str())).collect();
        assert!(modes.contains(&"full"), "label a must have been replaced by the full run");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn compare_joins_on_cell_key_and_rejects_unknown_labels() {
        let doc = format!(
            "{{\"schema\":\"bench-collectives-v1\",\"runs\":[{},{}]}}",
            fmt_run("before", Mode::Quick, &[entry("ring", 1.0), entry("only_before", 1.0)]),
            fmt_run("after", Mode::Quick, &[entry("ring", 2.0)])
        );
        let v = json::parse(&doc).expect("parse");
        compare(&v, "before", "after").expect("overlapping cell exists");
        assert!(compare(&v, "before", "missing").is_err());
    }
}
