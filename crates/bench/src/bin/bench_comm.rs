//! `bench_comm` — wall-clock microbenchmarks for the *real* threaded
//! collectives, persisted as a machine-readable perf trajectory.
//!
//! ```text
//! bench_comm                        # full sweep, label "current"
//! bench_comm --quick --label before # CI-sized sweep (2 sizes)
//! bench_comm --out BENCH_collectives.json
//! bench_comm --compare before after # speedup table from the stored file
//! ```
//!
//! All timed groups run over the **one-sided slot transport**
//! (`slot_mesh`): pre-registered slot pools with sequence-stamped
//! headers, so steady-state collectives move payload only — the
//! two-sided channel rendezvous they replace is what the `before`
//! trajectory labels measured.
//!
//! Each invocation times every (op × world × payload) cell, then merges
//! the run into the output JSON under its `--label` (replacing a previous
//! run with the same label, keeping all others) — so the file accumulates
//! a before/after trajectory across commits. The written file is
//! re-parsed with `embrace-obs`'s JSON parser before the process exits;
//! an unparseable file is a hard error, which is what the CI
//! `bench-smoke` job relies on.
//!
//! Schema (`BENCH_collectives.json`, documented in DESIGN.md):
//!
//! ```text
//! { "schema": "bench-collectives-v1",
//!   "runs": [ { "label": "...", "mode": "quick|full",
//!               "entries": [ { "op", "world", "bytes", "density",
//!                              "iters", "ns_per_iter", "gb_per_s" } ] } ] }
//! ```
//!
//! Besides the payload-size sweep, each run records a *density* sweep:
//! `sparse_allreduce` (the sparse-native SSAR) against
//! `sparse_hybrid_alltoallv` (coalesce → AlltoAllv shard scatter →
//! local reduce → allgather) at fixed vocabulary and varying gradient
//! row density — the crossover where the hybrid overtakes the
//! sparse-native path is the number §4's representation switch is
//! calibrated against. `density` is 0 for size-sweep and HOL entries.
//!
//! `bytes` is the per-rank logical payload (the buffer being reduced /
//! gathered / exchanged); `gb_per_s` is that payload divided by wall time
//! per iteration — a *goodput* number comparable across ops, not a wire
//! bandwidth.

use embrace_bench::record::{compare, fmt_run, merge_into_file, Entry, Mode};
use embrace_collectives::group::run_group_on;
use embrace_collectives::ops::{
    allgather_dense, allgather_sparse, alltoallv_sparse, broadcast, ring_allreduce,
    ring_allreduce_pipelined, sparse_allreduce, SsarConfig,
};
use embrace_collectives::transport::{slot_mesh, Packet};
use embrace_obs::json;
use embrace_tensor::{
    coalesce, merge_rowsparse, row_partition, DenseTensor, RowSparse, F32_BYTES, INDEX_BYTES,
};
use std::time::Instant;

const WORLDS: [usize; 3] = [2, 4, 8];
const QUICK_BYTES: [usize; 2] = [64 << 10, 4 << 20];
const FULL_BYTES: [usize; 5] = [1 << 10, 64 << 10, 1 << 20, 4 << 20, 16 << 20];
/// Column width used to shape sparse payloads (embedding-dim scale).
const SPARSE_DIM: usize = 64;
/// Segment size (elements) for the pipelined ring variant.
const PIPELINE_SEG: usize = 64 << 10;

/// Time `f` (already holding its inputs) over `iters` iterations inside a
/// running group; returns the slowest rank's per-iteration nanoseconds.
/// Every rank runs the same closure, so the max over ranks is the
/// completion time of the collective, not one rank's early exit. The
/// group runs over the one-sided slot mesh.
fn time_group<F>(world: usize, iters: u64, f: F) -> u64
where
    F: Fn(usize, &mut embrace_collectives::transport::Endpoint) + Sync,
{
    let per_rank_ns = run_group_on(slot_mesh(world), |rank, ep| {
        // Warm-up: populate slot pools and fault-free fast paths.
        f(rank, ep);
        embrace_collectives::ops::barrier(ep);
        let t0 = Instant::now();
        for _ in 0..iters {
            f(rank, ep);
        }
        let elapsed = t0.elapsed().as_nanos() as u64;
        embrace_collectives::ops::barrier(ep);
        elapsed
    });
    per_rank_ns.into_iter().max().unwrap_or(0) / iters
}

/// Iteration count scaled so big payloads don't dominate wall time.
fn iters_for(bytes: usize, mode: Mode) -> u64 {
    let budget: usize = match mode {
        Mode::Quick => 32 << 20,
        Mode::Full => 128 << 20,
    };
    ((budget / bytes.max(1)) as u64).clamp(3, 200)
}

fn dense_payload(bytes: usize) -> DenseTensor {
    DenseTensor::full(1, bytes / F32_BYTES, 1.0)
}

/// A sparse block sized so each rank's total outgoing payload ≈ `bytes`.
fn sparse_parts(world: usize, bytes: usize) -> Vec<RowSparse> {
    let rows_total = (bytes / F32_BYTES / SPARSE_DIM).max(world);
    let rows_per_part = (rows_total / world).max(1);
    (0..world)
        .map(|_| {
            let indices: Vec<u32> = (0..rows_per_part as u32).collect();
            RowSparse::new(indices, DenseTensor::full(rows_per_part, SPARSE_DIM, 1.0))
        })
        .collect()
}

fn bench_cell(op: &'static str, world: usize, bytes: usize, mode: Mode) -> Entry {
    let iters = iters_for(bytes, mode);
    let elems = bytes / F32_BYTES;
    let ns = match op {
        "ring_allreduce" => time_group(world, iters, |_r, ep| {
            let mut buf = vec![1.0f32; elems];
            ring_allreduce(ep, &mut buf);
            std::hint::black_box(&buf);
        }),
        "ring_allreduce_pipelined" => time_group(world, iters, |_r, ep| {
            let mut buf = vec![1.0f32; elems];
            ring_allreduce_pipelined(ep, &mut buf, PIPELINE_SEG);
            std::hint::black_box(&buf);
        }),
        "allgather_dense" => {
            let local = dense_payload(bytes);
            time_group(world, iters, move |_r, ep| {
                let all = allgather_dense(ep, local.clone());
                std::hint::black_box(&all);
            })
        }
        "alltoallv_sparse" => {
            let parts = sparse_parts(world, bytes);
            time_group(world, iters, move |_r, ep| {
                let out = alltoallv_sparse(ep, parts.clone());
                std::hint::black_box(&out);
            })
        }
        "broadcast_dense" => {
            let local = dense_payload(bytes);
            time_group(world, iters, move |rank, ep| {
                let payload = (rank == 0).then(|| Packet::Dense(local.share()));
                let p = broadcast(ep, 0, payload);
                std::hint::black_box(&p);
            })
        }
        other => panic!("unknown op {other}"),
    };
    let gb_per_s = if ns == 0 { 0.0 } else { bytes as f64 / ns as f64 };
    Entry { op, world, bytes, density: 0.0, iters, ns_per_iter: ns, gb_per_s }
}

/// Vocabulary rows shaping the sparse-allreduce density sweep.
const SWEEP_VOCAB: usize = 1 << 15;
/// Crossover threshold used for the sparse-native cells: segments densify
/// once their accumulated row density reaches one half.
const SWEEP_CROSSOVER: f64 = 0.5;
const FULL_DENSITIES: [f64; 6] = [1e-4, 1e-3, 1e-2, 0.1, 0.3, 1.0];
const QUICK_DENSITIES: [f64; 2] = [1e-3, 0.1];

/// Per-rank gradient at `density`: distinct strided indices with a
/// rank-dependent offset, so rank index sets overlap partially (fully at
/// density 1) the way hot embedding rows do across batches.
fn density_grad(rank: usize, density: f64) -> RowSparse {
    let nnz = ((density * SWEEP_VOCAB as f64) as usize).clamp(1, SWEEP_VOCAB);
    let stride = (SWEEP_VOCAB / nnz).max(1);
    let offset = (rank * 13) % stride;
    let indices: Vec<u32> = (0..nnz).map(|i| (i * stride + offset) as u32).collect();
    RowSparse::new(indices, DenseTensor::full(nnz, SPARSE_DIM, 1.0))
}

/// The pre-SSAR baseline: coalesce the local gradient, scatter row shards
/// to their owners over AlltoAllv, reduce each shard locally, then
/// allgather the reduced shards — a sparse allreduce assembled from the
/// alltoallv + allgather primitives.
fn hybrid_sparse_allreduce(
    ep: &mut embrace_collectives::transport::Endpoint,
    grad: &RowSparse,
) -> Vec<RowSparse> {
    let world = ep.world();
    let mut rest = coalesce(grad);
    let mut parts = Vec::with_capacity(world);
    for range in row_partition(SWEEP_VOCAB, world) {
        let (head, tail) = rest.split_at_row(range.end as u32);
        parts.push(head);
        rest = tail;
    }
    let received = alltoallv_sparse(ep, parts);
    let reduced = merge_rowsparse(&received);
    allgather_sparse(ep, reduced)
}

/// Sweep gradient density at fixed vocabulary: the sparse-native SSAR
/// against the coalesce→alltoallv hybrid it replaces. `bytes` is the
/// per-rank logical payload (indices + values); the interesting output is
/// where the sparse-native goodput crosses the hybrid's as density rises.
fn run_density_sweep(mode: Mode) -> Vec<Entry> {
    let densities: &[f64] = match mode {
        Mode::Quick => &QUICK_DENSITIES,
        Mode::Full => &FULL_DENSITIES,
    };
    let mut entries = Vec::new();
    for &world in &WORLDS {
        for &density in densities {
            let grads: Vec<RowSparse> = (0..world).map(|r| density_grad(r, density)).collect();
            let bytes = grads[0].nnz_rows() * (INDEX_BYTES + SPARSE_DIM * F32_BYTES);
            let iters = iters_for(bytes, mode);
            for op in ["sparse_allreduce", "sparse_hybrid_alltoallv"] {
                let g = grads.clone();
                let ns = match op {
                    "sparse_allreduce" => time_group(world, iters, move |rank, ep| {
                        let cfg = SsarConfig { vocab: SWEEP_VOCAB, crossover: SWEEP_CROSSOVER };
                        let out = sparse_allreduce(ep, &g[rank], &cfg);
                        std::hint::black_box(&out);
                    }),
                    _ => time_group(world, iters, move |rank, ep| {
                        let out = hybrid_sparse_allreduce(ep, &g[rank]);
                        std::hint::black_box(&out);
                    }),
                };
                let gb_per_s = if ns == 0 { 0.0 } else { bytes as f64 / ns as f64 };
                let e = Entry { op, world, bytes, density, iters, ns_per_iter: ns, gb_per_s };
                println!(
                    "{:<26} world={world} δ={density:<8} {:>9} B  {:>12} ns/iter  {:>8.3} GB/s  ({} iters)",
                    e.op, e.bytes, e.ns_per_iter, e.gb_per_s, e.iters
                );
                entries.push(e);
            }
            let n = entries.len();
            let (ssar, hybrid) = (&entries[n - 2], &entries[n - 1]);
            if ssar.ns_per_iter > 0 && hybrid.ns_per_iter > 0 {
                println!(
                    "    sparse-native vs hybrid at δ={density}: {:.2}x",
                    hybrid.ns_per_iter as f64 / ssar.ns_per_iter as f64
                );
            }
        }
    }
    entries
}

fn run_sweep(mode: Mode) -> Vec<Entry> {
    let sizes: &[usize] = match mode {
        Mode::Quick => &QUICK_BYTES,
        Mode::Full => &FULL_BYTES,
    };
    let ops = [
        "ring_allreduce",
        "ring_allreduce_pipelined",
        "allgather_dense",
        "alltoallv_sparse",
        "broadcast_dense",
    ];
    let mut entries = Vec::new();
    for &op in &ops {
        for &world in &WORLDS {
            for &bytes in sizes {
                let e = bench_cell(op, world, bytes, mode);
                println!(
                    "{:<26} world={world} {:>9} B  {:>12} ns/iter  {:>8.3} GB/s  ({} iters)",
                    e.op, e.bytes, e.ns_per_iter, e.gb_per_s, e.iters
                );
                entries.push(e);
            }
        }
    }
    entries
}

/// Head-of-line-blocking scenario (§5.2's second dimension): one bulk
/// low-priority dense AllReduce hits the wire, then a stream of tiny
/// high-priority token gathers arrives behind it. With chunking off the
/// gathers wait for the whole bulk op; with chunking on they preempt it
/// between segments. Recorded as `hol_p95_wait_*` entries whose
/// `ns_per_iter` is the p95 high-priority *queue wait* (not a
/// throughput), so `gb_per_s` is left 0.
const HOL_WORLD: usize = 4;
/// 32 MiB of f32 per rank — large enough that the unchunked AllReduce
/// occupies the wire for tens of milliseconds.
const HOL_BULK_ELEMS: usize = 8 << 20;
const HOL_GATHERS: usize = 24;
const HOL_GATHER_TOKENS: usize = 64;

fn bench_hol(chunk: Option<usize>) -> Entry {
    use embrace_collectives::{CommOp, CommResult, CommScheduler};
    let endpoints = slot_mesh(HOL_WORLD);
    let mut waits: Vec<f64> = Vec::new();
    let mut min_bulk_chunks = u32::MAX;
    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                scope.spawn(move || {
                    let mut sched = match chunk {
                        Some(cb) => CommScheduler::spawn_chunked_observed(ep, cb),
                        None => CommScheduler::spawn_observed(ep),
                    };
                    let bulk = sched.submit(
                        100,
                        "bulk".to_string(),
                        CommOp::AllReduceDense(vec![1.0; HOL_BULK_ELEMS]),
                    );
                    // Let the bulk op reach the wire before the urgent
                    // stream starts (the head-of-line condition).
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    let mut hp = Vec::new();
                    for k in 0..HOL_GATHERS {
                        hp.push(sched.submit(
                            -10,
                            format!("hp{k}"),
                            CommOp::GatherTokens(vec![k as u32; HOL_GATHER_TOKENS]),
                        ));
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    }
                    for t in hp {
                        assert!(!matches!(t.wait(), CommResult::Failed(_)), "hp gather failed");
                    }
                    assert!(!matches!(bulk.wait(), CommResult::Failed(_)), "bulk failed");
                    assert!(!matches!(sched.flush(), CommResult::Failed(_)), "flush failed");
                    sched.observation().expect("observed scheduler")
                })
            })
            .collect();
        for h in handles {
            let (_spans, timings) = h.join().expect("hol rank panicked");
            for t in &timings {
                if t.tag.starts_with("hp") {
                    waits.push(t.queue_wait());
                } else if t.tag == "bulk" {
                    min_bulk_chunks = min_bulk_chunks.min(t.chunks);
                }
            }
        }
    });
    if chunk.is_some() {
        assert!(min_bulk_chunks > 1, "bulk op must split into segments, got {min_bulk_chunks}");
    }
    waits.sort_by(f64::total_cmp);
    let p95 = waits[(waits.len() * 95 / 100).min(waits.len() - 1)];
    Entry {
        op: if chunk.is_some() { "hol_p95_wait_chunked" } else { "hol_p95_wait_nochunk" },
        world: HOL_WORLD,
        bytes: HOL_BULK_ELEMS * F32_BYTES,
        density: 0.0,
        iters: waits.len() as u64,
        ns_per_iter: (p95 * 1e9) as u64,
        gb_per_s: 0.0,
    }
}

/// Run the head-of-line scenario chunking-off then chunking-on and print
/// the p95 queue-wait ratio (the acceptance number for PR 5 is ≥5×).
fn run_hol() -> Vec<Entry> {
    let mut entries = Vec::new();
    for chunk in [None, Some(embrace_collectives::DEFAULT_CHUNK_BYTES)] {
        let e = bench_hol(chunk);
        println!(
            "{:<26} world={} {:>9} B  {:>12} ns p95 wait  ({} hp ops)",
            e.op, e.world, e.bytes, e.ns_per_iter, e.iters
        );
        entries.push(e);
    }
    let (off, on) = (entries[0].ns_per_iter as f64, entries[1].ns_per_iter.max(1) as f64);
    println!("head-of-line p95 queue-wait improvement: {:.1}x", off / on);
    entries
}

/// Print per-cell deltas of `label` against the stored "before" run.
fn report_delta(doc: &json::Value, label: &str) {
    let Some(runs) = doc.get("runs").and_then(|r| r.as_arr()) else { return };
    let find = |l: &str| runs.iter().find(|r| r.get("label").and_then(|v| v.as_str()) == Some(l));
    let (Some(before), Some(after)) = (find("before"), find(label)) else { return };
    if label == "before" {
        return;
    }
    let entries = |r: &json::Value| -> Vec<(String, usize, usize, f64, f64)> {
        r.get("entries")
            .and_then(|e| e.as_arr())
            .map(|es| {
                es.iter()
                    .filter_map(|e| {
                        Some((
                            e.get("op")?.as_str()?.to_string(),
                            e.get("world")?.as_f64()? as usize,
                            e.get("bytes")?.as_f64()? as usize,
                            e.get("density").and_then(json::Value::as_f64).unwrap_or(0.0),
                            e.get("gb_per_s")?.as_f64()?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base = entries(before);
    println!("\ndelta vs \"before\":");
    for (op, world, bytes, density, gbs) in entries(after) {
        if let Some((.., b)) = base
            .iter()
            .find(|(o, w, by, d, _)| *o == op && *w == world && *by == bytes && *d == density)
        {
            if *b > 0.0 {
                println!("{op:<26} world={world} {bytes:>9} B  {:>6.2}x", gbs / b);
            }
        }
    }
}

fn main() {
    let mut label = "current".to_string();
    let mut out = "BENCH_collectives.json".to_string();
    let mut mode = Mode::Full;
    let mut compare_labels: Option<(String, String)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => mode = Mode::Quick,
            "--label" => label = args.next().expect("--label requires a value"),
            "--out" => out = args.next().expect("--out requires a path"),
            "--compare" => {
                let a = args.next().expect("--compare requires two labels");
                let b = args.next().expect("--compare requires two labels");
                compare_labels = Some((a, b));
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: bench_comm [--quick] [--label L] [--out F] \
                     [--compare A B]"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some((a, b)) = compare_labels {
        // Read-only mode: join two stored runs and print the speedups.
        let result = std::fs::read_to_string(&out)
            .map_err(|e| format!("read {out}: {e}"))
            .and_then(|raw| json::parse(&raw).map_err(|e| format!("parse {out}: {e}")))
            .and_then(|doc| compare(&doc, &a, &b));
        if let Err(e) = result {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    println!("bench_comm: label={label} mode={} transport=slot", mode.as_str());
    let mut entries = run_sweep(mode);
    entries.extend(run_density_sweep(mode));
    entries.extend(run_hol());
    let new_run = fmt_run(&label, mode, &entries);
    let doc = merge_into_file(&out, &label, new_run).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    std::fs::write(&out, &doc).unwrap_or_else(|e| {
        eprintln!("write {out}: {e}");
        std::process::exit(1);
    });
    // Self-validation gate: the trajectory must stay machine-readable.
    let parsed = json::parse(&doc).unwrap_or_else(|e| {
        eprintln!("written {out} does not re-parse: {e}");
        std::process::exit(1);
    });
    let n_runs = parsed.get("runs").and_then(|r| r.as_arr()).map_or(0, <[json::Value]>::len);
    println!("\nwrote {out} ({n_runs} run(s)); re-parse OK");
    report_delta(&parsed, &label);
}
