//! Figure 11: convergence of EmbRace vs Horovod AllGather.
//!
//! The paper traces (a) PPL-vs-steps for LM and (b) BLEU-vs-epochs for
//! GNMT-8, showing both methods converge identically. Here two real
//! (small) models train end-to-end through the functional collectives on
//! 8 worker threads:
//!
//! * an LM-proxy — one embedding table + dense projection (Fig. 11a
//!   analog, loss plays the role of PPL);
//! * a translation-proxy — encoder + decoder embeddings feeding a tanh
//!   MLP through the autograd tape (Fig. 11b analog);
//! * an unrolled-LSTM language model (the actual model class of the
//!   paper's LM benchmark) whose per-step embedding gradient is the
//!   duplicate-heavy concatenation over timesteps.
//!
//! With the modified Adam (§5.7) each pair of curves must coincide to
//! float precision.

use embrace_trainer::{
    train_convergence, train_lstm_lm, train_translation, ConvergenceConfig, TrainMethod,
};

fn print_curves(
    label: &str,
    base: &embrace_trainer::ConvergenceResult,
    embrace: &embrace_trainer::ConvergenceResult,
) {
    println!("--- {label} ---");
    println!("step   AllGather-loss   EmbRace-loss");
    let n = base.losses.len();
    for (i, (a, b)) in base.losses.iter().zip(&embrace.losses).enumerate() {
        if i % 10 == 0 || i + 1 == n {
            println!("{i:>4}   {a:>14.4}   {b:>12.4}");
        }
    }
    let rel = base.max_curve_diff(embrace) / base.losses[0].max(1.0);
    println!("max relative curve divergence: {rel:.2e}\n");
    assert!(rel < 1e-3, "curves must coincide");
}

fn main() {
    println!("Figure 11: convergence, EmbRace vs Horovod AllGather (8 workers)\n");

    let cfg = ConvergenceConfig {
        world: 8,
        vocab: 500,
        dim: 16,
        tokens_per_batch: 96,
        steps: 80,
        lr: 0.05,
        zipf_s: 0.9,
        seed: 11,
        ..Default::default()
    };
    let base = train_convergence(TrainMethod::HorovodAllGather, &cfg);
    let embrace = train_convergence(TrainMethod::EmbRace, &cfg);
    print_curves("(a) LM-proxy: loss vs steps (PPL analog)", &base, &embrace);

    let tcfg = ConvergenceConfig { vocab: 400, tokens_per_batch: 64, lr: 0.03, ..cfg };
    let base = train_translation(TrainMethod::HorovodAllGather, &tcfg);
    let embrace = train_translation(TrainMethod::EmbRace, &tcfg);
    print_curves(
        "(b) translation-proxy (enc+dec embeddings): loss vs steps (BLEU analog)",
        &base,
        &embrace,
    );

    let lcfg = ConvergenceConfig { vocab: 200, dim: 8, tokens_per_batch: 80, lr: 0.06, ..cfg };
    let base = train_lstm_lm(TrainMethod::HorovodAllGather, &lcfg);
    let embrace = train_lstm_lm(TrainMethod::EmbRace, &lcfg);
    print_curves("(c) unrolled-LSTM LM (the paper LM's model class)", &base, &embrace);

    println!("As in the paper, the synchronous semantics (and the step-state Adam");
    println!("modification) make EmbRace's convergence indistinguishable from the");
    println!("baseline on all three model shapes.");
}
