//! Design-choice ablation: block-granularity communication vs tensor
//! fusion vs fine partitioning.
//!
//! §4.2.1 argues against ByteScheduler-style tensor partitioning (startup
//! overhead, poor bandwidth for small messages) and for whole-block
//! scheduling. The other direction — fusing *multiple* blocks into big
//! buckets, as Horovod does — amortises latency further but delays the
//! earliest-needed gradients. This harness sweeps the fusion bucket size
//! for the dense plane of Horovod AllReduce and of EmbRace.

use embrace_baselines::MethodId;
use embrace_models::ModelId;
use embrace_simnet::Cluster;
use embrace_trainer::report::table;
use embrace_trainer::{simulate, SimConfig};

fn main() {
    let cluster = Cluster::rtx3090(16);
    let mib = 1024.0 * 1024.0;
    println!("Fusion ablation on 16 RTX3090 GPUs (step time, ms)\n");
    for method in [MethodId::HorovodAllReduce, MethodId::EmbRace] {
        println!("{}:", method.name());
        let mut rows = Vec::new();
        for model in [ModelId::Gnmt8, ModelId::Transformer, ModelId::BertBase] {
            let base = simulate(&SimConfig::new(method, model, cluster)).step_time * 1e3;
            let mut row = vec![format!("{model:?}"), format!("{base:.2}")];
            for bucket_mib in [2.0, 8.0, 32.0, 128.0, 4096.0] {
                let t =
                    simulate(&SimConfig::new(method, model, cluster).with_fusion(bucket_mib * mib))
                        .step_time
                        * 1e3;
                row.push(format!("{t:.2}"));
            }
            rows.push(row);
        }
        print!(
            "{}",
            table(
                &["model", "per-block", "2 MiB", "8 MiB", "32 MiB", "128 MiB", "all-in-one"],
                &rows
            )
        );
        println!();
    }
    println!("Moderate fusion amortises the per-collective latency of many small");
    println!("blocks; extreme fusion (one giant bucket) serialises everything behind");
    println!("the last backward pass and removes the overlap scheduling exploits —");
    println!("the same trade-off that makes the paper communicate whole blocks rather");
    println!("than partitions or monolithic buffers.");
}
