//! Table 3: average sparse embedding gradient sizes (MiB) under Vertical
//! Sparse Scheduling — original, coalesced, prioritized — for the paper's
//! RTX3090 batch sizes (128 / 128 / 5120 tokens / 32).

use embrace_models::{grad_stats, ModelSpec};
use embrace_simnet::GpuKind;
use embrace_trainer::report::table;

fn main() {
    let paper = [
        ("LM", 8.7, 6.9, 2.6),
        ("GNMT-8", 26.0, 12.2, 5.8),
        ("Transformer", 35.2, 16.6, 8.9),
        ("BERT-base", 36.0, 5.5, 3.2),
    ];
    let mut rows = Vec::new();
    for (spec, (pname, po, pc, pp)) in ModelSpec::all().iter().zip(paper) {
        assert_eq!(spec.name, pname);
        let st = grad_stats(spec, GpuKind::Rtx3090, 8, 10, 42);
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.1}", st.original_mib()),
            format!("{po:.1}"),
            format!("{:.1}", st.coalesced_mib()),
            format!("{pc:.1}"),
            format!("{:.1}", st.prior_mib()),
            format!("{pp:.1}"),
        ]);
    }
    println!("Table 3: average sparse embedding gradient size (MiB), 8 workers,");
    println!("paper batch sizes on RTX3090; 'paper' columns are the published values\n");
    print!(
        "{}",
        table(&["model", "original", "paper", "coalesced", "paper", "prioritized", "paper"], &rows)
    );
    println!("\nPrioritized = rows of unique(D_cur[rank]) also present in the gathered");
    println!("next-iteration data D_next (Algorithm 1's prior gradient G_p).");
}
