//! Extension ablation: stragglers in synchronous training, and why
//! column-wise partitioning matters for them.
//!
//! Synchronous data parallelism waits for the slowest worker at every
//! collective. Two distinct straggler sources exist:
//!
//! 1. *hardware* stragglers (a slow GPU/node) — hit every method alike;
//! 2. *data-induced* stragglers — a worker with more work than its peers.
//!    Row-wise embedding partitioning creates these structurally (hot
//!    Zipf rows concentrate on one shard, §4.1.1); column-wise
//!    partitioning cannot.
//!
//! Part (a) quantifies 1 with the multi-worker DES; part (b) quantifies 2
//! by pricing the per-round AlltoAllv imbalance as per-worker service
//! time skew.

use embrace_core::partition::{column_payload_matrix, receive_imbalance, row_payload_matrix};
use embrace_models::{BatchGen, ModelId, ModelSpec};
use embrace_simnet::{synchronous_step, GpuKind};
use embrace_trainer::report::table;

fn main() {
    println!("(a) Hardware straggler: one of 4 workers slowed by factor f");
    println!("    (BP 100 ms, AllReduce 30 ms, FP 50 ms per step)\n");
    let mut rows = Vec::new();
    for f in [1.0, 1.1, 1.25, 1.5, 2.0] {
        let scales = [f, 1.0, 1.0, 1.0];
        let r = synchronous_step(&scales, 0.100, 0.030, 0.050);
        let baseline = synchronous_step(&[1.0; 4], 0.100, 0.030, 0.050).makespan;
        rows.push(vec![
            format!("{f:.2}x"),
            format!("{:.1}", r.makespan * 1e3),
            format!("{:+.1}%", (r.makespan / baseline - 1.0) * 100.0),
            format!(
                "{:.0}%",
                r.worker_busy[1] / r.makespan * 100.0 // a healthy worker's utilisation
            ),
        ]);
    }
    print!("{}", table(&["slowdown", "step ms", "step delta", "healthy-worker util"], &rows));

    println!("\n(b) Data-induced straggler: embedding-shard service-time skew");
    println!("    (max/mean gradient bytes a shard must serve, 16 workers)\n");
    let mut rows = Vec::new();
    for spec in ModelSpec::all() {
        let vocab: usize = spec.embeddings.iter().map(|e| e.vocab).sum();
        let batches: Vec<Vec<u32>> = (0..16)
            .map(|r| BatchGen::from_spec(&spec, GpuKind::Rtx3090, r, 7).next_batch())
            .collect();
        let row_m = row_payload_matrix(&batches, vocab, spec.dim());
        let counts: Vec<usize> = batches.iter().map(Vec::len).collect();
        let col_m = column_payload_matrix(&counts, spec.dim());
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.2}x", receive_imbalance(&row_m)),
            format!("{:.2}x", receive_imbalance(&col_m)),
        ]);
    }
    print!("{}", table(&["model", "row-wise skew", "column-wise skew"], &rows));
    println!("\nA hardware straggler penalises everyone equally; the data-induced kind");
    println!("is a design choice — row-wise shards serve 11-15x their fair share on");
    println!("Zipf batches while column-wise shards stay at 1.00x, which is exactly");
    println!("the §4.1.1 argument. (See ablation_partition for the resulting AlltoAll");
    println!("round times.)");
    let _ = ModelId::ALL;
}
