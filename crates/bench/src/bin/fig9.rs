//! Figure 9: ablation of EmbRace's two techniques on 16 and 4 RTX3090
//! GPUs. Training speeds normalized by Horovod AllGather, as the paper
//! plots them:
//!
//! * Horovod AllGather → baseline (1.0);
//! * EmbRace w/o Scheduling → adds Sparsity-aware Hybrid Communication;
//! * EmbRace → adds 2D Communication Scheduling on top.

use embrace_baselines::MethodId;
use embrace_models::ModelId;
use embrace_simnet::Cluster;
use embrace_trainer::report::table;
use embrace_trainer::{simulate, SimConfig};

fn main() {
    for (world, band) in [
        (16, "paper: hybrid comm +2.9-51.0%, scheduling another +3.0-26.0%"),
        (4, "paper: hybrid comm +1.5-14.6%, scheduling another +0.7-7.5%"),
    ] {
        let cluster = Cluster::rtx3090(world);
        println!("Figure 9: ablation on {world} RTX3090 GPUs ({band})\n");
        let mut rows = Vec::new();
        for model in ModelId::ALL {
            let base = simulate(&SimConfig::new(MethodId::HorovodAllGather, model, cluster))
                .tokens_per_sec;
            let hybrid =
                simulate(&SimConfig::new(MethodId::EmbRaceNoSched, model, cluster)).tokens_per_sec;
            let full = simulate(&SimConfig::new(MethodId::EmbRace, model, cluster)).tokens_per_sec;
            rows.push(vec![
                format!("{model:?}"),
                format!("{:.3}", 1.0),
                format!("{:.3}", hybrid / base),
                format!("{:.3}", full / base),
                format!("{:+.1}%", (hybrid / base - 1.0) * 100.0),
                format!("{:+.1}%", (full / hybrid - 1.0) * 100.0),
            ]);
        }
        print!(
            "{}",
            table(
                &["model", "AllGather", "+hybrid comm", "+2D sched", "hybrid gain", "sched gain"],
                &rows
            )
        );
        println!();
    }
}
