//! Extension: scaling beyond the paper's 16 GPUs.
//!
//! §5.6: "Due to the limitation of the number of devices, we did not test
//! on more server nodes. With the help of better scalability, we expect
//! that EmbRace will have more significant advantages on more GPUs."
//! The simulator has no such limitation — project the Fig. 7/10
//! experiment out to 128 GPUs and check the expectation.

use embrace_baselines::MethodId;
use embrace_models::ModelId;
use embrace_simnet::Cluster;
use embrace_trainer::report::table;
use embrace_trainer::{simulate, SimConfig};

fn main() {
    println!("Extension: projected speedup of EmbRace over the best baseline,");
    println!("RTX3090 calibration, 4 GPUs/node, up to 32 nodes\n");
    let headers = ["GPUs", "LM", "GNMT-8", "Transformer", "BERT-base"];
    let mut rows = Vec::new();
    for world in [4usize, 8, 16, 32, 64, 128] {
        let cluster = Cluster::rtx3090(world);
        let mut row = vec![world.to_string()];
        for model in ModelId::ALL {
            let e = simulate(&SimConfig::new(MethodId::EmbRace, model, cluster)).tokens_per_sec;
            let best = MethodId::BASELINES
                .iter()
                .map(|&m| simulate(&SimConfig::new(m, model, cluster)).tokens_per_sec)
                .fold(0.0, f64::max);
            row.push(format!("{:.2}x", e / best));
        }
        rows.push(row);
    }
    print!("{}", table(&headers, &rows));
    println!("\nThe paper's expectation holds through ~32-64 GPUs: baselines' sparse");
    println!("aggregation degrades with N while AlltoAll volume per link stays ~flat.");
    println!("Beyond that, with per-worker batches fixed, the (N-1)-round startup");
    println!("latencies dominate every method alike and margins compress — at giant");
    println!("scale the win would instead come from growing the global batch (and");
    println!("thus per-step volume) with the cluster.");
}
