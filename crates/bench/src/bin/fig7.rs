//! Figure 7: end-to-end training throughput (tokens/sec) of all four
//! models on 4/8/16 GPUs of both clusters, for EmbRace and the four
//! baselines, plus EmbRace's speedup over the best baseline (the number
//! the paper annotates on each subplot).

use embrace_baselines::MethodId;
use embrace_bench::{clusters, WORLDS};
use embrace_models::ModelId;
use embrace_trainer::report::table;
use embrace_trainer::{simulate, SimConfig};

fn main() {
    // Paper speedup bands (min-max over 4/8/16 GPUs) per subplot.
    let paper_bands = [
        (ModelId::Lm, "1.18-1.77x", "1.99-2.41x"),
        (ModelId::Gnmt8, "1.10-1.27x", "1.09-1.30x"),
        (ModelId::Transformer, "1.12-1.18x", "1.11-1.28x"),
        (ModelId::BertBase, "1.02-1.06x", "1.10-1.40x"),
    ];
    for (model, band3090, band2080) in paper_bands {
        for (ci, cluster4) in clusters(4).into_iter().enumerate() {
            let gpu = cluster4.gpu;
            let band = if ci == 0 { band3090 } else { band2080 };
            println!(
                "Figure 7: {:?} on {} (paper speedup over best baseline: {band})\n",
                model,
                gpu.name()
            );
            let headers =
                vec!["method", "4 GPUs tok/s", "8 GPUs tok/s", "16 GPUs tok/s", "speedup@16"];
            let mut rows = Vec::new();
            let mut best16 = 0.0_f64;
            let mut tput = std::collections::HashMap::new();
            for method in MethodId::ALL {
                for world in WORLDS {
                    let cluster = clusters(world)[ci];
                    let m = simulate(&SimConfig::new(method, model, cluster));
                    tput.insert((method, world), m.tokens_per_sec);
                    if world == 16 && method != MethodId::EmbRace {
                        best16 = best16.max(m.tokens_per_sec);
                    }
                }
            }
            for method in MethodId::ALL {
                let t16 = tput[&(method, 16)];
                rows.push(vec![
                    method.name().to_string(),
                    format!("{:.0}", tput[&(method, 4)]),
                    format!("{:.0}", tput[&(method, 8)]),
                    format!("{t16:.0}"),
                    if method == MethodId::EmbRace {
                        format!("{:.2}x", t16 / best16)
                    } else {
                        String::new()
                    },
                ]);
            }
            print!("{}", table(&headers, &rows));
            println!();
        }
    }
}
