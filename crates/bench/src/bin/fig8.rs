//! Figure 8: Computation Stall of all methods on 16 GPUs of both
//! clusters, normalized by EmbRace's stall (as plotted in the paper).
//!
//! For EmbRace the stall includes the Vertical Sparse Scheduling
//! computation; for the baselines it is the non-overlapped communication
//! time (§5.4). As in the paper, Horovod AllReduce's LM stall is so large
//! it dwarfs the plot — we print it anyway.

use embrace_baselines::MethodId;
use embrace_models::ModelId;
use embrace_simnet::Cluster;
use embrace_trainer::report::table;
use embrace_trainer::{simulate, SimConfig};

fn main() {
    for (cluster, band) in [
        (Cluster::rtx3090(16), "paper: EmbRace 1.45-2.56x better"),
        (Cluster::rtx2080(16), "paper: EmbRace 1.37-3.02x better"),
    ] {
        println!(
            "Figure 8: Computation Stall on 16 {} GPUs, normalized by EmbRace ({band})\n",
            cluster.gpu.name()
        );
        let headers: Vec<String> = std::iter::once("method".to_string())
            .chain(ModelId::ALL.iter().map(|m| format!("{m:?}")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut embrace_stall = std::collections::HashMap::new();
        for model in ModelId::ALL {
            let m = simulate(&SimConfig::new(MethodId::EmbRace, model, cluster));
            embrace_stall.insert(model, m.stall);
        }
        let mut rows = Vec::new();
        for method in MethodId::ALL {
            let mut row = vec![method.name().to_string()];
            for model in ModelId::ALL {
                let m = simulate(&SimConfig::new(method, model, cluster));
                row.push(format!(
                    "{:.2}x ({:.1} ms)",
                    m.stall / embrace_stall[&model],
                    m.stall * 1e3
                ));
            }
            rows.push(row);
        }
        print!("{}", table(&header_refs, &rows));
        println!();
    }
}
