//! Table 1: model size and embedding size (MiB) of the four NLP models.
//!
//! Regenerates the paper's Table 1 from the model specifications and
//! prints the paper's reported numbers alongside.

use embrace_models::ModelSpec;
use embrace_trainer::report::table;

fn main() {
    let paper = [
        ("LM", 3186.5, 3099.5, 97.27),
        ("GNMT-8", 739.1, 252.5, 34.16),
        ("Transformer", 1067.5, 263.4, 24.67),
        ("BERT-base", 417.7, 89.4, 21.42),
    ];
    let rows: Vec<Vec<String>> = ModelSpec::all()
        .iter()
        .zip(paper)
        .map(|(s, (pname, pm, pe, pr))| {
            assert_eq!(s.name, pname);
            vec![
                s.name.to_string(),
                format!("{:.1}", s.model_mib()),
                format!("{pm:.1}"),
                format!("{:.1}", s.embedding_mib()),
                format!("{pe:.1}"),
                format!("{:.2}%", s.embedding_ratio() * 100.0),
                format!("{pr:.2}%"),
            ]
        })
        .collect();
    println!(
        "Table 1: model size and embedding size (MiB); 'paper' columns are the published values\n"
    );
    print!("{}", table(&["model", "size", "paper", "emb size", "paper", "ratio", "paper"], &rows));
}
