//! Related-work ablation: gradient compression vs sparsity-aware
//! communication for the embedding plane.
//!
//! §6 cites gradient compression (DGC top-k, QSGD quantization) as
//! orthogonal work. This harness compares, for each model's embedding
//! gradient on 16 RTX3090 GPUs, the bytes and estimated transfer time of:
//!
//! * densified AllReduce (Horovod-AllReduce baseline),
//! * 8-bit quantized AllReduce (4× smaller, still dense-shaped, lossy),
//! * top-k AllGather keeping as many *elements* as the true non-zeros
//!   (DGC-style, lossy in general),
//! * EmbRace's AlltoAll of the exact non-zero rows (lossless).

use embrace_baselines::compression::topk_nbytes;
use embrace_models::{grad_stats, ModelSpec};
use embrace_simnet::{Cluster, CostModel, GpuKind};
use embrace_trainer::report::table;

fn main() {
    let cluster = Cluster::rtx3090(16);
    let cm = CostModel::new(cluster);
    let mib = 1024.0 * 1024.0;
    println!("Compression vs sparsity-aware communication (embedding plane, 16 RTX3090)\n");
    let mut rows = Vec::new();
    for spec in ModelSpec::all() {
        let st = grad_stats(&spec, GpuKind::Rtx3090, 16, 3, 42);
        let dense_bytes = spec.embedding_mib() * mib;
        let quant_bytes = dense_bytes / 4.0;
        // DGC keeps the same number of elements the sparse gradient holds.
        let k = (st.rows_coalesced * spec.dim() as f64) as usize;
        let topk_bytes = topk_nbytes(k) as f64;
        let exact_bytes = st.coalesced_mib() * mib;

        let t_dense = cm.ring_allreduce(dense_bytes);
        let t_quant = cm.ring_allreduce(quant_bytes);
        let t_topk = cm.allgather(topk_bytes);
        let t_embrace = 2.0 * cm.alltoall(exact_bytes);
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.1} ({:.0} MiB)", t_dense * 1e3, dense_bytes / mib),
            format!("{:.1} ({:.0} MiB)", t_quant * 1e3, quant_bytes / mib),
            format!("{:.1} ({:.0} MiB)", t_topk * 1e3, topk_bytes / mib),
            format!("{:.1} ({:.0} MiB)", t_embrace * 1e3, exact_bytes / mib),
        ]);
    }
    print!(
        "{}",
        table(&["model", "dense AR ms", "8-bit AR ms", "top-k AG ms", "EmbRace A2A ms"], &rows)
    );
    println!("\nQuantization shaves a constant 4x off the dense transfer but still");
    println!("moves every zero; top-k matches the non-zero volume but pays AllGather's");
    println!("N-scaling and is lossy. Exploiting the *structural* row sparsity with");
    println!("AlltoAll is both smaller and lossless — compression remains orthogonal");
    println!("(it could further shrink EmbRace's dense plane).");
}
