//! Figures 2 & 6: execution-timeline comparison of the scheduling schemes.
//!
//! Prints, per model, the steady step time and Computation Stall under
//! (a) default FIFO scheduling, (b) Block-level Horizontal Scheduling and
//! (c) full 2D Communication Scheduling — the quantitative content of the
//! paper's timeline figures.

use embrace_baselines::MethodId;
use embrace_models::ModelId;
use embrace_simnet::Cluster;
use embrace_trainer::timeline::{render_fig6, render_step_gantt};

fn main() {
    let cluster = Cluster::rtx3090(16);
    println!("Figures 2/6: scheduling-scheme timelines on 16 RTX3090 GPUs\n");
    for model in ModelId::ALL {
        println!("--- {model:?} ---");
        print!("{}", render_fig6(model, cluster));
        println!();
    }
    println!("One steady GNMT-8 step under each scheme (f/b = FP/BP kernels, v =");
    println!("vertical scheduling, a = dense AllReduce, e = embedding data, p/d =");
    println!("prior/delayed gradients, g = whole-gradient AlltoAll, . = idle):\n");
    for (label, method) in [
        ("Fig. 6a  default FIFO", MethodId::EmbRaceNoSched),
        ("Fig. 6b  horizontal", MethodId::EmbRaceHorizontal),
        ("Fig. 6c  2D scheduling", MethodId::EmbRace),
    ] {
        println!("{label}:");
        print!("{}", render_step_gantt(method, ModelId::Gnmt8, cluster, 100));
        println!();
    }
    println!("Reading: FIFO leaves all communication serialized against the next FP");
    println!("(Fig. 6a); the priority queue overlaps dense transfers with FP (Fig. 6b);");
    println!("the vertical split shrinks the sparse communication blocking the embedding");
    println!("FP to the prior rows only (Fig. 6c).");
}
