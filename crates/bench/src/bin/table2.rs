//! Table 2: analytic communication overhead of a sparse tensor under each
//! aggregation approach.
//!
//! Prints the closed forms and evaluates them on the paper's running
//! example (GNMT-8's 252.5 MiB embedding) across densities and GPU
//! counts, confirming the orderings §4.1.2 derives: AlltoAll, AllReduce
//! and PS scale well with N while AllGather is linear in N, and AlltoAll
//! wins whenever α < 1.

use embrace_simnet::cost::analytic;
use embrace_trainer::report::table;

fn main() {
    println!("Table 2: communication overhead formulas (B = bandwidth, β = latency)\n");
    println!("  AlltoAll   2(N-1)(αM/(NB) + β)");
    println!("  AllReduce  2(N-1)( M/(NB) + β)");
    println!("  PS         2N(αM/(SB) + β)");
    println!("  AllGather  (N-1)(αM/B + β)\n");

    let m = 252.5 * 1024.0 * 1024.0; // GNMT-8 embedding bytes
    let bw = 11.0e9;
    let beta = 30e-6;
    println!(
        "Evaluated for M = 252.5 MiB (GNMT-8 embedding), B = 11 GB/s, β = 30 µs, S = n = N/4:\n"
    );
    let mut rows = Vec::new();
    for n in [4.0_f64, 8.0, 16.0] {
        for alpha in [0.01, 0.1, 0.5, 1.0] {
            let servers = (n / 4.0).max(1.0);
            rows.push(vec![
                format!("{n:.0}"),
                format!("{alpha:.2}"),
                format!("{:.2}", analytic::alltoall(alpha, m, n, bw, beta) * 1e3),
                format!("{:.2}", analytic::allreduce(m, n, bw, beta) * 1e3),
                format!("{:.2}", analytic::ps(alpha, m, n, servers, bw, beta) * 1e3),
                format!("{:.2}", analytic::allgather(alpha, m, n, bw, beta) * 1e3),
            ]);
        }
    }
    print!(
        "{}",
        table(&["N", "alpha", "AlltoAll ms", "AllReduce ms", "PS ms", "AllGather ms"], &rows)
    );
    println!("\nAs in the paper: for sparse tensors (alpha << 1) AlltoAll is fastest, and");
    println!("AllGather's time grows ~linearly with N while the others stay nearly flat.");
}
