//! Sensitivity sweep: how EmbRace's advantage depends on network
//! bandwidth (robustness analysis beyond the paper's single 100 Gb/s
//! fabric). As bandwidth grows, all methods converge toward the compute
//! bound and EmbRace's margin narrows; as it shrinks, sparse-aware
//! communication dominates — the regime the paper's conclusion targets
//! ("training models swiftly with limited resources still matters").

use embrace_baselines::MethodId;
use embrace_models::ModelId;
use embrace_simnet::Cluster;
use embrace_trainer::report::table;
use embrace_trainer::{simulate, SimConfig};

fn main() {
    println!("Bandwidth sweep: EmbRace speedup over the best baseline");
    println!("(16 GPUs, RTX3090 compute calibration, 4 GPUs/node)\n");
    let headers = ["inter-node Gbps", "LM", "GNMT-8", "Transformer", "BERT-base"];
    let mut rows = Vec::new();
    for gbps in [10.0, 25.0, 50.0, 100.0, 200.0, 400.0] {
        let mut cluster = Cluster::rtx3090(16);
        // Effective payload rate ≈ 88% of line rate, as in the defaults.
        cluster.net.inter_bw = gbps / 8.0 * 1e9 * 0.88;
        let mut row = vec![format!("{gbps:.0}")];
        for model in ModelId::ALL {
            let embrace = simulate(&SimConfig::new(MethodId::EmbRace, model, cluster));
            let best = MethodId::BASELINES
                .iter()
                .map(|&m| simulate(&SimConfig::new(m, model, cluster)).tokens_per_sec)
                .fold(0.0, f64::max);
            row.push(format!("{:.2}x", embrace.tokens_per_sec / best));
        }
        rows.push(row);
    }
    print!("{}", table(&headers, &rows));
    println!("\nThe margin peaks at moderate bandwidth: on very slow fabrics the");
    println!("host-memory-bound PS baselines stop caring about the NIC (and even the");
    println!("prior gradients are expensive to race), while on very fast fabrics every");
    println!("method hits the compute bound. The paper's 100 Gb/s testbeds sit in the");
    println!("regime where sparse-aware communication pays the most.");
}
