//! Figure 4: communication overhead of an embedding gradient (GNMT-8,
//! 252.5 MiB) as a function of sparsity, per aggregation scheme, on the
//! paper's two probe topologies:
//!
//! * (a) 2 nodes × 4 RTX3090 — OmniReduce omitted (it only supports one
//!   GPU per node, as the paper notes);
//! * (b) 4 nodes × 1 RTX3090 — all five schemes.

use embrace_simnet::{Cluster, CostModel};
use embrace_trainer::report::table;

fn series(cluster: Cluster, with_omni: bool) {
    let cm = CostModel::new(cluster);
    let m = 252.5 * 1024.0 * 1024.0;
    let mut headers = vec!["sparsity", "AlltoAll ms", "AllReduce ms", "AllGather ms", "PS ms"];
    if with_omni {
        headers.push("OmniReduce ms");
    }
    let mut rows = Vec::new();
    for sparsity in [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99] {
        let alpha = 1.0 - sparsity;
        let payload = alpha * m;
        // AlltoAll appears twice per step (data + grads), as in Table 2.
        let mut row = vec![
            format!("{:.0}%", sparsity * 100.0),
            format!("{:.2}", 2.0 * cm.alltoall(payload) * 1e3),
            format!("{:.2}", cm.ring_allreduce(m) * 1e3),
            format!("{:.2}", cm.allgather(payload) * 1e3),
            format!("{:.2}", cm.ps(payload, cluster.nodes) * 1e3),
        ];
        if with_omni {
            row.push(format!("{:.2}", cm.omnireduce(m, alpha) * 1e3));
        }
        rows.push(row);
    }
    print!("{}", table(&headers, &rows));
}

fn main() {
    println!("Figure 4: embedding-gradient communication overhead vs sparsity");
    println!("(GNMT-8 embedding, 252.5 MiB)\n");
    println!("(a) 2 nodes x 4 RTX3090:");
    series(Cluster::fig4a(), false);
    println!("\n(b) 4 nodes x 1 RTX3090:");
    series(Cluster::fig4b(), true);
    println!("\nPaper shape check: in (a) AlltoAll wins beyond ~40% sparsity; in (b)");
    println!("AlltoAll wins at every sparsity and OmniReduce improves with sparsity");
    println!("but trails AlltoAll due to its small divided messages.");
}
