//! `embrace-sim` — the command-line driver: simulate any method × model ×
//! cluster × scheduling-knob combination and print its metrics.
//!
//! ```text
//! cargo run --release -p embrace-bench --bin embrace_sim -- \
//!     --model transformer --gpus 16 --method embrace --order preemptive
//! ```

use embrace_baselines::MethodId;
use embrace_bench::cli::{parse_args, CliArgs};
use embrace_bench::WORLDS;
use embrace_trainer::report::table;
use embrace_trainer::{simulate, SimConfig};

fn main() {
    // `embrace_sim verify-plan`: static comm-plan verification + model
    // checking instead of simulation.
    if std::env::args().nth(1).as_deref() == Some("verify-plan") {
        match embrace_bench::verify_plan::run(std::env::args().skip(2)) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("verify-plan FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
    // `embrace_sim trace`: export a Chrome trace_event timeline.
    if std::env::args().nth(1).as_deref() == Some("trace") {
        match embrace_bench::trace_cmd::run(std::env::args().skip(2)) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("trace FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
    // `embrace_sim scenarios`: the elastic fault × recovery-policy
    // capacity-planning matrix on the live threaded trainer.
    if std::env::args().nth(1).as_deref() == Some("scenarios") {
        match embrace_bench::scenarios::run(std::env::args().skip(2)) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("scenarios FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
    // `embrace_sim serve`: Zipf request replay against the sharded
    // embedding service (lookup/push latency + cache hit-rate bench).
    if std::env::args().nth(1).as_deref() == Some("serve") {
        match embrace_bench::serve_cmd::run(std::env::args().skip(2)) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("serve FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("embrace-sim") { 0 } else { 2 });
        }
    };
    if args.grid {
        run_grid(&args);
    } else {
        run_one(&args);
    }
}

fn run_one(args: &CliArgs) {
    let cfg = args.sim_config();
    let m = simulate(&cfg);
    let cluster = args.cluster();
    println!(
        "{} / {:?} on {} x {} ({} nodes x {} GPUs)",
        args.method.name(),
        args.model,
        cluster.world(),
        cluster.gpu.name(),
        cluster.nodes,
        cluster.gpus_per_node
    );
    println!("  step time          {:>10.3} ms", m.step_time * 1e3);
    println!("  model compute      {:>10.3} ms", m.compute_time * 1e3);
    println!("  computation stall  {:>10.3} ms", m.stall * 1e3);
    println!("  throughput         {:>10.0} tokens/s", m.tokens_per_sec);
}

fn run_grid(args: &CliArgs) {
    let gpu = args.cluster().gpu;
    println!("{:?} on {}: full method grid\n", args.model, gpu.name());
    let mut rows = Vec::new();
    for method in MethodId::ALL {
        let mut row = vec![method.name().to_string()];
        for world in WORLDS {
            let mut a = args.clone();
            a.gpus = world;
            let mut cfg = SimConfig::new(method, args.model, a.cluster());
            cfg.steps = args.steps;
            let m = simulate(&cfg);
            row.push(format!("{:.0}", m.tokens_per_sec));
        }
        rows.push(row);
    }
    print!("{}", table(&["method", "4 GPUs tok/s", "8 GPUs tok/s", "16 GPUs tok/s"], &rows));
}
