//! `bench_kernels` — wall-clock microbenchmarks of the reduce kernels
//! (`embrace_tensor::kernels`): the explicit-width lane kernels every
//! collective reduce site now calls, against their scalar twins, across
//! payloads from 1 KiB to 16 MiB.
//!
//! ```text
//! bench_kernels                       # full sweep, label "kernels"
//! bench_kernels --quick               # CI-sized sweep (2 sizes)
//! bench_kernels --label pr9 --out BENCH_collectives.json
//! ```
//!
//! Entries land in the same `bench-collectives-v1` trajectory file as
//! `bench_comm`, under a `kernels_*` op family with `world = 1` (the
//! kernels are single-threaded; the interesting axis is bytes). Use
//! `bench_comm --compare` to diff labels. Like `bench_comm`, the
//! written file is re-parsed before exit so CI catches schema drift.
//!
//! `gb_per_s` counts the destination payload only (same convention as
//! the collectives' goodput): an `add_assign` over N bytes is reported
//! as N bytes moved, though it streams 2N in and N out.

use embrace_bench::record::{fmt_run, merge_into_file, Entry, Mode};
use embrace_obs::json;
use embrace_tensor::{kernels, F32_BYTES};
use std::time::Instant;

const FULL_BYTES: [usize; 6] = [1 << 10, 16 << 10, 64 << 10, 1 << 20, 4 << 20, 16 << 20];
const QUICK_BYTES: [usize; 2] = [64 << 10, 4 << 20];

/// Iteration count scaled so big payloads don't dominate wall time.
fn iters_for(bytes: usize, mode: Mode) -> u64 {
    let budget: usize = match mode {
        Mode::Quick => 64 << 20,
        Mode::Full => 512 << 20,
    };
    ((budget / bytes.max(1)) as u64).clamp(8, 4096)
}

/// Time one kernel over `iters` passes; the accumulator is re-zeroed
/// outside the timed region every pass would be unfair to the cheap
/// kernels, so values are simply allowed to grow (f32 sums of ones stay
/// exact far beyond any iteration count used here).
fn time_kernel(op: &'static str, bytes: usize, mode: Mode) -> Entry {
    let elems = (bytes / F32_BYTES).max(kernels::LANES);
    let iters = iters_for(bytes, mode);
    let mut dst = vec![0.0f32; elems];
    let mut src = vec![1.0f32; elems];
    let t0 = Instant::now();
    for _ in 0..iters {
        match op {
            "kernels_add_assign" => kernels::add_assign(&mut dst, &src),
            "kernels_add_assign_scalar" => kernels::add_assign_scalar(&mut dst, &src),
            "kernels_add_assign_both" => kernels::add_assign_both(&mut dst, &mut src),
            "kernels_scaled_add" => kernels::scaled_add(&mut dst, 0.5, &src),
            "kernels_scaled_add_scalar" => kernels::scaled_add_scalar(&mut dst, 0.5, &src),
            "kernels_scale" => kernels::scale(&mut dst, 1.0000001),
            "kernels_scale_scalar" => kernels::scale_scalar(&mut dst, 1.0000001),
            other => panic!("unknown kernel {other}"),
        }
        std::hint::black_box(&dst);
    }
    let ns = (t0.elapsed().as_nanos() as u64) / iters;
    let gb_per_s = if ns == 0 { 0.0 } else { bytes as f64 / ns as f64 };
    Entry { op, world: 1, bytes, density: 0.0, iters, ns_per_iter: ns, gb_per_s }
}

/// Lane kernel and its scalar twin, interleaved so each size prints as
/// a lane-vs-scalar pair with the speedup the autovectorizer bought.
const PAIRS: [(&str, &str); 3] = [
    ("kernels_add_assign", "kernels_add_assign_scalar"),
    ("kernels_scaled_add", "kernels_scaled_add_scalar"),
    ("kernels_scale", "kernels_scale_scalar"),
];

fn run_sweep(mode: Mode) -> Vec<Entry> {
    let sizes: &[usize] = match mode {
        Mode::Quick => &QUICK_BYTES,
        Mode::Full => &FULL_BYTES,
    };
    let mut entries = Vec::new();
    for &(lane_op, scalar_op) in &PAIRS {
        for &bytes in sizes {
            let lane = time_kernel(lane_op, bytes, mode);
            let scalar = time_kernel(scalar_op, bytes, mode);
            let speedup = scalar.ns_per_iter as f64 / lane.ns_per_iter.max(1) as f64;
            for e in [&lane, &scalar] {
                println!(
                    "{:<28} {:>9} B  {:>10} ns/iter  {:>8.3} GB/s  ({} iters)",
                    e.op, e.bytes, e.ns_per_iter, e.gb_per_s, e.iters
                );
            }
            println!("    lane vs scalar at {bytes} B: {speedup:.2}x");
            entries.push(lane);
            entries.push(scalar);
        }
    }
    // The fused receive+forward kernel has no scalar twin (it exists to
    // replace two separate passes); record it for the trajectory only.
    for &bytes in sizes {
        let e = time_kernel("kernels_add_assign_both", bytes, mode);
        println!(
            "{:<28} {:>9} B  {:>10} ns/iter  {:>8.3} GB/s  ({} iters)",
            e.op, e.bytes, e.ns_per_iter, e.gb_per_s, e.iters
        );
        entries.push(e);
    }
    entries
}

fn main() {
    let mut label = "kernels".to_string();
    let mut out = "BENCH_collectives.json".to_string();
    let mut mode = Mode::Full;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => mode = Mode::Quick,
            "--label" => label = args.next().expect("--label requires a value"),
            "--out" => out = args.next().expect("--out requires a path"),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: bench_kernels [--quick] [--label L] [--out F]"
                );
                std::process::exit(2);
            }
        }
    }
    println!("bench_kernels: label={label} mode={} lanes={}", mode.as_str(), kernels::LANES);
    let entries = run_sweep(mode);
    let new_run = fmt_run(&label, mode, &entries);
    let doc = merge_into_file(&out, &label, new_run).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    std::fs::write(&out, &doc).unwrap_or_else(|e| {
        eprintln!("write {out}: {e}");
        std::process::exit(1);
    });
    // Self-validation gate: the trajectory must stay machine-readable.
    let parsed = json::parse(&doc).unwrap_or_else(|e| {
        eprintln!("written {out} does not re-parse: {e}");
        std::process::exit(1);
    });
    let n_runs = parsed.get("runs").and_then(|r| r.as_arr()).map_or(0, <[json::Value]>::len);
    println!("\nwrote {out} ({n_runs} run(s)); re-parse OK");
}
