//! Figure 10: scaling on RTX3090 GPUs versus ideal linear scaling,
//! compared against the baseline with the second-best scalability —
//! Horovod AllReduce for GNMT-8/Transformer/BERT, Parallax for LM (dense
//! methods are far too slow on LM, §5.6).

use embrace_baselines::MethodId;
use embrace_bench::WORLDS;
use embrace_models::ModelId;
use embrace_simnet::Cluster;
use embrace_trainer::report::table;
use embrace_trainer::{simulate, SimConfig};

fn main() {
    // (model, competitor, paper EmbRace 4→16 speedup, paper competitor's).
    // (The paper's LM scaling factor happens to read like π — it isn't.)
    #[allow(clippy::approx_constant)]
    let cases = [
        (ModelId::Lm, MethodId::Parallax, 3.14, 3.06),
        (ModelId::Gnmt8, MethodId::HorovodAllReduce, 3.42, 3.32),
        (ModelId::Transformer, MethodId::HorovodAllReduce, 2.53, 2.51),
        (ModelId::BertBase, MethodId::HorovodAllReduce, 3.94, 3.81),
    ];
    println!("Figure 10: scaling from 4 to 16 RTX3090 GPUs (throughput relative to");
    println!("the same method at 4 GPUs; ideal = 4.00x)\n");
    let mut rows = Vec::new();
    for (model, competitor, paper_e, paper_c) in cases {
        let tput = |method: MethodId, world: usize| {
            simulate(&SimConfig::new(method, model, Cluster::rtx3090(world))).tokens_per_sec
        };
        let e4 = tput(MethodId::EmbRace, 4);
        let c4 = tput(competitor, 4);
        let mut row = vec![format!("{model:?}"), competitor.name().to_string()];
        for world in WORLDS {
            row.push(format!("{:.2}x", tput(MethodId::EmbRace, world) / e4));
        }
        for world in WORLDS {
            row.push(format!("{:.2}x", tput(competitor, world) / c4));
        }
        row.push(format!("{paper_e:.2}x vs {paper_c:.2}x"));
        rows.push(row);
    }
    print!(
        "{}",
        table(
            &[
                "model",
                "competitor",
                "EmbRace@4",
                "@8",
                "@16",
                "comp@4",
                "@8",
                "@16",
                "paper @16 (EmbRace vs comp)"
            ],
            &rows
        )
    );
    println!("\nShape check: EmbRace's scaling factor at 16 GPUs meets or exceeds the");
    println!("second-best-scaling baseline on every model, as in the paper.");
}
