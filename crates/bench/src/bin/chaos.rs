//! Chaos harness: the EmbRace hybrid step under a seeded fault matrix.
//!
//! Runs every scenario of `embrace_trainer::standard_scenarios` — link
//! delays below and beyond the receive deadline, silent link drops, rank
//! crashes at fixed steps, combined faults, and a seeded random fault —
//! and reports how each rank terminated. The invariant on display: every
//! scenario ends within its deadline with either the bitwise-correct
//! training result or a typed `CommError` on every rank. Never a hang,
//! never a panic.

use embrace_trainer::report::table;
use embrace_trainer::{run_chaos, standard_scenarios, ChaosConfig, RankOutcome};
use std::time::Instant;

fn outcome_cell(o: &RankOutcome) -> String {
    match o {
        RankOutcome::Completed { losses } => {
            format!("ok ({} steps, final loss {:.3})", losses.len(), losses.last().unwrap())
        }
        RankOutcome::Failed { step, error } => format!("step {step}: {error}"),
    }
}

fn main() {
    let world = 4;
    let steps = 5u64;
    println!("Chaos matrix: EmbRace hybrid step, {world} ranks x {steps} steps");
    println!("(per-receive deadline 400 ms, group watchdog 30 s)\n");

    let mut rows = Vec::new();
    let mut hangs = 0usize;
    for (name, plan) in standard_scenarios(world, steps) {
        let cfg = ChaosConfig::quick(plan);
        let t0 = Instant::now();
        match run_chaos(&cfg) {
            Ok(outcomes) => {
                let completed = outcomes.iter().filter(|o| o.is_completed()).count();
                let first_failure = outcomes
                    .iter()
                    .enumerate()
                    .find(|(_, o)| !o.is_completed())
                    .map(|(r, o)| format!("rank {r} @ {}", outcome_cell(o)))
                    .unwrap_or_else(|| "-".into());
                rows.push(vec![
                    name,
                    format!("{completed}/{world}"),
                    first_failure,
                    format!("{:.0} ms", t0.elapsed().as_secs_f64() * 1e3),
                ]);
            }
            Err(e) => {
                hangs += 1;
                rows.push(vec![
                    name,
                    "WATCHDOG".into(),
                    e.to_string(),
                    format!("{:.0} ms", t0.elapsed().as_secs_f64() * 1e3),
                ]);
            }
        }
    }
    println!("{}", table(&["scenario", "ranks ok", "first failure", "wall"], &rows));

    assert_eq!(hangs, 0, "every scenario must terminate without the watchdog");
    println!("all scenarios terminated with typed outcomes; zero hangs, zero panics");
}
