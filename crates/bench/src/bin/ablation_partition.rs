//! Ablation (§4.1.1): row-wise vs column-wise embedding partitioning.
//!
//! The paper argues for column-wise partitioning because Zipfian word
//! frequencies make row shards hot. We generate each model's synthetic
//! batches, build the per-pair AlltoAllv payload matrices under both
//! partitionings, and price them with the rotation-schedule cost model —
//! quantifying the §4.1.1 claim.

use embrace_core::partition::{column_payload_matrix, receive_imbalance, row_payload_matrix};
use embrace_models::{BatchGen, ModelSpec};
use embrace_simnet::{Cluster, CostModel, GpuKind};
use embrace_trainer::report::table;

fn main() {
    let world = 16;
    let cluster = Cluster::rtx3090(world);
    let cm = CostModel::new(cluster);
    println!("Partitioning ablation: gradient AlltoAllv on {world} RTX3090 GPUs\n");
    let mut rows = Vec::new();
    for spec in ModelSpec::all() {
        let vocab: usize = spec.embeddings.iter().map(|e| e.vocab).sum();
        let batches: Vec<Vec<u32>> = (0..world)
            .map(|r| BatchGen::from_spec(&spec, GpuKind::Rtx3090, r, 42).next_batch())
            .collect();
        let row_m = row_payload_matrix(&batches, vocab, spec.dim());
        let batch_rows: Vec<usize> = batches.iter().map(Vec::len).collect();
        let col_m = column_payload_matrix(&batch_rows, spec.dim());
        let t_row = cm.alltoallv(&row_m);
        let t_col = cm.alltoallv(&col_m);
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.2}", receive_imbalance(&row_m)),
            format!("{:.2}", receive_imbalance(&col_m)),
            format!("{:.2}", t_row * 1e3),
            format!("{:.2}", t_col * 1e3),
            format!("{:.2}x", t_row / t_col),
        ]);
    }
    print!(
        "{}",
        table(
            &["model", "row imbalance", "col imbalance", "row-wise ms", "col-wise ms", "row/col"],
            &rows
        )
    );
    println!("\nColumn-wise partitioning is balanced by construction (imbalance 1.0);");
    println!("row-wise partitioning concentrates Zipf-head words on the first shards,");
    println!("inflating the slowest AlltoAll rounds — the paper's §4.1.1 argument.");
}
