//! Extension: end-to-end *time-to-loss*, joining the two planes.
//!
//! Convergence (Fig. 11) shows EmbRace needs the same number of steps;
//! throughput (Fig. 7) shows each step is faster. Multiplying the two —
//! the functional trainer's steps-to-target-loss times the simulator's
//! per-step wall time for the corresponding full-scale model — gives the
//! quantity practitioners actually buy: wall-clock time to a quality
//! target.

use embrace_baselines::MethodId;
use embrace_models::ModelId;
use embrace_simnet::Cluster;
use embrace_trainer::report::table;
use embrace_trainer::{simulate, train_convergence, ConvergenceConfig, SimConfig, TrainMethod};

fn main() {
    let cluster = Cluster::rtx3090(16);
    println!("Time-to-loss on 16 RTX3090 GPUs (LM workload)\n");

    // Steps to reach 5% of the initial loss, from the functional trainer.
    let cfg = ConvergenceConfig { world: 8, steps: 120, ..Default::default() };
    let steps_to_target = |method: TrainMethod| {
        let r = train_convergence(method, &cfg);
        let target = r.losses[0] * 0.05;
        r.losses.iter().position(|&l| l < target).map(|s| s + 1)
    };
    let base_steps = steps_to_target(TrainMethod::HorovodAllGather).expect("baseline converges");
    let embrace_steps = steps_to_target(TrainMethod::EmbRace).expect("EmbRace converges");

    // Per-step wall time of the full-scale LM, from the simulator.
    let step_time = |m: MethodId| simulate(&SimConfig::new(m, ModelId::Lm, cluster)).step_time;
    let t_allgather = step_time(MethodId::HorovodAllGather);
    let t_embrace = step_time(MethodId::EmbRace);

    let rows = vec![
        vec![
            "Horovod AllGather".to_string(),
            base_steps.to_string(),
            format!("{:.2}", t_allgather * 1e3),
            format!("{:.2}", base_steps as f64 * t_allgather),
        ],
        vec![
            "EmbRace".to_string(),
            embrace_steps.to_string(),
            format!("{:.2}", t_embrace * 1e3),
            format!("{:.2}", embrace_steps as f64 * t_embrace),
        ],
    ];
    print!(
        "{}",
        table(&["method", "steps to 5% loss", "step ms (LM@16)", "time to target s"], &rows)
    );
    let speedup = (base_steps as f64 * t_allgather) / (embrace_steps as f64 * t_embrace);
    println!("\nSame steps-to-quality ({base_steps} vs {embrace_steps}), faster steps:");
    println!("EmbRace reaches the loss target {speedup:.2}x sooner in wall-clock time —");
    println!("the throughput gain of Fig. 7 converts 1:1 into training-time savings");
    println!("because convergence (Fig. 11) is untouched.");
    assert_eq!(base_steps, embrace_steps, "identical convergence is the premise");
}
