//! Extension ablation: preemptive communication scheduling.
//!
//! The paper's related work (§6) cites PACE, which replaces the priority
//! queue with a *preemptive* queue: an urgent collective can suspend one
//! already in flight. Our DES supports this (`CommOrder::Preemptive`);
//! this harness quantifies what EmbRace would gain from it on top of 2D
//! scheduling — typically little, because the vertical split already
//! keeps the operations that gate the next FP small.

use embrace_baselines::MethodId;
use embrace_models::ModelId;
use embrace_simnet::{Cluster, CommOrder};
use embrace_trainer::report::table;
use embrace_trainer::{simulate, SimConfig};

fn main() {
    println!("Preemption ablation: EmbRace under FIFO / priority / preemptive queues");
    println!("(16 RTX3090 GPUs; step time in ms)\n");
    let cluster = Cluster::rtx3090(16);
    let mut rows = Vec::new();
    for model in ModelId::ALL {
        let t = |order: CommOrder| {
            simulate(&SimConfig::new(MethodId::EmbRace, model, cluster).with_comm_order(order))
                .step_time
                * 1e3
        };
        let fifo = t(CommOrder::Fifo);
        let prio = t(CommOrder::Priority);
        let pre = t(CommOrder::Preemptive);
        rows.push(vec![
            format!("{model:?}"),
            format!("{fifo:.2}"),
            format!("{prio:.2}"),
            format!("{pre:.2}"),
            format!("{:+.2}%", (prio / pre - 1.0) * 100.0),
        ]);
    }
    print!(
        "{}",
        table(&["model", "FIFO ms", "priority ms", "preemptive ms", "preemption gain"], &rows)
    );
    println!("\nMargins are small either way (preemption can even backfire when the");
    println!("suspended transfer itself gates a later forward pass), which supports");
    println!("the paper's choice of a plain priority queue: after the vertical split,");
    println!("the urgent operations are small enough that waiting out an in-flight");
    println!("transfer rarely matters.");
}
