//! The module dependency graph of an NLP model (paper Fig. 5).
//!
//! Models are decomposed into the units the paper schedules: embedding
//! tables (sparse plane) and dense blocks (dense plane). Modules are stored
//! in forward-pass order; each records its input modules, so both the FP
//! dependency structure and the reverse BP order fall out directly.

/// What a module is, for communication purposes.
#[derive(Clone, Debug, PartialEq)]
pub enum ModuleKind {
    /// An embedding table: `vocab` rows of `dim` columns. Its gradients are
    /// row-sparse; its FP output must be communicated under hybrid
    /// communication (AlltoAll of lookup results).
    Embedding { vocab: usize, dim: usize },
    /// A dense block (e.g. one transformer layer) of `params` scalar
    /// parameters; gradients are dense and AllReduce-able.
    Dense { params: usize },
}

/// One schedulable module.
#[derive(Clone, Debug)]
pub struct Module {
    pub name: String,
    pub kind: ModuleKind,
    /// Modules (by index) whose FP output this module consumes.
    pub inputs: Vec<usize>,
    /// Calibrated forward-pass compute time (seconds) on the target GPU.
    pub fp_time: f64,
    /// Calibrated backward-pass compute time (seconds).
    pub bp_time: f64,
}

impl Module {
    pub fn is_embedding(&self) -> bool {
        matches!(self.kind, ModuleKind::Embedding { .. })
    }

    /// Parameter count of this module.
    pub fn params(&self) -> usize {
        match self.kind {
            ModuleKind::Embedding { vocab, dim } => vocab * dim,
            ModuleKind::Dense { params } => params,
        }
    }

    /// Dense wire size of this module's parameters/gradients in bytes.
    pub fn param_bytes(&self) -> usize {
        self.params() * embrace_tensor::F32_BYTES
    }
}

/// A model as an ordered list of modules (index order == FP order) plus
/// input edges.
#[derive(Clone, Debug, Default)]
pub struct ModelGraph {
    pub modules: Vec<Module>,
}

impl ModelGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a module whose inputs must already exist; returns its index.
    pub fn add(&mut self, module: Module) -> usize {
        for &i in &module.inputs {
            assert!(i < self.modules.len(), "input {i} does not exist yet");
        }
        self.modules.push(module);
        self.modules.len() - 1
    }

    pub fn len(&self) -> usize {
        self.modules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Indices in forward order (construction order).
    pub fn fp_order(&self) -> impl Iterator<Item = usize> {
        0..self.modules.len()
    }

    /// Indices in backward order: the inverse of FP (§2.3: "the orders of
    /// FP and BP are inverse").
    pub fn bp_order(&self) -> impl Iterator<Item = usize> {
        (0..self.modules.len()).rev()
    }

    /// Indices of embedding modules.
    pub fn embeddings(&self) -> Vec<usize> {
        (0..self.modules.len()).filter(|&i| self.modules[i].is_embedding()).collect()
    }

    /// Indices of dense modules.
    pub fn dense_blocks(&self) -> Vec<usize> {
        (0..self.modules.len()).filter(|&i| !self.modules[i].is_embedding()).collect()
    }

    /// Total dense-parameter bytes (the AllReduce plane volume).
    pub fn dense_bytes(&self) -> usize {
        self.dense_blocks().iter().map(|&i| self.modules[i].param_bytes()).sum()
    }

    /// Total embedding-parameter bytes.
    pub fn embedding_bytes(&self) -> usize {
        self.embeddings().iter().map(|&i| self.modules[i].param_bytes()).sum()
    }

    /// Total model compute time for one step (sum of FP+BP of all modules).
    pub fn compute_time(&self) -> f64 {
        self.modules.iter().map(|m| m.fp_time + m.bp_time).sum()
    }

    /// True when every FP input edge points backwards (a valid FP order).
    pub fn validate(&self) -> bool {
        self.modules.iter().enumerate().all(|(i, m)| m.inputs.iter().all(|&j| j < i))
    }

    /// The paper's observation (§4.2.1): embedding FP depends on no other
    /// module's FP (only on its own parameters being up to date), so it can
    /// be hoisted ahead of the dense blocks. Returns FP order with all
    /// embeddings first, then the dense blocks in their original order.
    pub fn hoisted_fp_order(&self) -> Vec<usize> {
        let mut order = self.embeddings();
        order.extend(self.dense_blocks());
        order
    }

    /// Build the translation-model shape of Fig. 5:
    /// EncEmbedding → k encoder blocks → DecEmbedding → m decoder blocks,
    /// where the first decoder block also consumes the last encoder block.
    /// `emb = (vocab, dim)`, block params/timing are uniform (the paper
    /// notes NLP blocks have even loads, §4.2.1).
    #[allow(clippy::too_many_arguments)]
    pub fn translation(
        enc_emb: (usize, usize),
        dec_emb: (usize, usize),
        enc_blocks: usize,
        dec_blocks: usize,
        block_params: usize,
        emb_fp: f64,
        emb_bp: f64,
        block_fp: f64,
        block_bp: f64,
    ) -> Self {
        let mut g = ModelGraph::new();
        let e = g.add(Module {
            name: "enc_emb".into(),
            kind: ModuleKind::Embedding { vocab: enc_emb.0, dim: enc_emb.1 },
            inputs: vec![],
            fp_time: emb_fp,
            bp_time: emb_bp,
        });
        let mut prev = e;
        for i in 0..enc_blocks {
            prev = g.add(Module {
                name: format!("enc_blk{i}"),
                kind: ModuleKind::Dense { params: block_params },
                inputs: vec![prev],
                fp_time: block_fp,
                bp_time: block_bp,
            });
        }
        let enc_out = prev;
        let d = g.add(Module {
            name: "dec_emb".into(),
            kind: ModuleKind::Embedding { vocab: dec_emb.0, dim: dec_emb.1 },
            inputs: vec![],
            fp_time: emb_fp,
            bp_time: emb_bp,
        });
        let mut prev = d;
        for i in 0..dec_blocks {
            let inputs = if i == 0 { vec![prev, enc_out] } else { vec![prev] };
            prev = g.add(Module {
                name: format!("dec_blk{i}"),
                kind: ModuleKind::Dense { params: block_params },
                inputs,
                fp_time: block_fp,
                bp_time: block_bp,
            });
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ModelGraph {
        ModelGraph::translation((100, 8), (100, 8), 2, 2, 64, 1.0, 2.0, 3.0, 4.0)
    }

    #[test]
    fn translation_shape_matches_fig5() {
        let g = toy();
        assert_eq!(g.len(), 6);
        assert_eq!(g.embeddings(), vec![0, 3]);
        assert_eq!(g.dense_blocks(), vec![1, 2, 4, 5]);
        assert!(g.validate());
        // First decoder block consumes both decoder embedding and encoder out.
        assert_eq!(g.modules[4].inputs, vec![3, 2]);
        // Embeddings have no FP inputs.
        assert!(g.modules[0].inputs.is_empty());
        assert!(g.modules[3].inputs.is_empty());
    }

    #[test]
    fn orders_are_inverse() {
        let g = toy();
        let fp: Vec<usize> = g.fp_order().collect();
        let mut bp: Vec<usize> = g.bp_order().collect();
        bp.reverse();
        assert_eq!(fp, bp);
    }

    #[test]
    fn hoisted_order_puts_embeddings_first() {
        let g = toy();
        assert_eq!(g.hoisted_fp_order(), vec![0, 3, 1, 2, 4, 5]);
    }

    #[test]
    fn byte_accounting() {
        let g = toy();
        assert_eq!(g.embedding_bytes(), 2 * 100 * 8 * 4);
        assert_eq!(g.dense_bytes(), 4 * 64 * 4);
        assert!((g.compute_time() - (2.0 * 3.0 + 4.0 * 7.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_edge_rejected() {
        let mut g = ModelGraph::new();
        g.add(Module {
            name: "bad".into(),
            kind: ModuleKind::Dense { params: 1 },
            inputs: vec![5],
            fp_time: 0.0,
            bp_time: 0.0,
        });
    }
}
