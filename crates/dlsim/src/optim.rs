//! Sparse-capable optimizers: SGD, Adagrad and Adam.
//!
//! Vertical Sparse Scheduling (§4.2.2) splits each embedding gradient into
//! a *prior* and a *delayed* part, so the table is updated twice per step.
//! SGD and Adagrad are fully element-wise, hence unaffected (§5.7). Adam's
//! `step` state is *per tensor*, so naively calling it twice advances the
//! bias correction twice; the paper modifies Adam to advance `step` only
//! when the delayed part is applied. [`UpdatePart`] selects that behaviour
//! and the equivalence is proven in this module's tests.

use embrace_tensor::{DenseTensor, RowSparse};

/// Which portion of a split sparse gradient an update call carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdatePart {
    /// The entire gradient in one call (non-EmbRace behaviour).
    Whole,
    /// The prior rows (needed by the next batch); `step` must NOT advance.
    Prior,
    /// The delayed rows; `step` advances here, completing the logical step.
    Delayed,
}

/// A parameter-tensor optimizer with dense and row-sparse update paths.
pub trait Optimizer {
    /// Apply a dense gradient to a dense parameter tensor.
    fn step_dense(&mut self, params: &mut DenseTensor, grad: &DenseTensor);

    /// Apply a (coalesced) row-sparse gradient to `params`.
    fn step_sparse(&mut self, params: &mut DenseTensor, grad: &RowSparse, part: UpdatePart);
}

/// Plain SGD: `p -= lr * g`. Stateless, trivially element-wise.
#[derive(Clone, Debug)]
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step_dense(&mut self, params: &mut DenseTensor, grad: &DenseTensor) {
        params.axpy(-self.lr, grad);
    }

    fn step_sparse(&mut self, params: &mut DenseTensor, grad: &RowSparse, _part: UpdatePart) {
        for (i, &row) in grad.indices().iter().enumerate() {
            let dst = params.row_mut(row as usize);
            for (p, g) in dst.iter_mut().zip(grad.values().row(i)) {
                *p -= self.lr * g;
            }
        }
    }
}

/// Adagrad (Duchi et al. 2011): per-element accumulated squared gradients.
/// Fully element-wise, so split updates are exactly equivalent to whole
/// updates regardless of `UpdatePart`.
#[derive(Clone, Debug)]
pub struct Adagrad {
    pub lr: f32,
    pub eps: f32,
    accum: DenseTensor,
}

impl Adagrad {
    pub fn new(rows: usize, cols: usize, lr: f32) -> Self {
        Adagrad { lr, eps: 1e-10, accum: DenseTensor::zeros(rows, cols) }
    }

    fn update_row(&mut self, params: &mut DenseTensor, row: usize, grad_row: &[f32]) {
        let acc = self.accum.row_mut(row);
        let dst = params.row_mut(row);
        for ((p, a), &g) in dst.iter_mut().zip(acc).zip(grad_row) {
            *a += g * g;
            *p -= self.lr * g / (a.sqrt() + self.eps);
        }
    }
}

impl Optimizer for Adagrad {
    fn step_dense(&mut self, params: &mut DenseTensor, grad: &DenseTensor) {
        assert_eq!(params.rows(), grad.rows());
        for r in 0..params.rows() {
            let g = grad.row(r).to_vec();
            self.update_row(params, r, &g);
        }
    }

    fn step_sparse(&mut self, params: &mut DenseTensor, grad: &RowSparse, _part: UpdatePart) {
        for (i, &row) in grad.indices().iter().enumerate() {
            let g = grad.values().row(i).to_vec();
            self.update_row(params, row as usize, &g);
        }
    }
}

/// Adam (Kingma & Ba 2014), PyTorch-style with a per-tensor `step` counter
/// used for bias correction.
///
/// `step` advances on [`UpdatePart::Whole`] and [`UpdatePart::Delayed`]
/// but not on [`UpdatePart::Prior`] — the paper's modification (§5.7)
/// making `Prior`-then-`Delayed` bit-identical to one `Whole` update on
/// the union of rows.
#[derive(Clone, Debug)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    m: DenseTensor,
    v: DenseTensor,
    step: u64,
}

impl Adam {
    pub fn new(rows: usize, cols: usize, lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: DenseTensor::zeros(rows, cols),
            v: DenseTensor::zeros(rows, cols),
            step: 0,
        }
    }

    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The optimizer's full state: first and second moments plus the step
    /// counter. Together with the hyperparameters this is everything a
    /// checkpoint (or an elastic re-shard) needs to reproduce the
    /// optimizer bit-for-bit.
    pub fn state(&self) -> (&DenseTensor, &DenseTensor, u64) {
        (&self.m, &self.v, self.step)
    }

    /// Reconstruct an Adam instance from checkpointed state, with the
    /// default hyperparameters [`Adam::new`] uses. Inverse of
    /// [`Adam::state`].
    pub fn from_state(lr: f32, m: DenseTensor, v: DenseTensor, step: u64) -> Self {
        assert_eq!((m.rows(), m.cols()), (v.rows(), v.cols()), "moment shapes must match");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m, v, step }
    }

    fn effective_step(&mut self, part: UpdatePart) -> u64 {
        match part {
            UpdatePart::Whole | UpdatePart::Delayed => {
                self.step += 1;
                self.step
            }
            // Use the upcoming step's bias correction without committing it.
            UpdatePart::Prior => self.step + 1,
        }
    }

    fn update_row(&mut self, params: &mut DenseTensor, row: usize, grad_row: &[f32], t: u64) {
        let bc1 = 1.0 - self.beta1.powi(t as i32);
        let bc2 = 1.0 - self.beta2.powi(t as i32);
        let m = self.m.row_mut(row);
        let v = self.v.row_mut(row);
        let dst = params.row_mut(row);
        for (((p, m), v), &g) in dst.iter_mut().zip(m).zip(v).zip(grad_row) {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

impl Optimizer for Adam {
    fn step_dense(&mut self, params: &mut DenseTensor, grad: &DenseTensor) {
        assert_eq!(params.rows(), grad.rows());
        let t = self.effective_step(UpdatePart::Whole);
        for r in 0..params.rows() {
            let g = grad.row(r).to_vec();
            self.update_row(params, r, &g, t);
        }
    }

    fn step_sparse(&mut self, params: &mut DenseTensor, grad: &RowSparse, part: UpdatePart) {
        let t = self.effective_step(part);
        for (i, &row) in grad.indices().iter().enumerate() {
            let g = grad.values().row(i).to_vec();
            self.update_row(params, row as usize, &g, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embrace_tensor::index_select;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rand_grad(rows: &[u32], dim: usize, seed: u64) -> RowSparse {
        let mut rng = StdRng::seed_from_u64(seed);
        let vals = DenseTensor::uniform(rows.len(), dim, 1.0, &mut rng);
        RowSparse::new(rows.to_vec(), vals)
    }

    #[test]
    fn sgd_sparse_matches_dense() {
        let mut p1 = DenseTensor::full(4, 2, 1.0);
        let mut p2 = p1.clone();
        let g = rand_grad(&[0, 2], 2, 7);
        Sgd::new(0.1).step_sparse(&mut p1, &g, UpdatePart::Whole);
        Sgd::new(0.1).step_dense(&mut p2, &g.to_dense(4));
        assert!(p1.approx_eq(&p2, 1e-7));
    }

    #[test]
    fn adagrad_split_equals_whole() {
        let g = rand_grad(&[0, 1, 3, 5], 3, 11);
        let prior = index_select(&g, &[1, 5]);
        let delayed = index_select(&g, &[0, 3]);

        let mut p_whole = DenseTensor::full(6, 3, 0.5);
        let mut p_split = p_whole.clone();
        let mut o_whole = Adagrad::new(6, 3, 0.05);
        let mut o_split = o_whole.clone();

        o_whole.step_sparse(&mut p_whole, &g, UpdatePart::Whole);
        o_split.step_sparse(&mut p_split, &prior, UpdatePart::Prior);
        o_split.step_sparse(&mut p_split, &delayed, UpdatePart::Delayed);
        assert!(p_whole.approx_eq(&p_split, 0.0), "Adagrad is element-wise: exact match expected");
    }

    #[test]
    fn adam_modified_split_equals_whole() {
        // The §5.7 claim: with the step-state modification, prior+delayed
        // equals a single whole update — over many steps.
        let mut rng = StdRng::seed_from_u64(3);
        let mut p_whole = DenseTensor::full(8, 2, 0.3);
        let mut p_split = p_whole.clone();
        let mut o_whole = Adam::new(8, 2, 0.01);
        let mut o_split = o_whole.clone();

        for step in 0..20 {
            let rows: Vec<u32> = (0..8u32).filter(|_| rng.gen_bool(0.6)).collect();
            if rows.is_empty() {
                continue;
            }
            let g = rand_grad(&rows, 2, 100 + step);
            let cut = rows.len() / 2;
            let prior = index_select(&g, &rows[..cut]);
            let delayed = index_select(&g, &rows[cut..]);

            o_whole.step_sparse(&mut p_whole, &g, UpdatePart::Whole);
            o_split.step_sparse(&mut p_split, &prior, UpdatePart::Prior);
            o_split.step_sparse(&mut p_split, &delayed, UpdatePart::Delayed);
        }
        assert!(p_whole.approx_eq(&p_split, 0.0), "modified Adam must match exactly");
        assert_eq!(o_whole.step_count(), o_split.step_count());
    }

    #[test]
    fn adam_unmodified_double_step_diverges() {
        // Without the modification (two Whole calls), the step counter
        // advances twice and results differ — the problem §5.7 fixes.
        let g = rand_grad(&[0, 1, 2, 3], 2, 5);
        let prior = index_select(&g, &[0, 1]);
        let delayed = index_select(&g, &[2, 3]);

        let mut p_ref = DenseTensor::full(4, 2, 0.3);
        let mut p_bad = p_ref.clone();
        let mut o_ref = Adam::new(4, 2, 0.01);
        let mut o_bad = o_ref.clone();

        for _ in 0..5 {
            o_ref.step_sparse(&mut p_ref, &g, UpdatePart::Whole);
            o_bad.step_sparse(&mut p_bad, &prior, UpdatePart::Whole);
            o_bad.step_sparse(&mut p_bad, &delayed, UpdatePart::Whole);
        }
        assert!(o_bad.step_count() > o_ref.step_count());
        assert!(p_ref.max_abs_diff(&p_bad) > 0.0, "naive double update must differ");
    }

    #[test]
    fn adam_moves_params_toward_minimum() {
        // Minimise (p - 2)^2 / 2 by gradient p - 2.
        let mut p = DenseTensor::full(1, 1, 0.0);
        let mut o = Adam::new(1, 1, 0.1);
        for _ in 0..400 {
            let g = DenseTensor::from_vec(1, 1, vec![p.as_slice()[0] - 2.0]);
            o.step_dense(&mut p, &g);
        }
        assert!((p.as_slice()[0] - 2.0).abs() < 0.05, "got {}", p.as_slice()[0]);
    }

    #[test]
    fn adam_state_roundtrip_is_bitwise() {
        let mut p = DenseTensor::full(4, 2, 0.3);
        let mut o = Adam::new(4, 2, 0.01);
        for s in 0..3 {
            o.step_sparse(&mut p, &rand_grad(&[0, 2, 3], 2, s), UpdatePart::Whole);
        }
        let (m, v, step) = o.state();
        let mut o2 = Adam::from_state(0.01, m.clone(), v.clone(), step);
        let mut p2 = p.clone();
        for s in 10..13 {
            let g = rand_grad(&[1, 2], 2, s);
            o.step_sparse(&mut p, &g, UpdatePart::Whole);
            o2.step_sparse(&mut p2, &g, UpdatePart::Whole);
        }
        assert!(p.approx_eq(&p2, 0.0), "restored optimizer must continue bit-for-bit");
        assert_eq!(o.step_count(), o2.step_count());
    }

    #[test]
    fn adagrad_shrinks_effective_rate() {
        let mut p = DenseTensor::full(1, 1, 0.0);
        let mut o = Adagrad::new(1, 1, 1.0);
        let g = DenseTensor::full(1, 1, 1.0);
        o.step_dense(&mut p, &g);
        let first = -p.as_slice()[0];
        let before = p.as_slice()[0];
        o.step_dense(&mut p, &g);
        let second = before - p.as_slice()[0];
        assert!(second < first, "accumulated squares must damp the step");
    }
}
