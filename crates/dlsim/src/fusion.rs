//! Tensor fusion: batching small dense gradients into buckets.
//!
//! Horovod fuses gradient tensors into fixed-size buffers before
//! AllReduce to amortise per-operation startup latency; PACE (related
//! work, §6) tunes fusion for bandwidth. The paper's horizontal
//! scheduling deliberately communicates whole *blocks* instead —
//! "parameters in the same block got the same priority and transmit
//! their gradients together" — which is a form of fusion at block
//! granularity. This module provides the bucket-assignment algorithm so
//! the ablation benches can quantify the trade-off: bigger buckets
//! amortise latency but delay the earliest-needed gradients.

/// A fusion bucket: a contiguous run of module indices (in BP completion
/// order) whose gradients are communicated as one operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Bucket {
    /// Module indices fused into this bucket, in the order their BP
    /// completes.
    pub modules: Vec<usize>,
    /// Total payload bytes.
    pub bytes: f64,
}

impl Bucket {
    /// The communication can only start when the *last* fused module's
    /// backward pass has finished.
    pub fn ready_after(&self) -> usize {
        *self.modules.last().expect("bucket cannot be empty")
    }
}

/// Greedily assign modules (given in BP completion order with their
/// gradient sizes) to buckets of at most `bucket_bytes`. A module larger
/// than the bucket size gets its own bucket. `bucket_bytes <= 0` means
/// no fusion: one bucket per module.
pub fn assign_buckets(sizes_in_bp_order: &[(usize, f64)], bucket_bytes: f64) -> Vec<Bucket> {
    let mut out = Vec::new();
    if bucket_bytes <= 0.0 {
        for &(m, b) in sizes_in_bp_order {
            out.push(Bucket { modules: vec![m], bytes: b });
        }
        return out;
    }
    let mut current = Bucket { modules: Vec::new(), bytes: 0.0 };
    for &(m, b) in sizes_in_bp_order {
        if !current.modules.is_empty() && current.bytes + b > bucket_bytes {
            out.push(std::mem::replace(&mut current, Bucket { modules: Vec::new(), bytes: 0.0 }));
        }
        current.modules.push(m);
        current.bytes += b;
    }
    if !current.modules.is_empty() {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fusion_is_one_bucket_per_module() {
        let buckets = assign_buckets(&[(0, 10.0), (1, 20.0)], 0.0);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].modules, vec![0]);
        assert_eq!(buckets[1].bytes, 20.0);
    }

    #[test]
    fn fusion_groups_until_capacity() {
        let sizes = [(3, 4.0), (2, 4.0), (1, 4.0), (0, 4.0)];
        let buckets = assign_buckets(&sizes, 8.0);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].modules, vec![3, 2]);
        assert_eq!(buckets[1].modules, vec![1, 0]);
        assert_eq!(buckets[0].ready_after(), 2);
    }

    #[test]
    fn oversized_module_gets_own_bucket() {
        let buckets = assign_buckets(&[(0, 100.0), (1, 1.0), (2, 1.0)], 10.0);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].modules, vec![0]);
        assert_eq!(buckets[1].modules, vec![1, 2]);
    }

    #[test]
    fn bytes_conserved() {
        let sizes: Vec<(usize, f64)> = (0..10).map(|i| (i, (i + 1) as f64)).collect();
        for cap in [0.0, 5.0, 17.0, 1000.0] {
            let total: f64 = assign_buckets(&sizes, cap).iter().map(|b| b.bytes).sum();
            assert!((total - 55.0).abs() < 1e-12, "cap {cap}");
        }
    }

    #[test]
    fn huge_capacity_fuses_everything() {
        let sizes = [(5, 1.0), (4, 1.0), (3, 1.0)];
        let buckets = assign_buckets(&sizes, 1e9);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].ready_after(), 3);
    }

    #[test]
    fn empty_input() {
        assert!(assign_buckets(&[], 8.0).is_empty());
    }
}
