//! Mini deep-learning-framework substrate.
//!
//! EmbRace is implemented in the paper as hooks inside PyTorch + Horovod.
//! This crate rebuilds the parts of that stack the algorithms actually
//! touch:
//!
//! * [`graph`] — the module dependency graph of an NLP model (paper
//!   Fig. 5): embeddings and dense blocks in FP order, with the input
//!   edges that constrain scheduling;
//! * [`embedding`] — a functional embedding table with sparse backward;
//! * [`optim`] — SGD, Adagrad and Adam sparse/dense optimizers, including
//!   the paper's Adam `step`-state modification (§5.7) that makes the
//!   two-part (prior/delayed) update equivalent to a single update;
//! * [`queue`] — the stable priority queue that orders communication
//!   operations (§2.3, §4.2.1);
//! * [`prefetch`] — the next-batch prefetcher Vertical Sparse Scheduling
//!   relies on to know `D_next` (§4.2.2);
//! * [`hooks`] — a backward-hook registry mirroring the
//!   `register_hook` mechanism the prototype uses (§5.1).
//!
//! # Example
//!
//! ```
//! use embrace_dlsim::autograd::Tape;
//! use embrace_dlsim::StablePriorityQueue;
//! use embrace_tensor::DenseTensor;
//!
//! // Differentiate ½‖x·W‖² with the tape.
//! let mut tape = Tape::new();
//! let x = tape.leaf(DenseTensor::full(1, 2, 1.0), true);
//! let w = tape.leaf(DenseTensor::from_vec(2, 1, vec![3.0, 4.0]), false);
//! let y = tape.matmul(x, w);
//! let loss = tape.mse_loss(y, &DenseTensor::zeros(1, 1));
//! tape.backward(loss);
//! assert_eq!(tape.grad(x).as_slice(), &[21.0, 28.0]); // (x·W)·Wᵀ
//!
//! // The communication priority queue drains most-urgent-first.
//! let mut q = StablePriorityQueue::new();
//! q.push(5, "delayed");
//! q.push(-2, "prior");
//! assert_eq!(q.pop().unwrap().1, "prior");
//! ```

#![forbid(unsafe_code)]

pub mod autograd;
pub mod embedding;
pub mod fusion;
pub mod graph;
pub mod hooks;
pub mod optim;
pub mod prefetch;
pub mod queue;

pub use autograd::{NodeId, Tape};
pub use embedding::EmbeddingTable;
pub use fusion::{assign_buckets, Bucket};
pub use graph::{ModelGraph, Module, ModuleKind};
pub use hooks::HookRegistry;
pub use optim::{Adagrad, Adam, Optimizer, Sgd, UpdatePart};
pub use prefetch::Prefetcher;
pub use queue::StablePriorityQueue;
