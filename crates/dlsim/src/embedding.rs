//! A functional embedding table with sparse backward.
//!
//! `lookup` gathers rows for a token batch (FP); `grad_from_output`
//! scatters the output gradient back to the touched rows, yielding the
//! row-sparse COO gradient that is the object of the whole paper.

use embrace_tensor::{DenseTensor, RowSparse};
use rand::Rng;

/// A `vocab × dim` embedding table.
#[derive(Clone, Debug)]
pub struct EmbeddingTable {
    table: DenseTensor,
}

impl EmbeddingTable {
    /// Initialise with uniform random weights in `[-scale, scale]`.
    pub fn new<R: Rng>(vocab: usize, dim: usize, scale: f32, rng: &mut R) -> Self {
        EmbeddingTable { table: DenseTensor::uniform(vocab, dim, scale, rng) }
    }

    /// Wrap an existing table (e.g. a column shard of a larger one).
    pub fn from_table(table: DenseTensor) -> Self {
        EmbeddingTable { table }
    }

    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    pub fn table(&self) -> &DenseTensor {
        &self.table
    }

    pub fn table_mut(&mut self) -> &mut DenseTensor {
        &mut self.table
    }

    /// Forward pass: one output row per token (duplicates repeat rows).
    pub fn lookup(&self, tokens: &[u32]) -> DenseTensor {
        self.table.gather_rows(tokens)
    }

    /// Backward pass: given `d(loss)/d(lookup output)` (one row per token),
    /// produce the uncoalesced row-sparse gradient of the table — the same
    /// thing PyTorch's `Embedding(sparse=True)` emits.
    pub fn grad_from_output(&self, tokens: &[u32], grad_out: &DenseTensor) -> RowSparse {
        assert_eq!(tokens.len(), grad_out.rows(), "one gradient row per token");
        assert_eq!(grad_out.cols(), self.dim(), "gradient dim mismatch");
        RowSparse::new(tokens.to_vec(), grad_out.clone())
    }

    /// Column shard `[start, end)` of this table as an independent table
    /// (EmbRace's column-wise model parallelism, §4.1.1).
    pub fn column_shard(&self, start: usize, end: usize) -> EmbeddingTable {
        EmbeddingTable { table: self.table.slice_columns(start, end) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embrace_tensor::coalesce;
    use rand::{rngs::StdRng, SeedableRng};

    fn table() -> EmbeddingTable {
        let t = DenseTensor::from_vec(4, 2, vec![0., 0., 1., 10., 2., 20., 3., 30.]);
        EmbeddingTable::from_table(t)
    }

    #[test]
    fn lookup_repeats_duplicate_tokens() {
        let e = table();
        let out = e.lookup(&[3, 1, 3]);
        assert_eq!(out.row(0), &[3.0, 30.0]);
        assert_eq!(out.row(1), &[1.0, 10.0]);
        assert_eq!(out.row(2), &[3.0, 30.0]);
    }

    #[test]
    fn backward_is_uncoalesced_coo() {
        let e = table();
        let tokens = [3u32, 1, 3];
        let grad_out = DenseTensor::full(3, 2, 1.0);
        let g = e.grad_from_output(&tokens, &grad_out);
        assert_eq!(g.indices(), &tokens);
        let c = coalesce(&g);
        assert_eq!(c.indices(), &[1, 3]);
        assert_eq!(c.values().row(1), &[2.0, 2.0]); // token 3 twice
    }

    #[test]
    fn column_shards_partition_lookup() {
        let e = table();
        let left = e.column_shard(0, 1);
        let right = e.column_shard(1, 2);
        let tokens = [2u32, 0];
        let full = e.lookup(&tokens);
        let stitched = DenseTensor::concat_columns(&[left.lookup(&tokens), right.lookup(&tokens)]);
        assert_eq!(full, stitched);
    }

    #[test]
    fn random_init_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = EmbeddingTable::new(10, 4, 0.5, &mut rng);
        assert_eq!(e.vocab(), 10);
        assert_eq!(e.dim(), 4);
        assert!(e.table().as_slice().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "one gradient row per token")]
    fn mismatched_grad_rows_panic() {
        table().grad_from_output(&[1, 2], &DenseTensor::zeros(3, 2));
    }
}
