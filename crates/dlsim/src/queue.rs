//! A stable priority queue for communication scheduling.
//!
//! The paper replaces the framework's FIFO communication queue with a
//! priority queue (§2.3, §4.2.1): gradient communications that block the
//! next FP soonest are drained first. Ties must break by enqueue order
//! (stability) so equal-priority operations keep wait-free-backprop order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    priority: i64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-first semantics.
        (other.priority, other.seq).cmp(&(self.priority, self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-priority queue with FIFO tie-breaking. Lower `priority` pops first.
pub struct StablePriorityQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for StablePriorityQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> StablePriorityQueue<T> {
    pub fn new() -> Self {
        StablePriorityQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    pub fn push(&mut self, priority: i64, item: T) {
        self.heap.push(Entry { priority, seq: self.seq, item });
        self.seq += 1;
    }

    /// Remove and return the lowest-priority-value item (FIFO among ties).
    pub fn pop(&mut self) -> Option<(i64, T)> {
        self.heap.pop().map(|e| (e.priority, e.item))
    }

    /// Priority of the next item to pop.
    pub fn peek_priority(&self) -> Option<i64> {
        self.heap.peek().map(|e| e.priority)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain everything in priority order.
    pub fn drain_ordered(&mut self) -> Vec<(i64, T)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(x) = self.pop() {
            out.push(x);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_lowest_priority_first() {
        let mut q = StablePriorityQueue::new();
        q.push(5, "e");
        q.push(1, "a");
        q.push(3, "c");
        let order: Vec<&str> = q.drain_ordered().into_iter().map(|(_, x)| x).collect();
        assert_eq!(order, vec!["a", "c", "e"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = StablePriorityQueue::new();
        q.push(1, "first");
        q.push(1, "second");
        q.push(0, "urgent");
        q.push(1, "third");
        let order: Vec<&str> = q.drain_ordered().into_iter().map(|(_, x)| x).collect();
        assert_eq!(order, vec!["urgent", "first", "second", "third"]);
    }

    #[test]
    fn negative_priorities_are_most_urgent() {
        let mut q = StablePriorityQueue::new();
        q.push(0, "dense");
        q.push(-1, "prior-grads");
        q.push(i64::MAX, "delayed-grads");
        assert_eq!(q.pop().unwrap().1, "prior-grads");
        assert_eq!(q.pop().unwrap().1, "dense");
        assert_eq!(q.pop().unwrap().1, "delayed-grads");
    }

    #[test]
    fn peek_and_len() {
        let mut q = StablePriorityQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_priority(), None);
        q.push(2, ());
        q.push(1, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_priority(), Some(1));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = StablePriorityQueue::new();
        q.push(2, "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(3, "c");
        q.push(1, "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(0, "z");
        assert_eq!(q.pop().unwrap().1, "z");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }
}
