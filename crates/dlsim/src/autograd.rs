//! A minimal tape-based automatic-differentiation engine.
//!
//! The EmbRace prototype rides on PyTorch's autograd; the reproduction's
//! convergence experiments need real gradients flowing through real model
//! structure (embedding lookups feeding dense layers). This tape supports
//! exactly the dense operators those models use — matmul, addition, bias
//! broadcast, tanh, mean-squared-error — with reverse-mode backward in
//! node-creation order. Embedding tables stay *outside* the tape (EmbRace
//! shards them across workers): a lookup result enters as a
//! gradient-requiring leaf, and after `backward` its gradient pairs with
//! the batch tokens to form the row-sparse embedding gradient.

use embrace_tensor::DenseTensor;

/// Identifier of a tape node.
pub type NodeId = usize;

enum Op {
    /// Input tensor; `requires_grad` decides whether a gradient buffer is
    /// accumulated for it.
    Leaf,
    /// `C = A · B`.
    MatMul(NodeId, NodeId),
    /// `C = A + B` (same shape).
    Add(NodeId, NodeId),
    /// `C = A + bias` where `bias` is `1 × cols`, broadcast over rows.
    AddBias(NodeId, NodeId),
    /// `C = tanh(A)`, element-wise.
    Tanh(NodeId),
    /// `C = sigmoid(A)`, element-wise.
    Sigmoid(NodeId),
    /// `C = A ⊙ B`, element-wise product.
    Mul(NodeId, NodeId),
    /// `C = A[:, start..start+C.cols]`.
    SliceCols(NodeId, usize),
    /// Scalar node: `½ Σ (A − target)²`.
    MseLoss(NodeId, DenseTensor),
}

struct Node {
    value: DenseTensor,
    grad: Option<DenseTensor>,
    op: Op,
    requires_grad: bool,
}

/// A dynamic computation graph recorded in execution order.
///
/// Typical use: create leaves, compose ops, call [`Tape::backward`] on the
/// (scalar) loss node, read gradients with [`Tape::grad`].
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Self {
        Tape::default()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: DenseTensor, op: Op, requires_grad: bool) -> NodeId {
        self.nodes.push(Node { value, grad: None, op, requires_grad });
        self.nodes.len() - 1
    }

    /// Add an input tensor. Gradients are accumulated for it only when
    /// `requires_grad` is set.
    pub fn leaf(&mut self, value: DenseTensor, requires_grad: bool) -> NodeId {
        self.push(value, Op::Leaf, requires_grad)
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &DenseTensor {
        &self.nodes[id].value
    }

    /// The gradient of a node after [`Tape::backward`]; panics if the node
    /// did not require (or receive) a gradient.
    pub fn grad(&self, id: NodeId) -> &DenseTensor {
        self.nodes[id].grad.as_ref().unwrap_or_else(|| {
            panic!("node {id} has no gradient (requires_grad or backward missing)")
        })
    }

    /// Matrix product node.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a].value.matmul(&self.nodes[b].value);
        let rg = self.nodes[a].requires_grad || self.nodes[b].requires_grad;
        self.push(value, Op::MatMul(a, b), rg)
    }

    /// Element-wise sum node (same shapes).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut value = self.nodes[a].value.clone();
        value.add_assign(&self.nodes[b].value);
        let rg = self.nodes[a].requires_grad || self.nodes[b].requires_grad;
        self.push(value, Op::Add(a, b), rg)
    }

    /// Broadcast-add a `1 × cols` bias to every row of `a`.
    pub fn add_bias(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let b = &self.nodes[bias].value;
        assert_eq!(b.rows(), 1, "bias must be a single row");
        assert_eq!(b.cols(), self.nodes[a].value.cols(), "bias width mismatch");
        let mut value = self.nodes[a].value.clone();
        for r in 0..value.rows() {
            let dst = value.row_mut(r);
            for (d, s) in dst.iter_mut().zip(b.row(0)) {
                *d += s;
            }
        }
        let rg = self.nodes[a].requires_grad || self.nodes[bias].requires_grad;
        self.push(value, Op::AddBias(a, bias), rg)
    }

    /// Element-wise logistic sigmoid node.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let mut value = self.nodes[a].value.clone();
        for x in value.as_mut_slice() {
            *x = 1.0 / (1.0 + (-*x).exp());
        }
        let rg = self.nodes[a].requires_grad;
        self.push(value, Op::Sigmoid(a), rg)
    }

    /// Element-wise (Hadamard) product node.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let av = &self.nodes[a].value;
        let bv = &self.nodes[b].value;
        assert_eq!((av.rows(), av.cols()), (bv.rows(), bv.cols()), "shape mismatch in mul");
        let mut value = av.clone();
        for (x, &y) in value.as_mut_slice().iter_mut().zip(bv.as_slice()) {
            *x *= y;
        }
        let rg = self.nodes[a].requires_grad || self.nodes[b].requires_grad;
        self.push(value, Op::Mul(a, b), rg)
    }

    /// Column-slice node: keep columns `[start, end)` of every row.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let value = self.nodes[a].value.slice_columns(start, end);
        let rg = self.nodes[a].requires_grad;
        self.push(value, Op::SliceCols(a, start), rg)
    }

    /// Element-wise `tanh` node.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let mut value = self.nodes[a].value.clone();
        for x in value.as_mut_slice() {
            *x = x.tanh();
        }
        let rg = self.nodes[a].requires_grad;
        self.push(value, Op::Tanh(a), rg)
    }

    /// Scalar loss node `½‖a − target‖²` (sum over all elements).
    pub fn mse_loss(&mut self, a: NodeId, target: &DenseTensor) -> NodeId {
        let av = &self.nodes[a].value;
        assert_eq!((av.rows(), av.cols()), (target.rows(), target.cols()), "target shape mismatch");
        let mut diff = av.clone();
        diff.axpy(-1.0, target);
        let loss = 0.5 * diff.norm_sq();
        let rg = self.nodes[a].requires_grad;
        self.push(DenseTensor::from_vec(1, 1, vec![loss]), Op::MseLoss(a, target.clone()), rg)
    }

    /// Scalar value of a `1 × 1` node (e.g. a loss).
    pub fn scalar(&self, id: NodeId) -> f32 {
        let v = &self.nodes[id].value;
        assert_eq!((v.rows(), v.cols()), (1, 1), "not a scalar node");
        v.as_slice()[0]
    }

    fn accumulate(&mut self, id: NodeId, delta: &DenseTensor) {
        let node = &mut self.nodes[id];
        match &mut node.grad {
            Some(g) => g.add_assign(delta),
            None => node.grad = Some(delta.clone()),
        }
    }

    /// Reverse-mode backward from the scalar node `loss` (seeded with 1).
    /// Gradients accumulate into every node on the path to gradient-
    /// requiring leaves; calling `backward` twice accumulates twice.
    pub fn backward(&mut self, loss: NodeId) {
        let v = &self.nodes[loss].value;
        assert_eq!((v.rows(), v.cols()), (1, 1), "backward starts from a scalar node");
        self.accumulate(loss, &DenseTensor::from_vec(1, 1, vec![1.0]));
        for id in (0..=loss).rev() {
            let Some(grad) = self.nodes[id].grad.clone() else { continue };
            if !self.nodes[id].requires_grad {
                continue;
            }
            match &self.nodes[id].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.nodes[a].requires_grad {
                        let da = grad.matmul_nt(&self.nodes[b].value);
                        self.accumulate(a, &da);
                    }
                    if self.nodes[b].requires_grad {
                        let db = self.nodes[a].value.matmul_tn(&grad);
                        self.accumulate(b, &db);
                    }
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.nodes[a].requires_grad {
                        self.accumulate(a, &grad);
                    }
                    if self.nodes[b].requires_grad {
                        self.accumulate(b, &grad);
                    }
                }
                Op::AddBias(a, bias) => {
                    let (a, bias) = (*a, *bias);
                    if self.nodes[a].requires_grad {
                        self.accumulate(a, &grad);
                    }
                    if self.nodes[bias].requires_grad {
                        let mut db = DenseTensor::zeros(1, grad.cols());
                        for r in 0..grad.rows() {
                            let dst = db.row_mut(0);
                            for (d, s) in dst.iter_mut().zip(grad.row(r)) {
                                *d += s;
                            }
                        }
                        self.accumulate(bias, &db);
                    }
                }
                Op::Tanh(a) => {
                    let a = *a;
                    if self.nodes[a].requires_grad {
                        // d tanh(x) = 1 - tanh(x)^2, and we stored tanh(x).
                        let mut da = grad.clone();
                        for (d, &y) in
                            da.as_mut_slice().iter_mut().zip(self.nodes[id].value.as_slice())
                        {
                            *d *= 1.0 - y * y;
                        }
                        self.accumulate(a, &da);
                    }
                }
                Op::Sigmoid(a) => {
                    let a = *a;
                    if self.nodes[a].requires_grad {
                        // d sigmoid(x) = y(1-y), and we stored y.
                        let mut da = grad.clone();
                        for (d, &y) in
                            da.as_mut_slice().iter_mut().zip(self.nodes[id].value.as_slice())
                        {
                            *d *= y * (1.0 - y);
                        }
                        self.accumulate(a, &da);
                    }
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.nodes[a].requires_grad {
                        let mut da = grad.clone();
                        for (d, &y) in
                            da.as_mut_slice().iter_mut().zip(self.nodes[b].value.as_slice())
                        {
                            *d *= y;
                        }
                        self.accumulate(a, &da);
                    }
                    if self.nodes[b].requires_grad {
                        let mut db = grad.clone();
                        for (d, &y) in
                            db.as_mut_slice().iter_mut().zip(self.nodes[a].value.as_slice())
                        {
                            *d *= y;
                        }
                        self.accumulate(b, &db);
                    }
                }
                Op::SliceCols(a, start) => {
                    let (a, start) = (*a, *start);
                    if self.nodes[a].requires_grad {
                        let mut da = DenseTensor::zeros(
                            self.nodes[a].value.rows(),
                            self.nodes[a].value.cols(),
                        );
                        da.set_columns(start, &grad);
                        self.accumulate(a, &da);
                    }
                }
                Op::MseLoss(a, target) => {
                    let a = *a;
                    if self.nodes[a].requires_grad {
                        let scale = grad.as_slice()[0];
                        let mut da = self.nodes[a].value.clone();
                        da.axpy(-1.0, target);
                        da.scale(scale);
                        self.accumulate(a, &da);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Central-difference check of `d loss / d x[i]` for every element of
    /// a leaf, against the tape's analytic gradient.
    fn check_numeric<F>(x: DenseTensor, build: F)
    where
        F: Fn(&mut Tape, NodeId) -> NodeId,
    {
        let mut tape = Tape::new();
        let xid = tape.leaf(x.clone(), true);
        let loss = build(&mut tape, xid);
        tape.backward(loss);
        let analytic = tape.grad(xid).clone();

        let eps = 1e-3_f32;
        for i in 0..x.len() {
            let mut plus = x.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[i] -= eps;
            let f = |t: DenseTensor| {
                let mut tape = Tape::new();
                let id = tape.leaf(t, false);
                let loss = build(&mut tape, id);
                tape.scalar(loss)
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            let got = analytic.as_slice()[i];
            assert!(
                (numeric - got).abs() < 2e-2 * (1.0 + numeric.abs()),
                "element {i}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn mse_gradient_matches_numeric() {
        let x = DenseTensor::from_vec(2, 2, vec![0.5, -0.3, 1.2, 0.0]);
        let target = DenseTensor::full(2, 2, 0.7);
        check_numeric(x, move |tape, xid| tape.mse_loss(xid, &target));
    }

    #[test]
    fn matmul_gradient_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = DenseTensor::uniform(3, 4, 1.0, &mut rng);
        let w = DenseTensor::uniform(4, 2, 1.0, &mut rng);
        let target = DenseTensor::zeros(3, 2);
        check_numeric(x, move |tape, xid| {
            let wid = tape.leaf(w.clone(), false);
            let y = tape.matmul(xid, wid);
            tape.mse_loss(y, &target)
        });
    }

    #[test]
    fn weight_gradient_through_matmul() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = DenseTensor::uniform(3, 4, 1.0, &mut rng);
        let w = DenseTensor::uniform(4, 2, 1.0, &mut rng);
        let target = DenseTensor::zeros(3, 2);
        let x2 = x.clone();
        check_numeric(w, move |tape, wid| {
            let xid = tape.leaf(x2.clone(), false);
            let y = tape.matmul(xid, wid);
            tape.mse_loss(y, &target)
        });
        let _ = x;
    }

    #[test]
    fn tanh_mlp_gradient_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = DenseTensor::uniform(2, 3, 0.8, &mut rng);
        let w1 = DenseTensor::uniform(3, 3, 0.8, &mut rng);
        let b1 = DenseTensor::uniform(1, 3, 0.5, &mut rng);
        let w2 = DenseTensor::uniform(3, 2, 0.8, &mut rng);
        let target = DenseTensor::full(2, 2, 0.3);
        check_numeric(x, move |tape, xid| {
            let w1 = tape.leaf(w1.clone(), false);
            let b1 = tape.leaf(b1.clone(), false);
            let w2 = tape.leaf(w2.clone(), false);
            let h = tape.matmul(xid, w1);
            let h = tape.add_bias(h, b1);
            let h = tape.tanh(h);
            let y = tape.matmul(h, w2);
            tape.mse_loss(y, &target)
        });
    }

    #[test]
    fn add_fans_gradient_to_both_inputs() {
        let mut tape = Tape::new();
        let a = tape.leaf(DenseTensor::full(1, 2, 1.0), true);
        let b = tape.leaf(DenseTensor::full(1, 2, 2.0), true);
        let c = tape.add(a, b);
        let loss = tape.mse_loss(c, &DenseTensor::zeros(1, 2));
        tape.backward(loss);
        // d loss/d c = c = [3,3]; both inputs receive it.
        assert_eq!(tape.grad(a).as_slice(), &[3.0, 3.0]);
        assert_eq!(tape.grad(b).as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn bias_gradient_sums_over_rows() {
        let mut tape = Tape::new();
        let x = tape.leaf(DenseTensor::zeros(3, 2), false);
        let b = tape.leaf(DenseTensor::full(1, 2, 1.0), true);
        let y = tape.add_bias(x, b);
        let loss = tape.mse_loss(y, &DenseTensor::zeros(3, 2));
        tape.backward(loss);
        // Every row contributes its residual (=1) to the bias gradient.
        assert_eq!(tape.grad(b).as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn no_grad_leaves_skip_accumulation() {
        let mut tape = Tape::new();
        let x = tape.leaf(DenseTensor::full(1, 1, 2.0), false);
        let loss = tape.mse_loss(x, &DenseTensor::zeros(1, 1));
        tape.backward(loss);
        assert!((tape.scalar(loss) - 2.0).abs() < 1e-6);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tape.grad(x))).is_err());
    }

    #[test]
    fn diamond_graph_accumulates() {
        // loss = mse(a + a) — gradient w.r.t. a flows down both edges.
        let mut tape = Tape::new();
        let a = tape.leaf(DenseTensor::full(1, 1, 1.0), true);
        let c = tape.add(a, a);
        let loss = tape.mse_loss(c, &DenseTensor::zeros(1, 1));
        tape.backward(loss);
        // c = 2, d loss/dc = 2, d loss/da = 2 + 2 = 4.
        assert_eq!(tape.grad(a).as_slice(), &[4.0]);
    }

    #[test]
    #[should_panic(expected = "scalar node")]
    fn backward_from_non_scalar_panics() {
        let mut tape = Tape::new();
        let a = tape.leaf(DenseTensor::zeros(2, 2), true);
        tape.backward(a);
    }
}

#[cfg(test)]
mod lstm_op_tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn sigmoid_gradient_matches_numeric() {
        let x = DenseTensor::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let target = DenseTensor::zeros(1, 3);
        let build = move |tape: &mut Tape, xid: NodeId| {
            let s = tape.sigmoid(xid);
            tape.mse_loss(s, &target)
        };
        let mut tape = Tape::new();
        let xid = tape.leaf(x.clone(), true);
        let loss = build(&mut tape, xid);
        tape.backward(loss);
        let analytic = tape.grad(xid).clone();
        let eps = 1e-3_f32;
        for i in 0..x.len() {
            let f = |v: f32| {
                let mut t = x.clone();
                t.as_mut_slice()[i] = v;
                let mut tape = Tape::new();
                let id = tape.leaf(t, false);
                let l = build(&mut tape, id);
                tape.scalar(l)
            };
            let numeric = (f(x.as_slice()[i] + eps) - f(x.as_slice()[i] - eps)) / (2.0 * eps);
            assert!((numeric - analytic.as_slice()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn mul_gradient_is_cross_term() {
        let mut tape = Tape::new();
        let a = tape.leaf(DenseTensor::from_vec(1, 2, vec![2.0, 3.0]), true);
        let b = tape.leaf(DenseTensor::from_vec(1, 2, vec![5.0, 7.0]), true);
        let c = tape.mul(a, b);
        let loss = tape.mse_loss(c, &DenseTensor::zeros(1, 2));
        tape.backward(loss);
        // d loss/dc = c = [10, 21]; da = c*b, db = c*a.
        assert_eq!(tape.grad(a).as_slice(), &[50.0, 147.0]);
        assert_eq!(tape.grad(b).as_slice(), &[20.0, 63.0]);
    }

    #[test]
    fn slice_backward_scatters_into_range() {
        let mut tape = Tape::new();
        let a = tape.leaf(DenseTensor::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]), true);
        let mid = tape.slice_cols(a, 1, 3);
        let loss = tape.mse_loss(mid, &DenseTensor::zeros(1, 2));
        tape.backward(loss);
        assert_eq!(tape.grad(a).as_slice(), &[0.0, 2.0, 3.0, 0.0]);
    }

    /// One LSTM cell built from tape ops; numeric-check the input grad.
    #[test]
    fn lstm_cell_gradient_matches_numeric() {
        let d = 3;
        let mut rng = StdRng::seed_from_u64(12);
        let x = DenseTensor::uniform(2, d, 0.7, &mut rng);
        let h0 = DenseTensor::uniform(2, d, 0.5, &mut rng);
        let c0 = DenseTensor::uniform(2, d, 0.5, &mut rng);
        let wx = DenseTensor::uniform(d, 4 * d, 0.5, &mut rng);
        let wh = DenseTensor::uniform(d, 4 * d, 0.5, &mut rng);
        let target = DenseTensor::zeros(2, d);

        let build = move |tape: &mut Tape, xid: NodeId| {
            let h0 = tape.leaf(h0.clone(), false);
            let c0 = tape.leaf(c0.clone(), false);
            let wx = tape.leaf(wx.clone(), false);
            let wh = tape.leaf(wh.clone(), false);
            let gx = tape.matmul(xid, wx);
            let gh = tape.matmul(h0, wh);
            let gates = tape.add(gx, gh);
            let i = tape.slice_cols(gates, 0, d);
            let i = tape.sigmoid(i);
            let f = tape.slice_cols(gates, d, 2 * d);
            let f = tape.sigmoid(f);
            let o = tape.slice_cols(gates, 2 * d, 3 * d);
            let o = tape.sigmoid(o);
            let g = tape.slice_cols(gates, 3 * d, 4 * d);
            let g = tape.tanh(g);
            let fc = tape.mul(f, c0);
            let ig = tape.mul(i, g);
            let c1 = tape.add(fc, ig);
            let c1t = tape.tanh(c1);
            let h1 = tape.mul(o, c1t);
            tape.mse_loss(h1, &target)
        };

        let mut tape = Tape::new();
        let xid = tape.leaf(x.clone(), true);
        let loss = build(&mut tape, xid);
        tape.backward(loss);
        let analytic = tape.grad(xid).clone();
        let eps = 1e-3_f32;
        for idx in 0..x.len() {
            let f = |v: f32| {
                let mut t = x.clone();
                t.as_mut_slice()[idx] = v;
                let mut tape = Tape::new();
                let id = tape.leaf(t, false);
                let l = build(&mut tape, id);
                tape.scalar(l)
            };
            let numeric = (f(x.as_slice()[idx] + eps) - f(x.as_slice()[idx] - eps)) / (2.0 * eps);
            let got = analytic.as_slice()[idx];
            assert!(
                (numeric - got).abs() < 2e-2 * (1.0 + numeric.abs()),
                "elem {idx}: numeric {numeric} vs analytic {got}"
            );
        }
    }
}
