//! Backward-hook registry.
//!
//! The prototype "registers a hook on each BP of dense blocks… when this
//! hook is fired, the corresponding dense communication operations along
//! with their priorities are dumped into our priority queue", and another
//! hook on the last BP for the Vertical Sparse Scheduling computation
//! (§5.1). This registry reproduces that mechanism for the functional
//! trainer: hooks are keyed by module index and fired as each module's
//! backward completes.

use embrace_obs::recorder;

/// A boxed backward-hook callback.
type Hook<E> = Box<dyn FnMut(&mut E) + Send>;

/// Callbacks fired when a module's backward pass completes. `E` is the
/// event payload (typically the per-module gradient context).
pub struct HookRegistry<E> {
    hooks: Vec<Vec<Hook<E>>>,
    /// Optional per-module labels for observability spans; falls back to
    /// `m{index}` when unset.
    labels: Vec<Option<String>>,
}

impl<E> HookRegistry<E> {
    /// Registry for a model of `n_modules` modules.
    pub fn new(n_modules: usize) -> Self {
        HookRegistry {
            hooks: (0..n_modules).map(|_| Vec::new()).collect(),
            labels: (0..n_modules).map(|_| None).collect(),
        }
    }

    pub fn n_modules(&self) -> usize {
        self.hooks.len()
    }

    /// Name `module` for observability: its hook firings record spans
    /// `hooks/<label>` instead of the positional `hooks/m{index}`.
    pub fn set_label(&mut self, module: usize, label: impl Into<String>) {
        self.labels[module] = Some(label.into());
    }

    /// Register `hook` on the BP of `module`.
    pub fn register<F>(&mut self, module: usize, hook: F)
    where
        F: FnMut(&mut E) + Send + 'static,
    {
        self.hooks[module].push(Box::new(hook));
    }

    /// Number of hooks registered on `module`.
    pub fn count(&self, module: usize) -> usize {
        self.hooks[module].len()
    }

    /// Fire all hooks of `module` in registration order. When an
    /// `embrace_obs` recorder is installed on this thread, the firing is
    /// wrapped in a per-layer span (`cat = "hook"`) so traces show which
    /// module's backward triggered which communication submissions.
    pub fn fire(&mut self, module: usize, event: &mut E) {
        if self.hooks[module].is_empty() {
            return;
        }
        let name = match &self.labels[module] {
            Some(l) => format!("hooks/{l}"),
            None => format!("hooks/m{module}"),
        };
        let _span = recorder::span(&name, "hook");
        for h in &mut self.hooks[module] {
            h(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_fire_in_registration_order() {
        let mut reg: HookRegistry<Vec<&'static str>> = HookRegistry::new(2);
        reg.register(0, |log| log.push("first"));
        reg.register(0, |log| log.push("second"));
        reg.register(1, |log| log.push("other-module"));
        let mut log = Vec::new();
        reg.fire(0, &mut log);
        assert_eq!(log, vec!["first", "second"]);
    }

    #[test]
    fn firing_module_without_hooks_is_noop() {
        let mut reg: HookRegistry<u32> = HookRegistry::new(3);
        let mut ev = 0;
        reg.fire(2, &mut ev);
        assert_eq!(ev, 0);
        assert_eq!(reg.count(2), 0);
    }

    #[test]
    fn firing_records_per_layer_spans_when_observed() {
        // Run on a dedicated thread: the recorder is thread-local and
        // other tests in this binary must not see it.
        std::thread::spawn(|| {
            embrace_obs::recorder::install("w0");
            let mut reg: HookRegistry<u32> = HookRegistry::new(3);
            reg.set_label(1, "dec_emb");
            reg.register(0, |_| {});
            reg.register(1, |_| {});
            let mut ev = 0;
            reg.fire(0, &mut ev);
            reg.fire(1, &mut ev);
            reg.fire(2, &mut ev); // no hooks: no span
            let set = embrace_obs::recorder::take().expect("recorder installed");
            set.check_well_nested().expect("hook spans nest");
            assert_eq!(
                set.structure(),
                vec!["w0|d0|hook|hooks/m0".to_string(), "w0|d0|hook|hooks/dec_emb".to_string()]
            );
        })
        .join()
        .expect("observed-hooks thread");
    }

    #[test]
    fn hooks_can_mutate_captured_state() {
        let mut reg: HookRegistry<i32> = HookRegistry::new(1);
        let mut total = 0;
        reg.register(0, move |ev| *ev += 1);
        for _ in 0..3 {
            reg.fire(0, &mut total);
        }
        assert_eq!(total, 3);
        assert_eq!(reg.n_modules(), 1);
    }
}
