//! The data prefetcher behind Vertical Sparse Scheduling.
//!
//! "We adopt the data prefetch technology, which always keeps the data of
//! the next iteration in memory" (§4.2.2): while iteration *t* trains, the
//! tokens of iteration *t+1* are already known, so Algorithm 1 can compute
//! the prior/delayed gradient split.

/// Wraps a batch iterator and always holds the next batch.
pub struct Prefetcher<T, I: Iterator<Item = T>> {
    inner: I,
    next: Option<T>,
}

impl<T, I: Iterator<Item = T>> Prefetcher<T, I> {
    pub fn new(mut inner: I) -> Self {
        let next = inner.next();
        Prefetcher { inner, next }
    }

    /// The upcoming batch (`D_next` in Algorithm 1), if the stream is not
    /// exhausted.
    pub fn peek_next(&self) -> Option<&T> {
        self.next.as_ref()
    }

    /// Consume and return the current batch, prefetching its successor.
    pub fn advance(&mut self) -> Option<T> {
        let cur = self.next.take();
        self.next = self.inner.next();
        cur
    }

    /// True when no batches remain.
    pub fn is_exhausted(&self) -> bool {
        self.next.is_none()
    }
}

impl<T, I: Iterator<Item = T>> Iterator for Prefetcher<T, I> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.advance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_sees_next_before_advance() {
        let mut p = Prefetcher::new([1, 2, 3].into_iter());
        assert_eq!(p.peek_next(), Some(&1));
        assert_eq!(p.advance(), Some(1));
        assert_eq!(p.peek_next(), Some(&2));
        assert_eq!(p.advance(), Some(2));
        assert_eq!(p.peek_next(), Some(&3));
    }

    #[test]
    fn exhaustion() {
        let mut p = Prefetcher::new(std::iter::once(9));
        assert!(!p.is_exhausted());
        assert_eq!(p.advance(), Some(9));
        assert!(p.is_exhausted());
        assert_eq!(p.peek_next(), None);
        assert_eq!(p.advance(), None);
    }

    #[test]
    fn works_as_iterator() {
        let p = Prefetcher::new(0..5);
        let v: Vec<i32> = p.collect();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_stream() {
        let mut p = Prefetcher::new(std::iter::empty::<u32>());
        assert!(p.is_exhausted());
        assert_eq!(p.advance(), None);
    }
}
