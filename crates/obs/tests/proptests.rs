//! Property tests for the observability layer (ISSUE 3 satellite):
//! span trees are well-nested per track, histogram quantiles are
//! monotone, counter merges are associative, and Chrome trace output
//! round-trips through the crate's minimal JSON parser.

use embrace_obs::json::{parse, Value};
use embrace_obs::{chrome_trace, ClockDomain, CounterSeries, LogHistogram, Metrics, SpanSet};
use proptest::prelude::*;

/// A small palette of span names exercising JSON escaping.
const NAMES: [&str; 6] =
    ["plain", "qu\"ote", "back\\slash", "new\nline", "tab\there", "uni→code 😀"];

fn name_of(i: u32) -> &'static str {
    NAMES[i as usize % NAMES.len()]
}

/// Build a span set from a random walk of begin/end commands: `true`
/// opens a span (name picked by index), `false` closes the innermost
/// one if any. Time advances by `dts[i]` before each command, so spans
/// produced this way are well-nested by construction.
fn walk_spans(cmds: &[(bool, u32)], dts: &[f64]) -> SpanSet {
    let mut set = SpanSet::new(ClockDomain::Virtual);
    let t0 = set.add_track("walk");
    let mut now = 0.0;
    for (i, &(open, name)) in cmds.iter().enumerate() {
        now += dts[i % dts.len().max(1)].max(0.0);
        if open {
            set.begin(t0, name_of(name), "cat", now);
        } else if set.open_depth(t0) > 0 {
            set.end(t0, now);
        }
    }
    while set.open_depth(t0) > 0 {
        now += 1e-6;
        set.end(t0, now);
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn begin_end_walks_are_well_nested(
        cmds in prop::collection::vec(((0u32..2).prop_map(|b| b == 0), 0u32..8), 0..60),
        dts in prop::collection::vec(0.0f64..1e-3, 1..16),
    ) {
        let set = walk_spans(&cmds, &dts);
        prop_assert!(set.check_well_nested().is_ok(), "{:?}", set.check_well_nested());
        // Structure is a pure projection: same length as span count.
        prop_assert_eq!(set.structure().len(), set.len());
    }

    #[test]
    fn partial_overlap_is_always_caught(
        a_end in 1.0f64..10.0,
        cut in 0.01f64..0.99,
        extra in 0.1f64..5.0,
    ) {
        // Span B starts strictly inside A and ends strictly after it.
        let mut set = SpanSet::new(ClockDomain::Virtual);
        let t = set.add_track("w");
        set.record(t, "a", "x", 0.0, a_end);
        set.record(t, "b", "x", a_end * cut, a_end + extra);
        prop_assert!(set.check_well_nested().is_err());
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bracketed(
        values in prop::collection::vec(1e-9f64..1e4, 1..200),
        qs in prop::collection::vec(0.0f64..1.0, 2..20),
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.observe(v);
        }
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let est = h.quantile(q);
            prop_assert!(est >= prev, "quantile({q}) = {est} < {prev}");
            prop_assert!(est >= h.min() && est <= h.max());
            prev = est;
        }
        // The estimate is the upper bound of the bucket holding the
        // ⌈q·n⌉-th observation, so it brackets the exact order statistic
        // from above by at most one sub-bucket width (2^(1/4) ≈ 19%).
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let target = ((0.5 * sorted.len() as f64).ceil() as usize).max(1);
        let exact = sorted[target - 1];
        let est = h.quantile(0.5);
        prop_assert!(est >= exact * (1.0 - 1e-9) && est <= exact * 1.2,
            "p50 {est} vs exact order statistic {exact}");
    }

    #[test]
    fn counter_merge_is_associative_and_commutative(
        a in prop::collection::vec((0u32..6, 0u64..u64::MAX), 0..12),
        b in prop::collection::vec((0u32..6, 0u64..u64::MAX), 0..12),
        c in prop::collection::vec((0u32..6, 0u64..u64::MAX), 0..12),
    ) {
        let build = |items: &[(u32, u64)]| {
            let mut m = Metrics::new();
            for &(k, v) in items {
                m.inc(&format!("c{k}"), v);
                m.observe(&format!("h{}", k % 3), (v % 1000) as f64 * 1e-4);
            }
            m
        };
        let (ma, mb, mc) = (build(&a), build(&b), build(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ma.clone();
        left.merge(&mb);
        left.merge(&mc);
        // a ⊕ (b ⊕ c)
        let mut bc = mb.clone();
        bc.merge(&mc);
        let mut right = ma.clone();
        right.merge(&bc);
        for k in 0..6u32 {
            let name = format!("c{k}");
            prop_assert_eq!(left.counter(&name), right.counter(&name), "{}", name);
        }
        // Histogram bucket counts merge associatively too.
        for k in 0..3u32 {
            let name = format!("h{k}");
            match (left.histogram(&name), right.histogram(&name)) {
                (None, None) => {}
                (Some(lh), Some(rh)) => {
                    prop_assert_eq!(lh.count(), rh.count());
                    for q in [0.1, 0.5, 0.9, 0.99] {
                        prop_assert_eq!(lh.quantile(q), rh.quantile(q));
                    }
                }
                _ => prop_assert!(false, "histogram {} present on one side only", name),
            }
        }
        // Commutative on counters: b ⊕ a == a ⊕ b.
        let mut ab = ma.clone();
        ab.merge(&mb);
        let mut ba = mb.clone();
        ba.merge(&ma);
        for k in 0..6u32 {
            let name = format!("c{k}");
            prop_assert_eq!(ab.counter(&name), ba.counter(&name));
        }
    }

    #[test]
    fn chrome_trace_round_trips_through_json(
        cmds in prop::collection::vec(((0u32..2).prop_map(|b| b == 0), 0u32..8), 0..40),
        dts in prop::collection::vec(1e-6f64..1e-3, 1..8),
        counter_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..100.0), 0..10),
    ) {
        let set = walk_spans(&cmds, &dts);
        let mut series = CounterSeries::new("depth \"q\"");
        for &(t, v) in &counter_pts {
            series.push(t, v);
        }
        let doc = chrome_trace(&set, &[series]);
        let v = parse(&doc).expect("exporter output must be valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
        let xs: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        prop_assert_eq!(xs.len(), set.len());
        for (ev, span) in xs.iter().zip(set.spans()) {
            // Names round-trip exactly (escaping is lossless)...
            prop_assert_eq!(ev.get("name").and_then(Value::as_str), Some(span.name.as_str()));
            // ...and times survive to within the exporter's 1e-3 µs
            // print precision.
            let ts = ev.get("ts").and_then(Value::as_f64).expect("ts");
            let dur = ev.get("dur").and_then(Value::as_f64).expect("dur");
            prop_assert!((ts - span.start * 1e6).abs() <= 5e-3, "ts {ts} vs {}", span.start * 1e6);
            prop_assert!((dur - span.dur() * 1e6).abs() <= 5e-3);
        }
        let ncounters = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .count();
        prop_assert_eq!(ncounters, counter_pts.len());
    }
}
