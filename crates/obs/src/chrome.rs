//! Chrome `trace_event` JSON export.
//!
//! Emits the JSON Object Format (`{"traceEvents": [...]}`) understood
//! by Perfetto (ui.perfetto.dev) and `chrome://tracing`:
//!
//! * one `M` (metadata) event naming the process and each track
//!   (tracks map to threads: `pid` 1, `tid` = track index + 1);
//! * one `X` (complete) event per span, with `ts`/`dur` in microseconds;
//! * `C` (counter) events for sampled series such as the DES
//!   per-priority communication queue depth.

use crate::json::escape;
use crate::span::SpanSet;
use std::fmt::Write as _;

/// A sampled counter series: `(time in seconds, value)` points, emitted
/// as Chrome `C` events so the viewer draws them as a filled graph.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterSeries {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

impl CounterSeries {
    pub fn new(name: &str) -> Self {
        CounterSeries { name: name.to_string(), points: Vec::new() }
    }

    pub fn push(&mut self, t: f64, v: f64) {
        self.points.push((t, v));
    }
}

/// Seconds → trace microseconds, with enough precision to round-trip
/// sub-microsecond DES durations.
fn us(t: f64) -> String {
    format!("{:.3}", t * 1e6)
}

/// Serialize `set` (plus optional counter series) as a Chrome
/// trace_event JSON document.
pub fn chrome_trace(set: &SpanSet, counters: &[CounterSeries]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"");
    out.push_str(set.domain().label());
    out.push_str("\"},\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&ev);
    };

    push(
        &mut out,
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"args\":{\"name\":\"embrace\"}}"
            .to_string(),
    );
    for (i, name) in set.tracks().iter().enumerate() {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                i + 1,
                escape(name)
            ),
        );
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":1,\"tid\":{},\"args\":{{\"sort_index\":{}}}}}",
                i + 1,
                i
            ),
        );
    }
    for s in set.spans() {
        if !s.end.is_finite() {
            continue;
        }
        let mut ev = String::new();
        let _ = write!(
            ev,
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            escape(&s.name),
            escape(&s.cat),
            s.track + 1,
            us(s.start),
            us(s.dur())
        );
        push(&mut out, ev);
    }
    for series in counters {
        for &(t, v) in &series.points {
            let mut ev = String::new();
            let _ = write!(
                ev,
                "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":1,\"ts\":{},\"args\":{{\"value\":{}}}}}",
                escape(&series.name),
                us(t),
                v
            );
            push(&mut out, ev);
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDomain;
    use crate::json::{parse, Value};

    fn demo_set() -> SpanSet {
        let mut set = SpanSet::new(ClockDomain::Virtual);
        let t = set.add_track("gpu0 compute");
        set.begin(t, "s0/fp", "fp", 0.0);
        set.end(t, 1.5e-3);
        set.record(t, "s0/bp \"quoted\"", "bp", 1.5e-3, 4e-3);
        set
    }

    #[test]
    fn trace_is_valid_json_with_expected_events() {
        let mut counters = CounterSeries::new("queue_depth(p=0)");
        counters.push(0.0, 0.0);
        counters.push(1e-3, 3.0);
        let doc = chrome_trace(&demo_set(), &[counters]);
        let v = parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_arr).expect("traceEvents");
        let xs: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("X")).collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].get("name").and_then(Value::as_str), Some("s0/fp"));
        assert_eq!(xs[0].get("ts").and_then(Value::as_f64), Some(0.0));
        assert_eq!(xs[0].get("dur").and_then(Value::as_f64), Some(1500.0));
        assert_eq!(xs[1].get("name").and_then(Value::as_str), Some("s0/bp \"quoted\""));
        let cs: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("C")).collect();
        assert_eq!(cs.len(), 2);
        assert_eq!(
            cs[1].get("args").and_then(|a| a.get("value")).and_then(Value::as_f64),
            Some(3.0)
        );
        assert_eq!(
            v.get("otherData").and_then(|o| o.get("clock")).and_then(Value::as_str),
            Some("virtual")
        );
    }

    #[test]
    fn thread_metadata_names_each_track() {
        let doc = chrome_trace(&demo_set(), &[]);
        let v = parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_arr).expect("traceEvents");
        let names: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .map(|e| {
                e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str).map(String::from)
            })
            .collect();
        assert_eq!(names, vec![Some("gpu0 compute".to_string())]);
    }

    #[test]
    fn open_spans_are_skipped() {
        let mut set = SpanSet::new(ClockDomain::Wall);
        let t = set.add_track("w");
        set.begin(t, "open", "x", 0.0);
        let doc = chrome_trace(&set, &[]);
        let v = parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_arr).expect("traceEvents");
        assert!(events.iter().all(|e| e.get("ph").and_then(Value::as_str) != Some("X")));
    }
}
