//! `embrace-obs` — the workspace observability layer.
//!
//! Every quantitative claim reproduced from the paper (Table 2, Figs 4,
//! 6–10) is a *time* decomposition, so the workspace needs one shared
//! measurement substrate rather than per-crate ad-hoc timelines. This
//! crate provides it with zero third-party dependencies:
//!
//! * [`SpanSet`] — hierarchical spans on named tracks, tagged with an
//!   explicit [`ClockDomain`]: `Wall` for the threaded collectives
//!   (`std::time::Instant` seconds) and `Virtual` for the discrete-event
//!   simulator's f64-second clock. Well-nestedness per track is a checked
//!   invariant, and [`SpanSet::structure`] gives a timing-free view used
//!   by determinism tests.
//! * [`Metrics`] — counters, gauges and log-scale histograms
//!   (p50/p95/p99) in a mergeable registry.
//! * [`chrome`] — Chrome `trace_event` JSON export (load in Perfetto or
//!   `chrome://tracing`), plus counter series for e.g. per-priority DES
//!   queue depth.
//! * [`summary`] — a plain-text roll-up table for terminal output.
//! * [`json`] — a minimal JSON parser so trace output can be validated
//!   and round-tripped without external crates.
//! * [`recorder`] — a thread-local recorder + RAII guard so hot paths
//!   (the SPMD collectives) can be instrumented at near-zero cost when
//!   no recorder is installed.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod clock;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod span;
pub mod summary;

pub use chrome::{chrome_trace, CounterSeries};
pub use clock::{ClockDomain, WallClock};
pub use metrics::{LogHistogram, Metrics};
pub use span::{SpanRec, SpanSet, TrackId};
