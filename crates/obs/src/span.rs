//! Hierarchical spans on named tracks.
//!
//! A [`SpanSet`] holds closed intervals `[start, end]` grouped by
//! *track* (one track per thread, rank, or DES resource). Spans opened
//! with [`SpanSet::begin`] / closed with [`SpanSet::end`] form a stack
//! per track, so nesting depth is recorded explicitly; fully-formed
//! spans (e.g. converted from a DES trace) enter via
//! [`SpanSet::record`]. Well-nestedness — on any track, two spans are
//! either disjoint or one contains the other — is a checked invariant
//! ([`SpanSet::check_well_nested`]), and [`SpanSet::structure`] projects
//! the set to a timing-free form for determinism comparisons.

use crate::clock::ClockDomain;

/// Index of a track within its [`SpanSet`].
pub type TrackId = usize;

/// One closed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRec {
    pub track: TrackId,
    pub name: String,
    /// Category — coarse grouping used for trace colouring and summary
    /// roll-ups (e.g. `"fp"`, `"bp"`, `"collective"`).
    pub cat: String,
    /// Start time, in the owning set's clock domain (seconds).
    pub start: f64,
    /// End time (seconds). `NaN` while the span is still open.
    pub end: f64,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
}

impl SpanRec {
    pub fn dur(&self) -> f64 {
        self.end - self.start
    }
}

/// A set of spans over named tracks, all in one [`ClockDomain`].
#[derive(Clone, Debug)]
pub struct SpanSet {
    domain: ClockDomain,
    tracks: Vec<String>,
    spans: Vec<SpanRec>,
    /// Per-track stack of indices into `spans` still awaiting `end`.
    open: Vec<Vec<usize>>,
}

impl SpanSet {
    pub fn new(domain: ClockDomain) -> Self {
        SpanSet { domain, tracks: Vec::new(), spans: Vec::new(), open: Vec::new() }
    }

    pub fn domain(&self) -> ClockDomain {
        self.domain
    }

    /// Add a track (a row in the trace viewer); returns its id.
    pub fn add_track(&mut self, name: &str) -> TrackId {
        self.tracks.push(name.to_string());
        self.open.push(Vec::new());
        self.tracks.len() - 1
    }

    pub fn tracks(&self) -> &[String] {
        &self.tracks
    }

    pub fn track_name(&self, id: TrackId) -> &str {
        &self.tracks[id]
    }

    pub fn spans(&self) -> &[SpanRec] {
        &self.spans
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Open a span on `track` at time `t`; its depth is the number of
    /// spans currently open on that track.
    pub fn begin(&mut self, track: TrackId, name: &str, cat: &str, t: f64) {
        let depth = self.open[track].len();
        self.spans.push(SpanRec {
            track,
            name: name.to_string(),
            cat: cat.to_string(),
            start: t,
            end: f64::NAN,
            depth,
        });
        let idx = self.spans.len() - 1;
        self.open[track].push(idx);
    }

    /// Close the innermost open span on `track` at time `t`.
    pub fn end(&mut self, track: TrackId, t: f64) {
        let idx = self.open[track].pop().expect("SpanSet::end with no open span on track");
        let s = &mut self.spans[idx];
        s.end = if t < s.start { s.start } else { t };
    }

    /// Number of spans still open on `track`.
    pub fn open_depth(&self, track: TrackId) -> usize {
        self.open[track].len()
    }

    /// Record a fully-formed span; its depth is the current open depth
    /// on that track (0 for flat traces such as DES resource rows).
    pub fn record(&mut self, track: TrackId, name: &str, cat: &str, start: f64, end: f64) {
        let depth = self.open[track].len();
        self.spans.push(SpanRec {
            track,
            name: name.to_string(),
            cat: cat.to_string(),
            start,
            end: if end < start { start } else { end },
            depth,
        });
    }

    /// Latest end time over all spans (0.0 if empty).
    pub fn max_end(&self) -> f64 {
        self.spans.iter().map(|s| s.end).filter(|e| e.is_finite()).fold(0.0, f64::max)
    }

    /// Sum of durations of spans on `track` (closed spans only).
    pub fn track_total(&self, track: TrackId) -> f64 {
        self.spans.iter().filter(|s| s.track == track && s.end.is_finite()).map(SpanRec::dur).sum()
    }

    /// Check the well-nesting invariant: on every track, all spans are
    /// closed and any two are disjoint or one contains the other.
    pub fn check_well_nested(&self) -> Result<(), String> {
        for tid in 0..self.tracks.len() {
            if !self.open[tid].is_empty() {
                return Err(format!(
                    "track '{}': {} span(s) still open",
                    self.tracks[tid],
                    self.open[tid].len()
                ));
            }
            let mut spans: Vec<&SpanRec> = self.spans.iter().filter(|s| s.track == tid).collect();
            if let Some(s) = spans.iter().find(|s| !s.start.is_finite() || !s.end.is_finite()) {
                return Err(format!(
                    "track '{}': span '{}' has non-finite bounds",
                    self.tracks[tid], s.name
                ));
            }
            // Sort by start, longest-first on ties, so containment maps
            // to stack discipline.
            spans.sort_by(|a, b| a.start.total_cmp(&b.start).then(b.end.total_cmp(&a.end)));
            let mut stack: Vec<&SpanRec> = Vec::new();
            for s in spans {
                while let Some(top) = stack.last() {
                    if top.end <= s.start {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if let Some(top) = stack.last() {
                    if s.end > top.end {
                        return Err(format!(
                            "track '{}': span '{}' [{:.9}, {:.9}] partially overlaps '{}' [{:.9}, {:.9}]",
                            self.tracks[tid], s.name, s.start, s.end, top.name, top.start, top.end
                        ));
                    }
                }
                stack.push(s);
            }
        }
        Ok(())
    }

    /// Timing-free projection: one line per span in record order —
    /// `track|d<depth>|<cat>|<name>`. Two runs with identical structure
    /// did the same operations in the same order on each track,
    /// regardless of how long each took.
    pub fn structure(&self) -> Vec<String> {
        self.spans
            .iter()
            .map(|s| format!("{}|d{}|{}|{}", self.tracks[s.track], s.depth, s.cat, s.name))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_end_tracks_depth() {
        let mut set = SpanSet::new(ClockDomain::Virtual);
        let t = set.add_track("worker");
        set.begin(t, "step", "train", 0.0);
        set.begin(t, "fp", "compute", 0.1);
        set.end(t, 0.4);
        set.begin(t, "bp", "compute", 0.4);
        set.end(t, 0.9);
        set.end(t, 1.0);
        assert_eq!(set.len(), 3);
        assert_eq!(set.spans()[0].depth, 0);
        assert_eq!(set.spans()[1].depth, 1);
        assert_eq!(set.spans()[2].depth, 1);
        set.check_well_nested().expect("well nested");
        assert!((set.max_end() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn open_span_fails_nesting_check() {
        let mut set = SpanSet::new(ClockDomain::Wall);
        let t = set.add_track("w");
        set.begin(t, "dangling", "x", 0.0);
        assert!(set.check_well_nested().is_err());
    }

    #[test]
    fn partial_overlap_is_rejected() {
        let mut set = SpanSet::new(ClockDomain::Virtual);
        let t = set.add_track("w");
        set.record(t, "a", "x", 0.0, 2.0);
        set.record(t, "b", "x", 1.0, 3.0);
        let err = set.check_well_nested().expect_err("overlap");
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn disjoint_and_contained_spans_pass() {
        let mut set = SpanSet::new(ClockDomain::Virtual);
        let t = set.add_track("w");
        set.record(t, "outer", "x", 0.0, 5.0);
        set.record(t, "inner", "x", 1.0, 2.0);
        set.record(t, "inner2", "x", 2.0, 5.0);
        set.record(t, "later", "x", 6.0, 7.0);
        set.check_well_nested().expect("ok");
    }

    #[test]
    fn structure_ignores_times() {
        let mut a = SpanSet::new(ClockDomain::Wall);
        let ta = a.add_track("r0");
        a.record(ta, "allreduce", "collective", 0.0, 1.0);
        let mut b = SpanSet::new(ClockDomain::Wall);
        let tb = b.add_track("r0");
        b.record(tb, "allreduce", "collective", 5.0, 9.0);
        assert_eq!(a.structure(), b.structure());
        assert_eq!(a.structure(), vec!["r0|d0|collective|allreduce".to_string()]);
    }

    #[test]
    fn track_total_sums_durations() {
        let mut set = SpanSet::new(ClockDomain::Virtual);
        let t = set.add_track("net");
        set.record(t, "a", "c", 0.0, 1.5);
        set.record(t, "b", "c", 2.0, 2.25);
        assert!((set.track_total(t) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn end_clamps_backwards_clock() {
        let mut set = SpanSet::new(ClockDomain::Wall);
        let t = set.add_track("w");
        set.begin(t, "s", "x", 1.0);
        set.end(t, 0.5);
        assert_eq!(set.spans()[0].dur(), 0.0);
    }
}
