//! Clock domains.
//!
//! The workspace has two time bases that must never be mixed on one
//! track: the discrete-event simulator advances a *virtual* f64-second
//! clock (deterministic, starts at 0.0), while the threaded collectives
//! run on the host's *wall* clock. Every [`crate::SpanSet`] is tagged
//! with its domain so exporters and tests can tell which they are
//! looking at.

use std::time::Instant;

/// Which clock a span set's timestamps come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClockDomain {
    /// Host monotonic time, in seconds since some fixed epoch
    /// (typically [`WallClock`] creation).
    Wall,
    /// The DES virtual clock: f64 seconds since simulation start.
    Virtual,
}

impl ClockDomain {
    /// Short label for exporters and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            ClockDomain::Wall => "wall",
            ClockDomain::Virtual => "virtual",
        }
    }
}

/// A wall-clock anchored at its creation instant, read as f64 seconds.
/// Spans in the `Wall` domain use one `WallClock` per recorder so all
/// timestamps share an epoch.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        WallClock { epoch: Instant::now() }
    }

    /// Seconds elapsed since this clock's epoch.
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Convert an externally captured [`Instant`] to this clock's
    /// seconds-since-epoch (0.0 if it predates the epoch).
    pub fn at(&self, t: Instant) -> f64 {
        t.saturating_duration_since(self.epoch).as_secs_f64()
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a && a >= 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(ClockDomain::Wall.label(), "wall");
        assert_eq!(ClockDomain::Virtual.label(), "virtual");
    }

    #[test]
    fn at_clamps_pre_epoch_instants() {
        let before = Instant::now();
        let c = WallClock::new();
        assert_eq!(c.at(before), 0.0);
        assert!(c.at(Instant::now()) >= 0.0);
    }
}
