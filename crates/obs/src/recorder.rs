//! Thread-local span recorder with an RAII guard.
//!
//! Hot paths (the SPMD collectives in `embrace-collectives`) call
//! [`span`] unconditionally; when no recorder is installed on the
//! current thread the guard is a no-op costing one thread-local read,
//! so instrumentation never perturbs un-observed runs. A worker opts in
//! with [`install`], runs, then harvests its spans with [`take`].
//!
//! Timestamps are `Wall` domain, anchored at the [`install`] call so
//! every span set starts near 0.0.

use crate::clock::{ClockDomain, WallClock};
use crate::span::{SpanSet, TrackId};
use std::cell::RefCell;

struct ThreadRecorder {
    set: SpanSet,
    track: TrackId,
    clock: WallClock,
}

thread_local! {
    static RECORDER: RefCell<Option<ThreadRecorder>> = const { RefCell::new(None) };
}

/// Install a recorder on the current thread with a single track named
/// `label` (e.g. `"rank0"`). Replaces any previous recorder, discarding
/// its spans.
pub fn install(label: &str) {
    let mut set = SpanSet::new(ClockDomain::Wall);
    let track = set.add_track(label);
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(ThreadRecorder { set, track, clock: WallClock::new() });
    });
}

/// Remove the current thread's recorder and return its spans.
pub fn take() -> Option<SpanSet> {
    RECORDER.with(|r| r.borrow_mut().take()).map(|rec| rec.set)
}

/// Is a recorder installed on this thread?
pub fn active() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// RAII guard closing the span opened by [`span`] when dropped.
/// `armed` remembers whether a recorder existed at open time, so a
/// guard created before `take()` does not close spans of a recorder
/// installed afterwards.
#[must_use = "span guard closes its span on drop"]
pub struct SpanGuard {
    armed: bool,
}

/// Open a span on the current thread's recorder (no-op guard when none
/// is installed).
pub fn span(name: &str, cat: &str) -> SpanGuard {
    let armed = RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        if let Some(rec) = r.as_mut() {
            let t = rec.clock.now();
            rec.set.begin(rec.track, name, cat, t);
            true
        } else {
            false
        }
    });
    SpanGuard { armed }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        RECORDER.with(|r| {
            let mut r = r.borrow_mut();
            if let Some(rec) = r.as_mut() {
                if rec.set.open_depth(rec.track) > 0 {
                    let t = rec.clock.now();
                    rec.set.end(rec.track, t);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_recorder_means_noop() {
        assert!(!active());
        {
            let _g = span("unrecorded", "x");
        }
        assert!(take().is_none());
    }

    #[test]
    fn records_nested_spans() {
        install("worker");
        {
            let _outer = span("step", "train");
            let _inner = span("allreduce", "collective");
        }
        let set = take().expect("recorder installed");
        assert!(!active());
        set.check_well_nested().expect("nested");
        assert_eq!(
            set.structure(),
            vec!["worker|d0|train|step".to_string(), "worker|d1|collective|allreduce".to_string()]
        );
    }

    #[test]
    fn threads_are_independent() {
        install("main-thread");
        let handle = std::thread::spawn(|| {
            assert!(!active());
            install("child");
            let _g = span("child-op", "x");
            drop(_g);
            take().expect("child recorder").len()
        });
        assert_eq!(handle.join().expect("join"), 1);
        let _g = span("main-op", "x");
        drop(_g);
        assert_eq!(take().expect("main recorder").len(), 1);
    }

    #[test]
    fn guard_survives_take_mid_span() {
        install("w");
        let g = span("op", "x");
        let set = take().expect("taken while span open");
        assert_eq!(set.len(), 1);
        drop(g); // must not panic or touch a new recorder
        install("w2");
        drop(span("op2", "x"));
        assert_eq!(take().expect("w2").len(), 1);
    }
}
