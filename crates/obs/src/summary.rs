//! Plain-text roll-up of a span set + metric registry, for terminal
//! output alongside (or instead of) the Chrome trace artifact.

use crate::metrics::Metrics;
use crate::span::SpanSet;
use std::collections::BTreeMap;

/// Left-align `rows` under `headers`, two spaces between columns.
fn align(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let joined = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ");
        format!("{}\n", joined.trim_end())
    };
    out.push_str(&fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(), &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

fn ms(t: f64) -> String {
    format!("{:.3}", t * 1e3)
}

/// Render a summary: span time grouped by (track, category), then
/// counters, gauges and histogram quantiles.
pub fn summary(set: &SpanSet, metrics: &Metrics) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== spans ({} clock, {} spans, horizon {} ms) ==\n",
        set.domain().label(),
        set.len(),
        ms(set.max_end())
    ));
    // (track, cat) -> (count, total). BTreeMap keeps output deterministic.
    let mut groups: BTreeMap<(usize, String), (usize, f64)> = BTreeMap::new();
    for s in set.spans() {
        if !s.end.is_finite() {
            continue;
        }
        let e = groups.entry((s.track, s.cat.clone())).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += s.dur();
    }
    let horizon = set.max_end().max(f64::MIN_POSITIVE);
    let rows: Vec<Vec<String>> = groups
        .iter()
        .map(|((track, cat), (count, total))| {
            vec![
                set.track_name(*track).to_string(),
                cat.clone(),
                count.to_string(),
                ms(*total),
                format!("{:.1}%", 100.0 * total / horizon),
            ]
        })
        .collect();
    out.push_str(&align(&["track", "category", "count", "total ms", "of horizon"], &rows));

    if metrics.counters().next().is_some() {
        out.push_str("\n== counters ==\n");
        let rows: Vec<Vec<String>> =
            metrics.counters().map(|(k, v)| vec![k.to_string(), v.to_string()]).collect();
        out.push_str(&align(&["name", "value"], &rows));
    }
    if metrics.gauges().next().is_some() {
        out.push_str("\n== gauges ==\n");
        let rows: Vec<Vec<String>> =
            metrics.gauges().map(|(k, v)| vec![k.to_string(), format!("{v:.6}")]).collect();
        out.push_str(&align(&["name", "value"], &rows));
    }
    if metrics.histograms().next().is_some() {
        out.push_str("\n== histograms (ms) ==\n");
        let rows: Vec<Vec<String>> = metrics
            .histograms()
            .map(|(k, h)| {
                vec![
                    k.to_string(),
                    h.count().to_string(),
                    ms(h.p50()),
                    ms(h.p95()),
                    ms(h.p99()),
                    ms(h.max()),
                ]
            })
            .collect();
        out.push_str(&align(&["name", "count", "p50", "p95", "p99", "max"], &rows));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDomain;

    #[test]
    fn summary_mentions_tracks_categories_and_metrics() {
        let mut set = SpanSet::new(ClockDomain::Virtual);
        let t = set.add_track("gpu0");
        set.record(t, "s0/fp", "fp", 0.0, 0.002);
        set.record(t, "s0/bp", "bp", 0.002, 0.006);
        let mut m = Metrics::new();
        m.inc("comm.bytes_sent", 4096);
        m.set_gauge("occupancy.comm", 0.5);
        m.observe("sched.queue_wait_s", 1e-3);
        let text = summary(&set, &m);
        for needle in
            ["gpu0", "fp", "bp", "comm.bytes_sent", "4096", "occupancy.comm", "sched.queue_wait_s"]
        {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn empty_metrics_sections_are_omitted() {
        let set = SpanSet::new(ClockDomain::Wall);
        let text = summary(&set, &Metrics::new());
        assert!(!text.contains("counters"));
        assert!(!text.contains("histograms"));
        assert!(text.contains("== spans"));
    }
}
