//! Metric registry: counters, gauges and log-scale histograms.
//!
//! All maps are `BTreeMap`s so iteration (and therefore every exported
//! summary) is deterministic. [`Metrics::merge`] combines registries
//! from different ranks/threads; counter merges use wrapping addition so
//! the operation is exactly associative and commutative, which the
//! property tests assert.

use std::collections::BTreeMap;

/// Histogram over a log₂ scale: 4 sub-buckets per octave covering
/// `2^-40 .. 2^24` seconds-ish magnitudes (≈1e-12 to ≈1.7e7), with an
/// underflow bucket for non-positive values. Quantiles are bucket upper
/// bounds clamped to the observed `[min, max]`, which makes
/// `quantile(q)` monotone in `q` by construction.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Sub-buckets per octave.
const SUBDIV: f64 = 4.0;
/// Octaves below 1.0 covered before underflowing.
const OCTAVES_BELOW: f64 = 40.0;
/// Total value buckets (plus one underflow bucket at index 0).
const NBUCKETS: usize = ((40 + 24) as f64 * SUBDIV) as usize + 1;

impl LogHistogram {
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NBUCKETS + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(v: f64) -> usize {
        if v.is_nan() || v <= 0.0 {
            return 0;
        }
        let idx = ((v.log2() + OCTAVES_BELOW) * SUBDIV).floor();
        if idx < 0.0 {
            0
        } else if idx as usize >= NBUCKETS {
            NBUCKETS
        } else {
            idx as usize + 1
        }
    }

    /// Upper bound of bucket `i` (i ≥ 1; bucket 0 is the underflow bin
    /// whose upper bound is 0).
    fn bucket_upper(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            ((i as f64) / SUBDIV - OCTAVES_BELOW).exp2()
        }
    }

    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Quantile estimate for `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the ⌈q·n⌉-th observation, clamped to `[min, max]`.
    /// Monotone non-decreasing in `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one. Bucket counts add exactly;
    /// `sum` is a float accumulation (reported, not asserted on).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.wrapping_add(*b);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// A registry of named counters, gauges and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, LogHistogram>,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `n` to counter `name` (created at 0). Wrapping, so merges
    /// stay associative even at the edges of `u64`.
    pub fn inc(&mut self, name: &str, n: u64) {
        let c = self.counters.entry(name.to_string()).or_insert(0);
        *c = c.wrapping_add(n);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record `v` into histogram `name` (created on first use).
    pub fn observe(&mut self, name: &str, v: f64) {
        self.hists.entry(name.to_string()).or_default().observe(v);
    }

    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Merge `other` into `self`: counters add (wrapping), gauges take
    /// `other`'s value (last-writer-wins), histograms merge bucketwise.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            let c = self.counters.entry(k.clone()).or_insert(0);
            *c = c.wrapping_add(*v);
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = Metrics::new();
        a.inc("bytes", 10);
        a.inc("bytes", 5);
        let mut b = Metrics::new();
        b.inc("bytes", 7);
        b.inc("msgs", 1);
        a.merge(&b);
        assert_eq!(a.counter("bytes"), 22);
        assert_eq!(a.counter("msgs"), 1);
        assert_eq!(a.counter("absent"), 0);
    }

    #[test]
    fn histogram_quantiles_bracket_values() {
        let mut h = LogHistogram::new();
        for i in 1..=100 {
            h.observe(i as f64 * 1e-3); // 1ms..100ms
        }
        assert_eq!(h.count(), 100);
        let p50 = h.p50();
        let p99 = h.p99();
        // Log buckets are ~19% wide; the quantile must land near the
        // true order statistic.
        assert!((0.04..=0.07).contains(&p50), "p50 {p50}");
        assert!((0.09..=0.12).contains(&p99), "p99 {p99}");
        assert!(p50 <= h.p95() && h.p95() <= p99);
        assert!((h.mean() - 0.0505).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_nonpositive_and_extreme() {
        let mut h = LogHistogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(1e300); // overflow bucket
        h.observe(f64::NAN); // dropped
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -3.0);
        assert_eq!(h.max(), 1e300);
        // Quantiles stay within [min, max] and monotone.
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0);
            assert!(q >= prev, "q({}) = {q} < {prev}", i as f64 / 20.0);
            assert!((h.min()..=h.max()).contains(&q));
            prev = q;
        }
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn gauges_last_writer_wins_on_merge() {
        let mut a = Metrics::new();
        a.set_gauge("occupancy", 0.5);
        let mut b = Metrics::new();
        b.set_gauge("occupancy", 0.75);
        a.merge(&b);
        assert_eq!(a.gauge("occupancy"), Some(0.75));
    }

    #[test]
    fn histogram_merge_matches_combined_stream() {
        let mut all = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..50 {
            let v = (i as f64 + 1.0) * 2e-4;
            all.observe(v);
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }
}
