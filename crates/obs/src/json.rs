//! A minimal JSON parser and string escaper.
//!
//! Just enough JSON to validate and round-trip the Chrome `trace_event`
//! files this crate emits, without pulling a serde stack into an
//! otherwise zero-dependency workspace. Objects preserve key order
//! (they are stored as vectors of pairs), numbers are `f64`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }
}

/// Escape `s` for inclusion in a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read exactly 4 hex digits following `\u` (cursor on the 'u').
    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[start..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos = end - 1; // leave cursor on last hex digit; caller advances
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number '{s}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").expect("ok"), Value::Null);
        assert_eq!(parse(" true ").expect("ok"), Value::Bool(true));
        assert_eq!(parse("-12.5e2").expect("ok"), Value::Num(-1250.0));
        assert_eq!(parse(r#""hi\nthere""#).expect("ok"), Value::Str("hi\nthere".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, false], "c": {}}"#).expect("ok");
        let a = v.get("a").and_then(Value::as_arr).expect("arr");
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(a[2], Value::Bool(false));
        assert_eq!(v.get("c").and_then(Value::as_obj).map(<[_]>::len), Some(0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f→g";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).expect("ok"), Value::Str(nasty.to_string()));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""Aé""#).expect("ok"), Value::Str("Aé".to_string()));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(parse(r#""😀""#).expect("ok"), Value::Str("😀".to_string()));
    }

    #[test]
    fn depth_cap_prevents_stack_overflow() {
        let deep = "[".repeat(5000) + &"]".repeat(5000);
        assert!(parse(&deep).is_err());
    }
}
