//! **EmbRace** — the paper's contribution: efficient sparse communication
//! for distributed training of NLP models.
//!
//! Two techniques compose (paper §4):
//!
//! 1. **Sparsity-aware Hybrid Communication** (§4.1): embedding tables are
//!    *column-wise partitioned* across workers (model parallelism inside a
//!    data-parallel job) and their lookup results and gradients travel via
//!    **AlltoAll**, while dense gradients keep the ordinary ring
//!    AllReduce. Implemented functionally in [`hybrid`] over the
//!    `embrace-collectives` mesh, with partition policy in [`partition`].
//!
//! 2. **2D Communication Scheduling** (§4.2): *horizontal* — dense blocks
//!    get priorities in next-FP order and embedding FP is hoisted ahead of
//!    the dense FP ([`horizontal`]); *vertical* — each embedding gradient
//!    is coalesced and split into a *prior* part (rows the next batch
//!    needs, sent at highest priority before the embedding FP) and a
//!    *delayed* part (sent at lowest priority), per Algorithm 1
//!    ([`vertical`]).
//!
//! # Example
//!
//! ```
//! use embrace_core::vertical_split;
//! use embrace_tensor::{DenseTensor, RowSparse};
//!
//! // Algorithm 1: split a gradient by the prefetched next batch.
//! let grad = RowSparse::new(vec![4, 9], DenseTensor::full(2, 3, 1.0));
//! let split = vertical_split(&grad, &[4, 9], &[9, 100]);
//! assert_eq!(split.i_prior, vec![9]);    // reused next step: race it
//! assert_eq!(split.i_delayed, vec![4]);  // idle until step after next
//! ```

#![forbid(unsafe_code)]

pub mod horizontal;
pub mod hybrid;
pub mod partition;
pub mod vertical;

pub use horizontal::{
    CommKind, Priorities, DELAYED_GRAD_PRIORITY, EMB_DATA_PRIORITY, PRIOR_GRAD_PRIORITY,
};
pub use hybrid::{ColumnShardedEmbedding, GradPlane, GradPlanePolicy};
pub use partition::{column_payload_matrix, row_payload_matrix, PartitionStrategy};
pub use vertical::{vertical_split, VerticalSplit};
