//! Embedding partition strategies and their communication footprints.
//!
//! §4.1.1: row-wise partitioning splits *words* across workers, so Zipfian
//! word frequencies make some shards hot and the AlltoAll rounds
//! imbalanced; column-wise partitioning splits the *vector dimensions*,
//! keeping the whole vocabulary everywhere, so every worker receives the
//! same request volume by construction. The payload matrices computed here
//! feed `embrace_simnet::CostModel::alltoallv` to quantify that difference
//! (the `ablation_partition` bench).

use embrace_tensor::{column_partition, owner_of_row, row_partition, F32_BYTES, INDEX_BYTES};

/// How an embedding table is split across workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Split vector dimensions; every shard holds the full vocabulary.
    ColumnWise,
    /// Split vocabulary rows; each shard holds whole vectors of its words.
    RowWise,
}

/// Per-pair gradient-AlltoAll payload bytes under **column-wise**
/// partitioning: worker `i` sends each worker `j` its batch rows restricted
/// to `j`'s column range — identical volume to every `j` (up to rounding).
pub fn column_payload_matrix(batch_rows: &[usize], dim: usize) -> Vec<Vec<f64>> {
    let world = batch_rows.len();
    let cols = column_partition(dim, world);
    (0..world)
        .map(|i| {
            (0..world)
                .map(|j| batch_rows[i] as f64 * (cols[j].width() * F32_BYTES + INDEX_BYTES) as f64)
                .collect()
        })
        .collect()
}

/// Per-pair gradient payload bytes under **row-wise** partitioning: worker
/// `i` sends each gradient row to the worker owning that vocabulary row,
/// so hot (low-id, frequent) rows concentrate on the first shards.
pub fn row_payload_matrix(batches: &[Vec<u32>], vocab: usize, dim: usize) -> Vec<Vec<f64>> {
    let world = batches.len();
    let shards = row_partition(vocab, world);
    let row_bytes = (dim * F32_BYTES + INDEX_BYTES) as f64;
    let mut bytes = vec![vec![0.0; world]; world];
    for (i, batch) in batches.iter().enumerate() {
        for &tok in batch {
            let owner = owner_of_row(&shards, tok);
            bytes[i][owner] += row_bytes;
        }
    }
    bytes
}

/// Receive-side imbalance of a payload matrix: max over receivers of
/// total inbound bytes, divided by the mean (1.0 = perfectly balanced).
pub fn receive_imbalance(bytes: &[Vec<f64>]) -> f64 {
    let world = bytes.len();
    let inbound: Vec<f64> = (0..world).map(|j| bytes.iter().map(|row| row[j]).sum()).collect();
    let mean = inbound.iter().sum::<f64>() / world as f64;
    if mean == 0.0 {
        return 1.0;
    }
    inbound.iter().fold(0.0_f64, |a, &b| a.max(b)) / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_matrix_is_balanced() {
        let m = column_payload_matrix(&[100, 100, 100, 100], 1024);
        assert!((receive_imbalance(&m) - 1.0).abs() < 1e-9);
        // Everyone sends everyone ~the same amount.
        assert!((m[0][0] - m[3][2]).abs() < 1e-9);
    }

    #[test]
    fn column_matrix_scales_with_batch() {
        let m = column_payload_matrix(&[100, 200], 64);
        assert!(m[1][0] > m[0][0], "bigger batch sends more");
    }

    #[test]
    fn row_matrix_concentrates_hot_rows() {
        // All tokens are low ids → all gradients go to shard 0.
        let batches = vec![vec![0, 1, 2, 3], vec![1, 2, 0, 1]];
        let m = row_payload_matrix(&batches, 100, 8);
        assert!(m[0][1] == 0.0 && m[1][1] == 0.0);
        assert!(m[0][0] > 0.0 && m[1][0] > 0.0);
        assert!(receive_imbalance(&m) > 1.9, "one shard takes everything");
    }

    #[test]
    fn row_matrix_uniform_tokens_balance() {
        // Tokens spread evenly over the vocab → balanced.
        let batches: Vec<Vec<u32>> = (0..4).map(|_| (0..100u32).collect()).collect();
        let m = row_payload_matrix(&batches, 100, 8);
        assert!((receive_imbalance(&m) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_row_partition_is_imbalanced_but_column_is_not() {
        // The §4.1.1 argument, end to end: Zipfian batches make row-wise
        // partitioning imbalanced while column-wise stays flat.
        use embrace_models::{BatchGen, ZipfSampler};
        let vocab = 10_000;
        let sampler = ZipfSampler::new(vocab, 1.1);
        let batches: Vec<Vec<u32>> = (0..4)
            .map(|r| BatchGen::new(sampler.clone(), 2000, 0.0, r as u64).next_batch())
            .collect();
        let row = row_payload_matrix(&batches, vocab, 64);
        let rows_counts: Vec<usize> = batches.iter().map(Vec::len).collect();
        let col = column_payload_matrix(&rows_counts, 64);
        assert!(receive_imbalance(&row) > 1.5, "got {}", receive_imbalance(&row));
        assert!(receive_imbalance(&col) < 1.05);
    }
}
