//! Sparsity-aware Hybrid Communication — the functional embedding plane.
//!
//! The full embedding table is column-wise partitioned before training
//! (§4.1.1). Each step:
//!
//! 1. every worker looks up *all* workers' batch tokens against its column
//!    shard, producing one dense block per destination;
//! 2. **AlltoAll #1** redistributes lookup results: worker `j` assembles
//!    its own batch's full-width embedding output from the received
//!    column blocks;
//! 3. dense FP/BP runs; worker `j` ends with `∂loss/∂(lookup output)`;
//! 4. **AlltoAll #2** exchanges sparse gradients: worker `j` slices its
//!    output gradient into column blocks and sends each to the owning
//!    shard, which coalesces and applies the update.
//!
//! With Vertical Sparse Scheduling, step 4 happens twice — once for the
//! prior rows, once for the delayed rows — and the optimizer is told which
//! part it is applying ([`UpdatePart`]).

use crate::partition::column_payload_matrix;
use embrace_collectives::ops::{
    alltoall_dense, alltoallv_sparse, sparse_allreduce, try_alltoall_dense, try_alltoallv_sparse,
    try_sparse_allreduce, SparseReduced, SsarConfig,
};
use embrace_collectives::{Comm, CommError};
use embrace_dlsim::optim::{Optimizer, UpdatePart};
use embrace_dlsim::EmbeddingTable;
use embrace_simnet::CostModel;
use embrace_tensor::{coalesce, column_partition, ColumnRange, DenseTensor, RowSparse};

/// Which collective carries a gradient exchange (AlltoAll #2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GradPlane {
    /// The paper's hybrid plane: slice per-shard column blocks and
    /// AlltoAllv them to the owning shards.
    #[default]
    Alltoallv,
    /// Sparse-native allreduce (SparCML SSAR) of the full-width gradient;
    /// every rank then slices its own column range out of the global sum.
    SparseAllreduce,
}

/// Rank-invariant dispatch policy for the embedding-gradient plane.
///
/// Both planes are collectives, so every rank of a group must pick the
/// same one: the plane is resolved **once**, from configuration shared by
/// all ranks (either a hand-picked [`GradPlane`] or the simnet cost
/// crossover via [`GradPlanePolicy::from_cost`]) — never from per-rank
/// gradient contents, which differ across ranks and would wedge the
/// group on mismatched collectives.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GradPlanePolicy {
    /// The plane every exchange of this run rides.
    pub plane: GradPlane,
    /// Representation-switch density forwarded to [`SsarConfig`] when the
    /// sparse-native plane carries the exchange; values above `1.0` keep
    /// the index–value representation throughout.
    pub crossover: f64,
}

impl Default for GradPlanePolicy {
    fn default() -> Self {
        GradPlanePolicy { plane: GradPlane::Alltoallv, crossover: SSAR_NEVER_DENSIFY }
    }
}

/// A crossover density above 1.0: the SSAR stream never densifies, so the
/// reduced gradient keeps the row set the AlltoAllv plane would deliver.
const SSAR_NEVER_DENSIFY: f64 = 1.5;

impl GradPlanePolicy {
    /// Pin the plane explicitly (the default policy is hybrid AlltoAllv).
    pub fn fixed(plane: GradPlane) -> Self {
        GradPlanePolicy { plane, ..Self::default() }
    }

    /// Resolve the plane from the simnet cost model: price one exchange of
    /// `batch_rows` gradient rows per rank, both as the column-block
    /// AlltoAllv (`column_payload_matrix`) and as the sparse-native
    /// allreduce at per-rank density `batch_rows / vocab`, and take the
    /// cheaper. Deterministic in `(model, vocab, dim_total, batch_rows)`,
    /// so ranks constructing from the same config always agree.
    pub fn from_cost(model: &CostModel, vocab: usize, dim_total: usize, batch_rows: usize) -> Self {
        let world = model.cluster.world();
        let a2a = model.alltoallv(&column_payload_matrix(&vec![batch_rows; world], dim_total));
        let delta = (batch_rows as f64 / vocab as f64).min(1.0);
        let ssar =
            model.sparse_allreduce(delta, vocab as f64, dim_total as f64, SSAR_NEVER_DENSIFY);
        let plane = if ssar < a2a { GradPlane::SparseAllreduce } else { GradPlane::Alltoallv };
        GradPlanePolicy { plane, crossover: SSAR_NEVER_DENSIFY }
    }
}

/// One worker's column shard of an embedding table, with the AlltoAll
/// forward/backward protocol.
#[derive(Clone, Debug)]
pub struct ColumnShardedEmbedding {
    shard: EmbeddingTable,
    ranges: Vec<ColumnRange>,
    rank: usize,
    dim_total: usize,
    policy: GradPlanePolicy,
}

impl ColumnShardedEmbedding {
    /// Carve worker `rank`'s shard out of the full `vocab × dim` table.
    /// Every worker must construct from the same `full` table.
    pub fn new(full: &DenseTensor, rank: usize, world: usize) -> Self {
        let ranges = column_partition(full.cols(), world);
        let r = ranges[rank];
        ColumnShardedEmbedding {
            shard: EmbeddingTable::from_table(full.slice_columns(r.start, r.end)),
            ranges,
            rank,
            dim_total: full.cols(),
            policy: GradPlanePolicy::default(),
        }
    }

    /// Builder: route gradient exchanges per `policy` (every rank of the
    /// group must install the same policy — see [`GradPlanePolicy`]).
    pub fn with_policy(mut self, policy: GradPlanePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The installed gradient-plane policy.
    pub fn policy(&self) -> GradPlanePolicy {
        self.policy
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn vocab(&self) -> usize {
        self.shard.vocab()
    }

    /// Width of this worker's column range.
    pub fn shard_dim(&self) -> usize {
        self.shard.dim()
    }

    /// Full embedding dimension.
    pub fn dim_total(&self) -> usize {
        self.dim_total
    }

    /// This worker's column shard (vocab × shard_dim).
    pub fn shard_table(&self) -> &DenseTensor {
        self.shard.table()
    }

    /// Forward: given every rank's batch tokens (`all_tokens[r]`), perform
    /// the local lookups and AlltoAll #1; returns this rank's full-width
    /// lookup output for its own batch.
    pub fn forward<C: Comm, T: AsRef<[u32]>>(&self, ep: &mut C, all_tokens: &[T]) -> DenseTensor {
        assert_eq!(all_tokens.len(), ep.world(), "need every rank's tokens");
        let outgoing = self.lookup_parts(all_tokens);
        // AlltoAll #1: receive my batch's column blocks from every shard.
        let received = alltoall_dense(ep, outgoing);
        Self::assemble_lookup(&received)
    }

    /// Fallible [`Self::forward`]: AlltoAll #1 failures surface as typed
    /// [`CommError`]s instead of panics (see `embrace_collectives::ops`
    /// for the abort/poisoning contract).
    pub fn try_forward<C: Comm, T: AsRef<[u32]>>(
        &self,
        ep: &mut C,
        all_tokens: &[T],
    ) -> Result<DenseTensor, CommError> {
        assert_eq!(all_tokens.len(), ep.world(), "need every rank's tokens");
        let outgoing = self.lookup_parts(all_tokens);
        let received = try_alltoall_dense(ep, outgoing)?;
        Ok(Self::assemble_lookup(&received))
    }

    /// The local half of the forward pass: look up each destination
    /// rank's batch against my column shard, producing one outgoing dense
    /// block per rank (the payload of AlltoAll #1). Split out so callers
    /// can route the exchange through a communication thread.
    pub fn lookup_parts<T: AsRef<[u32]>>(&self, all_tokens: &[T]) -> Vec<DenseTensor> {
        all_tokens.iter().map(|toks| self.shard.lookup(toks.as_ref())).collect()
    }

    /// Reassemble the full-width lookup output from the column blocks
    /// received in AlltoAll #1 (indexed by source rank == column order).
    pub fn assemble_lookup(received: &[DenseTensor]) -> DenseTensor {
        DenseTensor::concat_columns(received)
    }

    /// Backward: slice `grad_out` (`∂loss/∂lookup`, one row per token of
    /// `my_tokens`) into per-shard column blocks and run AlltoAll #2;
    /// returns the coalesced gradient for *this* worker's shard
    /// (full-vocab row ids, shard-width values).
    pub fn backward<C: Comm>(
        &self,
        ep: &mut C,
        my_tokens: &[u32],
        grad_out: &DenseTensor,
    ) -> RowSparse {
        assert_eq!(my_tokens.len(), grad_out.rows(), "one grad row per token");
        assert_eq!(grad_out.cols(), self.dim_total, "grad must be full width");
        let outgoing: Vec<RowSparse> = self
            .ranges
            .iter()
            .map(|r| RowSparse::new(my_tokens.to_vec(), grad_out.slice_columns(r.start, r.end)))
            .collect();
        let received = alltoallv_sparse(ep, outgoing);
        coalesce(&RowSparse::concat(&received))
    }

    /// Fallible [`Self::backward`].
    pub fn try_backward<C: Comm>(
        &self,
        ep: &mut C,
        my_tokens: &[u32],
        grad_out: &DenseTensor,
    ) -> Result<RowSparse, CommError> {
        assert_eq!(my_tokens.len(), grad_out.rows(), "one grad row per token");
        assert_eq!(grad_out.cols(), self.dim_total, "grad must be full width");
        let outgoing: Vec<RowSparse> = self
            .ranges
            .iter()
            .map(|r| RowSparse::new(my_tokens.to_vec(), grad_out.slice_columns(r.start, r.end)))
            .collect();
        let received = try_alltoallv_sparse(ep, outgoing)?;
        Ok(coalesce(&RowSparse::concat(&received)))
    }

    /// Backward for an already-split gradient part (Vertical Scheduling):
    /// same exchange, but the caller passes per-destination row-sparse
    /// blocks built from `G_p` or `G_d` instead of the raw output grad.
    /// Dispatches on the installed [`GradPlanePolicy`].
    pub fn exchange_grad_part<C: Comm>(&self, ep: &mut C, part: &RowSparse) -> RowSparse {
        match self.policy.plane {
            GradPlane::Alltoallv => {
                let outgoing = self.grad_parts(part);
                let received = alltoallv_sparse(ep, outgoing);
                Self::merge_grad_shards(&received)
            }
            GradPlane::SparseAllreduce => {
                assert_eq!(part.dim(), self.dim_total, "part must be full width");
                let cfg = self.ssar_config();
                self.slice_reduced(sparse_allreduce(ep, part, &cfg))
            }
        }
    }

    /// Fallible [`Self::exchange_grad_part`].
    pub fn try_exchange_grad_part<C: Comm>(
        &self,
        ep: &mut C,
        part: &RowSparse,
    ) -> Result<RowSparse, CommError> {
        match self.policy.plane {
            GradPlane::Alltoallv => {
                let outgoing = self.grad_parts(part);
                let received = try_alltoallv_sparse(ep, outgoing)?;
                Ok(Self::merge_grad_shards(&received))
            }
            GradPlane::SparseAllreduce => {
                assert_eq!(part.dim(), self.dim_total, "part must be full width");
                let cfg = self.ssar_config();
                Ok(self.slice_reduced(try_sparse_allreduce(ep, part, &cfg)?))
            }
        }
    }

    fn ssar_config(&self) -> SsarConfig {
        SsarConfig { vocab: self.shard.vocab(), crossover: self.policy.crossover }
    }

    /// Slice this rank's column range out of a globally-reduced full-width
    /// gradient. The sparse result carries the union of every rank's rows —
    /// the same row set the AlltoAllv plane coalesces. A densified result
    /// keeps rows with any nonzero full-width value: a summed row of exact
    /// zeros is indistinguishable from an untouched one, and applying it
    /// would be a no-op either way.
    fn slice_reduced(&self, reduced: SparseReduced) -> RowSparse {
        let r = self.ranges[self.rank];
        match reduced {
            SparseReduced::Sparse(s) => s.slice_columns(r.start, r.end),
            SparseReduced::Dense(d) => {
                let keep: Vec<u32> = (0..d.rows())
                    .filter(|&i| d.row(i).iter().any(|&x| x != 0.0))
                    .map(|i| i as u32)
                    .collect();
                RowSparse::new(keep.clone(), d.gather_rows(&keep).slice_columns(r.start, r.end))
            }
        }
    }

    /// The local half of a gradient exchange: slice a full-width gradient
    /// part into per-destination column blocks (AlltoAll #2 payload).
    pub fn grad_parts(&self, part: &RowSparse) -> Vec<RowSparse> {
        assert_eq!(part.dim(), self.dim_total, "part must be full width");
        self.ranges.iter().map(|r| part.slice_columns(r.start, r.end)).collect()
    }

    /// Coalesce the shard-width gradient blocks received in AlltoAll #2.
    pub fn merge_grad_shards(received: &[RowSparse]) -> RowSparse {
        coalesce(&RowSparse::concat(received))
    }

    /// Apply a shard-width gradient (as returned by [`Self::backward`] or
    /// [`Self::exchange_grad_part`]) to the local shard.
    pub fn apply_grad(&mut self, grad: &RowSparse, opt: &mut dyn Optimizer, part: UpdatePart) {
        assert_eq!(grad.dim(), self.shard_dim(), "gradient width must match shard");
        opt.step_sparse(self.shard.table_mut(), grad, part);
    }

    /// Reassemble the full table from every worker's shard (testing and
    /// checkpoint export).
    pub fn assemble_full(shards: &[&ColumnShardedEmbedding]) -> DenseTensor {
        let blocks: Vec<DenseTensor> = shards.iter().map(|s| s.shard.table().clone()).collect();
        DenseTensor::concat_columns(&blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embrace_collectives::run_group;
    use embrace_dlsim::optim::Sgd;
    use rand::{rngs::StdRng, SeedableRng};

    fn full_table(vocab: usize, dim: usize) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(99);
        DenseTensor::uniform(vocab, dim, 1.0, &mut rng)
    }

    #[test]
    fn forward_matches_replicated_lookup() {
        let full = full_table(20, 8);
        let batches: Vec<Vec<u32>> = vec![vec![1, 3, 3], vec![0, 19], vec![7, 7, 7, 2]];
        let full2 = full.clone();
        let batches2 = batches.clone();
        let out = run_group(3, move |rank, ep| {
            let emb = ColumnShardedEmbedding::new(&full2, rank, 3);
            emb.forward(ep, &batches2)
        });
        let reference = EmbeddingTable::from_table(full);
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(got, &reference.lookup(&batches[rank]), "rank {rank}");
        }
    }

    #[test]
    fn backward_applies_same_update_as_replicated() {
        // Hybrid AlltoAll training must equal a replicated table updated
        // with the *sum* of all workers' gradients (synchronous DP).
        let vocab = 12;
        let dim = 6;
        let world = 3;
        let full = full_table(vocab, dim);
        let batches: Vec<Vec<u32>> = vec![vec![1, 3, 3], vec![0, 11, 3], vec![7, 1]];
        let lr = 0.1_f32;

        // Reference: replicated table, summed gradient, SGD.
        let mut reference = full.clone();
        {
            let mut summed = Vec::new();
            for b in &batches {
                // d(loss)/d(out) = all ones.
                summed.push(RowSparse::new(b.clone(), DenseTensor::full(b.len(), dim, 1.0)));
            }
            let g = coalesce(&RowSparse::concat(&summed));
            Sgd::new(lr).step_sparse(&mut reference, &g, UpdatePart::Whole);
        }

        // Hybrid: each worker exchanges and applies its shard.
        let full2 = full.clone();
        let batches2 = batches.clone();
        let shards = run_group(world, move |rank, ep| {
            let mut emb = ColumnShardedEmbedding::new(&full2, rank, world);
            let my = &batches2[rank];
            let grad_out = DenseTensor::full(my.len(), dim, 1.0);
            let shard_grad = emb.backward(ep, my, &grad_out);
            let mut opt = Sgd::new(lr);
            emb.apply_grad(&shard_grad, &mut opt, UpdatePart::Whole);
            emb
        });
        let refs: Vec<&ColumnShardedEmbedding> = shards.iter().collect();
        let assembled = ColumnShardedEmbedding::assemble_full(&refs);
        assert!(assembled.approx_eq(&reference, 1e-6));
    }

    #[test]
    fn split_exchange_equals_single_exchange() {
        // Prior+delayed exchange must deliver the same shard gradient as
        // one whole exchange.
        use crate::vertical::vertical_split;
        let vocab = 10;
        let dim = 4;
        let world = 2;
        let full = full_table(vocab, dim);
        let batches: Vec<Vec<u32>> = vec![vec![1, 2, 2, 5], vec![5, 9]];
        let next: Vec<u32> = vec![2, 9]; // next-iteration tokens (gathered)

        let full2 = full.clone();
        let batches2 = batches.clone();
        let got = run_group(world, move |rank, ep| {
            let emb = ColumnShardedEmbedding::new(&full2, rank, world);
            let my = &batches2[rank];
            let grad_out = DenseTensor::full(my.len(), dim, 0.5);
            let raw = RowSparse::new(my.clone(), grad_out.clone());
            let split = vertical_split(&raw, my, &next);
            let prior = emb.exchange_grad_part(ep, &split.prior);
            let delayed = emb.exchange_grad_part(ep, &split.delayed);
            let whole = emb.backward(ep, my, &grad_out);
            (prior, delayed, whole)
        });
        for (prior, delayed, whole) in got {
            let merged = coalesce(&RowSparse::concat(&[prior, delayed]));
            assert_eq!(merged, whole);
        }
    }

    #[test]
    fn ssar_plane_delivers_the_alltoallv_gradient() {
        // Same exchange, either plane: identical row set, values equal up
        // to the summation-order difference between the destination's
        // stable coalesce and SSAR's tree reduction.
        for world in [1, 2, 3, 4] {
            let vocab = 16;
            let dim = 6;
            let full = full_table(vocab, dim);
            let got = run_group(world, move |rank, ep| {
                let a2a = ColumnShardedEmbedding::new(&full, rank, world);
                let ssar = ColumnShardedEmbedding::new(&full, rank, world)
                    .with_policy(GradPlanePolicy::fixed(GradPlane::SparseAllreduce));
                // Duplicate, rank-skewed rows; values vary per position.
                let rows: Vec<u32> =
                    vec![rank as u32, (rank as u32 + 3) % vocab as u32, rank as u32];
                let vals = DenseTensor::from_vec(
                    rows.len(),
                    dim,
                    (0..rows.len() * dim).map(|i| 0.25 * (i + rank + 1) as f32).collect(),
                );
                let part = RowSparse::new(rows, vals);
                (a2a.exchange_grad_part(ep, &part), ssar.exchange_grad_part(ep, &part))
            });
            for (rank, (a, s)) in got.into_iter().enumerate() {
                assert_eq!(a.indices(), s.indices(), "row set diverged: rank {rank}");
                assert!(
                    a.values().approx_eq(s.values(), 1e-5),
                    "values diverged: rank {rank} world {world}"
                );
            }
        }
    }

    #[test]
    fn densified_ssar_plane_still_matches() {
        // crossover 0.0 forces the dense representation from step 0, so
        // the Dense-result slice path (nonzero-row recovery) is exercised.
        let world = 4;
        let vocab = 12;
        let dim = 8;
        let full = full_table(vocab, dim);
        let got = run_group(world, move |rank, ep| {
            let a2a = ColumnShardedEmbedding::new(&full, rank, world);
            let mut policy = GradPlanePolicy::fixed(GradPlane::SparseAllreduce);
            policy.crossover = 0.0;
            let ssar = ColumnShardedEmbedding::new(&full, rank, world).with_policy(policy);
            let rows: Vec<u32> = vec![2 * rank as u32, 2 * rank as u32 + 1];
            let part = RowSparse::new(rows.clone(), DenseTensor::full(rows.len(), dim, 1.5));
            (a2a.exchange_grad_part(ep, &part), ssar.exchange_grad_part(ep, &part))
        });
        for (a, s) in got {
            assert_eq!(a.indices(), s.indices());
            assert!(a.values().approx_eq(s.values(), 1e-5));
        }
    }

    #[test]
    fn policy_resolution_agrees_with_the_raw_cost_comparison() {
        // `from_cost` must pick exactly the argmin of the two priced
        // collectives for every batch size — the dispatch IS the cost
        // crossover, not an approximation of it.
        use embrace_simnet::Cluster;
        let model = CostModel::new(Cluster::rtx3090(8));
        let vocab = 100_000;
        let dim = 64;
        let world = model.cluster.world();
        let mut planes = std::collections::BTreeSet::new();
        for rows in [1, 4, 16, 64, 256, 1024, 4096, 16384, 65536] {
            let a2a = model.alltoallv(&column_payload_matrix(&vec![rows; world], dim));
            let ssar = model.sparse_allreduce(
                (rows as f64 / vocab as f64).min(1.0),
                vocab as f64,
                dim as f64,
                1.5,
            );
            let picked = GradPlanePolicy::from_cost(&model, vocab, dim, rows).plane;
            let cheaper =
                if ssar < a2a { GradPlane::SparseAllreduce } else { GradPlane::Alltoallv };
            assert_eq!(picked, cheaper, "rows {rows}: a2a {a2a:.3e} ssar {ssar:.3e}");
            planes.insert(format!("{picked:?}"));
        }
        // The sweep must actually cross: both planes get picked somewhere.
        assert_eq!(planes.len(), 2, "no crossover in sweep: {planes:?}");
    }

    #[test]
    fn shard_dims_cover_table() {
        let full = full_table(5, 10);
        let shards: Vec<ColumnShardedEmbedding> =
            (0..3).map(|r| ColumnShardedEmbedding::new(&full, r, 3)).collect();
        let total: usize = shards.iter().map(ColumnShardedEmbedding::shard_dim).sum();
        assert_eq!(total, 10);
        let refs: Vec<&ColumnShardedEmbedding> = shards.iter().collect();
        assert_eq!(ColumnShardedEmbedding::assemble_full(&refs), full);
    }
}
