//! Sparsity-aware Hybrid Communication — the functional embedding plane.
//!
//! The full embedding table is column-wise partitioned before training
//! (§4.1.1). Each step:
//!
//! 1. every worker looks up *all* workers' batch tokens against its column
//!    shard, producing one dense block per destination;
//! 2. **AlltoAll #1** redistributes lookup results: worker `j` assembles
//!    its own batch's full-width embedding output from the received
//!    column blocks;
//! 3. dense FP/BP runs; worker `j` ends with `∂loss/∂(lookup output)`;
//! 4. **AlltoAll #2** exchanges sparse gradients: worker `j` slices its
//!    output gradient into column blocks and sends each to the owning
//!    shard, which coalesces and applies the update.
//!
//! With Vertical Sparse Scheduling, step 4 happens twice — once for the
//! prior rows, once for the delayed rows — and the optimizer is told which
//! part it is applying ([`UpdatePart`]).

use embrace_collectives::ops::{
    alltoall_dense, alltoallv_sparse, try_alltoall_dense, try_alltoallv_sparse,
};
use embrace_collectives::{Comm, CommError};
use embrace_dlsim::optim::{Optimizer, UpdatePart};
use embrace_dlsim::EmbeddingTable;
use embrace_tensor::{coalesce, column_partition, ColumnRange, DenseTensor, RowSparse};

/// One worker's column shard of an embedding table, with the AlltoAll
/// forward/backward protocol.
#[derive(Clone, Debug)]
pub struct ColumnShardedEmbedding {
    shard: EmbeddingTable,
    ranges: Vec<ColumnRange>,
    rank: usize,
    dim_total: usize,
}

impl ColumnShardedEmbedding {
    /// Carve worker `rank`'s shard out of the full `vocab × dim` table.
    /// Every worker must construct from the same `full` table.
    pub fn new(full: &DenseTensor, rank: usize, world: usize) -> Self {
        let ranges = column_partition(full.cols(), world);
        let r = ranges[rank];
        ColumnShardedEmbedding {
            shard: EmbeddingTable::from_table(full.slice_columns(r.start, r.end)),
            ranges,
            rank,
            dim_total: full.cols(),
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn vocab(&self) -> usize {
        self.shard.vocab()
    }

    /// Width of this worker's column range.
    pub fn shard_dim(&self) -> usize {
        self.shard.dim()
    }

    /// Full embedding dimension.
    pub fn dim_total(&self) -> usize {
        self.dim_total
    }

    /// This worker's column shard (vocab × shard_dim).
    pub fn shard_table(&self) -> &DenseTensor {
        self.shard.table()
    }

    /// Forward: given every rank's batch tokens (`all_tokens[r]`), perform
    /// the local lookups and AlltoAll #1; returns this rank's full-width
    /// lookup output for its own batch.
    pub fn forward<C: Comm, T: AsRef<[u32]>>(&self, ep: &mut C, all_tokens: &[T]) -> DenseTensor {
        assert_eq!(all_tokens.len(), ep.world(), "need every rank's tokens");
        let outgoing = self.lookup_parts(all_tokens);
        // AlltoAll #1: receive my batch's column blocks from every shard.
        let received = alltoall_dense(ep, outgoing);
        Self::assemble_lookup(&received)
    }

    /// Fallible [`Self::forward`]: AlltoAll #1 failures surface as typed
    /// [`CommError`]s instead of panics (see `embrace_collectives::ops`
    /// for the abort/poisoning contract).
    pub fn try_forward<C: Comm, T: AsRef<[u32]>>(
        &self,
        ep: &mut C,
        all_tokens: &[T],
    ) -> Result<DenseTensor, CommError> {
        assert_eq!(all_tokens.len(), ep.world(), "need every rank's tokens");
        let outgoing = self.lookup_parts(all_tokens);
        let received = try_alltoall_dense(ep, outgoing)?;
        Ok(Self::assemble_lookup(&received))
    }

    /// The local half of the forward pass: look up each destination
    /// rank's batch against my column shard, producing one outgoing dense
    /// block per rank (the payload of AlltoAll #1). Split out so callers
    /// can route the exchange through a communication thread.
    pub fn lookup_parts<T: AsRef<[u32]>>(&self, all_tokens: &[T]) -> Vec<DenseTensor> {
        all_tokens.iter().map(|toks| self.shard.lookup(toks.as_ref())).collect()
    }

    /// Reassemble the full-width lookup output from the column blocks
    /// received in AlltoAll #1 (indexed by source rank == column order).
    pub fn assemble_lookup(received: &[DenseTensor]) -> DenseTensor {
        DenseTensor::concat_columns(received)
    }

    /// Backward: slice `grad_out` (`∂loss/∂lookup`, one row per token of
    /// `my_tokens`) into per-shard column blocks and run AlltoAll #2;
    /// returns the coalesced gradient for *this* worker's shard
    /// (full-vocab row ids, shard-width values).
    pub fn backward<C: Comm>(
        &self,
        ep: &mut C,
        my_tokens: &[u32],
        grad_out: &DenseTensor,
    ) -> RowSparse {
        assert_eq!(my_tokens.len(), grad_out.rows(), "one grad row per token");
        assert_eq!(grad_out.cols(), self.dim_total, "grad must be full width");
        let outgoing: Vec<RowSparse> = self
            .ranges
            .iter()
            .map(|r| RowSparse::new(my_tokens.to_vec(), grad_out.slice_columns(r.start, r.end)))
            .collect();
        let received = alltoallv_sparse(ep, outgoing);
        coalesce(&RowSparse::concat(&received))
    }

    /// Fallible [`Self::backward`].
    pub fn try_backward<C: Comm>(
        &self,
        ep: &mut C,
        my_tokens: &[u32],
        grad_out: &DenseTensor,
    ) -> Result<RowSparse, CommError> {
        assert_eq!(my_tokens.len(), grad_out.rows(), "one grad row per token");
        assert_eq!(grad_out.cols(), self.dim_total, "grad must be full width");
        let outgoing: Vec<RowSparse> = self
            .ranges
            .iter()
            .map(|r| RowSparse::new(my_tokens.to_vec(), grad_out.slice_columns(r.start, r.end)))
            .collect();
        let received = try_alltoallv_sparse(ep, outgoing)?;
        Ok(coalesce(&RowSparse::concat(&received)))
    }

    /// Backward for an already-split gradient part (Vertical Scheduling):
    /// same exchange, but the caller passes per-destination row-sparse
    /// blocks built from `G_p` or `G_d` instead of the raw output grad.
    pub fn exchange_grad_part<C: Comm>(&self, ep: &mut C, part: &RowSparse) -> RowSparse {
        let outgoing = self.grad_parts(part);
        let received = alltoallv_sparse(ep, outgoing);
        Self::merge_grad_shards(&received)
    }

    /// Fallible [`Self::exchange_grad_part`].
    pub fn try_exchange_grad_part<C: Comm>(
        &self,
        ep: &mut C,
        part: &RowSparse,
    ) -> Result<RowSparse, CommError> {
        let outgoing = self.grad_parts(part);
        let received = try_alltoallv_sparse(ep, outgoing)?;
        Ok(Self::merge_grad_shards(&received))
    }

    /// The local half of a gradient exchange: slice a full-width gradient
    /// part into per-destination column blocks (AlltoAll #2 payload).
    pub fn grad_parts(&self, part: &RowSparse) -> Vec<RowSparse> {
        assert_eq!(part.dim(), self.dim_total, "part must be full width");
        self.ranges.iter().map(|r| part.slice_columns(r.start, r.end)).collect()
    }

    /// Coalesce the shard-width gradient blocks received in AlltoAll #2.
    pub fn merge_grad_shards(received: &[RowSparse]) -> RowSparse {
        coalesce(&RowSparse::concat(received))
    }

    /// Apply a shard-width gradient (as returned by [`Self::backward`] or
    /// [`Self::exchange_grad_part`]) to the local shard.
    pub fn apply_grad(&mut self, grad: &RowSparse, opt: &mut dyn Optimizer, part: UpdatePart) {
        assert_eq!(grad.dim(), self.shard_dim(), "gradient width must match shard");
        opt.step_sparse(self.shard.table_mut(), grad, part);
    }

    /// Reassemble the full table from every worker's shard (testing and
    /// checkpoint export).
    pub fn assemble_full(shards: &[&ColumnShardedEmbedding]) -> DenseTensor {
        let blocks: Vec<DenseTensor> = shards.iter().map(|s| s.shard.table().clone()).collect();
        DenseTensor::concat_columns(&blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embrace_collectives::run_group;
    use embrace_dlsim::optim::Sgd;
    use rand::{rngs::StdRng, SeedableRng};

    fn full_table(vocab: usize, dim: usize) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(99);
        DenseTensor::uniform(vocab, dim, 1.0, &mut rng)
    }

    #[test]
    fn forward_matches_replicated_lookup() {
        let full = full_table(20, 8);
        let batches: Vec<Vec<u32>> = vec![vec![1, 3, 3], vec![0, 19], vec![7, 7, 7, 2]];
        let full2 = full.clone();
        let batches2 = batches.clone();
        let out = run_group(3, move |rank, ep| {
            let emb = ColumnShardedEmbedding::new(&full2, rank, 3);
            emb.forward(ep, &batches2)
        });
        let reference = EmbeddingTable::from_table(full);
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(got, &reference.lookup(&batches[rank]), "rank {rank}");
        }
    }

    #[test]
    fn backward_applies_same_update_as_replicated() {
        // Hybrid AlltoAll training must equal a replicated table updated
        // with the *sum* of all workers' gradients (synchronous DP).
        let vocab = 12;
        let dim = 6;
        let world = 3;
        let full = full_table(vocab, dim);
        let batches: Vec<Vec<u32>> = vec![vec![1, 3, 3], vec![0, 11, 3], vec![7, 1]];
        let lr = 0.1_f32;

        // Reference: replicated table, summed gradient, SGD.
        let mut reference = full.clone();
        {
            let mut summed = Vec::new();
            for b in &batches {
                // d(loss)/d(out) = all ones.
                summed.push(RowSparse::new(b.clone(), DenseTensor::full(b.len(), dim, 1.0)));
            }
            let g = coalesce(&RowSparse::concat(&summed));
            Sgd::new(lr).step_sparse(&mut reference, &g, UpdatePart::Whole);
        }

        // Hybrid: each worker exchanges and applies its shard.
        let full2 = full.clone();
        let batches2 = batches.clone();
        let shards = run_group(world, move |rank, ep| {
            let mut emb = ColumnShardedEmbedding::new(&full2, rank, world);
            let my = &batches2[rank];
            let grad_out = DenseTensor::full(my.len(), dim, 1.0);
            let shard_grad = emb.backward(ep, my, &grad_out);
            let mut opt = Sgd::new(lr);
            emb.apply_grad(&shard_grad, &mut opt, UpdatePart::Whole);
            emb
        });
        let refs: Vec<&ColumnShardedEmbedding> = shards.iter().collect();
        let assembled = ColumnShardedEmbedding::assemble_full(&refs);
        assert!(assembled.approx_eq(&reference, 1e-6));
    }

    #[test]
    fn split_exchange_equals_single_exchange() {
        // Prior+delayed exchange must deliver the same shard gradient as
        // one whole exchange.
        use crate::vertical::vertical_split;
        let vocab = 10;
        let dim = 4;
        let world = 2;
        let full = full_table(vocab, dim);
        let batches: Vec<Vec<u32>> = vec![vec![1, 2, 2, 5], vec![5, 9]];
        let next: Vec<u32> = vec![2, 9]; // next-iteration tokens (gathered)

        let full2 = full.clone();
        let batches2 = batches.clone();
        let got = run_group(world, move |rank, ep| {
            let emb = ColumnShardedEmbedding::new(&full2, rank, world);
            let my = &batches2[rank];
            let grad_out = DenseTensor::full(my.len(), dim, 0.5);
            let raw = RowSparse::new(my.clone(), grad_out.clone());
            let split = vertical_split(&raw, my, &next);
            let prior = emb.exchange_grad_part(ep, &split.prior);
            let delayed = emb.exchange_grad_part(ep, &split.delayed);
            let whole = emb.backward(ep, my, &grad_out);
            (prior, delayed, whole)
        });
        for (prior, delayed, whole) in got {
            let merged = coalesce(&RowSparse::concat(&[prior, delayed]));
            assert_eq!(merged, whole);
        }
    }

    #[test]
    fn shard_dims_cover_table() {
        let full = full_table(5, 10);
        let shards: Vec<ColumnShardedEmbedding> =
            (0..3).map(|r| ColumnShardedEmbedding::new(&full, r, 3)).collect();
        let total: usize = shards.iter().map(ColumnShardedEmbedding::shard_dim).sum();
        assert_eq!(total, 10);
        let refs: Vec<&ColumnShardedEmbedding> = shards.iter().collect();
        assert_eq!(ColumnShardedEmbedding::assemble_full(&refs), full);
    }
}
