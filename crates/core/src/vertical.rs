//! Vertical Sparse Scheduling — the paper's Algorithm 1.
//!
//! After BP, the raw embedding gradient `G` is coalesced; the unique
//! tokens of this worker's current batch (`Du`) are intersected with the
//! *gathered* next-iteration data (`D_next`, known thanks to the
//! prefetcher) to find `i_prior`, the rows the next FP actually depends
//! on. Those rows become the *prior* gradient (communicated at highest
//! priority, before the next embedding FP); the rest are *delayed* and
//! communicated at lowest priority, overlapped with the next iteration.

use embrace_tensor::{
    coalesce, difference, index_select, intersect, unique_sorted, IndexSet, RowSparse,
};

/// Result of Algorithm 1: the prior/delayed gradient split.
#[derive(Clone, Debug)]
pub struct VerticalSplit {
    /// `G_p` — rows in `Du ∩ D_next`; must finish before the next
    /// embedding FP.
    pub prior: RowSparse,
    /// `G_d` — rows in `Du \ i_prior`; may be delayed arbitrarily within
    /// the step.
    pub delayed: RowSparse,
    /// `i_prior`, sorted.
    pub i_prior: IndexSet,
    /// `i_delayed`, sorted.
    pub i_delayed: IndexSet,
}

impl VerticalSplit {
    /// Rows in the coalesced gradient (prior + delayed).
    pub fn total_rows(&self) -> usize {
        self.prior.nnz_rows() + self.delayed.nnz_rows()
    }

    /// Fraction of coalesced rows that are prior.
    pub fn prior_fraction(&self) -> f64 {
        if self.total_rows() == 0 {
            return 0.0;
        }
        self.prior.nnz_rows() as f64 / self.total_rows() as f64
    }
}

/// Algorithm 1 (Vertical Sparse Scheduling).
///
/// * `grad` — the raw (possibly uncoalesced) sparse gradient `G`;
/// * `d_cur_rank` — this process's training data for the current
///   iteration, `D_cur[n]` (token ids, duplicates allowed);
/// * `d_next_gathered` — the gathered (all workers') training data for the
///   next iteration, `D_next`.
///
/// Returns `{G_p, G_d}` plus the index sets. `G_p ∪ G_d` carries exactly
/// the coalesced gradient, with disjoint row sets (tested below).
pub fn vertical_split(
    grad: &RowSparse,
    d_cur_rank: &[u32],
    d_next_gathered: &[u32],
) -> VerticalSplit {
    // Line 2: coalesce duplicate rows.
    let g_coalesced = coalesce(grad);
    // Line 3: Du ← UNIQUE(D_cur[n]).
    let du = unique_sorted(d_cur_rank);
    // Line 4: i_prior ← Du ∩ D_next.
    let d_next = unique_sorted(d_next_gathered);
    let i_prior = intersect(&du, &d_next);
    // Line 5: i_delayed ← Du \ i_prior.
    let i_delayed = difference(&du, &i_prior);
    // Lines 6-7: INDEX_SELECT prior and delayed gradients.
    let prior = index_select(&g_coalesced, &i_prior);
    let delayed = index_select(&g_coalesced, &i_delayed);
    VerticalSplit { prior, delayed, i_prior, i_delayed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embrace_tensor::DenseTensor;

    /// Gradient whose rows mirror the batch tokens (as an embedding BP
    /// produces): tokens [5,1,5,2], grad value = token id.
    fn sample() -> (RowSparse, Vec<u32>) {
        let tokens = vec![5u32, 1, 5, 2];
        let vals = DenseTensor::from_vec(4, 1, vec![5.0, 1.0, 5.0, 2.0]);
        (RowSparse::new(tokens.clone(), vals), tokens)
    }

    #[test]
    fn splits_by_next_batch_intersection() {
        let (g, d_cur) = sample();
        // Next iteration (all workers) uses tokens 5 and 7.
        let split = vertical_split(&g, &d_cur, &[7, 5, 7]);
        assert_eq!(split.i_prior, vec![5]);
        assert_eq!(split.i_delayed, vec![1, 2]);
        assert_eq!(split.prior.indices(), &[5]);
        assert_eq!(split.prior.values().as_slice(), &[10.0]); // coalesced 5+5
        assert_eq!(split.delayed.indices(), &[1, 2]);
    }

    #[test]
    fn union_carries_coalesced_gradient() {
        let (g, d_cur) = sample();
        let split = vertical_split(&g, &d_cur, &[1, 5]);
        let merged = RowSparse::concat(&[split.prior.clone(), split.delayed.clone()]);
        assert_eq!(coalesce(&merged), coalesce(&g));
    }

    #[test]
    fn disjoint_index_sets() {
        let (g, d_cur) = sample();
        let split = vertical_split(&g, &d_cur, &[2]);
        assert!(intersect(&split.i_prior, &split.i_delayed).is_empty());
        let mut all = [split.i_prior.clone(), split.i_delayed.clone()].concat();
        all.sort_unstable();
        assert_eq!(all, unique_sorted(&d_cur));
    }

    #[test]
    fn empty_next_batch_delays_everything() {
        let (g, d_cur) = sample();
        let split = vertical_split(&g, &d_cur, &[]);
        assert!(split.prior.is_empty());
        assert_eq!(split.delayed.nnz_rows(), 3);
        assert_eq!(split.prior_fraction(), 0.0);
    }

    #[test]
    fn full_overlap_prioritises_everything() {
        let (g, d_cur) = sample();
        let split = vertical_split(&g, &d_cur, &d_cur);
        assert!(split.delayed.is_empty());
        assert_eq!(split.prior.nnz_rows(), 3);
        assert_eq!(split.prior_fraction(), 1.0);
    }

    #[test]
    fn next_tokens_absent_from_current_are_ignored() {
        let (g, d_cur) = sample();
        // Token 9 is in the next batch but had no gradient here.
        let split = vertical_split(&g, &d_cur, &[9, 1]);
        assert_eq!(split.i_prior, vec![1]);
        assert!(!split.i_prior.contains(&9));
    }

    #[test]
    fn empty_gradient() {
        let g = RowSparse::empty(3);
        let split = vertical_split(&g, &[], &[1, 2]);
        assert!(split.prior.is_empty() && split.delayed.is_empty());
        assert_eq!(split.total_rows(), 0);
    }
}
