//! Block-level Horizontal Scheduling (§4.2.1): priority assignment.
//!
//! Communication operations drain from a single priority queue (lower
//! value first). The ordering encodes the paper's rules:
//!
//! * prior sparse gradients are most urgent — the next embedding FP waits
//!   on them;
//! * the embedding-data AlltoAll (lookup-result redistribution) comes
//!   next — the first dense FP waits on it;
//! * dense blocks are prioritised in *FP dependency order*, so each
//!   block's gradients arrive just before its FP needs the updated
//!   parameters (blocks are communicated whole — the paper deliberately
//!   avoids tensor partitioning and its startup/bandwidth penalties);
//! * delayed sparse gradients go last, overlapping the next iteration.

use embrace_dlsim::graph::ModelGraph;

/// Priority of prior embedding gradients (most urgent).
pub const PRIOR_GRAD_PRIORITY: i64 = -2;
/// Priority of the embedding lookup-result AlltoAll.
pub const EMB_DATA_PRIORITY: i64 = -1;
/// Priority of delayed embedding gradients (least urgent).
pub const DELAYED_GRAD_PRIORITY: i64 = i64::MAX / 2;

/// The communication operations EmbRace schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommKind {
    /// AllReduce of one dense block's gradients (block index).
    DenseBlock(usize),
    /// AlltoAll of one embedding's lookup results (embedding module index).
    EmbData(usize),
    /// AlltoAll of one embedding's prior gradients.
    PriorGrad(usize),
    /// AlltoAll of one embedding's delayed gradients.
    DelayedGrad(usize),
}

/// Priority assignment for a model graph.
#[derive(Clone, Debug)]
pub struct Priorities {
    /// Dense-block priority by module index (0 = first in FP order).
    dense: Vec<Option<i64>>,
    /// Embedding module indices, in FP order.
    embeddings: Vec<usize>,
}

impl Priorities {
    /// Assign priorities per §4.2.1: dense blocks numbered in FP order.
    pub fn assign(graph: &ModelGraph) -> Self {
        let mut dense = vec![None; graph.len()];
        let mut embeddings = Vec::new();
        let mut next = 0i64;
        for i in graph.fp_order() {
            if graph.modules[i].is_embedding() {
                embeddings.push(i);
            } else {
                dense[i] = Some(next);
                next += 1;
            }
        }
        Priorities { dense, embeddings }
    }

    /// Embedding module indices in FP order.
    pub fn embedding_modules(&self) -> &[usize] {
        &self.embeddings
    }

    /// The full horizontal schedule of one training step: every
    /// communication operation the 2D schedule emits, paired with its
    /// priority, in ascending priority order (the order the scheduler's
    /// queue would drain them when all are pending). This is the schedule
    /// plan `embrace-analyzer`'s static verifier checks for priority
    /// monotonicity and SPMD consistency — built without touching any
    /// transport.
    pub fn schedule_ops(&self) -> Vec<(CommKind, i64)> {
        let mut ops = Vec::new();
        for &e in &self.embeddings {
            ops.push((CommKind::PriorGrad(e), self.of(CommKind::PriorGrad(e))));
            ops.push((CommKind::EmbData(e), self.of(CommKind::EmbData(e))));
        }
        for (m, p) in self.dense.iter().enumerate() {
            if p.is_some() {
                ops.push((CommKind::DenseBlock(m), self.of(CommKind::DenseBlock(m))));
            }
        }
        for &e in &self.embeddings {
            ops.push((CommKind::DelayedGrad(e), self.of(CommKind::DelayedGrad(e))));
        }
        ops.sort_by_key(|&(_, p)| p);
        ops
    }

    /// Priority value of a communication operation.
    pub fn of(&self, kind: CommKind) -> i64 {
        match kind {
            CommKind::PriorGrad(_) => PRIOR_GRAD_PRIORITY,
            CommKind::EmbData(_) => EMB_DATA_PRIORITY,
            CommKind::DelayedGrad(_) => DELAYED_GRAD_PRIORITY,
            CommKind::DenseBlock(m) => self.dense[m].expect("module is not a dense block"),
        }
    }

    /// Number of prioritised dense blocks.
    pub fn n_dense(&self) -> usize {
        self.dense.iter().filter(|d| d.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> ModelGraph {
        ModelGraph::translation((10, 4), (10, 4), 2, 2, 8, 0.1, 0.1, 0.1, 0.1)
    }

    #[test]
    fn dense_blocks_numbered_in_fp_order() {
        // Modules: 0=enc_emb, 1..2=enc blocks, 3=dec_emb, 4..5=dec blocks.
        let p = Priorities::assign(&graph());
        assert_eq!(p.of(CommKind::DenseBlock(1)), 0);
        assert_eq!(p.of(CommKind::DenseBlock(2)), 1);
        assert_eq!(p.of(CommKind::DenseBlock(4)), 2);
        assert_eq!(p.of(CommKind::DenseBlock(5)), 3);
        assert_eq!(p.n_dense(), 4);
    }

    #[test]
    fn sparse_ops_bracket_dense_ops() {
        let p = Priorities::assign(&graph());
        let prior = p.of(CommKind::PriorGrad(0));
        let data = p.of(CommKind::EmbData(0));
        let first_dense = p.of(CommKind::DenseBlock(1));
        let last_dense = p.of(CommKind::DenseBlock(5));
        let delayed = p.of(CommKind::DelayedGrad(0));
        assert!(prior < data, "prior gradients beat embedding data");
        assert!(data < first_dense, "embedding data beats all dense blocks");
        assert!(last_dense < delayed, "delayed gradients come last");
    }

    #[test]
    fn schedule_ops_is_sorted_and_complete() {
        let p = Priorities::assign(&graph());
        let ops = p.schedule_ops();
        // 2 embeddings × 3 sparse ops + 4 dense blocks = 10 ops.
        assert_eq!(ops.len(), 10);
        assert!(ops.windows(2).all(|w| w[0].1 <= w[1].1), "ascending priorities");
        assert!(matches!(ops[0].0, CommKind::PriorGrad(_)));
        assert!(matches!(ops.last().unwrap().0, CommKind::DelayedGrad(_)));
        assert_eq!(p.embedding_modules(), &[0, 3]);
    }

    #[test]
    #[should_panic(expected = "not a dense block")]
    fn embedding_module_has_no_dense_priority() {
        let p = Priorities::assign(&graph());
        p.of(CommKind::DenseBlock(0));
    }
}
