#![recursion_limit = "1024"] // the 11-parameter proptest! below expands deep

//! Serving-path properties (ISSUE 10 satellite): the sharded embedding
//! service must be observationally *bitwise* identical to a single-shard
//! oracle — same lookups, same post-push tables — across partition
//! policies, worlds 2–8, duplicate-id batches and all three optimizers;
//! and the shared-memory store must never expose a torn row to concurrent
//! inference readers.

use embrace_collectives::run_group;
use embrace_ps::{
    EmbeddingService, OptimizerKind, PartitionPolicy, PushTransport, ServiceConfig, ShardedStore,
};
use embrace_tensor::{DenseTensor, RowSparse};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

const MAX_WORLD: usize = 8;
const MAX_STEPS: usize = 3;
const MAX_BATCH: usize = 8;
const MAX_DIM: usize = 3;

fn init(row: u32, col: usize) -> f32 {
    (row as f32 + 1.0) * 0.125 - 0.01 * col as f32
}

/// One rank's trajectory: the lookup result of every step plus a final
/// post-training lookup, flattened to raw f32s for bitwise comparison.
type Trajectory = Vec<Vec<f32>>;

/// Drive `steps` of lookup→push on a `world`-rank service and return each
/// rank's trajectory. `batches[step][rank]` are the (duplicated, skewed)
/// ids; values are deterministic in (step, rank, position).
fn run_sharded(
    world: usize,
    cfg: ServiceConfig,
    batches: &[Vec<Vec<u32>>],
    vals: &[Vec<Vec<f32>>],
) -> Vec<Trajectory> {
    let batches = batches.to_vec();
    let vals = vals.to_vec();
    run_group(world, move |rank, ep| {
        let mut svc = EmbeddingService::new(rank, world, &cfg, &init);
        let mut traj: Trajectory = Vec::new();
        for (step_ids, step_vals) in batches.iter().zip(&vals) {
            let ids = &step_ids[rank];
            let looked = svc.try_lookup(ep, ids).expect("lookup in range");
            traj.push(looked.as_slice().to_vec());
            let grad = RowSparse::new(
                ids.clone(),
                DenseTensor::from_vec(ids.len(), cfg.dim, step_vals[rank].clone()),
            );
            svc.try_push(ep, &grad).expect("push in range");
        }
        // Final read-back of everything this rank ever touched.
        let all: Vec<u32> = batches.iter().flat_map(|s| s[rank].iter().copied()).collect();
        let fin = svc.try_lookup(ep, &all).expect("final lookup");
        traj.push(fin.as_slice().to_vec());
        traj
    })
}

/// The single-shard oracle: a world-1 service pushed with the concatenation
/// of all ranks' gradients (rank order), looked up with each rank's batch
/// in rank order — the exact (source rank, source position) summation
/// order the sharded destination's stable coalesce applies.
fn run_oracle(
    world: usize,
    cfg: ServiceConfig,
    batches: &[Vec<Vec<u32>>],
    vals: &[Vec<Vec<f32>>],
) -> Vec<Trajectory> {
    let batches = batches.to_vec();
    let vals = vals.to_vec();
    let mut out = run_group(1, move |_, ep| {
        let mut svc = EmbeddingService::new(0, 1, &cfg, &init);
        let mut trajs: Vec<Trajectory> = vec![Vec::new(); world];
        for (step_ids, step_vals) in batches.iter().zip(&vals) {
            for rank in 0..world {
                let looked = svc.try_lookup(ep, &step_ids[rank]).expect("lookup in range");
                trajs[rank].push(looked.as_slice().to_vec());
            }
            let parts: Vec<RowSparse> = (0..world)
                .map(|rank| {
                    let ids = &step_ids[rank];
                    RowSparse::new(
                        ids.clone(),
                        DenseTensor::from_vec(ids.len(), cfg.dim, step_vals[rank].clone()),
                    )
                })
                .collect();
            svc.try_push(ep, &RowSparse::concat(&parts)).expect("push in range");
        }
        for (rank, traj) in trajs.iter_mut().enumerate() {
            let all: Vec<u32> = batches.iter().flat_map(|s| s[rank].iter().copied()).collect();
            let fin = svc.try_lookup(ep, &all).expect("final lookup");
            traj.push(fin.as_slice().to_vec());
        }
        trajs
    });
    out.pop().expect("one rank")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Sharded lookup→update→lookup round-trips are bitwise identical to
    // the single-shard oracle for every partition policy, world 2–8,
    // optimizer, and duplicate-heavy batch mix.
    #[test]
    fn sharded_service_is_bitwise_the_single_shard_oracle(
        world in 2usize..=MAX_WORLD,
        vocab in 8usize..48,
        dim in 1usize..=MAX_DIM,
        steps in 1usize..=MAX_STEPS,
        policy_sel in 0u8..2,
        opt_sel in 0u8..3,
        cache_rows in 0usize..6,
        raw_lens in vec(0usize..=MAX_BATCH, MAX_STEPS * MAX_WORLD),
        raw_ids in vec(0u32..u32::MAX, MAX_STEPS * MAX_WORLD * MAX_BATCH),
        raw_vals in vec(-1.0f32..1.0, MAX_STEPS * MAX_WORLD * MAX_BATCH * MAX_DIM),
    ) {
        let policy =
            if policy_sel == 1 { PartitionPolicy::Hash } else { PartitionPolicy::Range };
        let optimizer = match opt_sel {
            0 => OptimizerKind::Sgd { lr: 0.3 },
            1 => OptimizerKind::Adagrad { lr: 0.3 },
            _ => OptimizerKind::Momentum { lr: 0.3, momentum: 0.9 },
        };
        // batches[step][rank]: ids folded into the vocabulary, duplicates
        // kept (the dedup/coalesce paths must both handle them).
        let mut batches: Vec<Vec<Vec<u32>>> = Vec::new();
        let mut vals: Vec<Vec<Vec<f32>>> = Vec::new();
        for step in 0..steps {
            let mut step_ids = Vec::new();
            let mut step_vals = Vec::new();
            for rank in 0..world {
                let slot = step * MAX_WORLD + rank;
                let n = raw_lens[slot];
                let base = slot * MAX_BATCH;
                let ids: Vec<u32> =
                    (0..n).map(|i| raw_ids[base + i] % vocab as u32).collect();
                let vbase = slot * MAX_BATCH * MAX_DIM;
                let v: Vec<f32> = (0..n * dim).map(|i| raw_vals[vbase + i]).collect();
                step_ids.push(ids);
                step_vals.push(v);
            }
            batches.push(step_ids);
            vals.push(step_vals);
        }
        let cfg = ServiceConfig {
            vocab,
            dim,
            policy,
            optimizer,
            cache_rows,
            push: PushTransport::Alltoallv,
        };
        // The oracle runs uncached; the sharded side runs with whatever
        // cache the case drew — the cache must be value-transparent.
        let oracle_cfg = ServiceConfig { cache_rows: 0, ..cfg };
        let sharded = run_sharded(world, cfg, &batches, &vals);
        let oracle = run_oracle(world, oracle_cfg, &batches, &vals);
        for rank in 0..world {
            prop_assert_eq!(
                &sharded[rank],
                &oracle[rank],
                "trajectory diverged at rank {} ({:?}, world {})",
                rank,
                policy,
                world
            );
        }
    }
}

/// Concurrent trainer + inference traffic on the shared-memory store:
/// every push writes rows whose elements are all equal, so any row a
/// reader ever observes must be internally uniform — a mixed row is a
/// torn (half-applied) update escaping the shard lock.
#[test]
fn concurrent_trainer_and_inference_never_see_torn_rows() {
    let vocab = 32;
    let dim = 8;
    let world = 4;
    let steps = 50;
    let store = Arc::new(ShardedStore::new(DenseTensor::zeros(vocab, dim), 4, world));

    thread::scope(|s| {
        for w in 0..world {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for step in 0..steps {
                    // Every worker hits the same hot rows plus a private
                    // one; all elements of a gradient row are equal, so
                    // the table rows stay uniform step to step.
                    let ids = vec![0u32, (vocab / 2) as u32, (w + 8) as u32];
                    let g = DenseTensor::full(ids.len(), dim, (step % 7) as f32 + 1.0);
                    store.push_sparse(&RowSparse::new(ids, g), 0.01).expect("valid gradient");
                }
            });
        }
        // Inference readers race the trainers; they are not part of the
        // push barrier (pulls never block on the step protocol).
        for r in 0..2u32 {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for _ in 0..300 {
                    let ids: Vec<u32> = (0..vocab as u32).filter(|i| i % 2 == r % 2).collect();
                    let rows = store.pull_rows(&ids).expect("rows in range");
                    for i in 0..rows.rows() {
                        let row = rows.row(i);
                        assert!(row.iter().all(|&x| x == row[0]), "torn row observed: {row:?}");
                    }
                }
            });
        }
    });
    // The fully-settled table must itself be uniform per row.
    let snap = store.snapshot();
    for i in 0..snap.rows() {
        let row = snap.row(i);
        assert!(row.iter().all(|&x| x == row[0]));
    }
}
