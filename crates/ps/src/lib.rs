//! Sharded embedding parameter service for the EmbRace reproduction.
//!
//! Two substrates, one table abstraction:
//!
//! * [`ShardedStore`] — the in-process synchronous PS skeleton. Two of the
//!   paper's baselines are PS-based: **BytePS** (dense PS + ByteScheduler)
//!   and **Parallax** (row-partitioned *sparse* PS for embeddings +
//!   AllReduce for dense parameters, §5.2.3). Shards are mutex-guarded row
//!   ranges, workers are threads sharing the store, pushes barrier per
//!   step. Timing is modelled by `embrace_simnet::cost::CostModel::ps`.
//! * [`EmbeddingService`] — the sharded serving path: one instance per
//!   SPMD rank, rows placed by a [`PartitionBook`] (contiguous-range or
//!   cyclic-hash policies), batched lookup/push RPCs riding the
//!   collectives layer (`alltoallv_tokens` + `alltoall_dense` for lookups,
//!   `alltoallv_sparse` or the sparse-native allreduce for gradient
//!   pushes), per-row optimizer state ([`RowOptimizer`]: Adagrad /
//!   SGD-momentum) colocated with the shard it updates, and a hot-row LRU
//!   [`RowCache`] with hit-rate and occupancy metrics exported through
//!   `embrace-obs`.
//!
//! Failures are typed [`PsError`]s throughout — no panicking paths on
//! missing rows or shard-boundary ids (the comm-path lint rules cover
//! this crate).
//!
//! # Example
//!
//! ```
//! use embrace_ps::ShardedStore;
//! use embrace_tensor::{DenseTensor, RowSparse};
//!
//! let store = ShardedStore::new(DenseTensor::zeros(8, 2), 2, 1);
//! let grad = RowSparse::new(vec![3], DenseTensor::full(1, 2, 1.0));
//! store.push_sparse(&grad, 0.5).expect("valid gradient");
//! assert_eq!(store.pull_rows(&[3]).expect("row in range").row(0), &[-0.5, -0.5]);
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod error;
pub mod optim;
pub mod partition;
pub mod service;
pub mod store;

pub use cache::{CacheStats, RowCache};
pub use error::PsError;
pub use optim::{OptimizerKind, RowOptimizer};
pub use partition::{PartitionBook, PartitionPolicy};
pub use service::{EmbeddingService, PushTransport, ServiceConfig};
pub use store::ShardedStore;
