//! Sharded parameter-server substrate.
//!
//! Two of the paper's baselines are PS-based: **BytePS** (dense PS +
//! ByteScheduler) and **Parallax** (row-partitioned *sparse* PS for
//! embeddings + AllReduce for dense parameters, §5.2.3). This crate
//! provides the functional server: an in-process, shard-locked parameter
//! store with synchronous push/pull semantics. Timing is modelled
//! separately by `embrace_simnet::cost::CostModel::ps`.
//!
//! # Example
//!
//! ```
//! use embrace_ps::ShardedStore;
//! use embrace_tensor::{DenseTensor, RowSparse};
//!
//! let store = ShardedStore::new(DenseTensor::zeros(8, 2), 2, 1);
//! let grad = RowSparse::new(vec![3], DenseTensor::full(1, 2, 1.0));
//! store.push_sparse(&grad, 0.5);
//! assert_eq!(store.pull_rows(&[3]).row(0), &[-0.5, -0.5]);
//! ```

#![forbid(unsafe_code)]

pub mod store;

pub use store::ShardedStore;
