//! Hot-row LRU cache for the serving path.
//!
//! DLRM-style inference traffic is Zipf-skewed (paper Fig. 2): a small hot
//! head of the table absorbs most lookups, so a bounded per-rank cache
//! short-circuits the AlltoAll round trip for those rows entirely.
//!
//! Coherence is version-based write-invalidate-all: every applied push
//! bumps the table version, and cached entries tagged with an older
//! version are treated as misses (and reclaimed) on their next probe.
//! That is the right trade for sparse training traffic — a push touches an
//! unpredictable subset of rows on *other* shards this rank cannot see, so
//! per-row invalidation would itself need a broadcast.
//!
//! Recency is a monotone tick per probe; eviction removes the smallest
//! tick through a `BTreeMap` index (O(log n), no unsafe linked lists).

use std::collections::{BTreeMap, HashMap};

struct Entry {
    /// Table version the row was cached at; stale when the table moved on.
    version: u64,
    /// Recency tick of the last hit or insert (key into `by_tick`).
    tick: u64,
    values: Vec<f32>,
}

/// Running hit/miss/eviction tallies of a [`RowCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Pushes that invalidated the whole cache (version bumps).
    pub invalidations: u64,
    /// Live (current-version) entries at the time of the snapshot.
    pub occupancy: usize,
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of probes served from cache (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Bounded per-rank cache of embedding rows, LRU-evicted, version-invalidated.
pub struct RowCache {
    capacity: usize,
    version: u64,
    clock: u64,
    map: HashMap<u32, Entry>,
    by_tick: BTreeMap<u64, u32>,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl RowCache {
    /// A cache holding at most `capacity` rows (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        RowCache {
            capacity,
            version: 0,
            clock: 0,
            map: HashMap::new(),
            by_tick: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Probe for `row`. A current-version entry is a hit (and refreshed to
    /// most-recently-used); a stale or absent entry is a miss, and stale
    /// storage is reclaimed on the spot.
    pub fn get(&mut self, row: u32) -> Option<&[f32]> {
        match self.map.get(&row) {
            Some(e) if e.version == self.version => {
                self.hits += 1;
                self.clock += 1;
                let entry = self.map.get_mut(&row).expect("probed above");
                self.by_tick.remove(&entry.tick);
                entry.tick = self.clock;
                self.by_tick.insert(entry.tick, row);
                Some(&entry.values)
            }
            Some(_) => {
                self.misses += 1;
                let e = self.map.remove(&row).expect("probed above");
                self.by_tick.remove(&e.tick);
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Install `values` for `row` at the current version, evicting the
    /// least-recently-used entry if the cache is full. No-op at capacity 0.
    pub fn insert(&mut self, row: u32, values: &[f32]) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if let Some(old) = self.map.get(&row) {
            // Re-insert refreshes recency in place (no eviction needed).
            self.by_tick.remove(&old.tick);
        } else if self.map.len() >= self.capacity {
            if let Some((&tick, &victim)) = self.by_tick.iter().next() {
                self.by_tick.remove(&tick);
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.by_tick.insert(self.clock, row);
        self.map.insert(
            row,
            Entry { version: self.version, tick: self.clock, values: values.to_vec() },
        );
    }

    /// The table changed under the cache: bump the version so every live
    /// entry becomes stale (reclaimed lazily on its next probe).
    pub fn invalidate_all(&mut self) {
        if !self.map.is_empty() {
            self.invalidations += 1;
        }
        self.version += 1;
    }

    /// Counter snapshot; `occupancy` counts only current-version entries.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidations: self.invalidations,
            occupancy: self.map.values().filter(|e| e.version == self.version).count(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = RowCache::new(4);
        assert!(c.get(7).is_none());
        c.insert(7, &[1.0, 2.0]);
        assert_eq!(c.get(7), Some(&[1.0, 2.0][..]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.occupancy), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_probed() {
        let mut c = RowCache::new(2);
        c.insert(1, &[1.0]);
        c.insert(2, &[2.0]);
        assert!(c.get(1).is_some()); // 2 is now the LRU entry
        c.insert(3, &[3.0]);
        assert!(c.get(2).is_none(), "LRU row evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidation_stales_every_entry() {
        let mut c = RowCache::new(4);
        c.insert(1, &[1.0]);
        c.insert(2, &[2.0]);
        c.invalidate_all();
        assert_eq!(c.stats().occupancy, 0);
        assert!(c.get(1).is_none(), "stale entry must miss");
        c.insert(1, &[1.5]);
        assert_eq!(c.get(1), Some(&[1.5][..]));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = RowCache::new(0);
        c.insert(1, &[1.0]);
        assert!(c.get(1).is_none());
        assert_eq!(c.stats().occupancy, 0);
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut c = RowCache::new(2);
        c.insert(1, &[1.0]);
        c.insert(2, &[2.0]);
        c.insert(1, &[1.1]); // refresh, not a third entry
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(1), Some(&[1.1][..]));
        assert!(c.get(2).is_some());
    }
}
