//! The sharded embedding service: batched lookup/push RPCs over collectives.
//!
//! One `EmbeddingService` instance runs per rank of an SPMD group; rank
//! `r` *is* shard `r` (server and worker colocated, the DGL
//! `DistEmbedding` arrangement). The table never exists materialised in
//! one place — each rank holds only the rows its [`PartitionBook`] assigns
//! it, plus the per-row optimizer state for exactly those rows.
//!
//! **Lookup** is two collectives deep: requests scatter to their owning
//! shards (`alltoallv_tokens`, the request leg), each shard gathers the
//! rows it owns, and the responses scatter back (`alltoall_dense` — the
//! paper's AlltoAll #1 shape). Requested ids are deduplicated per
//! destination before the wire, and a hot-row [`RowCache`] short-circuits
//! rows served recently, so a Zipf-skewed batch often shrinks to a
//! fraction of its raw size.
//!
//! **Push** partitions a [`RowSparse`] gradient by owning shard and rides
//! `alltoallv_sparse` (AlltoAll #2); each shard coalesces what it received
//! — source-rank order, the same summation order a single-shard store
//! applies — and updates through its colocated [`RowOptimizer`].
//! Alternatively a push can ride the sparse-native allreduce
//! ([`PushTransport::SparseAllreduce`]); every rank then applies its own
//! slice of the reduced gradient, bitwise the SSAR oracle.
//!
//! All lookups and pushes are *collective*: every rank of the group must
//! call them together, like the collectives they ride. Input validation
//! happens before any packet moves, and a rank that rejects its input
//! broadcasts an abort so peers fail with [`CommError::Aborted`] instead
//! of deadlocking.

use crate::cache::{CacheStats, RowCache};
use crate::error::PsError;
use crate::optim::{OptimizerKind, RowOptimizer};
use crate::partition::{PartitionBook, PartitionPolicy};
use embrace_collectives::ops::{
    try_alltoall_dense, try_alltoallv_sparse, try_alltoallv_tokens, try_sparse_allreduce,
    SparseReduced, SsarConfig,
};
use embrace_collectives::{Comm, Packet};
use embrace_obs::recorder;
use embrace_obs::Metrics;
use embrace_tensor::{coalesce, DenseTensor, RowSparse, TokenBuf};
use std::collections::HashMap;

/// How a push moves gradients to their owning shards.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PushTransport {
    /// Partition by owner and exchange point-to-point (AlltoAll #2).
    Alltoallv,
    /// Reduce the whole gradient sparse-natively (SparCML SSAR) with the
    /// given densify crossover; every rank applies its owned slice.
    SparseAllreduce { crossover: f64 },
}

/// Configuration of one [`EmbeddingService`] group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Global rows of the table.
    pub vocab: usize,
    /// Embedding width.
    pub dim: usize,
    /// Row-to-shard placement.
    pub policy: PartitionPolicy,
    /// Update rule colocated with each shard.
    pub optimizer: OptimizerKind,
    /// Hot-row cache capacity per rank (0 disables caching).
    pub cache_rows: usize,
    /// Gradient transport of [`EmbeddingService::try_push`].
    pub push: PushTransport,
}

impl ServiceConfig {
    /// A plain SGD service with no cache over `vocab × dim`, range-
    /// partitioned — the minimal configuration tests start from.
    pub fn minimal(vocab: usize, dim: usize, lr: f32) -> Self {
        ServiceConfig {
            vocab,
            dim,
            policy: PartitionPolicy::Range,
            optimizer: OptimizerKind::Sgd { lr },
            cache_rows: 0,
            push: PushTransport::Alltoallv,
        }
    }
}

/// Where each position of a lookup batch gets its row from.
enum Slot {
    /// Index into the locally-cached row buffer.
    Cached(usize),
    /// `(owning shard, position within that shard's request list)`.
    Fetched(usize, usize),
}

/// One rank's shard of the sharded embedding service.
pub struct EmbeddingService {
    book: PartitionBook,
    rank: usize,
    world: usize,
    dim: usize,
    /// The parameter rows this rank owns (`book.shard_rows(rank) × dim`).
    shard: DenseTensor,
    opt: RowOptimizer,
    cache: RowCache,
    push: PushTransport,
    lookups: u64,
    pushes: u64,
    /// Rows returned to lookup callers (before dedup/caching).
    rows_served: u64,
    /// Rows actually moved through the AlltoAll (after dedup and cache).
    rows_fetched: u64,
    /// Gradient rows applied to this shard.
    rows_updated: u64,
}

impl EmbeddingService {
    /// Build rank `rank`'s shard of a `world`-rank service. `init` gives
    /// the initial value of `(global row, column)`; only the rows this
    /// rank owns are materialised, so million-row tables cost each rank
    /// `vocab/world` rows, not `vocab`.
    pub fn new(
        rank: usize,
        world: usize,
        cfg: &ServiceConfig,
        init: &dyn Fn(u32, usize) -> f32,
    ) -> Self {
        assert!(rank < world, "rank {rank} outside world {world}");
        let book = PartitionBook::new(cfg.policy, cfg.vocab, world);
        let rows = book.shard_rows(rank);
        let mut shard = DenseTensor::zeros(rows, cfg.dim);
        for local in 0..rows {
            let global = book.global_of(rank, local);
            let dst = shard.row_mut(local);
            for (c, v) in dst.iter_mut().enumerate() {
                *v = init(global, c);
            }
        }
        EmbeddingService {
            book,
            rank,
            world,
            dim: cfg.dim,
            shard,
            opt: RowOptimizer::new(cfg.optimizer, rows, cfg.dim),
            cache: RowCache::new(cfg.cache_rows),
            push: cfg.push,
            lookups: 0,
            pushes: 0,
            rows_served: 0,
            rows_fetched: 0,
            rows_updated: 0,
        }
    }

    pub fn book(&self) -> &PartitionBook {
        &self.book
    }

    /// The rows this rank owns (test/inspection helper).
    pub fn shard_table(&self) -> &DenseTensor {
        &self.shard
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Collective lookup: every rank calls with its own `ids` (any order,
    /// duplicates fine, empty fine) and receives the `ids.len() × dim`
    /// rows in request order.
    pub fn try_lookup<C: Comm>(&mut self, ep: &mut C, ids: &[u32]) -> Result<DenseTensor, PsError> {
        let _span = recorder::span("ps_lookup", "serving");
        self.lookups += 1;
        self.rows_served += ids.len() as u64;
        // Validate before any packet moves.
        for &id in ids {
            if id as usize >= self.book.vocab() {
                return abort(ep, PsError::RowOutOfRange { row: id, vocab: self.book.vocab() });
            }
        }
        // Plan each position: cache hit, or a deduplicated fetch from the
        // owning shard (self included — the self slot of the AlltoAll).
        let mut slots: Vec<Slot> = Vec::with_capacity(ids.len());
        let mut planned: HashMap<u32, (usize, usize)> = HashMap::new();
        let mut cached: Vec<f32> = Vec::new();
        let mut cached_ids: HashMap<u32, usize> = HashMap::new();
        let mut reqs: Vec<Vec<u32>> = vec![Vec::new(); self.world];
        for &id in ids {
            if let Some(&(dest, pos)) = planned.get(&id) {
                slots.push(Slot::Fetched(dest, pos));
                continue;
            }
            if let Some(&k) = cached_ids.get(&id) {
                slots.push(Slot::Cached(k));
                continue;
            }
            if let Some(vals) = self.cache.get(id) {
                let k = cached.len() / self.dim;
                cached.extend_from_slice(vals);
                cached_ids.insert(id, k);
                slots.push(Slot::Cached(k));
                continue;
            }
            let dest = self.book.owner_of(id)?;
            reqs[dest].push(id);
            let pos = reqs[dest].len() - 1;
            planned.insert(id, (dest, pos));
            slots.push(Slot::Fetched(dest, pos));
        }
        // Round 1: scatter row-id requests to their owning shards.
        let outgoing: Vec<TokenBuf> = reqs.iter().map(|r| TokenBuf::from(r.clone())).collect();
        let asked = try_alltoallv_tokens(ep, outgoing)?;
        // Serve: gather the rows each peer asked this shard for.
        let mut responses: Vec<DenseTensor> = Vec::with_capacity(self.world);
        for batch in &asked {
            let mut resp = DenseTensor::zeros(batch.len(), self.dim);
            for (i, &id) in batch.as_slice().iter().enumerate() {
                let owner = self.book.owner_of(id)?;
                if owner != self.rank {
                    return abort(ep, PsError::WrongShard { row: id, owner, shard: self.rank });
                }
                let local = self.book.local_index(id);
                resp.row_mut(i).copy_from_slice(self.shard.row(local));
            }
            responses.push(resp);
        }
        // Round 2: scatter the served rows back to the requesting ranks.
        let fetched = try_alltoall_dense(ep, responses)?;
        for (dest, req) in reqs.iter().enumerate() {
            self.rows_fetched += req.len() as u64;
            for (pos, &id) in req.iter().enumerate() {
                self.cache.insert(id, fetched[dest].row(pos));
            }
        }
        // Assemble in request order.
        let mut out = DenseTensor::zeros(ids.len(), self.dim);
        for (i, slot) in slots.iter().enumerate() {
            let row = match slot {
                Slot::Cached(k) => &cached[k * self.dim..(k + 1) * self.dim],
                Slot::Fetched(dest, pos) => fetched[*dest].row(*pos),
            };
            out.row_mut(i).copy_from_slice(row);
        }
        Ok(out)
    }

    /// Collective push: every rank contributes its own `RowSparse`
    /// gradient (global row ids; empty fine); each shard applies the sum
    /// of all contributions to the rows it owns through its colocated
    /// optimizer, then invalidates its hot-row cache.
    pub fn try_push<C: Comm>(&mut self, ep: &mut C, grad: &RowSparse) -> Result<(), PsError> {
        let _span = recorder::span("ps_push", "serving");
        self.pushes += 1;
        if grad.dim() != self.dim {
            return abort(ep, PsError::DimMismatch { expected: self.dim, got: grad.dim() });
        }
        for &row in grad.indices() {
            if row as usize >= self.book.vocab() {
                return abort(ep, PsError::RowOutOfRange { row, vocab: self.book.vocab() });
            }
        }
        match self.push {
            PushTransport::Alltoallv => {
                // Partition by owning shard, positions kept in input order
                // so the destination's coalesce sums in (source rank,
                // source position) order — the same order a single-shard
                // store would see.
                let mut per_shard: Vec<(Vec<u32>, Vec<u32>)> =
                    vec![(Vec::new(), Vec::new()); self.world];
                for (pos, &row) in grad.indices().iter().enumerate() {
                    let dest = self.book.owner_of(row)?;
                    per_shard[dest].0.push(pos as u32);
                    per_shard[dest].1.push(row);
                }
                let parts: Vec<RowSparse> = per_shard
                    .into_iter()
                    .map(|(positions, rows)| {
                        if positions.is_empty() {
                            RowSparse::empty(self.dim)
                        } else {
                            RowSparse::new(rows, grad.values().gather_rows(&positions))
                        }
                    })
                    .collect();
                let received = try_alltoallv_sparse(ep, parts)?;
                let summed = coalesce(&RowSparse::concat(&received));
                for (i, &row) in summed.indices().iter().enumerate() {
                    let local = self.book.local_index(row);
                    self.opt.update_row(local, self.shard.row_mut(local), summed.values().row(i));
                    self.rows_updated += 1;
                }
            }
            PushTransport::SparseAllreduce { crossover } => {
                let cfg = SsarConfig { vocab: self.book.vocab(), crossover };
                match try_sparse_allreduce(ep, grad, &cfg)? {
                    SparseReduced::Sparse(summed) => {
                        for (i, &row) in summed.indices().iter().enumerate() {
                            if self.book.owner_of(row)? != self.rank {
                                continue;
                            }
                            let local = self.book.local_index(row);
                            self.opt.update_row(
                                local,
                                self.shard.row_mut(local),
                                summed.values().row(i),
                            );
                            self.rows_updated += 1;
                        }
                    }
                    SparseReduced::Dense(summed) => {
                        // Row participation is lost after densify: apply
                        // every owned row with a nonzero sum (a true-zero
                        // summed row is indistinguishable from an
                        // untouched one; both are no-ops for SGD/Adagrad).
                        for local in 0..self.shard.rows() {
                            let global = self.book.global_of(self.rank, local);
                            let g = summed.row(global as usize);
                            if g.iter().all(|&x| x == 0.0) {
                                continue;
                            }
                            self.opt.update_row(local, self.shard.row_mut(local), g);
                            self.rows_updated += 1;
                        }
                    }
                }
            }
        }
        self.cache.invalidate_all();
        Ok(())
    }

    /// Export serving counters and cache health into `m` (registry names
    /// under `ps.*`). Call on a fresh registry or merge downstream — the
    /// counters are lifetime totals, not deltas.
    pub fn export_metrics(&self, m: &mut Metrics) {
        let s = self.cache.stats();
        m.inc("ps.lookup.batches", self.lookups);
        m.inc("ps.lookup.rows_served", self.rows_served);
        m.inc("ps.lookup.rows_fetched", self.rows_fetched);
        m.inc("ps.push.batches", self.pushes);
        m.inc("ps.push.rows_updated", self.rows_updated);
        m.inc("ps.cache.hits", s.hits);
        m.inc("ps.cache.misses", s.misses);
        m.inc("ps.cache.evictions", s.evictions);
        m.inc("ps.cache.invalidations", s.invalidations);
        m.set_gauge("ps.cache.hit_rate", s.hit_rate());
        m.set_gauge(
            "ps.cache.occupancy",
            if s.capacity == 0 { 0.0 } else { s.occupancy as f64 / s.capacity as f64 },
        );
    }
}

/// Best-effort abort broadcast for locally-detected input errors, then the
/// error itself — peers blocked in the collective observe
/// [`embrace_collectives::CommError::Aborted`] instead of deadlocking
/// (the same contract `ops::fail` gives communication failures).
fn abort<T, C: Comm>(ep: &mut C, err: PsError) -> Result<T, PsError> {
    let origin = ep.rank();
    for dst in 0..ep.world() {
        if dst != origin {
            let _ = ep.try_send(dst, Packet::Abort { origin });
        }
    }
    Err(err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use embrace_collectives::ops::sparse_allreduce_oracle;
    use embrace_collectives::{run_group, CommError};

    fn init(row: u32, col: usize) -> f32 {
        row as f32 * 10.0 + col as f32
    }

    fn base_cfg(vocab: usize, dim: usize, policy: PartitionPolicy) -> ServiceConfig {
        ServiceConfig { policy, ..ServiceConfig::minimal(vocab, dim, 0.5) }
    }

    #[test]
    fn lookup_returns_owner_rows_across_policies_and_worlds() {
        for policy in [PartitionPolicy::Range, PartitionPolicy::Hash] {
            for world in [1usize, 2, 4] {
                let outs = run_group(world, move |rank, ep| {
                    let cfg = base_cfg(19, 3, policy);
                    let mut svc = EmbeddingService::new(rank, world, &cfg, &init);
                    // Skewed, duplicated, cross-shard batch per rank.
                    let ids = vec![(rank as u32 * 5) % 19, 18, 0, 18];
                    let out = svc.try_lookup(ep, &ids).expect("lookup in range");
                    (ids, out)
                });
                for (ids, out) in outs {
                    assert_eq!(out.rows(), ids.len());
                    for (i, &id) in ids.iter().enumerate() {
                        let want: Vec<f32> = (0..3).map(|c| init(id, c)).collect();
                        assert_eq!(out.row(i), &want[..], "{policy:?} world {world} id {id}");
                    }
                }
            }
        }
    }

    #[test]
    fn repeat_lookup_is_served_from_cache() {
        let stats = run_group(2, |rank, ep| {
            let cfg = ServiceConfig { cache_rows: 8, ..base_cfg(16, 2, PartitionPolicy::Hash) };
            let mut svc = EmbeddingService::new(rank, 2, &cfg, &init);
            let ids = [1u32, 2, 3, 1];
            let a = svc.try_lookup(ep, &ids).expect("first lookup");
            let b = svc.try_lookup(ep, &ids).expect("second lookup");
            assert_eq!(a, b, "cache must be value-transparent");
            svc.cache_stats()
        });
        for s in stats {
            // First pass misses the three unique rows (the duplicate is
            // deduplicated before the cache); second pass hits all three.
            assert_eq!((s.hits, s.misses), (3, 3));
            assert_eq!(s.occupancy, 3);
            assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn push_invalidates_cached_rows() {
        run_group(2, |rank, ep| {
            let cfg = ServiceConfig {
                cache_rows: 8,
                optimizer: OptimizerKind::Sgd { lr: 1.0 },
                ..base_cfg(8, 1, PartitionPolicy::Range)
            };
            let mut svc = EmbeddingService::new(rank, 2, &cfg, &|_, _| 0.0);
            let before = svc.try_lookup(ep, &[3]).expect("lookup");
            assert_eq!(before.row(0), &[0.0]);
            let grad = RowSparse::new(vec![3], DenseTensor::full(1, 1, 1.0));
            svc.try_push(ep, &grad).expect("push");
            let after = svc.try_lookup(ep, &[3]).expect("lookup after push");
            // Both ranks pushed g=1 at lr=1: row 3 is now -2. A stale
            // cache would still say 0.
            assert_eq!(after.row(0), &[-2.0]);
        });
    }

    #[test]
    fn ssar_push_matches_the_dense_oracle() {
        let vocab = 32;
        let dim = 2;
        for crossover in [2.0f64, 0.0] {
            // 2.0 keeps the reduction sparse end to end; 0.0 densifies at
            // step 0 — both must land on the oracle's summed gradient.
            let tables = run_group(4, move |rank, ep| {
                let cfg = ServiceConfig {
                    optimizer: OptimizerKind::Sgd { lr: 1.0 },
                    push: PushTransport::SparseAllreduce { crossover },
                    ..base_cfg(vocab, dim, PartitionPolicy::Range)
                };
                let mut svc = EmbeddingService::new(rank, 4, &cfg, &|_, _| 0.0);
                let grad = RowSparse::new(
                    vec![rank as u32, (rank as u32 + 7) % vocab as u32],
                    DenseTensor::full(2, dim, 1.0 + rank as f32),
                );
                svc.try_push(ep, &grad).expect("push");
                (grad, svc.shard_table().clone(), svc.book().clone())
            });
            let locals: Vec<RowSparse> = tables.iter().map(|(g, _, _)| g.share()).collect();
            let summed = sparse_allreduce_oracle(&locals, vocab);
            for (rank, (_, shard, book)) in tables.iter().enumerate() {
                for local in 0..shard.rows() {
                    let global = book.global_of(rank, local) as usize;
                    let want: Vec<f32> = summed.row(global).iter().map(|g| -g).collect();
                    assert_eq!(shard.row(local), &want[..], "crossover {crossover} row {global}");
                }
            }
        }
    }

    #[test]
    fn empty_batches_and_world_one_are_fine() {
        // world = 1: both collectives degenerate to the self slot.
        let out = run_group(1, |rank, ep| {
            let cfg = base_cfg(5, 2, PartitionPolicy::Range);
            let mut svc = EmbeddingService::new(rank, 1, &cfg, &init);
            let empty = svc.try_lookup(ep, &[]).expect("empty lookup");
            assert_eq!(empty.rows(), 0);
            svc.try_push(ep, &RowSparse::empty(2)).expect("empty push");
            svc.try_lookup(ep, &[4, 4, 0]).expect("lookup")
        });
        assert_eq!(out[0].row(0), &[init(4, 0), init(4, 1)]);
        assert_eq!(out[0].row(2), &[init(0, 0), init(0, 1)]);
    }

    #[test]
    fn out_of_range_lookup_aborts_the_group() {
        let errs = run_group(2, |rank, ep| {
            let cfg = base_cfg(8, 1, PartitionPolicy::Hash);
            let mut svc = EmbeddingService::new(rank, 2, &cfg, &init);
            let ids = if rank == 0 { vec![99u32] } else { vec![1u32] };
            svc.try_lookup(ep, &ids).expect_err("both ranks must fail")
        });
        assert_eq!(errs[0], PsError::RowOutOfRange { row: 99, vocab: 8 });
        // The peer sees the abort notification, or — if the failing rank
        // already tore down — the disconnection edge; never a hang.
        assert!(
            matches!(
                errs[1],
                PsError::Comm(CommError::Aborted { origin: 0 })
                    | PsError::Comm(CommError::PeerGone { peer: 0 })
            ),
            "unexpected peer error: {:?}",
            errs[1]
        );
    }

    #[test]
    fn wrong_dim_push_aborts_the_group() {
        let errs = run_group(2, |rank, ep| {
            let cfg = base_cfg(8, 2, PartitionPolicy::Range);
            let mut svc = EmbeddingService::new(rank, 2, &cfg, &init);
            let grad = if rank == 0 {
                RowSparse::new(vec![1], DenseTensor::zeros(1, 3))
            } else {
                RowSparse::new(vec![1], DenseTensor::zeros(1, 2))
            };
            svc.try_push(ep, &grad).expect_err("both ranks must fail")
        });
        assert_eq!(errs[0], PsError::DimMismatch { expected: 2, got: 3 });
        assert!(
            matches!(
                errs[1],
                PsError::Comm(CommError::Aborted { origin: 0 })
                    | PsError::Comm(CommError::PeerGone { peer: 0 })
            ),
            "unexpected peer error: {:?}",
            errs[1]
        );
    }

    #[test]
    fn metrics_export_reports_serving_counters() {
        let metrics = run_group(2, |rank, ep| {
            let cfg = ServiceConfig { cache_rows: 4, ..base_cfg(8, 1, PartitionPolicy::Range) };
            let mut svc = EmbeddingService::new(rank, 2, &cfg, &init);
            svc.try_lookup(ep, &[0, 1]).expect("lookup");
            svc.try_lookup(ep, &[0, 1]).expect("lookup");
            let mut m = Metrics::new();
            svc.export_metrics(&mut m);
            m
        });
        for m in metrics {
            assert_eq!(m.counter("ps.lookup.batches"), 2);
            assert_eq!(m.counter("ps.lookup.rows_served"), 4);
            assert_eq!(m.counter("ps.lookup.rows_fetched"), 2);
            assert_eq!(m.counter("ps.cache.hits"), 2);
            assert_eq!(m.gauge("ps.cache.hit_rate"), Some(0.5));
        }
    }
}
