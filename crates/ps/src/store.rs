//! The sharded synchronous parameter store.
//!
//! Parameters of one table (`vocab × dim`) are **row-partitioned** across
//! `shards` server shards (Parallax partitions its sparse PS this way; the
//! paper contrasts this with EmbRace's column-wise partitioning in §4.1.1).
//! Workers `pull` the rows they need and `push` sparse gradients; a push
//! blocks until all `world` workers of the step have pushed, then one
//! worker applies the summed update — synchronous data-parallel semantics.
//!
//! Bad inputs are typed [`PsError`]s, not panics: the comm-path lint rules
//! apply to this crate, and a worker thread that panics mid-barrier would
//! strand every peer blocked on the shard condvar. All validation happens
//! *before* a push touches any shard's barrier state, so an `Err` return
//! leaves the synchronisation protocol exactly as it found it.

use crate::error::PsError;
use embrace_tensor::{coalesce, row_partition, DenseTensor, RowRange, RowSparse};
use parking_lot::{Condvar, Mutex};

struct ShardState {
    /// Parameter rows `range.start..range.end` of the global table.
    table: DenseTensor,
    /// Sum of gradients pushed this step (global row ids).
    pending: Vec<RowSparse>,
    /// Number of workers that have pushed this step.
    pushes: usize,
    /// Monotone step counter, bumped when an update is applied.
    step: u64,
}

struct Shard {
    range: RowRange,
    state: Mutex<ShardState>,
    cv: Condvar,
}

/// A row-sharded parameter server for one embedding table.
///
/// All methods take `&self`; shards are independently locked so pushes to
/// different shards proceed in parallel.
pub struct ShardedStore {
    vocab: usize,
    dim: usize,
    world: usize,
    shards: Vec<Shard>,
}

impl ShardedStore {
    /// Create a store holding `init` (a `vocab × dim` table) split across
    /// `shards` row shards, serving `world` synchronous workers.
    pub fn new(init: DenseTensor, shards: usize, world: usize) -> Self {
        assert!(shards > 0 && world > 0);
        let vocab = init.rows();
        let dim = init.cols();
        let ranges = row_partition(vocab, shards);
        let shards = ranges
            .into_iter()
            .map(|range| {
                let rows: Vec<u32> = (range.start as u32..range.end as u32).collect();
                Shard {
                    range,
                    state: Mutex::new(ShardState {
                        table: init.gather_rows(&rows),
                        pending: Vec::new(),
                        pushes: 0,
                        step: 0,
                    }),
                    cv: Condvar::new(),
                }
            })
            .collect();
        ShardedStore { vocab, dim, world, shards }
    }

    pub fn vocab(&self) -> usize {
        self.vocab
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, row: u32) -> Result<usize, PsError> {
        self.shards
            .iter()
            .position(|s| s.range.contains(row))
            .ok_or(PsError::RowOutOfRange { row, vocab: self.vocab })
    }

    /// Fetch the current values of `rows` (global ids, any order, duplicates
    /// allowed) — the per-step parameter pull. A row outside the table is a
    /// typed error and no partial result.
    pub fn pull_rows(&self, rows: &[u32]) -> Result<DenseTensor, PsError> {
        let mut out = DenseTensor::zeros(rows.len(), self.dim);
        for (i, &row) in rows.iter().enumerate() {
            let shard = &self.shards[self.shard_of(row)?];
            let st = shard.state.lock();
            let local = row as usize - shard.range.start;
            out.row_mut(i).copy_from_slice(st.table.row(local));
        }
        Ok(out)
    }

    /// Push this worker's sparse gradient for the step and block until the
    /// step's summed update (SGD with rate `lr`) has been applied by the
    /// last pusher. Every worker must push exactly once per step.
    ///
    /// A malformed gradient (wrong width, out-of-range row) fails *before*
    /// the worker enters any shard's barrier, so an `Err` never strands the
    /// other workers of the step.
    pub fn push_sparse(&self, grad: &RowSparse, lr: f32) -> Result<(), PsError> {
        if grad.dim() != self.dim {
            return Err(PsError::DimMismatch { expected: self.dim, got: grad.dim() });
        }
        // Split the gradient by owning shard, then run the sync protocol
        // independently per shard (empty pushes still participate so the
        // barrier count reaches `world` on every shard). Validation — the
        // only fallible part — completes here, before any barrier state
        // moves.
        let mut per_shard: Vec<(Vec<u32>, Vec<u32>)> =
            vec![(Vec::new(), Vec::new()); self.shards.len()];
        for (pos, &row) in grad.indices().iter().enumerate() {
            let s = self.shard_of(row)?;
            per_shard[s].0.push(pos as u32);
            per_shard[s].1.push(row);
        }
        for (sidx, (positions, rows)) in per_shard.into_iter().enumerate() {
            let shard = &self.shards[sidx];
            let part = if positions.is_empty() {
                RowSparse::empty(self.dim)
            } else {
                RowSparse::new(rows, grad.values().gather_rows(&positions))
            };
            let mut st = shard.state.lock();
            let my_step = st.step;
            if !part.is_empty() {
                st.pending.push(part);
            }
            st.pushes += 1;
            if st.pushes == self.world {
                // Last pusher applies the update.
                let pending = std::mem::take(&mut st.pending);
                if !pending.is_empty() {
                    let summed = coalesce(&RowSparse::concat(&pending));
                    let start = shard.range.start;
                    for (i, &row) in summed.indices().iter().enumerate() {
                        let dst = st.table.row_mut(row as usize - start);
                        for (d, g) in dst.iter_mut().zip(summed.values().row(i)) {
                            *d -= lr * g;
                        }
                    }
                }
                st.pushes = 0;
                st.step += 1;
                shard.cv.notify_all();
            } else {
                shard.cv.wait_while(&mut st, |st| st.step == my_step);
            }
        }
        Ok(())
    }

    /// Snapshot the full table (test/inspection helper).
    pub fn snapshot(&self) -> DenseTensor {
        let blocks: Vec<DenseTensor> =
            self.shards.iter().map(|s| s.state.lock().table.clone()).collect();
        DenseTensor::concat_rows(&blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn arange_table(vocab: usize, dim: usize) -> DenseTensor {
        DenseTensor::from_vec(vocab, dim, (0..vocab * dim).map(|x| x as f32).collect())
    }

    #[test]
    fn pull_returns_requested_rows() {
        let store = ShardedStore::new(arange_table(10, 2), 3, 1);
        let got = store.pull_rows(&[9, 0, 9]).expect("rows in range");
        assert_eq!(got.row(0), &[18.0, 19.0]);
        assert_eq!(got.row(1), &[0.0, 1.0]);
        assert_eq!(got.row(2), &[18.0, 19.0]);
    }

    #[test]
    fn pull_of_empty_batch_is_empty() {
        let store = ShardedStore::new(arange_table(10, 2), 3, 1);
        let got = store.pull_rows(&[]).expect("empty batch is fine");
        assert_eq!((got.rows(), got.cols()), (0, 2));
    }

    #[test]
    fn pull_out_of_range_is_typed() {
        let store = ShardedStore::new(arange_table(10, 2), 3, 1);
        assert_eq!(store.pull_rows(&[0, 10]), Err(PsError::RowOutOfRange { row: 10, vocab: 10 }));
    }

    #[test]
    fn single_worker_push_applies_sgd() {
        let store = ShardedStore::new(DenseTensor::zeros(4, 2), 2, 1);
        let g = RowSparse::new(vec![1, 3], DenseTensor::full(2, 2, 1.0));
        store.push_sparse(&g, 0.5).expect("valid gradient");
        let snap = store.snapshot();
        assert_eq!(snap.row(1), &[-0.5, -0.5]);
        assert_eq!(snap.row(3), &[-0.5, -0.5]);
        assert_eq!(snap.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn synchronous_push_sums_across_workers() {
        let world = 4;
        let store = Arc::new(ShardedStore::new(DenseTensor::zeros(8, 1), 3, world));
        thread::scope(|s| {
            for w in 0..world {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    // All workers touch row 2; worker w also touches row w+3.
                    let g = RowSparse::new(
                        vec![2, (w + 3) as u32],
                        DenseTensor::from_vec(2, 1, vec![1.0, 10.0]),
                    );
                    store.push_sparse(&g, 1.0).expect("valid gradient");
                });
            }
        });
        let snap = store.snapshot();
        assert_eq!(snap.row(2), &[-4.0]); // summed over 4 workers
        for w in 0..world {
            assert_eq!(snap.row(w + 3), &[-10.0]);
        }
    }

    #[test]
    fn multiple_steps_advance() {
        let store = Arc::new(ShardedStore::new(DenseTensor::zeros(2, 1), 1, 2));
        thread::scope(|s| {
            for _ in 0..2 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for _ in 0..5 {
                        let g = RowSparse::new(vec![0], DenseTensor::full(1, 1, 1.0));
                        store.push_sparse(&g, 1.0).expect("valid gradient");
                    }
                });
            }
        });
        assert_eq!(store.snapshot().row(0), &[-10.0]);
    }

    #[test]
    fn empty_gradient_still_synchronises() {
        let store = Arc::new(ShardedStore::new(DenseTensor::zeros(4, 1), 2, 2));
        thread::scope(|s| {
            {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    store.push_sparse(&RowSparse::empty(1), 1.0).expect("empty push is fine");
                });
            }
            {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let g = RowSparse::new(vec![0], DenseTensor::full(1, 1, 2.0));
                    store.push_sparse(&g, 1.0).expect("valid gradient");
                });
            }
        });
        assert_eq!(store.snapshot().row(0), &[-2.0]);
    }

    #[test]
    fn duplicate_rows_in_push_are_coalesced() {
        let store = ShardedStore::new(DenseTensor::zeros(4, 1), 1, 1);
        let g = RowSparse::new(vec![1, 1], DenseTensor::from_vec(2, 1, vec![1.0, 2.0]));
        store.push_sparse(&g, 1.0).expect("valid gradient");
        assert_eq!(store.snapshot().row(1), &[-3.0]);
    }

    #[test]
    fn wrong_dim_push_is_typed() {
        let store = ShardedStore::new(DenseTensor::zeros(4, 2), 1, 1);
        let err = store.push_sparse(&RowSparse::new(vec![0], DenseTensor::zeros(1, 3)), 1.0);
        assert_eq!(err, Err(PsError::DimMismatch { expected: 2, got: 3 }));
    }

    #[test]
    fn out_of_range_push_fails_before_the_barrier() {
        // world = 2 but only one worker pushes (a bad gradient): the error
        // must surface without touching any shard barrier, so a later
        // valid two-worker step still completes.
        let store = Arc::new(ShardedStore::new(DenseTensor::zeros(4, 1), 2, 2));
        let bad = RowSparse::new(vec![9], DenseTensor::full(1, 1, 1.0));
        assert_eq!(store.push_sparse(&bad, 1.0), Err(PsError::RowOutOfRange { row: 9, vocab: 4 }));
        thread::scope(|s| {
            for _ in 0..2 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let g = RowSparse::new(vec![0], DenseTensor::full(1, 1, 1.0));
                    store.push_sparse(&g, 1.0).expect("valid gradient");
                });
            }
        });
        assert_eq!(store.snapshot().row(0), &[-2.0]);
    }
}
