//! The sharded synchronous parameter store.
//!
//! Parameters of one table (`vocab × dim`) are **row-partitioned** across
//! `shards` server shards (Parallax partitions its sparse PS this way; the
//! paper contrasts this with EmbRace's column-wise partitioning in §4.1.1).
//! Workers `pull` the rows they need and `push` sparse gradients; a push
//! blocks until all `world` workers of the step have pushed, then one
//! worker applies the summed update — synchronous data-parallel semantics.

use embrace_tensor::{coalesce, row_partition, DenseTensor, RowRange, RowSparse};
use parking_lot::{Condvar, Mutex};

struct ShardState {
    /// Parameter rows `range.start..range.end` of the global table.
    table: DenseTensor,
    /// Sum of gradients pushed this step (global row ids).
    pending: Vec<RowSparse>,
    /// Number of workers that have pushed this step.
    pushes: usize,
    /// Monotone step counter, bumped when an update is applied.
    step: u64,
}

struct Shard {
    range: RowRange,
    state: Mutex<ShardState>,
    cv: Condvar,
}

/// A row-sharded parameter server for one embedding table.
///
/// All methods take `&self`; shards are independently locked so pushes to
/// different shards proceed in parallel.
pub struct ShardedStore {
    vocab: usize,
    dim: usize,
    world: usize,
    shards: Vec<Shard>,
}

impl ShardedStore {
    /// Create a store holding `init` (a `vocab × dim` table) split across
    /// `shards` row shards, serving `world` synchronous workers.
    pub fn new(init: DenseTensor, shards: usize, world: usize) -> Self {
        assert!(shards > 0 && world > 0);
        let vocab = init.rows();
        let dim = init.cols();
        let ranges = row_partition(vocab, shards);
        let shards = ranges
            .into_iter()
            .map(|range| {
                let rows: Vec<u32> = (range.start as u32..range.end as u32).collect();
                Shard {
                    range,
                    state: Mutex::new(ShardState {
                        table: init.gather_rows(&rows),
                        pending: Vec::new(),
                        pushes: 0,
                        step: 0,
                    }),
                    cv: Condvar::new(),
                }
            })
            .collect();
        ShardedStore { vocab, dim, world, shards }
    }

    pub fn vocab(&self) -> usize {
        self.vocab
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, row: u32) -> usize {
        self.shards
            .iter()
            .position(|s| s.range.contains(row))
            .unwrap_or_else(|| panic!("row {row} outside table of {} rows", self.vocab))
    }

    /// Fetch the current values of `rows` (global ids, any order, duplicates
    /// allowed) — the per-step parameter pull.
    pub fn pull_rows(&self, rows: &[u32]) -> DenseTensor {
        let mut out = DenseTensor::zeros(rows.len(), self.dim);
        for (i, &row) in rows.iter().enumerate() {
            let shard = &self.shards[self.shard_of(row)];
            let st = shard.state.lock();
            let local = row as usize - shard.range.start;
            out.row_mut(i).copy_from_slice(st.table.row(local));
        }
        out
    }

    /// Push this worker's sparse gradient for the step and block until the
    /// step's summed update (SGD with rate `lr`) has been applied by the
    /// last pusher. Every worker must push exactly once per step.
    pub fn push_sparse(&self, grad: &RowSparse, lr: f32) {
        assert_eq!(grad.dim(), self.dim, "gradient dim mismatch");
        // Split the gradient by owning shard, then run the sync protocol
        // independently per shard (empty pushes still participate so the
        // barrier count reaches `world` on every shard).
        let mut per_shard: Vec<(Vec<u32>, Vec<u32>)> =
            vec![(Vec::new(), Vec::new()); self.shards.len()];
        for (pos, &row) in grad.indices().iter().enumerate() {
            let s = self.shard_of(row);
            per_shard[s].0.push(pos as u32);
            per_shard[s].1.push(row);
        }
        for (sidx, (positions, rows)) in per_shard.into_iter().enumerate() {
            let shard = &self.shards[sidx];
            let part = if positions.is_empty() {
                RowSparse::empty(self.dim)
            } else {
                RowSparse::new(rows, grad.values().gather_rows(&positions))
            };
            let mut st = shard.state.lock();
            let my_step = st.step;
            if !part.is_empty() {
                st.pending.push(part);
            }
            st.pushes += 1;
            if st.pushes == self.world {
                // Last pusher applies the update.
                let pending = std::mem::take(&mut st.pending);
                if !pending.is_empty() {
                    let summed = coalesce(&RowSparse::concat(&pending));
                    let start = shard.range.start;
                    for (i, &row) in summed.indices().iter().enumerate() {
                        let dst = st.table.row_mut(row as usize - start);
                        for (d, g) in dst.iter_mut().zip(summed.values().row(i)) {
                            *d -= lr * g;
                        }
                    }
                }
                st.pushes = 0;
                st.step += 1;
                shard.cv.notify_all();
            } else {
                shard.cv.wait_while(&mut st, |st| st.step == my_step);
            }
        }
    }

    /// Snapshot the full table (test/inspection helper).
    pub fn snapshot(&self) -> DenseTensor {
        let blocks: Vec<DenseTensor> =
            self.shards.iter().map(|s| s.state.lock().table.clone()).collect();
        DenseTensor::concat_rows(&blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn arange_table(vocab: usize, dim: usize) -> DenseTensor {
        DenseTensor::from_vec(vocab, dim, (0..vocab * dim).map(|x| x as f32).collect())
    }

    #[test]
    fn pull_returns_requested_rows() {
        let store = ShardedStore::new(arange_table(10, 2), 3, 1);
        let got = store.pull_rows(&[9, 0, 9]);
        assert_eq!(got.row(0), &[18.0, 19.0]);
        assert_eq!(got.row(1), &[0.0, 1.0]);
        assert_eq!(got.row(2), &[18.0, 19.0]);
    }

    #[test]
    fn single_worker_push_applies_sgd() {
        let store = ShardedStore::new(DenseTensor::zeros(4, 2), 2, 1);
        let g = RowSparse::new(vec![1, 3], DenseTensor::full(2, 2, 1.0));
        store.push_sparse(&g, 0.5);
        let snap = store.snapshot();
        assert_eq!(snap.row(1), &[-0.5, -0.5]);
        assert_eq!(snap.row(3), &[-0.5, -0.5]);
        assert_eq!(snap.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn synchronous_push_sums_across_workers() {
        let world = 4;
        let store = Arc::new(ShardedStore::new(DenseTensor::zeros(8, 1), 3, world));
        thread::scope(|s| {
            for w in 0..world {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    // All workers touch row 2; worker w also touches row w+3.
                    let g = RowSparse::new(
                        vec![2, (w + 3) as u32],
                        DenseTensor::from_vec(2, 1, vec![1.0, 10.0]),
                    );
                    store.push_sparse(&g, 1.0);
                });
            }
        });
        let snap = store.snapshot();
        assert_eq!(snap.row(2), &[-4.0]); // summed over 4 workers
        for w in 0..world {
            assert_eq!(snap.row(w + 3), &[-10.0]);
        }
    }

    #[test]
    fn multiple_steps_advance() {
        let store = Arc::new(ShardedStore::new(DenseTensor::zeros(2, 1), 1, 2));
        thread::scope(|s| {
            for _ in 0..2 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for _ in 0..5 {
                        let g = RowSparse::new(vec![0], DenseTensor::full(1, 1, 1.0));
                        store.push_sparse(&g, 1.0);
                    }
                });
            }
        });
        assert_eq!(store.snapshot().row(0), &[-10.0]);
    }

    #[test]
    fn empty_gradient_still_synchronises() {
        let store = Arc::new(ShardedStore::new(DenseTensor::zeros(4, 1), 2, 2));
        thread::scope(|s| {
            {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    store.push_sparse(&RowSparse::empty(1), 1.0);
                });
            }
            {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let g = RowSparse::new(vec![0], DenseTensor::full(1, 1, 2.0));
                    store.push_sparse(&g, 1.0);
                });
            }
        });
        assert_eq!(store.snapshot().row(0), &[-2.0]);
    }

    #[test]
    fn duplicate_rows_in_push_are_coalesced() {
        let store = ShardedStore::new(DenseTensor::zeros(4, 1), 1, 1);
        let g = RowSparse::new(vec![1, 1], DenseTensor::from_vec(2, 1, vec![1.0, 2.0]));
        store.push_sparse(&g, 1.0);
        assert_eq!(store.snapshot().row(1), &[-3.0]);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn wrong_dim_push_panics() {
        let store = ShardedStore::new(DenseTensor::zeros(4, 2), 1, 1);
        store.push_sparse(&RowSparse::new(vec![0], DenseTensor::zeros(1, 3)), 1.0);
    }
}
