//! Sparse per-row optimizers colocated with the shard.
//!
//! The optimizer state (Adagrad accumulator, momentum velocity) lives next
//! to the parameter rows it updates — DGL's `DistSparseGradOptimizer`
//! layout — so a push only moves the gradient, never the state. Updates
//! are element-wise over exactly the rows a push touched; the arithmetic
//! matches `embrace-dlsim`'s dense optimizers step-for-step so a sharded
//! service and a single-shard oracle stay bitwise interchangeable.

use embrace_tensor::DenseTensor;

/// Which update rule a [`RowOptimizer`] applies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OptimizerKind {
    /// Plain SGD: `p -= lr * g`.
    Sgd { lr: f32 },
    /// SGD with momentum: `v = m*v + g; p -= lr * v`.
    Momentum { lr: f32, momentum: f32 },
    /// Adagrad: `a += g²; p -= lr * g / (sqrt(a) + eps)` with `eps = 1e-10`
    /// (the same constant `embrace-dlsim`'s Adagrad uses).
    Adagrad { lr: f32 },
}

/// Per-row optimizer state for one shard of `rows × dim` parameters.
pub struct RowOptimizer {
    kind: OptimizerKind,
    /// Adagrad accumulator or momentum velocity (`rows × dim`); empty
    /// (0 × dim) for stateless SGD.
    state: DenseTensor,
}

const ADAGRAD_EPS: f32 = 1e-10;

impl RowOptimizer {
    /// Fresh (zero) state for a shard of `rows` rows of width `dim`.
    pub fn new(kind: OptimizerKind, rows: usize, dim: usize) -> Self {
        let state = match kind {
            OptimizerKind::Sgd { .. } => DenseTensor::zeros(0, dim),
            OptimizerKind::Momentum { .. } | OptimizerKind::Adagrad { .. } => {
                DenseTensor::zeros(rows, dim)
            }
        };
        RowOptimizer { kind, state }
    }

    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// Apply one gradient row `grad` to the parameter row `params`, using
    /// (and updating) the state of local row `local`.
    pub fn update_row(&mut self, local: usize, params: &mut [f32], grad: &[f32]) {
        debug_assert_eq!(params.len(), grad.len());
        match self.kind {
            OptimizerKind::Sgd { lr } => {
                for (p, &g) in params.iter_mut().zip(grad) {
                    *p -= lr * g;
                }
            }
            OptimizerKind::Momentum { lr, momentum } => {
                let v = self.state.row_mut(local);
                for ((p, v), &g) in params.iter_mut().zip(v).zip(grad) {
                    *v = momentum * *v + g;
                    *p -= lr * *v;
                }
            }
            OptimizerKind::Adagrad { lr } => {
                let a = self.state.row_mut(local);
                for ((p, a), &g) in params.iter_mut().zip(a).zip(grad) {
                    *a += g * g;
                    *p -= lr * g / (a.sqrt() + ADAGRAD_EPS);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_is_stateless_scaling() {
        let mut opt = RowOptimizer::new(OptimizerKind::Sgd { lr: 0.5 }, 2, 2);
        let mut p = vec![1.0, 2.0];
        opt.update_row(0, &mut p, &[2.0, 4.0]);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = RowOptimizer::new(OptimizerKind::Momentum { lr: 1.0, momentum: 0.5 }, 1, 1);
        let mut p = vec![0.0];
        opt.update_row(0, &mut p, &[1.0]); // v = 1,   p = -1
        opt.update_row(0, &mut p, &[1.0]); // v = 1.5, p = -2.5
        assert_eq!(p, vec![-2.5]);
    }

    #[test]
    fn adagrad_matches_dlsim_math() {
        let lr = 0.1f32;
        let g = 2.0f32;
        let mut opt = RowOptimizer::new(OptimizerKind::Adagrad { lr }, 1, 1);
        let mut p = vec![0.0f32];
        opt.update_row(0, &mut p, &[g]);
        let a = g * g;
        assert_eq!(p[0], -(lr * g / (a.sqrt() + ADAGRAD_EPS)));
    }

    #[test]
    fn rows_have_independent_state() {
        let mut opt = RowOptimizer::new(OptimizerKind::Adagrad { lr: 1.0 }, 2, 1);
        let mut p0 = vec![0.0];
        let mut p1 = vec![0.0];
        opt.update_row(0, &mut p0, &[3.0]);
        opt.update_row(1, &mut p1, &[3.0]);
        assert_eq!(p0, p1, "first step identical on fresh state");
        opt.update_row(0, &mut p0, &[3.0]);
        assert_ne!(p0, p1, "second step sees row 0's accumulator only");
    }
}
