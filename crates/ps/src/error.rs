//! Typed failure surface of the parameter-server crate.
//!
//! Every serving-path operation returns `Result<_, PsError>`: bad inputs
//! (rows outside the table, mismatched gradient width) and communication
//! failures are data, not panics — the same contract the collectives layer
//! follows with [`CommError`]. The only panics left in the crate are
//! construction-time `assert!`s on impossible configurations.

use embrace_collectives::CommError;
use std::fmt;

/// Why a parameter-server operation could not complete.
#[derive(Clone, Debug, PartialEq)]
pub enum PsError {
    /// A requested or pushed row id addresses past the end of the table.
    RowOutOfRange {
        /// The offending global row id.
        row: u32,
        /// The table's row count; valid ids are `0..vocab`.
        vocab: usize,
    },
    /// A gradient or update carried the wrong embedding width.
    DimMismatch {
        /// The table's column count.
        expected: usize,
        /// The width the caller supplied.
        got: usize,
    },
    /// A peer asked this shard for a row it does not own — the partition
    /// books of the group disagree (a deployment bug, not a data race).
    WrongShard {
        /// The row a peer requested here.
        row: u32,
        /// The shard that actually owns it under this rank's book.
        owner: usize,
        /// This rank's shard id.
        shard: usize,
    },
    /// The underlying collective failed; the group is poisoned and must
    /// be rebuilt before further serving traffic (see `embrace-collectives`'
    /// abort-broadcast contract).
    Comm(CommError),
}

impl fmt::Display for PsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsError::RowOutOfRange { row, vocab } => {
                write!(f, "row {row} outside table of {vocab} rows")
            }
            PsError::DimMismatch { expected, got } => {
                write!(f, "embedding dim mismatch: table has {expected} columns, caller sent {got}")
            }
            PsError::WrongShard { row, owner, shard } => {
                write!(f, "row {row} belongs to shard {owner}, not this shard {shard}")
            }
            PsError::Comm(e) => write!(f, "communication failure: {e}"),
        }
    }
}

impl std::error::Error for PsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PsError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CommError> for PsError {
    fn from(e: CommError) -> Self {
        PsError::Comm(e)
    }
}
