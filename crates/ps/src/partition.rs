//! The partition book: which shard owns which embedding row.
//!
//! Two placement policies, both O(1) per row with no per-row table:
//!
//! * **Range** — contiguous row blocks, the layout `row_partition` gives the
//!   training-side store (Parallax-style). Pull/push batches for a range of
//!   ids touch one shard, but a Zipf-skewed id stream (DLRM inference; the
//!   paper's Fig. 2 skew) lands its entire hot head on shard 0.
//! * **Hash** — cyclic placement (`owner = row mod shards`). Consecutive hot
//!   rows spread round-robin across all shards, so skewed serving traffic
//!   load-balances at the cost of splitting every batch across shards.
//!
//! Both policies are deterministic pure functions of `(vocab, shards)`, so
//! every rank of an SPMD group derives an identical book with no exchange.

use crate::error::PsError;
use embrace_tensor::{row_partition, RowRange};

/// Row-to-shard placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Contiguous row ranges, shard `s` owning `ranges[s]` of
    /// `row_partition(vocab, shards)`.
    Range,
    /// Cyclic placement: shard `s` owns rows `{ r | r ≡ s (mod shards) }`.
    Hash,
}

/// Maps global row ids to `(shard, local index)` and back.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionBook {
    policy: PartitionPolicy,
    vocab: usize,
    shards: usize,
    /// Range bounds (only used by the `Range` policy; empty for `Hash`).
    ranges: Vec<RowRange>,
}

impl PartitionBook {
    /// Build the book for a `vocab`-row table split across `shards` shards.
    pub fn new(policy: PartitionPolicy, vocab: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(u32::try_from(vocab).is_ok(), "vocab must fit in u32");
        let ranges = match policy {
            PartitionPolicy::Range => row_partition(vocab, shards),
            PartitionPolicy::Hash => Vec::new(),
        };
        PartitionBook { policy, vocab, shards, ranges }
    }

    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }

    pub fn vocab(&self) -> usize {
        self.vocab
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning global row `row`.
    pub fn owner_of(&self, row: u32) -> Result<usize, PsError> {
        if row as usize >= self.vocab {
            return Err(PsError::RowOutOfRange { row, vocab: self.vocab });
        }
        Ok(match self.policy {
            PartitionPolicy::Range => {
                // row_partition gives the first `vocab % shards` ranges one
                // extra row; invert that arithmetic instead of searching.
                let base = self.vocab / self.shards;
                let extra = self.vocab % self.shards;
                let boundary = extra * (base + 1);
                let r = row as usize;
                if r < boundary {
                    r / (base + 1)
                } else {
                    extra + (r - boundary) / base
                }
            }
            PartitionPolicy::Hash => row as usize % self.shards,
        })
    }

    /// Position of `row` inside its owning shard's local table. The caller
    /// must have validated `row` (e.g. via [`PartitionBook::owner_of`]).
    pub fn local_index(&self, row: u32) -> usize {
        debug_assert!((row as usize) < self.vocab);
        match self.policy {
            PartitionPolicy::Range => {
                let owner = self.owner_of(row).expect("caller validated the row");
                row as usize - self.ranges[owner].start
            }
            PartitionPolicy::Hash => row as usize / self.shards,
        }
    }

    /// Number of rows shard `shard` owns.
    pub fn shard_rows(&self, shard: usize) -> usize {
        assert!(shard < self.shards, "shard {shard} out of {}", self.shards);
        match self.policy {
            PartitionPolicy::Range => self.ranges[shard].len(),
            PartitionPolicy::Hash => (self.vocab + self.shards - 1 - shard) / self.shards,
        }
    }

    /// The global row id stored at `local` inside shard `shard` — the
    /// inverse of ([`PartitionBook::owner_of`], [`PartitionBook::local_index`]).
    pub fn global_of(&self, shard: usize, local: usize) -> u32 {
        assert!(local < self.shard_rows(shard), "local row out of shard");
        match self.policy {
            PartitionPolicy::Range => (self.ranges[shard].start + local) as u32,
            PartitionPolicy::Hash => (local * self.shards + shard) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(policy: PartitionPolicy, vocab: usize, shards: usize) {
        let book = PartitionBook::new(policy, vocab, shards);
        let mut seen = vec![0usize; shards];
        for row in 0..vocab as u32 {
            let owner = book.owner_of(row).expect("in range");
            let local = book.local_index(row);
            assert!(owner < shards);
            assert!(local < book.shard_rows(owner), "{policy:?} row {row}");
            assert_eq!(book.global_of(owner, local), row, "{policy:?} row {row}");
            seen[owner] += 1;
        }
        for (s, &count) in seen.iter().enumerate() {
            assert_eq!(count, book.shard_rows(s), "{policy:?} shard {s} coverage");
        }
        assert_eq!(seen.iter().sum::<usize>(), vocab);
    }

    #[test]
    fn both_policies_partition_exactly() {
        for &vocab in &[1usize, 2, 7, 64, 100, 101] {
            for shards in 1..=8usize.min(vocab) {
                roundtrip(PartitionPolicy::Range, vocab, shards);
                roundtrip(PartitionPolicy::Hash, vocab, shards);
            }
        }
    }

    #[test]
    fn range_matches_row_partition() {
        let book = PartitionBook::new(PartitionPolicy::Range, 10, 3);
        // row_partition(10, 3) = [0..4, 4..7, 7..10]
        assert_eq!(book.owner_of(0), Ok(0));
        assert_eq!(book.owner_of(3), Ok(0));
        assert_eq!(book.owner_of(4), Ok(1));
        assert_eq!(book.owner_of(9), Ok(2));
        assert_eq!(book.local_index(7), 0);
        assert_eq!(book.shard_rows(0), 4);
    }

    #[test]
    fn hash_spreads_consecutive_rows() {
        let book = PartitionBook::new(PartitionPolicy::Hash, 10, 3);
        let owners: Vec<usize> = (0..6u32).map(|r| book.owner_of(r).expect("in range")).collect();
        assert_eq!(owners, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(book.shard_rows(0), 4); // rows 0, 3, 6, 9
        assert_eq!(book.shard_rows(1), 3); // rows 1, 4, 7
    }

    #[test]
    fn out_of_range_row_is_a_typed_error() {
        let book = PartitionBook::new(PartitionPolicy::Range, 10, 3);
        assert_eq!(book.owner_of(10), Err(PsError::RowOutOfRange { row: 10, vocab: 10 }));
        let book = PartitionBook::new(PartitionPolicy::Hash, 10, 3);
        assert_eq!(book.owner_of(99), Err(PsError::RowOutOfRange { row: 99, vocab: 10 }));
    }
}
