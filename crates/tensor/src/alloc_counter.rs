//! Thread-local accounting of tensor-buffer heap allocations.
//!
//! A counting `GlobalAlloc` is off the table (`#![forbid(unsafe_code)]`
//! workspace-wide), so allocation discipline is asserted one level up:
//! every code path in this crate that materialises a fresh `f32`/index
//! buffer — construction, copy-on-write of shared storage, a staging
//! buffer outgrowing its capacity — reports the event here. Collective
//! algorithms that promise steady-state allocation-freedom (the
//! scratch-buffer ring in `embrace-collectives`) are tested against these
//! counters: the per-call delta must be a small constant, independent of
//! world size, step count and payload length.
//!
//! Counters are thread-local on purpose: SPMD workers each run on their
//! own thread, so a rank closure observes exactly its own allocations
//! with no cross-rank (or cross-test) interference.

use std::cell::Cell;

thread_local! {
    static EVENTS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Zero this thread's counters.
pub fn reset() {
    EVENTS.with(|c| c.set(0));
    BYTES.with(|c| c.set(0));
}

/// Buffer-materialisation events on this thread since the last [`reset`].
pub fn events() -> u64 {
    EVENTS.with(Cell::get)
}

/// Bytes materialised on this thread since the last [`reset`].
pub fn bytes() -> u64 {
    BYTES.with(Cell::get)
}

/// Record one buffer materialisation of `nbytes`. Zero-sized buffers are
/// not counted — `Vec` does not touch the heap for them.
pub(crate) fn note(nbytes: usize) {
    if nbytes == 0 {
        return;
    }
    EVENTS.with(|c| c.set(c.get() + 1));
    BYTES.with(|c| c.set(c.get() + nbytes as u64));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_accumulates_and_reset_clears() {
        reset();
        note(16);
        note(0); // zero-sized: ignored
        note(4);
        assert_eq!(events(), 2);
        assert_eq!(bytes(), 20);
        reset();
        assert_eq!(events(), 0);
        assert_eq!(bytes(), 0);
    }
}
