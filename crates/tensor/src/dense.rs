//! Contiguous row-major 2-D `f32` tensors.
//!
//! A deliberately small surface: the reproduction needs construction,
//! element-wise arithmetic, row/column slicing and (de)serialisation into
//! flat buffers, not a full BLAS.

use rand::Rng;
use std::sync::Arc;

/// A dense row-major matrix of `f32`.
///
/// One-dimensional tensors are represented as `rows == 1`. All binary
/// operations panic on shape mismatch — shape errors are programming errors
/// in this codebase, not recoverable conditions.
///
/// # Storage
///
/// The element buffer is `Arc`-shared: [`Clone`] (and its documented alias
/// [`DenseTensor::share`]) is O(1) — it bumps a reference count instead of
/// copying `rows × cols` floats, which is what makes collective fan-out
/// sends cheap. Mutation is copy-on-write: the first mutating call on a
/// tensor whose buffer is shared materialises a private copy (counted by
/// [`crate::alloc_counter`]); an exclusively-owned tensor mutates in place
/// with no allocation, exactly like the plain-`Vec` representation.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseTensor {
    rows: usize,
    cols: usize,
    data: Arc<Vec<f32>>,
}

impl DenseTensor {
    /// Wrap a freshly materialised buffer, recording the allocation.
    fn fresh(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        crate::alloc_counter::note(data.len() * crate::F32_BYTES);
        Self { rows, cols, data: Arc::new(data) }
    }

    /// A `rows × cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::fresh(rows, cols, vec![0.0; rows * cols])
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self::fresh(rows, cols, vec![value; rows * cols])
    }

    /// Build from an existing buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Self { rows, cols, data: Arc::new(data) }
    }

    /// A tensor with entries drawn uniformly from `[-scale, scale]`.
    pub fn uniform<R: Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-scale..=scale)).collect();
        Self::fresh(rows, cols, data)
    }

    /// O(1) handle onto the same storage (an `Arc` bump). Semantically
    /// identical to [`Clone::clone`]; spelled out at collective send sites
    /// so the `payload-clone` lint can tell cheap sharing from deep copies.
    pub fn share(&self) -> Self {
        Self { rows: self.rows, cols: self.cols, data: Arc::clone(&self.data) }
    }

    /// True when other handles alias this buffer — the next mutating call
    /// will copy-on-write instead of mutating in place.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }

    /// Exclusive access to the element buffer, copy-on-write when shared.
    fn data_mut(&mut self) -> &mut Vec<f32> {
        if self.is_shared() {
            crate::alloc_counter::note(self.data.len() * crate::F32_BYTES);
        }
        Arc::make_mut(&mut self.data)
    }

    /// Reuse this tensor as a 1 × `src.len()` staging row, copying `src`
    /// into the existing buffer. Allocation-free when the storage is
    /// exclusively owned and its capacity suffices — the ring-allreduce
    /// steady state, where one staging buffer circulates for the whole
    /// 2·(N−1)-step schedule.
    pub fn stage_row(&mut self, src: &[f32]) {
        self.rows = 1;
        self.cols = src.len();
        let v = self.data_mut();
        if v.capacity() < src.len() {
            crate::alloc_counter::note(src.len() * crate::F32_BYTES);
        }
        v.clear();
        v.extend_from_slice(src);
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes when stored (or transmitted) densely.
    pub fn nbytes(&self) -> usize {
        self.len() * crate::F32_BYTES
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data_mut()
    }

    /// Take the buffer out. Free when this handle is the only owner;
    /// copies (and counts the allocation) when the storage is shared.
    pub fn into_vec(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| {
            crate::alloc_counter::note(shared.len() * crate::F32_BYTES);
            (*shared).clone()
        })
    }

    /// Borrow row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        let cols = self.cols;
        &mut self.data_mut()[r * cols..(r + 1) * cols]
    }

    /// `self += other`, element-wise.
    pub fn add_assign(&mut self, other: &DenseTensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch in add");
        crate::kernels::add_assign(self.data_mut(), &other.data);
    }

    /// `self += alpha * other`, element-wise (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &DenseTensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch in axpy");
        crate::kernels::scaled_add(self.data_mut(), alpha, &other.data);
    }

    /// `self *= alpha`, element-wise.
    pub fn scale(&mut self, alpha: f32) {
        crate::kernels::scale(self.data_mut(), alpha);
    }

    /// Set every element to zero without reallocating (unless shared, in
    /// which case copy-on-write materialises a private buffer first).
    pub fn fill_zero(&mut self) {
        self.data_mut().fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Copy the rows given by `indices` (in order) into a new tensor.
    pub fn gather_rows(&self, indices: &[u32]) -> DenseTensor {
        let mut out = DenseTensor::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src as usize));
        }
        out
    }

    /// Copy a half-open row range `[start, end)` into a new tensor — the
    /// row-split primitive the sparse-native allreduce uses to halve a
    /// densified segment at each recursive-halving step.
    pub fn slice_rows(&self, start: usize, end: usize) -> DenseTensor {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        let mut out = DenseTensor::zeros(end - start, self.cols);
        out.as_mut_slice().copy_from_slice(&self.data[start * self.cols..end * self.cols]);
        out
    }

    /// Copy a half-open column range `[start, end)` of every row.
    pub fn slice_columns(&self, start: usize, end: usize) -> DenseTensor {
        assert!(start <= end && end <= self.cols, "column range out of bounds");
        let width = end - start;
        let mut out = DenseTensor::zeros(self.rows, width);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Write `block` into the column range starting at `start` of every row.
    pub fn set_columns(&mut self, start: usize, block: &DenseTensor) {
        assert_eq!(self.rows, block.rows, "row count mismatch in set_columns");
        assert!(start + block.cols <= self.cols, "column range out of bounds");
        for r in 0..self.rows {
            self.row_mut(r)[start..start + block.cols].copy_from_slice(block.row(r));
        }
    }

    /// Horizontally concatenate column blocks with identical row counts.
    pub fn concat_columns(blocks: &[DenseTensor]) -> DenseTensor {
        assert!(!blocks.is_empty(), "cannot concatenate zero blocks");
        let rows = blocks[0].rows;
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let mut out = DenseTensor::zeros(rows, cols);
        let mut offset = 0;
        for b in blocks {
            assert_eq!(b.rows, rows, "row count mismatch in concat_columns");
            out.set_columns(offset, b);
            offset += b.cols;
        }
        out
    }

    /// Vertically concatenate row blocks with identical column counts.
    pub fn concat_rows(blocks: &[DenseTensor]) -> DenseTensor {
        assert!(!blocks.is_empty(), "cannot concatenate zero blocks");
        let cols = blocks[0].cols;
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            assert_eq!(b.cols, cols, "column count mismatch in concat_rows");
            data.extend_from_slice(&b.data);
        }
        DenseTensor::fresh(rows, cols, data)
    }

    /// Maximum absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &DenseTensor) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).fold(0.0_f32, f32::max)
    }

    /// True when all elements differ from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &DenseTensor, tol: f32) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols) && self.max_abs_diff(other) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn zeros_shape_and_bytes() {
        let t = DenseTensor::zeros(3, 5);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 5);
        assert_eq!(t.len(), 15);
        assert_eq!(t.nbytes(), 60);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn full_and_sum() {
        let t = DenseTensor::full(2, 4, 0.5);
        assert_eq!(t.sum(), 4.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = DenseTensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
        assert_eq!(t.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_bad_len_panics() {
        let _ = DenseTensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn add_and_axpy_and_scale() {
        let mut a = DenseTensor::full(1, 3, 1.0);
        let b = DenseTensor::full(1, 3, 2.0);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[3.0, 3.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[4.0, 4.0, 4.0]);
        a.scale(0.25);
        assert_eq!(a.as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let mut a = DenseTensor::zeros(1, 3);
        let b = DenseTensor::zeros(3, 1);
        a.add_assign(&b);
    }

    #[test]
    fn gather_rows_selects_in_order() {
        let t = DenseTensor::from_vec(3, 2, vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        let g = t.gather_rows(&[2, 0, 2]);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), &[20.0, 21.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
        assert_eq!(g.row(2), &[20.0, 21.0]);
    }

    #[test]
    fn column_slice_and_set_roundtrip() {
        let t = DenseTensor::from_vec(2, 4, (0..8).map(|x| x as f32).collect());
        let s = t.slice_columns(1, 3);
        assert_eq!(s.row(0), &[1.0, 2.0]);
        assert_eq!(s.row(1), &[5.0, 6.0]);
        let mut u = DenseTensor::zeros(2, 4);
        u.set_columns(1, &s);
        assert_eq!(u.row(0), &[0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn concat_columns_reassembles_slices() {
        let t = DenseTensor::from_vec(2, 4, (0..8).map(|x| x as f32).collect());
        let parts = [t.slice_columns(0, 1), t.slice_columns(1, 3), t.slice_columns(3, 4)];
        assert_eq!(DenseTensor::concat_columns(&parts), t);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = DenseTensor::from_vec(1, 2, vec![1.0, 2.0]);
        let b = DenseTensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = DenseTensor::concat_rows(&[a, b]);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn uniform_respects_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = DenseTensor::uniform(8, 8, 0.1, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-0.1..=0.1).contains(&x)));
    }

    #[test]
    fn share_is_aliased_until_first_write() {
        let a = DenseTensor::full(2, 2, 1.0);
        assert!(!a.is_shared());
        let mut b = a.share();
        assert!(a.is_shared() && b.is_shared());
        assert_eq!(a, b);
        // First write copies; the original is untouched.
        b.as_mut_slice()[0] = 9.0;
        assert!(!a.is_shared() && !b.is_shared());
        assert_eq!(a.as_slice()[0], 1.0);
        assert_eq!(b.as_slice()[0], 9.0);
    }

    #[test]
    fn clone_and_share_are_equivalent() {
        let a = DenseTensor::full(1, 3, 2.0);
        let c = a.clone();
        assert!(a.is_shared() && c.is_shared());
        assert_eq!(a, c);
    }

    #[test]
    fn into_vec_is_free_when_unique_and_copies_when_shared() {
        let a = DenseTensor::from_vec(1, 2, vec![1.0, 2.0]);
        assert_eq!(a.into_vec(), vec![1.0, 2.0]);
        let b = DenseTensor::from_vec(1, 2, vec![3.0, 4.0]);
        let keep = b.share();
        assert_eq!(b.into_vec(), vec![3.0, 4.0]);
        assert_eq!(keep.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn stage_row_reuses_capacity_without_allocating() {
        let mut scratch = DenseTensor::zeros(1, 8);
        crate::alloc_counter::reset();
        for k in 0..10 {
            let src: Vec<f32> = (0..8 - k % 3).map(|x| x as f32).collect();
            scratch.stage_row(&src);
            assert_eq!(scratch.rows(), 1);
            assert_eq!(scratch.cols(), src.len());
            assert_eq!(scratch.as_slice(), &src[..]);
        }
        assert_eq!(crate::alloc_counter::events(), 0, "staging must reuse the buffer");
    }

    #[test]
    fn stage_row_on_shared_storage_copies_on_write() {
        let mut scratch = DenseTensor::full(1, 4, 7.0);
        let alias = scratch.share();
        scratch.stage_row(&[1.0, 2.0]);
        assert_eq!(scratch.as_slice(), &[1.0, 2.0]);
        assert_eq!(alias.as_slice(), &[7.0; 4], "aliased handle must be untouched");
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = DenseTensor::full(1, 2, 1.0);
        let mut b = a.clone();
        b.as_mut_slice()[0] = 1.0005;
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-4));
    }
}

impl DenseTensor {
    /// Matrix product `self(n×k) · other(k×m)`.
    pub fn matmul(&self, other: &DenseTensor) -> DenseTensor {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let (n, m) = (self.rows, other.cols);
        let mut out = DenseTensor::zeros(n, m);
        for i in 0..n {
            let ar = self.row(i);
            let or = out.row_mut(i);
            for (p, &av) in ar.iter().enumerate() {
                let br = other.row(p);
                for (o, &bv) in or.iter_mut().zip(br) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// `selfᵀ(k×n) · other(n×m)` where `self` is `n×k` — the gradient of a
    /// matmul with respect to its right operand.
    pub fn matmul_tn(&self, other: &DenseTensor) -> DenseTensor {
        assert_eq!(self.rows, other.rows, "leading dimensions must agree");
        let (k, m) = (self.cols, other.cols);
        let mut out = DenseTensor::zeros(k, m);
        for i in 0..self.rows {
            let ar = self.row(i);
            let br = other.row(i);
            for (p, &av) in ar.iter().enumerate() {
                let or = out.row_mut(p);
                for (o, &bv) in or.iter_mut().zip(br) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// `self(n×k) · otherᵀ(k×m)` where `other` is `m×k` — the gradient of
    /// a matmul with respect to its left operand.
    pub fn matmul_nt(&self, other: &DenseTensor) -> DenseTensor {
        assert_eq!(self.cols, other.cols, "trailing dimensions must agree");
        let (n, m, k) = (self.rows, other.rows, self.cols);
        let mut out = DenseTensor::zeros(n, m);
        for i in 0..n {
            let ar = self.row(i);
            let or = out.row_mut(i);
            for (j, o) in or.iter_mut().enumerate() {
                let br = other.row(j);
                let mut dot = 0.0;
                for p in 0..k {
                    dot += ar[p] * br[p];
                }
                *o = dot;
            }
        }
        out
    }
}

#[cfg(test)]
mod matmul_tests {
    use super::*;

    fn a() -> DenseTensor {
        DenseTensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.])
    }

    fn b() -> DenseTensor {
        DenseTensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.])
    }

    #[test]
    fn matmul_basic() {
        let c = a().matmul(&b());
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let i = DenseTensor::from_vec(3, 3, vec![1., 0., 0., 0., 1., 0., 0., 0., 1.]);
        assert_eq!(a().matmul(&i), a());
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        // aᵀ·b via matmul_tn equals transpose(a)·b via matmul.
        let at = DenseTensor::from_vec(3, 2, vec![1., 4., 2., 5., 3., 6.]);
        let c = DenseTensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert!(a().matmul_tn(&c).approx_eq(&at.matmul(&c), 1e-6));
        // a·bᵀ via matmul_nt equals a·transpose(b).
        let bt = DenseTensor::from_vec(2, 3, vec![7., 9., 11., 8., 10., 12.]);
        assert!(a().matmul_nt(&bt).approx_eq(&a().matmul(&b()), 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let _ = a().matmul(&a());
    }
}
