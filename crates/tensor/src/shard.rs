//! Partitioning helpers: split a `vocab × dim` table by rows or by columns
//! across `n` workers.
//!
//! The paper (§4.1.1) argues for **column-wise** partitioning: every shard
//! keeps the whole vocabulary, so request load is uniform regardless of word
//! frequency, whereas row-wise shards holding frequent words are hot.

/// Half-open column range `[start, end)` owned by one worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnRange {
    pub start: usize,
    pub end: usize,
}

impl ColumnRange {
    pub fn width(&self) -> usize {
        self.end - self.start
    }
}

/// Half-open row range `[start, end)` owned by one worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowRange {
    pub start: usize,
    pub end: usize,
}

impl RowRange {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn contains(&self, row: u32) -> bool {
        (self.start..self.end).contains(&(row as usize))
    }
}

/// Split `total` items into `parts` contiguous near-equal ranges; the first
/// `total % parts` ranges get one extra item. Panics when `parts == 0`.
fn split_even(total: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0, "cannot split into zero parts");
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Column ranges of a `dim`-wide table split across `n` workers.
pub fn column_partition(dim: usize, n: usize) -> Vec<ColumnRange> {
    split_even(dim, n).into_iter().map(|(start, end)| ColumnRange { start, end }).collect()
}

/// Row ranges of a `vocab`-row table split across `n` workers.
pub fn row_partition(vocab: usize, n: usize) -> Vec<RowRange> {
    split_even(vocab, n).into_iter().map(|(start, end)| RowRange { start, end }).collect()
}

/// Which row-partition shard owns vocabulary row `row`, given shard list
/// produced by [`row_partition`]. Linear scan is fine: `n ≤ 16` here.
pub fn owner_of_row(shards: &[RowRange], row: u32) -> usize {
    shards
        .iter()
        .position(|s| s.contains(row))
        .unwrap_or_else(|| panic!("row {row} outside all shards"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_partition_covers_dim() {
        let parts = column_partition(10, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], ColumnRange { start: 0, end: 4 });
        assert_eq!(parts[1], ColumnRange { start: 4, end: 7 });
        assert_eq!(parts[2], ColumnRange { start: 7, end: 10 });
        assert_eq!(parts.iter().map(ColumnRange::width).sum::<usize>(), 10);
    }

    #[test]
    fn column_partition_exact_division() {
        let parts = column_partition(8, 4);
        assert!(parts.iter().all(|p| p.width() == 2));
    }

    #[test]
    fn row_partition_covers_vocab_contiguously() {
        let parts = row_partition(7, 2);
        assert_eq!(parts[0], RowRange { start: 0, end: 4 });
        assert_eq!(parts[1], RowRange { start: 4, end: 7 });
    }

    #[test]
    fn more_parts_than_items_yields_empty_tails() {
        let parts = row_partition(2, 4);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
        assert_eq!(parts.iter().map(RowRange::len).sum::<usize>(), 2);
    }

    #[test]
    fn owner_lookup() {
        let shards = row_partition(100, 4);
        assert_eq!(owner_of_row(&shards, 0), 0);
        assert_eq!(owner_of_row(&shards, 25), 1);
        assert_eq!(owner_of_row(&shards, 99), 3);
    }

    #[test]
    #[should_panic(expected = "outside all shards")]
    fn owner_out_of_range_panics() {
        let shards = row_partition(10, 2);
        owner_of_row(&shards, 10);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_panics() {
        column_partition(4, 0);
    }
}
