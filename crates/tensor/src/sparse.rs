//! Row-sparse tensors: COO storage specialised to whole-row sparsity.
//!
//! An embedding gradient touches only the vocabulary rows present in the
//! batch, so its natural representation is a list of `(row index, row
//! vector)` pairs. This matches what PyTorch produces for
//! `nn.Embedding(sparse=True)` and what Horovod's AllGather path transmits.

use crate::dense::DenseTensor;
use crate::{F32_BYTES, INDEX_BYTES};
use std::sync::Arc;

/// A row-sparse view of a `vocab × dim` matrix: `indices[i]` names the
/// vocabulary row stored in `values.row(i)`.
///
/// Indices may contain duplicates (e.g. a word appearing twice in a batch
/// contributes two gradient rows) until [`crate::coalesce`] merges them.
///
/// Like [`DenseTensor`], both components are `Arc`-shared: [`Clone`] /
/// [`RowSparse::share`] are O(1), and mutation of the value block is
/// copy-on-write. Indices are immutable once constructed (no mutating
/// accessor exists), so sharing them is always safe.
#[derive(Clone, Debug, PartialEq)]
pub struct RowSparse {
    indices: Arc<Vec<u32>>,
    values: DenseTensor,
}

impl RowSparse {
    /// Build from parallel index/value arrays. Panics when lengths disagree.
    pub fn new(indices: Vec<u32>, values: DenseTensor) -> Self {
        assert_eq!(indices.len(), values.rows(), "one value row per index required");
        Self { indices: Arc::new(indices), values }
    }

    /// An empty gradient for a table with `dim` columns.
    pub fn empty(dim: usize) -> Self {
        Self { indices: Arc::new(Vec::new()), values: DenseTensor::zeros(0, dim) }
    }

    /// O(1) handle onto the same index/value storage (`Arc` bumps); see
    /// [`DenseTensor::share`].
    pub fn share(&self) -> Self {
        Self { indices: Arc::clone(&self.indices), values: self.values.share() }
    }

    /// Wire bytes whose backing buffers are exclusively owned by this
    /// handle — i.e. were materialised rather than shared. A fan-out send
    /// of a [`RowSparse::share`] handle reports 0 copied bytes.
    pub fn copied_nbytes(&self) -> usize {
        let idx =
            if Arc::strong_count(&self.indices) > 1 { 0 } else { self.indices.len() * INDEX_BYTES };
        let vals = if self.values.is_shared() { 0 } else { self.values.nbytes() };
        idx + vals
    }

    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    pub fn values(&self) -> &DenseTensor {
        &self.values
    }

    pub fn values_mut(&mut self) -> &mut DenseTensor {
        &mut self.values
    }

    /// Number of stored (possibly duplicate) rows.
    pub fn nnz_rows(&self) -> usize {
        self.indices.len()
    }

    /// Embedding dimension (columns per row).
    pub fn dim(&self) -> usize {
        self.values.cols()
    }

    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Wire size in COO format: row indices plus the value block.
    pub fn nbytes(&self) -> usize {
        self.indices.len() * INDEX_BYTES + self.values.nbytes()
    }

    /// Wire size if this gradient were transmitted densely as the whole
    /// `vocab × dim` table.
    pub fn dense_nbytes(&self, vocab: usize) -> usize {
        vocab * self.dim() * F32_BYTES
    }

    /// Fraction of the dense table actually carried (paper's α, by rows).
    pub fn density(&self, vocab: usize) -> f64 {
        if vocab == 0 {
            return 0.0;
        }
        self.indices.len() as f64 / vocab as f64
    }

    /// Decompose into `(indices, values)`. Free when this handle owns its
    /// indices exclusively; copies them (counted) when shared.
    pub fn into_parts(self) -> (Vec<u32>, DenseTensor) {
        let indices = Arc::try_unwrap(self.indices).unwrap_or_else(|shared| {
            crate::alloc_counter::note(shared.len() * std::mem::size_of::<u32>());
            (*shared).clone()
        });
        (indices, self.values)
    }

    /// Materialise as a dense `vocab × dim` matrix, summing duplicate rows —
    /// the semantics AllReduce sees when a sparse gradient is densified.
    pub fn to_dense(&self, vocab: usize) -> DenseTensor {
        let mut out = DenseTensor::zeros(vocab, self.dim());
        for (i, &row) in self.indices.iter().enumerate() {
            let dst = out.row_mut(row as usize);
            for (d, s) in dst.iter_mut().zip(self.values.row(i)) {
                *d += s;
            }
        }
        out
    }

    /// Extract the rows of a dense matrix that are non-zero, producing the
    /// sparse equivalent (inverse of [`Self::to_dense`] for coalesced input).
    pub fn from_dense_nonzero(dense: &DenseTensor) -> Self {
        let mut indices = Vec::new();
        let mut rows = Vec::new();
        for r in 0..dense.rows() {
            if dense.row(r).iter().any(|&x| x != 0.0) {
                indices.push(r as u32);
                rows.push(dense.gather_rows(&[r as u32]));
            }
        }
        let values = if rows.is_empty() {
            DenseTensor::zeros(0, dense.cols())
        } else {
            DenseTensor::concat_rows(&rows)
        };
        Self { indices: Arc::new(indices), values }
    }

    /// Concatenate several row-sparse gradients (same `dim`) by stacking.
    /// The result is generally uncoalesced.
    pub fn concat(parts: &[RowSparse]) -> Self {
        assert!(!parts.is_empty(), "cannot concatenate zero parts");
        let dim = parts[0].dim();
        let mut indices = Vec::with_capacity(parts.iter().map(|p| p.nnz_rows()).sum());
        let mut blocks = Vec::new();
        for p in parts {
            assert_eq!(p.dim(), dim, "dim mismatch in sparse concat");
            indices.extend_from_slice(&p.indices);
            if !p.is_empty() {
                blocks.push(p.values.clone());
            }
        }
        let values = if blocks.is_empty() {
            DenseTensor::zeros(0, dim)
        } else {
            DenseTensor::concat_rows(&blocks)
        };
        Self { indices: Arc::new(indices), values }
    }

    /// Split a *coalesced* gradient at vocabulary row `row`: the left part
    /// keeps indices `< row`, the right part indices `>= row`. When one
    /// side is empty the other is an O(1) shared handle (no bytes copied) —
    /// the recursive-halving fast path for segments that are entirely on
    /// one side of the split point.
    ///
    /// Panics when the indices are not strictly increasing.
    pub fn split_at_row(&self, row: u32) -> (RowSparse, RowSparse) {
        assert!(
            self.indices.windows(2).all(|w| w[0] < w[1]),
            "split_at_row requires a coalesced gradient"
        );
        let pos = self.indices.partition_point(|&i| i < row);
        if pos == 0 {
            return (RowSparse::empty(self.dim()), self.share());
        }
        if pos == self.indices.len() {
            return (self.share(), RowSparse::empty(self.dim()));
        }
        let left = RowSparse {
            indices: Arc::new(self.indices[..pos].to_vec()),
            values: self.values.slice_rows(0, pos),
        };
        let right = RowSparse {
            indices: Arc::new(self.indices[pos..].to_vec()),
            values: self.values.slice_rows(pos, self.indices.len()),
        };
        (left, right)
    }

    /// Keep only the columns `[start, end)` of every stored row — the
    /// column-wise shard of this gradient owned by one worker (§4.1.1).
    pub fn slice_columns(&self, start: usize, end: usize) -> RowSparse {
        RowSparse {
            indices: Arc::clone(&self.indices),
            values: self.values.slice_columns(start, end),
        }
    }

    /// Scale all stored values.
    pub fn scale(&mut self, alpha: f32) {
        self.values.scale(alpha);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RowSparse {
        // rows 3 and 1 of a vocab-4, dim-2 table; row 3 appears twice.
        RowSparse::new(
            vec![3, 1, 3],
            DenseTensor::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 0.5, 0.5]),
        )
    }

    #[test]
    fn nbytes_counts_indices_and_values() {
        let s = sample();
        assert_eq!(s.nbytes(), 3 * INDEX_BYTES + 6 * F32_BYTES);
        assert_eq!(s.dense_nbytes(4), 4 * 2 * F32_BYTES);
    }

    #[test]
    fn density_is_row_fraction() {
        let s = sample();
        assert!((s.density(4) - 0.75).abs() < 1e-12);
        assert_eq!(RowSparse::empty(2).density(0), 0.0);
    }

    #[test]
    fn to_dense_sums_duplicates() {
        let d = sample().to_dense(4);
        assert_eq!(d.row(3), &[1.5, 1.5]);
        assert_eq!(d.row(1), &[2.0, 2.0]);
        assert_eq!(d.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn from_dense_nonzero_roundtrip() {
        let d = sample().to_dense(4);
        let s = RowSparse::from_dense_nonzero(&d);
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.to_dense(4), d);
    }

    #[test]
    fn concat_stacks_rows() {
        let a = sample();
        let b = RowSparse::new(vec![0], DenseTensor::from_vec(1, 2, vec![9.0, 9.0]));
        let c = RowSparse::concat(&[a.clone(), b]);
        assert_eq!(c.nnz_rows(), 4);
        assert_eq!(c.indices(), &[3, 1, 3, 0]);
        let mut expect = a.to_dense(4);
        expect.row_mut(0).copy_from_slice(&[9.0, 9.0]);
        assert_eq!(c.to_dense(4), expect);
    }

    #[test]
    fn concat_with_empty_part() {
        let c = RowSparse::concat(&[RowSparse::empty(2), sample()]);
        assert_eq!(c.nnz_rows(), 3);
    }

    #[test]
    fn column_slice_keeps_indices() {
        let s = sample();
        let left = s.slice_columns(0, 1);
        assert_eq!(left.indices(), s.indices());
        assert_eq!(left.dim(), 1);
        assert_eq!(left.values().row(1), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "one value row per index")]
    fn mismatched_lengths_panic() {
        let _ = RowSparse::new(vec![1, 2], DenseTensor::zeros(1, 3));
    }
}
