//! Explicit-width f32 reduce kernels — the arithmetic hot loop of every
//! collective reduce step.
//!
//! The scalar `a[i] += b[i]` loops previously inlined at each reduce site
//! (ring chunks, the SSAR k-way merge, coalesce duplicate-summing,
//! scatter-add) leave the autovectorizer guessing about trip counts and
//! aliasing. These kernels restructure the same arithmetic into fixed-width
//! lane chunks ([`LANES`] elements via `chunks_exact` + `[f32; LANES]`
//! array views), which LLVM reliably lowers to packed SIMD on every
//! target — no `unsafe`, no intrinsics, no feature detection, so the
//! crate-wide `#![forbid(unsafe_code)]` stands.
//!
//! Results are **bitwise identical** to the scalar fold: every element sees
//! exactly the same operation on the same operands in the same order; only
//! the loop structure changes. That is what lets the collectives swap these
//! in without disturbing the bitwise-determinism proofs in the analyzer.
//!
//! The `*_scalar` twins are reference implementations kept for the
//! proptests and the `bench_kernels` microbench; production reduce sites
//! use the lane versions (the `scalar-reduce` lint flags hand-rolled
//! element-wise `+=` loops in `ops.rs`/`merge.rs`).

/// Lane width of the explicit-width kernels. Eight f32 lanes fill one
/// AVX2 register and two NEON registers — wide enough to saturate either,
/// narrow enough that the `chunks_exact` remainder stays cheap.
pub const LANES: usize = 8;

/// `dst[i] += src[i]`. Panics on length mismatch.
#[inline]
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "length mismatch in add_assign");
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in d.by_ref().zip(s.by_ref()) {
        let da: &mut [f32; LANES] = dc.try_into().expect("chunk is LANES wide");
        let sa: &[f32; LANES] = sc.try_into().expect("chunk is LANES wide");
        for l in 0..LANES {
            da[l] += sa[l];
        }
    }
    for (d1, s1) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d1 += s1;
    }
}

/// `dst[i] += alpha * src[i]` (axpy). Panics on length mismatch.
#[inline]
pub fn scaled_add(dst: &mut [f32], alpha: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "length mismatch in scaled_add");
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in d.by_ref().zip(s.by_ref()) {
        let da: &mut [f32; LANES] = dc.try_into().expect("chunk is LANES wide");
        let sa: &[f32; LANES] = sc.try_into().expect("chunk is LANES wide");
        for l in 0..LANES {
            da[l] += alpha * sa[l];
        }
    }
    for (d1, s1) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d1 += alpha * s1;
    }
}

/// `dst[i] *= alpha`.
#[inline]
pub fn scale(dst: &mut [f32], alpha: f32) {
    let mut d = dst.chunks_exact_mut(LANES);
    for dc in d.by_ref() {
        let da: &mut [f32; LANES] = dc.try_into().expect("chunk is LANES wide");
        for d1 in da {
            *d1 *= alpha;
        }
    }
    for d1 in d.into_remainder() {
        *d1 *= alpha;
    }
}

/// Fused receive-reduce-forward step: `v = dst[i] + fwd[i]` written to
/// **both** slices, so the accumulator and the packet forwarded to the
/// next ring neighbour are updated in one memory pass instead of an
/// add pass plus a staging copy. Summation order is `dst + fwd`, matching
/// the unfused `dst += fwd` fold bitwise. Panics on length mismatch.
#[inline]
pub fn add_assign_both(dst: &mut [f32], fwd: &mut [f32]) {
    assert_eq!(dst.len(), fwd.len(), "length mismatch in add_assign_both");
    let mut d = dst.chunks_exact_mut(LANES);
    let mut f = fwd.chunks_exact_mut(LANES);
    for (dc, fc) in d.by_ref().zip(f.by_ref()) {
        let da: &mut [f32; LANES] = dc.try_into().expect("chunk is LANES wide");
        let fa: &mut [f32; LANES] = fc.try_into().expect("chunk is LANES wide");
        for l in 0..LANES {
            let v = da[l] + fa[l];
            da[l] = v;
            fa[l] = v;
        }
    }
    for (d1, f1) in d.into_remainder().iter_mut().zip(f.into_remainder()) {
        let v = *d1 + *f1;
        *d1 = v;
        *f1 = v;
    }
}

/// Scalar reference for [`add_assign`]; kept for proptests and microbench.
pub fn add_assign_scalar(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "length mismatch in add_assign");
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Scalar reference for [`scaled_add`]; kept for proptests and microbench.
pub fn scaled_add_scalar(dst: &mut [f32], alpha: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "length mismatch in scaled_add");
    for (d, s) in dst.iter_mut().zip(src) {
        *d += alpha * s;
    }
}

/// Scalar reference for [`scale`].
pub fn scale_scalar(dst: &mut [f32], alpha: f32) {
    for d in dst.iter_mut() {
        *d *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random data exercising a spread of exponents.
    fn data(len: usize, seed: u32) -> Vec<f32> {
        let mut x = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                // Map to roughly [-8, 8) with varied mantissas.
                (x as f32 / u32::MAX as f32 - 0.5) * 16.0
            })
            .collect()
    }

    /// Lengths covering empty, sub-lane, exact-lane and ragged tails.
    const LENS: [usize; 9] = [0, 1, 3, 7, 8, 9, 16, 31, 1000];

    #[test]
    fn add_assign_bitwise_matches_scalar() {
        for &len in &LENS {
            let src = data(len, 1);
            let mut a = data(len, 2);
            let mut b = a.clone();
            add_assign(&mut a, &src);
            add_assign_scalar(&mut b, &src);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn scaled_add_bitwise_matches_scalar() {
        for &len in &LENS {
            let src = data(len, 3);
            let mut a = data(len, 4);
            let mut b = a.clone();
            scaled_add(&mut a, 0.37, &src);
            scaled_add_scalar(&mut b, 0.37, &src);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn scale_bitwise_matches_scalar() {
        for &len in &LENS {
            let mut a = data(len, 5);
            let mut b = a.clone();
            scale(&mut a, -1.75);
            scale_scalar(&mut b, -1.75);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn add_assign_both_writes_same_sum_to_both() {
        for &len in &LENS {
            let mut dst = data(len, 6);
            let mut fwd = data(len, 7);
            let mut expect = dst.clone();
            add_assign_scalar(&mut expect, &fwd);
            add_assign_both(&mut dst, &mut fwd);
            let want: Vec<u32> = expect.iter().map(|v| v.to_bits()).collect();
            assert_eq!(dst.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), want, "len {len}");
            assert_eq!(fwd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), want, "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut a = vec![0.0; 4];
        add_assign(&mut a, &[1.0; 5]);
    }
}
