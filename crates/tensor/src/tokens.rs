//! Shared token-ID buffers.
//!
//! Token lists (batch samples, gathered vocab indices) travel through
//! every collective: the token AllGather fans one rank's batch out to
//! N−1 peers, and the scheduler's control plane re-broadcasts tag words
//! each round. [`TokenBuf`] gives those payloads the same `Arc`-backed
//! storage discipline as [`crate::DenseTensor`]: [`Clone`] /
//! [`TokenBuf::share`] are O(1) reference-count bumps, so fan-out sends
//! copy zero payload bytes, and [`TokenBuf::into_vec`] materialises a
//! private buffer only when the storage is actually still aliased
//! (counted by [`crate::alloc_counter`]).
//!
//! The buffer derefs to `[u32]`, so consumers keep slice ergonomics;
//! `From<Vec<u32>>` keeps construction at call sites a plain `.into()`.

use std::borrow::Borrow;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply shareable list of `u32` token IDs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenBuf {
    data: Arc<Vec<u32>>,
}

impl TokenBuf {
    /// Wrap a freshly materialised buffer, recording the allocation.
    pub fn fresh(data: Vec<u32>) -> Self {
        crate::alloc_counter::note(data.len() * crate::TOKEN_BYTES);
        Self { data: Arc::new(data) }
    }

    /// O(1) handle onto the same storage (an `Arc` bump). Semantically
    /// identical to [`Clone::clone`]; spelled out at collective send
    /// sites so the `payload-clone` lint can tell cheap sharing from
    /// deep copies.
    pub fn share(&self) -> Self {
        Self { data: Arc::clone(&self.data) }
    }

    /// True when other handles alias this buffer.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes when transmitted.
    pub fn nbytes(&self) -> usize {
        self.len() * crate::TOKEN_BYTES
    }

    pub fn as_slice(&self) -> &[u32] {
        &self.data
    }

    /// Take the buffer out. Free when this handle is the only owner;
    /// copies (and counts the allocation) when the storage is shared.
    pub fn into_vec(self) -> Vec<u32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| {
            crate::alloc_counter::note(shared.len() * crate::TOKEN_BYTES);
            (*shared).clone()
        })
    }
}

impl From<Vec<u32>> for TokenBuf {
    fn from(data: Vec<u32>) -> Self {
        // The Vec was allocated by the caller; wrapping it is free.
        Self { data: Arc::new(data) }
    }
}

impl Deref for TokenBuf {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        &self.data
    }
}

impl Borrow<[u32]> for TokenBuf {
    fn borrow(&self) -> &[u32] {
        &self.data
    }
}

impl AsRef<[u32]> for TokenBuf {
    fn as_ref(&self) -> &[u32] {
        &self.data
    }
}

impl PartialEq<Vec<u32>> for TokenBuf {
    fn eq(&self, other: &Vec<u32>) -> bool {
        *self.data == *other
    }
}

impl PartialEq<TokenBuf> for Vec<u32> {
    fn eq(&self, other: &TokenBuf) -> bool {
        *self == *other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_is_aliased_and_equal() {
        let a: TokenBuf = vec![1, 2, 3].into();
        assert!(!a.is_shared());
        let b = a.share();
        assert!(a.is_shared() && b.is_shared());
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(vec![1, 2, 3], a);
    }

    #[test]
    fn deref_gives_slice_ergonomics() {
        let t: TokenBuf = vec![5, 6, 7].into();
        assert_eq!(t.len(), 3);
        assert_eq!(t.nbytes(), 12);
        assert_eq!(&t[1..], &[6, 7]);
        assert_eq!(t.iter().sum::<u32>(), 18);
        // Borrow<[u32]> makes `Vec<TokenBuf>` concatenable like `Vec<Vec<u32>>`.
        assert_eq!([t.share(), vec![8].into()].concat(), vec![5, 6, 7, 8]);
    }

    #[test]
    fn into_vec_is_free_when_unique_and_copies_when_shared() {
        let a: TokenBuf = vec![1, 2].into();
        crate::alloc_counter::reset();
        assert_eq!(a.into_vec(), vec![1, 2]);
        assert_eq!(crate::alloc_counter::events(), 0, "unique unwrap must not copy");
        let b: TokenBuf = vec![3, 4].into();
        let keep = b.share();
        assert_eq!(b.into_vec(), vec![3, 4]);
        assert_eq!(keep.as_slice(), &[3, 4]);
        assert!(crate::alloc_counter::events() > 0, "shared unwrap must count its copy");
    }

    #[test]
    fn fresh_counts_its_allocation() {
        crate::alloc_counter::reset();
        let t = TokenBuf::fresh(vec![0; 8]);
        assert_eq!(t.len(), 8);
        assert!(crate::alloc_counter::events() > 0);
    }
}
