//! `COALESCE` — merge duplicate rows of a row-sparse gradient by summation.
//!
//! This is line 2 of the paper's Algorithm 1 (Vertical Sparse Scheduling):
//! NLP batches contain duplicate and padded tokens, so the raw embedding
//! gradient has repeated coordinates; summing them shrinks the gradient by
//! 20–85% depending on the model (paper Table 3).

use crate::dense::DenseTensor;
use crate::sparse::RowSparse;

/// True when indices are strictly increasing (each row appears once).
pub fn is_coalesced(grad: &RowSparse) -> bool {
    grad.indices().windows(2).all(|w| w[0] < w[1])
}

/// Return a coalesced copy: indices strictly increasing, duplicate rows
/// summed. Idempotent; the dense materialisation is preserved exactly
/// (summation is performed in the same f32 precision PyTorch uses).
///
/// Already-coalesced input returns an O(1) shared handle onto the same
/// storage (no gradient bytes are copied); see [`RowSparse::share`].
pub fn coalesce(grad: &RowSparse) -> RowSparse {
    if is_coalesced(grad) {
        return grad.share();
    }
    let mut out = RowSparse::empty(grad.dim());
    coalesce_into(grad, &mut out);
    out
}

/// Stable permutation sorting `ids` ascending: `perm[k]` is the original
/// position of the k-th smallest id, duplicates kept in input order
/// (deterministic f32 summation order downstream). Uses an O(n + range)
/// counting/bucket pass when the id range is comparable to the row count —
/// the common case for embedding batches, whose token ids cluster — and
/// falls back to a comparison sort for wide, sparse ranges.
fn sort_permutation(ids: &[u32]) -> Vec<u32> {
    let n = ids.len();
    if n == 0 {
        return Vec::new();
    }
    let (mut min, mut max) = (ids[0], ids[0]);
    for &i in ids {
        min = min.min(i);
        max = max.max(i);
    }
    let range = (max - min) as usize + 1;
    if range <= 4 * n {
        // starts[b] = first output slot of bucket b after the prefix sum;
        // appending positions in input order keeps the permutation stable.
        let mut starts = vec![0u32; range + 1];
        for &i in ids {
            starts[(i - min) as usize + 1] += 1;
        }
        for b in 0..range {
            starts[b + 1] += starts[b];
        }
        let mut perm = vec![0u32; n];
        for (pos, &i) in ids.iter().enumerate() {
            let slot = &mut starts[(i - min) as usize];
            perm[*slot as usize] = pos as u32;
            *slot += 1;
        }
        perm
    } else {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_by_key(|&i| ids[i as usize]);
        perm
    }
}

/// Coalesce `grad` into `out`, reusing `out`'s allocations where possible.
pub fn coalesce_into(grad: &RowSparse, out: &mut RowSparse) {
    let dim = grad.dim();
    let perm = sort_permutation(grad.indices());

    let mut indices: Vec<u32> = Vec::with_capacity(grad.nnz_rows());
    let mut values: Vec<f32> = Vec::with_capacity(grad.nnz_rows() * dim);
    for &src in &perm {
        let row_id = grad.indices()[src as usize];
        let row = grad.values().row(src as usize);
        if indices.last() == Some(&row_id) {
            let start = values.len() - dim;
            crate::kernels::add_assign(&mut values[start..], row);
        } else {
            indices.push(row_id);
            values.extend_from_slice(row);
        }
    }
    let rows = indices.len();
    *out = RowSparse::new(indices, DenseTensor::from_vec(rows, dim, values));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uncoalesced() -> RowSparse {
        RowSparse::new(
            vec![5, 1, 5, 1, 2],
            DenseTensor::from_vec(5, 1, vec![1.0, 10.0, 2.0, 20.0, 7.0]),
        )
    }

    #[test]
    fn merges_duplicates_and_sorts() {
        let c = coalesce(&uncoalesced());
        assert_eq!(c.indices(), &[1, 2, 5]);
        assert_eq!(c.values().as_slice(), &[30.0, 7.0, 3.0]);
        assert!(is_coalesced(&c));
    }

    #[test]
    fn idempotent() {
        let once = coalesce(&uncoalesced());
        let twice = coalesce(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn preserves_dense_materialisation() {
        let g = uncoalesced();
        assert_eq!(coalesce(&g).to_dense(8), g.to_dense(8));
    }

    #[test]
    fn empty_is_coalesced() {
        let e = RowSparse::empty(3);
        assert!(is_coalesced(&e));
        assert_eq!(coalesce(&e), e);
    }

    #[test]
    fn single_row() {
        let g = RowSparse::new(vec![4], DenseTensor::from_vec(1, 2, vec![1.0, 2.0]));
        let c = coalesce(&g);
        assert_eq!(c, g);
    }

    #[test]
    fn already_sorted_fast_path() {
        let g = RowSparse::new(vec![0, 2, 9], DenseTensor::zeros(3, 2));
        assert!(is_coalesced(&g));
        assert_eq!(coalesce(&g).indices(), &[0, 2, 9]);
    }

    #[test]
    fn fast_path_shares_instead_of_copying() {
        let g = RowSparse::new(vec![0, 2, 9], DenseTensor::zeros(3, 2));
        crate::alloc_counter::reset();
        let c = coalesce(&g);
        assert_eq!(crate::alloc_counter::events(), 0, "coalesced input must not be copied");
        assert!(c.values().is_shared() && g.values().is_shared());
    }

    #[test]
    fn counting_and_comparison_permutations_agree() {
        // Narrow range (counting path) vs the same ids shifted far apart
        // (comparison path): relative order of outputs must be identical.
        let narrow: Vec<u32> = vec![5, 1, 5, 3, 1, 2, 5, 0, 3];
        let wide: Vec<u32> = narrow.iter().map(|&i| i * 1_000_000).collect();
        assert_eq!(sort_permutation(&narrow), sort_permutation(&wide));
        // Stability: equal ids keep input order.
        let perm = sort_permutation(&narrow);
        let ones: Vec<u32> = perm.iter().copied().filter(|&p| narrow[p as usize] == 1).collect();
        assert_eq!(ones, vec![1, 4]);
    }

    #[test]
    fn wide_range_input_still_coalesces() {
        let g = RowSparse::new(
            vec![4_000_000, 7, 4_000_000],
            DenseTensor::from_vec(3, 1, vec![1.0, 10.0, 2.0]),
        );
        let c = coalesce(&g);
        assert_eq!(c.indices(), &[7, 4_000_000]);
        assert_eq!(c.values().as_slice(), &[10.0, 3.0]);
    }
}
