//! `COALESCE` — merge duplicate rows of a row-sparse gradient by summation.
//!
//! This is line 2 of the paper's Algorithm 1 (Vertical Sparse Scheduling):
//! NLP batches contain duplicate and padded tokens, so the raw embedding
//! gradient has repeated coordinates; summing them shrinks the gradient by
//! 20–85% depending on the model (paper Table 3).

use crate::dense::DenseTensor;
use crate::sparse::RowSparse;

/// True when indices are strictly increasing (each row appears once).
pub fn is_coalesced(grad: &RowSparse) -> bool {
    grad.indices().windows(2).all(|w| w[0] < w[1])
}

/// Return a coalesced copy: indices strictly increasing, duplicate rows
/// summed. Idempotent; the dense materialisation is preserved exactly
/// (summation is performed in the same f32 precision PyTorch uses).
pub fn coalesce(grad: &RowSparse) -> RowSparse {
    if is_coalesced(grad) {
        return grad.clone();
    }
    let mut out = RowSparse::empty(grad.dim());
    coalesce_into(grad, &mut out);
    out
}

/// Coalesce `grad` into `out`, reusing `out`'s allocations where possible.
pub fn coalesce_into(grad: &RowSparse, out: &mut RowSparse) {
    let dim = grad.dim();
    // Sort an index permutation by row id, stably, so duplicates are adjacent
    // and summed in their original order (deterministic f32 results).
    let mut perm: Vec<u32> = (0..grad.nnz_rows() as u32).collect();
    perm.sort_by_key(|&i| grad.indices()[i as usize]);

    let mut indices: Vec<u32> = Vec::with_capacity(grad.nnz_rows());
    let mut values: Vec<f32> = Vec::with_capacity(grad.nnz_rows() * dim);
    for &src in &perm {
        let row_id = grad.indices()[src as usize];
        let row = grad.values().row(src as usize);
        if indices.last() == Some(&row_id) {
            let start = values.len() - dim;
            for (d, s) in values[start..].iter_mut().zip(row) {
                *d += s;
            }
        } else {
            indices.push(row_id);
            values.extend_from_slice(row);
        }
    }
    let rows = indices.len();
    *out = RowSparse::new(indices, DenseTensor::from_vec(rows, dim, values));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uncoalesced() -> RowSparse {
        RowSparse::new(
            vec![5, 1, 5, 1, 2],
            DenseTensor::from_vec(5, 1, vec![1.0, 10.0, 2.0, 20.0, 7.0]),
        )
    }

    #[test]
    fn merges_duplicates_and_sorts() {
        let c = coalesce(&uncoalesced());
        assert_eq!(c.indices(), &[1, 2, 5]);
        assert_eq!(c.values().as_slice(), &[30.0, 7.0, 3.0]);
        assert!(is_coalesced(&c));
    }

    #[test]
    fn idempotent() {
        let once = coalesce(&uncoalesced());
        let twice = coalesce(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn preserves_dense_materialisation() {
        let g = uncoalesced();
        assert_eq!(coalesce(&g).to_dense(8), g.to_dense(8));
    }

    #[test]
    fn empty_is_coalesced() {
        let e = RowSparse::empty(3);
        assert!(is_coalesced(&e));
        assert_eq!(coalesce(&e), e);
    }

    #[test]
    fn single_row() {
        let g = RowSparse::new(vec![4], DenseTensor::from_vec(1, 2, vec![1.0, 2.0]));
        let c = coalesce(&g);
        assert_eq!(c, g);
    }

    #[test]
    fn already_sorted_fast_path() {
        let g = RowSparse::new(vec![0, 2, 9], DenseTensor::zeros(3, 2));
        assert!(is_coalesced(&g));
        assert_eq!(coalesce(&g).indices(), &[0, 2, 9]);
    }
}
