//! Index-set operations used by Vertical Sparse Scheduling (Algorithm 1):
//! `UNIQUE`, intersection, set difference and `INDEX_SELECT`.
//!
//! All functions operate on **sorted, deduplicated** `Vec<u32>` sets
//! ([`IndexSet`]) so that intersection/difference are linear merges.

use crate::sparse::RowSparse;

/// A sorted, duplicate-free set of row indices.
pub type IndexSet = Vec<u32>;

/// `UNIQUE`: sort and deduplicate arbitrary token ids into an [`IndexSet`].
pub fn unique_sorted(tokens: &[u32]) -> IndexSet {
    let mut v = tokens.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// Intersection of two sorted sets (linear merge).
pub fn intersect(a: &[u32], b: &[u32]) -> IndexSet {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Set difference `a \ b` of two sorted sets (linear merge).
pub fn difference(a: &[u32], b: &[u32]) -> IndexSet {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] > b[j] {
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
    out
}

/// `INDEX_SELECT`: extract from a **coalesced** gradient the rows whose ids
/// appear in the sorted set `select`. Ids in `select` absent from the
/// gradient are skipped (a next-batch token may have had no gradient locally).
pub fn index_select(coalesced: &RowSparse, select: &[u32]) -> RowSparse {
    debug_assert!(
        coalesced.indices().windows(2).all(|w| w[0] < w[1]),
        "index_select requires a coalesced gradient"
    );
    let keep = intersect(coalesced.indices(), select);
    if keep.is_empty() {
        return RowSparse::empty(coalesced.dim());
    }
    // Map row ids back to positions in the coalesced gradient.
    let mut positions = Vec::with_capacity(keep.len());
    let mut cursor = 0usize;
    for &id in &keep {
        while coalesced.indices()[cursor] != id {
            cursor += 1;
        }
        positions.push(cursor as u32);
    }
    let values = coalesced.values().gather_rows(&positions);
    RowSparse::new(keep, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseTensor;

    #[test]
    fn unique_sorts_and_dedups() {
        assert_eq!(unique_sorted(&[5, 1, 5, 0, 1]), vec![0, 1, 5]);
        assert_eq!(unique_sorted(&[]), Vec::<u32>::new());
    }

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 7, 9]), vec![3, 7]);
        assert_eq!(intersect(&[1, 2], &[]), Vec::<u32>::new());
        assert_eq!(intersect(&[1, 2], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn difference_basic() {
        assert_eq!(difference(&[1, 3, 5, 7], &[2, 3, 7, 9]), vec![1, 5]);
        assert_eq!(difference(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(difference(&[], &[1]), Vec::<u32>::new());
        assert_eq!(difference(&[1, 2], &[1, 2]), Vec::<u32>::new());
    }

    #[test]
    fn intersect_and_difference_partition() {
        let a = vec![0, 2, 4, 6, 8];
        let b = vec![1, 2, 3, 4];
        let inter = intersect(&a, &b);
        let diff = difference(&a, &b);
        let mut merged = [inter, diff].concat();
        merged.sort_unstable();
        assert_eq!(merged, a);
    }

    #[test]
    fn index_select_extracts_rows() {
        let g = RowSparse::new(
            vec![1, 4, 9],
            DenseTensor::from_vec(3, 2, vec![1.0, 1.0, 4.0, 4.0, 9.0, 9.0]),
        );
        let s = index_select(&g, &[4, 9, 100]);
        assert_eq!(s.indices(), &[4, 9]);
        assert_eq!(s.values().row(0), &[4.0, 4.0]);
        assert_eq!(s.values().row(1), &[9.0, 9.0]);
    }

    #[test]
    fn index_select_empty_selection() {
        let g = RowSparse::new(vec![1], DenseTensor::zeros(1, 3));
        let s = index_select(&g, &[]);
        assert!(s.is_empty());
        assert_eq!(s.dim(), 3);
    }
}
