//! In-crate property tests of the tensor algebra the whole workspace
//! leans on. (Cross-crate properties — Algorithm 1, collectives — live in
//! the top-level `tests/proptests.rs`.)

#![cfg(test)]

use crate::{coalesce, column_partition, is_coalesced, row_partition, DenseTensor, RowSparse};
use proptest::prelude::*;

fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = DenseTensor> {
    prop::collection::vec(-100.0f32..100.0, rows * cols)
        .prop_map(move |data| DenseTensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concat_columns_inverts_slicing(t in tensor(4, 9), cut1 in 0usize..9, cut2 in 0usize..9) {
        let (a, b) = (cut1.min(cut2), cut1.max(cut2));
        let parts = [t.slice_columns(0, a), t.slice_columns(a, b), t.slice_columns(b, 9)];
        let non_empty: Vec<DenseTensor> =
            parts.iter().filter(|p| p.cols() > 0).cloned().collect();
        if !non_empty.is_empty() {
            prop_assert_eq!(DenseTensor::concat_columns(&non_empty), t);
        }
    }

    #[test]
    fn concat_rows_inverts_row_gather(t in tensor(6, 3)) {
        let blocks: Vec<DenseTensor> =
            (0..6u32).map(|r| t.gather_rows(&[r])).collect();
        prop_assert_eq!(DenseTensor::concat_rows(&blocks), t);
    }

    #[test]
    fn axpy_matches_scalar_arithmetic(a in tensor(2, 3), b in tensor(2, 3), alpha in -5.0f32..5.0) {
        let mut got = a.clone();
        got.axpy(alpha, &b);
        for i in 0..a.len() {
            let want = a.as_slice()[i] + alpha * b.as_slice()[i];
            prop_assert!((got.as_slice()[i] - want).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor(3, 4),
        b in tensor(4, 2),
        c in tensor(4, 2),
    ) {
        // A·(B + C) == A·B + A·C, within f32 tolerance.
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-1), "diff {}", lhs.max_abs_diff(&rhs));
    }

    #[test]
    fn sparse_dense_roundtrip(
        indices in prop::collection::vec(0u32..20, 0..15),
        dim in 1usize..4,
    ) {
        let values = DenseTensor::full(indices.len(), dim, 1.5);
        let sparse = RowSparse::new(indices, values);
        let dense = sparse.to_dense(20);
        let back = RowSparse::from_dense_nonzero(&dense);
        prop_assert!(is_coalesced(&back));
        prop_assert!(back.to_dense(20).approx_eq(&dense, 1e-5));
        let coalesced = coalesce(&sparse);
        prop_assert_eq!(back.indices(), coalesced.indices());
    }

    #[test]
    fn partitions_tile_exactly(total in 1usize..200, parts in 1usize..20) {
        let cols = column_partition(total, parts);
        prop_assert_eq!(cols.len(), parts);
        prop_assert_eq!(cols[0].start, 0);
        prop_assert_eq!(cols.last().unwrap().end, total);
        for w in cols.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // Near-equal widths: max - min <= 1.
        let widths: Vec<usize> = cols.iter().map(|c| c.width()).collect();
        prop_assert!(widths.iter().max().unwrap() - widths.iter().min().unwrap() <= 1);

        let rows = row_partition(total, parts);
        prop_assert_eq!(rows.iter().map(|r| r.len()).sum::<usize>(), total);
    }

    #[test]
    fn lane_kernels_bitwise_match_scalar_fold(
        // 0..=20 straddles the lane width: exercises empty input, lengths
        // below LANES (pure remainder), exactly LANES, and ragged tails.
        len in 0usize..=20,
        seed_a in prop::collection::vec(-100.0f32..100.0, 24),
        seed_b in prop::collection::vec(-100.0f32..100.0, 24),
        alpha in -5.0f32..5.0,
    ) {
        use crate::kernels;
        let src = &seed_b[..len];
        let mut lane = seed_a[..len].to_vec();
        let mut scalar = lane.clone();
        kernels::add_assign(&mut lane, src);
        kernels::add_assign_scalar(&mut scalar, src);
        prop_assert_eq!(
            lane.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        kernels::scaled_add(&mut lane, alpha, src);
        kernels::scaled_add_scalar(&mut scalar, alpha, src);
        prop_assert_eq!(
            lane.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Fused receive-reduce-forward: both outputs equal the scalar sum.
        let mut fwd = src.to_vec();
        kernels::add_assign_scalar(&mut scalar, src);
        kernels::add_assign_both(&mut lane, &mut fwd);
        let want: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(lane.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), want.clone());
        prop_assert_eq!(fwd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), want);
    }

    #[test]
    fn coalesce_row_count_bounds(
        indices in prop::collection::vec(0u32..10, 0..40),
    ) {
        let n = indices.len();
        let sparse = RowSparse::new(indices.clone(), DenseTensor::zeros(n, 2));
        let c = coalesce(&sparse);
        let mut unique = indices;
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(c.nnz_rows(), unique.len());
        prop_assert!(c.nnz_rows() <= n);
    }
}
