//! K-way merge of coalesced row-sparse streams — the reduction kernel of
//! the sparse-native allreduce (SparCML's SSAR).
//!
//! Each input stream is a coalesced `(index, row)` list; the merge produces
//! the coalesced sum: the union of the index sets, with rows present in
//! several streams summed in *stream order* (stream 0's contribution first).
//! Stream order is what makes the reduction deterministic: every rank that
//! merges the same streams in the same order produces bitwise-identical
//! f32 sums, which is the property the model checker proves for the whole
//! collective.
//!
//! Two representation bridges ride along for the dense crossover:
//! [`scatter_add_rows`] folds a sparse stream into an already-densified
//! segment, and [`densify_range`] materialises a stream as the dense block
//! of its row range.

use crate::dense::DenseTensor;
use crate::sparse::RowSparse;
use crate::{alloc_counter, F32_BYTES, INDEX_BYTES};

/// Merge `parts` (each coalesced, same `dim`) into one coalesced stream,
/// summing rows with equal indices in part order.
///
/// Fast path: when at most one part is non-empty the result is an O(1)
/// shared handle onto it ([`RowSparse::share`]) — no bytes are copied. The
/// slow path materialises exactly one index buffer and one value buffer
/// (both counted by [`crate::alloc_counter`]).
///
/// Panics when `parts` is empty, dims disagree, or a part is uncoalesced.
pub fn merge_rowsparse(parts: &[RowSparse]) -> RowSparse {
    assert!(!parts.is_empty(), "cannot merge zero streams");
    let dim = parts[0].dim();
    for p in parts {
        assert_eq!(p.dim(), dim, "dim mismatch in sparse merge");
        assert!(crate::is_coalesced(p), "merge_rowsparse requires coalesced streams");
    }
    let live: Vec<&RowSparse> = parts.iter().filter(|p| !p.is_empty()).collect();
    match live.len() {
        0 => return RowSparse::empty(dim),
        1 => return live[0].share(),
        _ => {}
    }

    let upper: usize = live.iter().map(|p| p.nnz_rows()).sum();
    let mut indices: Vec<u32> = Vec::with_capacity(upper);
    let mut values: Vec<f32> = Vec::with_capacity(upper * dim);
    let mut cursor = vec![0usize; live.len()];
    loop {
        let mut next: Option<u32> = None;
        for (k, p) in live.iter().enumerate() {
            if let Some(&idx) = p.indices().get(cursor[k]) {
                next = Some(next.map_or(idx, |n| n.min(idx)));
            }
        }
        let Some(idx) = next else { break };
        indices.push(idx);
        let at = values.len();
        let mut first = true;
        for (k, p) in live.iter().enumerate() {
            if p.indices().get(cursor[k]) == Some(&idx) {
                let row = p.values().row(cursor[k]);
                if first {
                    values.extend_from_slice(row);
                    first = false;
                } else {
                    crate::kernels::add_assign(&mut values[at..], row);
                }
                cursor[k] += 1;
            }
        }
    }
    alloc_counter::note(indices.len() * INDEX_BYTES + values.len() * F32_BYTES);
    let rows = indices.len();
    RowSparse::new(indices, DenseTensor::from_vec(rows, dim, values))
}

/// Fold a sparse stream into a densified segment: row `i` of `sparse`
/// (vocabulary index `idx`) is added into row `idx - base` of `dense`.
/// Panics when an index falls outside `[base, base + dense.rows())`.
pub fn scatter_add_rows(dense: &mut DenseTensor, base: u32, sparse: &RowSparse) {
    assert_eq!(dense.cols(), sparse.dim(), "dim mismatch in scatter-add");
    for (i, &idx) in sparse.indices().iter().enumerate() {
        let local = (idx - base) as usize;
        crate::kernels::add_assign(dense.row_mut(local), sparse.values().row(i));
    }
}

/// Materialise a coalesced stream whose indices all lie in `[lo, hi)` as
/// the dense `(hi - lo) × dim` block of that row range — the
/// representation switch when accumulated density crosses the crossover
/// threshold. Absent rows become `+0.0`.
pub fn densify_range(sparse: &RowSparse, lo: u32, hi: u32) -> DenseTensor {
    let mut out = DenseTensor::zeros((hi - lo) as usize, sparse.dim());
    scatter_add_rows(&mut out, lo, sparse);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(indices: Vec<u32>, vals: Vec<f32>) -> RowSparse {
        let rows = indices.len();
        let dim = vals.len().checked_div(rows).unwrap_or(2);
        RowSparse::new(indices, DenseTensor::from_vec(rows, dim, vals))
    }

    #[test]
    fn merges_disjoint_streams_in_index_order() {
        let a = rs(vec![1, 5], vec![1.0, 1.0, 5.0, 5.0]);
        let b = rs(vec![0, 9], vec![0.5, 0.5, 9.0, 9.0]);
        let m = merge_rowsparse(&[a, b]);
        assert_eq!(m.indices(), &[0, 1, 5, 9]);
        assert_eq!(m.values().row(0), &[0.5, 0.5]);
        assert_eq!(m.values().row(3), &[9.0, 9.0]);
    }

    #[test]
    fn sums_duplicates_in_stream_order() {
        let a = rs(vec![3], vec![1.0, 2.0]);
        let b = rs(vec![3], vec![10.0, 20.0]);
        let c = rs(vec![3], vec![100.0, 200.0]);
        let m = merge_rowsparse(&[a, b, c]);
        assert_eq!(m.indices(), &[3]);
        assert_eq!(m.values().row(0), &[111.0, 222.0]);
    }

    #[test]
    fn merge_matches_dense_materialisation() {
        let a = rs(vec![0, 2, 3], vec![1., 1., 2., 2., 3., 3.]);
        let b = rs(vec![2, 4], vec![0.25, 0.25, 4., 4.]);
        let m = merge_rowsparse(&[a.clone(), b.clone()]);
        let mut expect = a.to_dense(6);
        expect.add_assign(&b.to_dense(6));
        assert_eq!(m.to_dense(6), expect);
        assert!(crate::is_coalesced(&m));
    }

    #[test]
    fn single_live_stream_is_shared_not_copied() {
        let a = rs(vec![1, 2], vec![1., 1., 2., 2.]);
        let e = RowSparse::empty(2);
        crate::alloc_counter::reset();
        let m = merge_rowsparse(&[e, a.clone()]);
        assert_eq!(crate::alloc_counter::events(), 0, "fast path must not allocate");
        assert!(m.values().is_shared() && a.values().is_shared());
        assert_eq!(m, a);
    }

    #[test]
    fn all_empty_streams_merge_to_empty() {
        let m = merge_rowsparse(&[RowSparse::empty(3), RowSparse::empty(3)]);
        assert!(m.is_empty());
        assert_eq!(m.dim(), 3);
    }

    #[test]
    fn slow_path_counts_exactly_one_materialisation() {
        let a = rs(vec![1], vec![1., 1.]);
        let b = rs(vec![2], vec![2., 2.]);
        crate::alloc_counter::reset();
        let _ = merge_rowsparse(&[a, b]);
        assert_eq!(crate::alloc_counter::events(), 1, "one counted buffer per merge");
    }

    #[test]
    #[should_panic(expected = "coalesced")]
    fn uncoalesced_input_panics() {
        let bad = rs(vec![5, 1], vec![0.; 4]);
        let _ = merge_rowsparse(&[bad]);
    }

    #[test]
    fn scatter_add_folds_into_segment() {
        let mut seg = DenseTensor::zeros(4, 2);
        let s = rs(vec![10, 12], vec![1., 2., 3., 4.]);
        scatter_add_rows(&mut seg, 10, &s);
        assert_eq!(seg.row(0), &[1., 2.]);
        assert_eq!(seg.row(2), &[3., 4.]);
        assert_eq!(seg.row(1), &[0., 0.]);
    }

    #[test]
    fn densify_range_matches_to_dense_window() {
        let s = rs(vec![5, 7], vec![1., 1., 7., 7.]);
        let d = densify_range(&s, 4, 8);
        assert_eq!(d.rows(), 4);
        let full = s.to_dense(8);
        for r in 0..4 {
            assert_eq!(d.row(r), full.row(4 + r));
        }
    }

    #[test]
    fn split_at_row_partitions_and_shares_trivial_sides() {
        let s = rs(vec![1, 4, 6], vec![1., 1., 4., 4., 6., 6.]);
        let (l, r) = s.split_at_row(5);
        assert_eq!(l.indices(), &[1, 4]);
        assert_eq!(r.indices(), &[6]);
        assert_eq!(r.values().row(0), &[6., 6.]);
        crate::alloc_counter::reset();
        let (all, none) = s.split_at_row(100);
        assert_eq!(crate::alloc_counter::events(), 0, "one-sided split must share");
        assert_eq!(all.indices(), s.indices());
        assert!(none.is_empty());
        let (none2, all2) = s.split_at_row(0);
        assert!(none2.is_empty());
        assert_eq!(all2.indices(), s.indices());
    }
}
