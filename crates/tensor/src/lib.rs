//! Dense and row-sparse tensor primitives for the EmbRace reproduction.
//!
//! The EmbRace paper (ICPP'22) manipulates two kinds of data:
//!
//! * **dense tensors** — contiguous `f32` buffers holding the parameters and
//!   gradients of the non-embedding ("dense") part of an NLP model;
//! * **row-sparse tensors** — the gradients of embedding tables, where only
//!   the rows touched by the current batch are non-zero. PyTorch stores these
//!   in COO format; we store them as a sorted-or-unsorted list of row indices
//!   plus a `rows × dim` dense value block, which is exactly the COO layout
//!   specialised to whole-row sparsity.
//!
//! Everything EmbRace's algorithms do to data — `COALESCE`, `UNIQUE`,
//! set intersection/difference, `INDEX_SELECT` (Algorithm 1 of the paper),
//! column-wise partitioning (§4.1.1) — is provided here, independent of any
//! communication or scheduling machinery.
//!
//! # Example
//!
//! ```
//! use embrace_tensor::{coalesce, index_select, unique_sorted, DenseTensor, RowSparse};
//!
//! // A raw embedding gradient with a duplicate row (token 7 twice).
//! let grad = RowSparse::new(
//!     vec![7, 2, 7],
//!     DenseTensor::from_vec(3, 2, vec![1.0, 1.0, 5.0, 5.0, 2.0, 2.0]),
//! );
//! let c = coalesce(&grad);
//! assert_eq!(c.indices(), &[2, 7]);
//! assert_eq!(c.values().row(1), &[3.0, 3.0]); // 1 + 2 summed
//!
//! // Select the rows the next batch needs.
//! let wanted = unique_sorted(&[7, 9]);
//! let prior = index_select(&c, &wanted);
//! assert_eq!(prior.indices(), &[7]);
//! ```

#![forbid(unsafe_code)]

mod proptests;

pub mod alloc_counter;
pub mod coalesce;
pub mod dense;
pub mod index;
pub mod kernels;
pub mod merge;
pub mod shard;
pub mod sparse;
pub mod tokens;

pub use coalesce::{coalesce, coalesce_into, is_coalesced};
pub use dense::DenseTensor;
pub use index::{difference, index_select, intersect, unique_sorted, IndexSet};
pub use merge::{densify_range, merge_rowsparse, scatter_add_rows};
pub use shard::{column_partition, owner_of_row, row_partition, ColumnRange, RowRange};
pub use sparse::RowSparse;
pub use tokens::TokenBuf;

/// Bytes per `f32` element; used throughout the cost model.
pub const F32_BYTES: usize = 4;

/// Bytes used to encode one COO row index on the wire (PyTorch uses i64).
pub const INDEX_BYTES: usize = 8;

/// Bytes used to encode one token id on the wire (`u32`, as token
/// vocabularies fit comfortably in 32 bits).
pub const TOKEN_BYTES: usize = 4;

#[cfg(test)]
mod wire_size_tests {
    use super::{F32_BYTES, INDEX_BYTES, TOKEN_BYTES};

    #[test]
    fn wire_sizes_match_element_types() {
        assert_eq!(F32_BYTES, std::mem::size_of::<f32>());
        assert_eq!(INDEX_BYTES, std::mem::size_of::<i64>());
        assert_eq!(TOKEN_BYTES, std::mem::size_of::<u32>());
    }
}
