//! Discrete-event execution of a training-step task DAG.
//!
//! A step is modelled as tasks on two resources per worker group —
//! the **compute stream** (GPU kernels: FP/BP of each module, plus the
//! Vertical-Scheduling set computation) and the **communication stream**
//! (one collective at a time, like Horovod's background thread driving
//! NCCL). Dependencies encode the module graph (paper Fig. 5); the
//! communication stream drains either a FIFO queue (default DL framework
//! behaviour, Fig. 6a) or a priority queue (EmbRace / ByteScheduler,
//! Fig. 6b-c).
//!
//! Because synchronous data-parallel workers are symmetric, one
//! (compute, comm) pair of streams represents the whole job; per-worker
//! asymmetry (e.g. row-partition imbalance) is already folded into
//! collective durations by [`crate::cost::CostModel::alltoallv`].

use crate::trace::{Span, Trace};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// Identifier of a task inside one [`Sim`].
pub type TaskId = usize;

/// Which stream a task occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Res {
    /// GPU compute stream.
    Compute,
    /// Network/communication stream.
    Comm,
}

/// One node of the step DAG.
#[derive(Clone, Debug)]
pub struct Task {
    pub name: String,
    pub dur: f64,
    pub res: Res,
    pub deps: Vec<TaskId>,
    /// Lower value = drained earlier by the priority queue. Ignored for
    /// compute tasks (the GPU stream runs in program order) and ignored by
    /// FIFO scheduling.
    pub priority: i64,
    /// True for model FP/BP kernels — the useful work against which
    /// Computation Stall is measured. False for communication and for
    /// scheduling bookkeeping computations (Algorithm 1), which the paper
    /// counts *as* stall (§5.4).
    pub model_compute: bool,
}

impl Task {
    pub fn compute(name: impl Into<String>, dur: f64) -> Self {
        Task {
            name: name.into(),
            dur,
            res: Res::Compute,
            deps: vec![],
            priority: 0,
            model_compute: true,
        }
    }

    /// A compute-stream task that is *not* useful model work (e.g. the
    /// Vertical Sparse Scheduling set computation).
    pub fn overhead(name: impl Into<String>, dur: f64) -> Self {
        Task {
            name: name.into(),
            dur,
            res: Res::Compute,
            deps: vec![],
            priority: 0,
            model_compute: false,
        }
    }

    pub fn comm(name: impl Into<String>, dur: f64, priority: i64) -> Self {
        Task {
            name: name.into(),
            dur,
            res: Res::Comm,
            deps: vec![],
            priority,
            model_compute: false,
        }
    }

    pub fn after(mut self, deps: impl IntoIterator<Item = TaskId>) -> Self {
        self.deps.extend(deps);
        self
    }
}

/// How the communication stream picks among ready collectives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommOrder {
    /// First-ready-first-served (default DAG execution in PyTorch/TF).
    Fifo,
    /// Smallest `priority` first among ready tasks (EmbRace §4.2).
    Priority,
    /// Priority with preemption: a strictly more urgent collective
    /// suspends the one in flight and the remainder resumes later —
    /// PACE's preemptive queue (Bao et al., INFOCOM'20), implemented
    /// here as an extension the paper lists as related work.
    Preemptive,
}

/// One sample of the communication ready-queue depth, taken whenever a
/// collective is enqueued or drained. `priority` is the *effective*
/// priority (0 under FIFO), so per-priority depth series line up with
/// what the scheduler actually saw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueSample {
    /// Virtual time of the sample.
    pub t: f64,
    /// Effective priority class whose depth changed.
    pub priority: i64,
    /// Depth of that class immediately after the change.
    pub depth: u64,
}

/// Simulation outcome.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Completion time of the last task.
    pub makespan: f64,
    /// Total busy time of the compute stream.
    pub compute_busy: f64,
    /// Total busy time of the communication stream.
    pub comm_busy: f64,
    /// Busy time of *useful* model compute only.
    pub model_compute_busy: f64,
    /// `makespan - model_compute_busy`: compute-stall attributable to
    /// communication and scheduling overhead (paper §5.4).
    pub stall: f64,
    /// Per-task execution spans for timeline rendering and metrics.
    pub trace: Trace,
    /// Per-priority ready-queue depth over time (observability layer:
    /// exported as Chrome counter events by `embrace_sim trace`).
    pub comm_queue: Vec<QueueSample>,
}

impl SimResult {
    /// Fraction of the makespan a stream was busy (0.0 for an empty run).
    pub fn occupancy(&self, res: Res) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        match res {
            Res::Compute => self.compute_busy / self.makespan,
            Res::Comm => self.comm_busy / self.makespan,
        }
    }
}

#[derive(PartialEq)]
struct CommEntry {
    key: (i64, u64, usize), // (priority, ready_seq, id) — min first
}

impl Eq for CommEntry {}
impl Ord for CommEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key) // reverse: BinaryHeap is a max-heap
    }
}
impl PartialOrd for CommEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A DAG of tasks plus a communication-ordering policy.
#[derive(Clone, Debug)]
pub struct Sim {
    tasks: Vec<Task>,
    order: CommOrder,
}

impl Sim {
    pub fn new(order: CommOrder) -> Self {
        Sim { tasks: Vec::new(), order }
    }

    /// Add a task; returns its id for use in successors' `deps`.
    pub fn add(&mut self, task: Task) -> TaskId {
        for &d in &task.deps {
            assert!(d < self.tasks.len(), "dependency {d} does not exist yet");
        }
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id]
    }

    /// Execute the DAG; panics on dependency cycles (impossible by
    /// construction since `add` only accepts already-created deps).
    pub fn run(&self) -> SimResult {
        let n = self.tasks.len();
        let mut indegree: Vec<usize> = vec![0; n];
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, t) in self.tasks.iter().enumerate() {
            indegree[id] = t.deps.len();
            for &d in &t.deps {
                succs[d].push(id);
            }
        }

        let mut ready_seq: u64 = 0;
        // Compute stream runs in program (id) order among ready tasks: the
        // GPU executes kernels in the order the framework launched them.
        let mut ready_compute: BinaryHeap<std::cmp::Reverse<usize>> = BinaryHeap::new();
        let mut ready_comm: BinaryHeap<CommEntry> = BinaryHeap::new();
        let order = self.order;
        // Observability: per-priority ready-queue depth, sampled on every
        // enqueue/dequeue of the comm stream.
        let mut depths: BTreeMap<i64, u64> = BTreeMap::new();
        let mut samples: Vec<QueueSample> = Vec::new();
        let push_ready = |id: usize,
                          now: f64,
                          seq: &mut u64,
                          rc: &mut BinaryHeap<std::cmp::Reverse<usize>>,
                          rq: &mut BinaryHeap<CommEntry>,
                          depths: &mut BTreeMap<i64, u64>,
                          samples: &mut Vec<QueueSample>,
                          tasks: &[Task]| {
            match tasks[id].res {
                Res::Compute => rc.push(std::cmp::Reverse(id)),
                Res::Comm => {
                    let pr = match order {
                        CommOrder::Fifo => 0,
                        CommOrder::Priority | CommOrder::Preemptive => tasks[id].priority,
                    };
                    rq.push(CommEntry { key: (pr, *seq, id) });
                    *seq += 1;
                    let d = depths.entry(pr).or_insert(0);
                    *d += 1;
                    samples.push(QueueSample { t: now, priority: pr, depth: *d });
                }
            }
        };

        for (id, &deg) in indegree.iter().enumerate() {
            if deg == 0 {
                push_ready(
                    id,
                    0.0,
                    &mut ready_seq,
                    &mut ready_compute,
                    &mut ready_comm,
                    &mut depths,
                    &mut samples,
                    &self.tasks,
                );
            }
        }

        let mut now = 0.0_f64;
        // Occupied stream slots: (end time, task id, span start, priority).
        let mut run_compute: Option<(f64, TaskId, f64)> = None;
        let mut run_comm: Option<(f64, TaskId, f64, i64)> = None;
        // Remaining duration per task (preemption may split execution).
        let mut remaining: Vec<f64> = self.tasks.iter().map(|t| t.dur).collect();
        let mut spans: Vec<Span> = Vec::with_capacity(n);
        let mut done = 0usize;
        let (mut compute_busy, mut comm_busy, mut model_busy) = (0.0, 0.0, 0.0);

        loop {
            // Preemption (PACE-style extension): a strictly more urgent
            // ready collective suspends the one on the wire; the remainder
            // is requeued and resumes later.
            if order == CommOrder::Preemptive {
                if let (Some((end, id, start, pr)), Some(entry)) = (run_comm, ready_comm.peek()) {
                    if entry.key.0 < pr {
                        remaining[id] = end - now;
                        if now > start {
                            comm_busy += now - start;
                            spans.push(Span {
                                task: id,
                                name: self.tasks[id].name.clone(),
                                res: Res::Comm,
                                start,
                                end: now,
                            });
                        }
                        let pr = self.tasks[id].priority;
                        ready_comm.push(CommEntry { key: (pr, ready_seq, id) });
                        ready_seq += 1;
                        let d = depths.entry(pr).or_insert(0);
                        *d += 1;
                        samples.push(QueueSample { t: now, priority: pr, depth: *d });
                        run_comm = None;
                    }
                }
            }

            // Fill free slots at `now`.
            if run_compute.is_none() {
                if let Some(std::cmp::Reverse(id)) = ready_compute.pop() {
                    run_compute = Some((now + remaining[id], id, now));
                }
            }
            if run_comm.is_none() {
                if let Some(entry) = ready_comm.pop() {
                    let id = entry.key.2;
                    run_comm = Some((now + remaining[id], id, now, entry.key.0));
                    let d = depths.entry(entry.key.0).or_insert(1);
                    *d -= 1;
                    samples.push(QueueSample { t: now, priority: entry.key.0, depth: *d });
                }
            }

            // Advance to the earliest completion.
            let next = match (run_compute, run_comm) {
                (None, None) => break,
                (Some((e, ..)), None) => e,
                (None, Some((e, ..))) => e,
                (Some((a, ..)), Some((b, ..))) => a.min(b),
            };
            now = next;

            // Complete whichever stream(s) finish exactly now.
            if let Some((end, id, start)) = run_compute {
                if end <= now {
                    let t = &self.tasks[id];
                    compute_busy += end - start;
                    if t.model_compute {
                        model_busy += end - start;
                    }
                    spans.push(Span {
                        task: id,
                        name: t.name.clone(),
                        res: Res::Compute,
                        start,
                        end,
                    });
                    done += 1;
                    for &s in &succs[id] {
                        indegree[s] -= 1;
                        if indegree[s] == 0 {
                            push_ready(
                                s,
                                now,
                                &mut ready_seq,
                                &mut ready_compute,
                                &mut ready_comm,
                                &mut depths,
                                &mut samples,
                                &self.tasks,
                            );
                        }
                    }
                    run_compute = None;
                }
            }
            if let Some((end, id, start, _)) = run_comm {
                if end <= now {
                    let t = &self.tasks[id];
                    comm_busy += end - start;
                    spans.push(Span { task: id, name: t.name.clone(), res: Res::Comm, start, end });
                    done += 1;
                    for &s in &succs[id] {
                        indegree[s] -= 1;
                        if indegree[s] == 0 {
                            push_ready(
                                s,
                                now,
                                &mut ready_seq,
                                &mut ready_compute,
                                &mut ready_comm,
                                &mut depths,
                                &mut samples,
                                &self.tasks,
                            );
                        }
                    }
                    run_comm = None;
                }
            }
        }

        assert_eq!(done, n, "deadlock: {} of {n} tasks completed (cyclic deps?)", done);
        let makespan = spans.iter().map(|s| s.end).fold(0.0, f64::max);
        SimResult {
            makespan,
            compute_busy,
            comm_busy,
            model_compute_busy: model_busy,
            stall: makespan - model_busy,
            trace: Trace { spans },
            comm_queue: samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sim() {
        let r = Sim::new(CommOrder::Fifo).run();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.stall, 0.0);
    }

    #[test]
    fn serial_chain_sums_durations() {
        let mut s = Sim::new(CommOrder::Fifo);
        let a = s.add(Task::compute("a", 1.0));
        let b = s.add(Task::comm("b", 2.0, 0).after([a]));
        let _c = s.add(Task::compute("c", 3.0).after([b]));
        let r = s.run();
        assert!((r.makespan - 6.0).abs() < 1e-12);
        assert!((r.model_compute_busy - 4.0).abs() < 1e-12);
        assert!((r.stall - 2.0).abs() < 1e-12);
    }

    #[test]
    fn independent_streams_overlap() {
        let mut s = Sim::new(CommOrder::Fifo);
        s.add(Task::compute("fp", 5.0));
        s.add(Task::comm("net", 5.0, 0));
        let r = s.run();
        assert!((r.makespan - 5.0).abs() < 1e-12, "compute and comm must overlap");
        assert_eq!(r.stall, 0.0);
    }

    #[test]
    fn compute_stream_serialises() {
        let mut s = Sim::new(CommOrder::Fifo);
        s.add(Task::compute("k1", 1.0));
        s.add(Task::compute("k2", 1.0));
        let r = s.run();
        assert!((r.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fifo_runs_in_ready_order() {
        // Two comms become ready at t=0; FIFO runs the first-added first
        // even when the second has better priority.
        let mut s = Sim::new(CommOrder::Fifo);
        s.add(Task::comm("low-prio-first", 1.0, 10));
        s.add(Task::comm("high-prio-second", 1.0, 0));
        let r = s.run();
        let first = r.trace.spans.iter().find(|sp| sp.start == 0.0).unwrap();
        assert_eq!(first.name, "low-prio-first");
    }

    #[test]
    fn priority_queue_reorders() {
        let mut s = Sim::new(CommOrder::Priority);
        s.add(Task::comm("low", 1.0, 10));
        s.add(Task::comm("high", 1.0, 0));
        let r = s.run();
        let first = r.trace.spans.iter().find(|sp| sp.start == 0.0).unwrap();
        assert_eq!(first.name, "high");
    }

    #[test]
    fn priority_cannot_preempt_running_comm() {
        // "low" starts at t=0 (only ready task); "high" becomes ready at
        // t=1 but must wait until "low" finishes at t=5.
        let mut s = Sim::new(CommOrder::Priority);
        s.add(Task::comm("low", 5.0, 10));
        let gate = s.add(Task::compute("bp", 1.0));
        s.add(Task::comm("high", 1.0, 0).after([gate]));
        let r = s.run();
        let high = r.trace.spans.iter().find(|sp| sp.name == "high").unwrap();
        assert!((high.start - 5.0).abs() < 1e-12);
    }

    #[test]
    fn scheduling_changes_makespan_like_fig6() {
        // While an early collective occupies the network, BP finishes grads
        // A (needed late in next FP) and B (needed first). Both are queued
        // when the network frees: FIFO sends A then B, priority sends B
        // first, unblocking the next FP earlier — the Fig. 6a vs 6b effect.
        let build = |order| {
            let mut s = Sim::new(order);
            let bp0 = s.add(Task::compute("bp0", 1.0));
            let _comm0 = s.add(Task::comm("comm0", 2.0, 1).after([bp0]));
            let bp_a = s.add(Task::compute("bp_a", 1.0).after([bp0]));
            let bp_b = s.add(Task::compute("bp_b", 1.0).after([bp_a]));
            let comm_a = s.add(Task::comm("comm_a", 4.0, 5).after([bp_a]));
            let comm_b = s.add(Task::comm("comm_b", 4.0, 0).after([bp_b]));
            let fp_b = s.add(Task::compute("fp_b", 1.0).after([comm_b]));
            let _fp_a = s.add(Task::compute("fp_a", 1.0).after([comm_a, fp_b]));
            s
        };
        let fifo = build(CommOrder::Fifo).run();
        let prio = build(CommOrder::Priority).run();
        assert!(
            prio.makespan < fifo.makespan,
            "priority {p} must beat FIFO {f}",
            p = prio.makespan,
            f = fifo.makespan
        );
    }

    #[test]
    fn overhead_tasks_count_as_stall() {
        let mut s = Sim::new(CommOrder::Fifo);
        s.add(Task::compute("bp", 2.0));
        s.add(Task::overhead("vertical-sched", 1.0));
        let r = s.run();
        assert!((r.model_compute_busy - 2.0).abs() < 1e-12);
        assert!((r.stall - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_dependency_rejected() {
        let mut s = Sim::new(CommOrder::Fifo);
        s.add(Task::compute("a", 1.0).after([3]));
    }

    #[test]
    fn queue_depth_samples_balance_out() {
        let mut s = Sim::new(CommOrder::Priority);
        let bp = s.add(Task::compute("bp", 1.0));
        s.add(Task::comm("a", 1.0, 2).after([bp]));
        s.add(Task::comm("b", 1.0, 2).after([bp]));
        s.add(Task::comm("c", 1.0, 0).after([bp]));
        let r = s.run();
        // Every enqueue has a matching dequeue: final depth per priority
        // is zero, and depth never goes negative (u64 would wrap loudly).
        let last_depth_p2 = r.comm_queue.iter().rfind(|q| q.priority == 2);
        assert_eq!(last_depth_p2.map(|q| q.depth), Some(0));
        // Both p=2 collectives were queued before either ran (they become
        // ready together at t=1 while p=0 wins the wire), so depth 2 is
        // observed.
        let max_p2 = r.comm_queue.iter().filter(|q| q.priority == 2).map(|q| q.depth).max();
        assert_eq!(max_p2, Some(2));
        // Samples are in non-decreasing time order.
        assert!(r.comm_queue.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn fifo_folds_priorities_into_one_class() {
        let mut s = Sim::new(CommOrder::Fifo);
        s.add(Task::comm("x", 1.0, 7));
        s.add(Task::comm("y", 1.0, -3));
        let r = s.run();
        assert!(r.comm_queue.iter().all(|q| q.priority == 0), "{:?}", r.comm_queue);
    }

    #[test]
    fn occupancy_matches_busy_fractions() {
        let mut s = Sim::new(CommOrder::Fifo);
        s.add(Task::compute("fp", 3.0));
        s.add(Task::comm("net", 1.0, 0));
        let r = s.run();
        assert!((r.occupancy(Res::Compute) - 1.0).abs() < 1e-12);
        assert!((r.occupancy(Res::Comm) - 1.0 / 3.0).abs() < 1e-12);
        let empty = Sim::new(CommOrder::Fifo).run();
        assert_eq!(empty.occupancy(Res::Comm), 0.0);
    }
}

#[cfg(test)]
mod preemptive_tests {
    use super::*;

    /// A long low-priority collective is on the wire when an urgent one
    /// becomes ready: preemption lets the urgent one cut in.
    fn scenario(order: CommOrder) -> SimResult {
        let mut s = Sim::new(order);
        s.add(Task::comm("bulk", 10.0, 100));
        let bp = s.add(Task::compute("bp", 1.0));
        let urgent = s.add(Task::comm("urgent", 1.0, 0).after([bp]));
        s.add(Task::compute("fp", 1.0).after([urgent]));
        s.run()
    }

    #[test]
    fn preemption_unblocks_urgent_comm() {
        let prio = scenario(CommOrder::Priority);
        let pre = scenario(CommOrder::Preemptive);
        // Non-preemptive: fp waits for bulk (10) + urgent (1) + fp (1).
        assert!((prio.makespan - 12.0).abs() < 1e-9, "got {}", prio.makespan);
        // Preemptive: bulk is suspended at t=1; urgent runs 1..2; fp 2..3;
        // bulk resumes 2..11.
        assert!((pre.makespan - 11.0).abs() < 1e-9, "got {}", pre.makespan);
        let fp = pre.trace.first_start("fp").unwrap();
        assert!((fp - 2.0).abs() < 1e-9);
    }

    #[test]
    fn preempted_task_total_time_is_preserved() {
        let pre = scenario(CommOrder::Preemptive);
        // "bulk" executed in two spans totalling its full duration.
        let total: f64 =
            pre.trace.spans.iter().filter(|sp| sp.name == "bulk").map(|sp| sp.dur()).sum();
        assert!((total - 10.0).abs() < 1e-9, "split spans must sum to dur, got {total}");
        let n_spans = pre.trace.spans.iter().filter(|sp| sp.name == "bulk").count();
        assert_eq!(n_spans, 2, "expected exactly one preemption");
        // Busy accounting matches.
        assert!((pre.comm_busy - 11.0).abs() < 1e-9);
    }

    #[test]
    fn equal_priority_does_not_preempt() {
        let mut s = Sim::new(CommOrder::Preemptive);
        s.add(Task::comm("first", 5.0, 1));
        let bp = s.add(Task::compute("bp", 1.0));
        s.add(Task::comm("same-prio", 1.0, 1).after([bp]));
        let r = s.run();
        let spans: Vec<&Span> = r.trace.spans.iter().filter(|sp| sp.name == "first").collect();
        assert_eq!(spans.len(), 1, "no preemption between equal priorities");
    }

    #[test]
    fn preemptive_never_slower_than_priority() {
        // On the fig6-style scenario preemption can only help.
        let build = |order| {
            let mut s = Sim::new(order);
            let bp0 = s.add(Task::compute("bp0", 1.0));
            let _c0 = s.add(Task::comm("comm0", 6.0, 3).after([bp0]));
            let bp1 = s.add(Task::compute("bp1", 1.0).after([bp0]));
            let c1 = s.add(Task::comm("comm1", 2.0, 0).after([bp1]));
            s.add(Task::compute("fp", 1.0).after([c1]));
            s.run()
        };
        let prio = build(CommOrder::Priority);
        let pre = build(CommOrder::Preemptive);
        assert!(pre.makespan <= prio.makespan + 1e-12);
        assert!(pre.makespan < prio.makespan, "this scenario must actually improve");
    }

    #[test]
    fn multiple_preemptions_of_same_task() {
        let mut s = Sim::new(CommOrder::Preemptive);
        s.add(Task::comm("bulk", 10.0, 100));
        let mut prev = None;
        for k in 0..3 {
            let bp = match prev {
                None => s.add(Task::compute(format!("bp{k}"), 1.0)),
                Some(p) => s.add(Task::compute(format!("bp{k}"), 1.0).after([p])),
            };
            s.add(Task::comm(format!("urgent{k}"), 0.5, 0).after([bp]));
            prev = Some(bp);
        }
        let r = s.run();
        let total: f64 =
            r.trace.spans.iter().filter(|sp| sp.name == "bulk").map(|sp| sp.dur()).sum();
        assert!((total - 10.0).abs() < 1e-9);
        assert_eq!(r.trace.spans.iter().filter(|sp| sp.name == "bulk").count(), 4);
    }
}
