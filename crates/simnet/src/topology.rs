//! Cluster topology: nodes, GPUs per node, link bandwidths and latencies.
//!
//! The paper evaluates on two 16-GPU clusters (§5.2.1): 4 nodes × 4
//! RTX3090 (24 GB) and 4 nodes × 4 RTX2080 (8 GB), both on 100 Gbps
//! InfiniBand with two Xeon 4214R CPUs per node. We encode those shapes,
//! plus the "4 nodes × 1 GPU" variant of Fig. 4b.

/// GPU model of a homogeneous cluster. Determines compute-cost calibration
/// (in `embrace-models`) and intra-node link speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GpuKind {
    /// NVIDIA GeForce RTX 3090, 24 GB — PCIe 4.0 x16 host link.
    Rtx3090,
    /// NVIDIA GeForce RTX 2080, 8 GB — PCIe 3.0 x16 host link.
    Rtx2080,
}

impl GpuKind {
    pub fn name(&self) -> &'static str {
        match self {
            GpuKind::Rtx3090 => "RTX3090",
            GpuKind::Rtx2080 => "RTX2080",
        }
    }
}

/// Link parameters of the α–β model: `time(bytes) = β + bytes / bw_eff`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkParams {
    /// Inter-node NIC bandwidth in bytes/sec (shared by all GPUs of a node).
    pub inter_bw: f64,
    /// Intra-node (PCIe/host) bandwidth in bytes/sec between two local GPUs.
    pub intra_bw: f64,
    /// Per-message startup latency β in seconds.
    pub latency: f64,
    /// Message size (bytes) at which a flow reaches half the nominal link
    /// bandwidth; models protocol ramp-up so small messages underutilise
    /// links (the effect the paper blames for ByteScheduler's partitioning
    /// overhead and OmniReduce's many small blocks, §4.2.1 / §4.1.2).
    pub half_ramp_bytes: f64,
    /// Effective host-memory bandwidth for CPU-side parameter-server row
    /// scatter/gather. The paper's testbeds differ here: the RTX3090
    /// nodes have six DDR4 DIMMs, the RTX2080 nodes only three (§5.2.1),
    /// and the paper blames slow RAM for BytePS/Parallax losses (§5.3).
    pub host_bw: f64,
}

impl NetworkParams {
    /// 100 Gbps InfiniBand (≈ 11 GB/s effective) + PCIe 4.0-class intra-node
    /// links, the RTX3090 testbed.
    pub fn infiniband_pcie4() -> Self {
        NetworkParams {
            inter_bw: 11.0e9,
            intra_bw: 20.0e9,
            latency: 30e-6,
            half_ramp_bytes: 128.0 * 1024.0,
            host_bw: 3.5e9,
        }
    }

    /// 100 Gbps InfiniBand + PCIe 3.0 intra-node links, the RTX2080 testbed.
    /// The paper notes this cluster has slower RAM and lower intra-node
    /// bandwidth (§5.3), which we reflect in `intra_bw`.
    pub fn infiniband_pcie3() -> Self {
        NetworkParams {
            inter_bw: 11.0e9,
            intra_bw: 9.0e9,
            latency: 35e-6,
            half_ramp_bytes: 128.0 * 1024.0,
            host_bw: 1.8e9,
        }
    }

    /// Effective bandwidth of a `bw` link for a message of `bytes`:
    /// `bw * bytes / (bytes + half_ramp)`. Monotonically increasing in
    /// message size; half the nominal bandwidth at `half_ramp_bytes`.
    pub fn bw_eff(&self, bw: f64, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return bw; // zero-byte messages cost only β
        }
        bw * bytes / (bytes + self.half_ramp_bytes)
    }
}

/// A homogeneous cluster of `nodes × gpus_per_node` workers with ranks
/// assigned node-major (ranks 0..w on node 0, etc.), matching
/// MPI/Horovod's default placement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cluster {
    pub nodes: usize,
    pub gpus_per_node: usize,
    pub gpu: GpuKind,
    pub net: NetworkParams,
}

impl Cluster {
    /// The paper's RTX3090 testbed restricted to `world` GPUs, filling
    /// nodes of 4 first (4 GPUs → 1 node, 8 → 2 nodes, 16 → 4 nodes).
    pub fn rtx3090(world: usize) -> Self {
        Self::packed(world, 4, GpuKind::Rtx3090, NetworkParams::infiniband_pcie4())
    }

    /// The paper's RTX2080 testbed restricted to `world` GPUs.
    pub fn rtx2080(world: usize) -> Self {
        Self::packed(world, 4, GpuKind::Rtx2080, NetworkParams::infiniband_pcie3())
    }

    /// Fig. 4a topology: 2 nodes × 4 RTX3090.
    pub fn fig4a() -> Self {
        Cluster {
            nodes: 2,
            gpus_per_node: 4,
            gpu: GpuKind::Rtx3090,
            net: NetworkParams::infiniband_pcie4(),
        }
    }

    /// Fig. 4b topology: 4 nodes × 1 RTX3090.
    pub fn fig4b() -> Self {
        Cluster {
            nodes: 4,
            gpus_per_node: 1,
            gpu: GpuKind::Rtx3090,
            net: NetworkParams::infiniband_pcie4(),
        }
    }

    fn packed(world: usize, per_node: usize, gpu: GpuKind, net: NetworkParams) -> Self {
        assert!(world > 0, "cluster needs at least one GPU");
        if world <= per_node {
            Cluster { nodes: 1, gpus_per_node: world, gpu, net }
        } else {
            assert!(world.is_multiple_of(per_node), "world size must fill whole nodes");
            Cluster { nodes: world / per_node, gpus_per_node: per_node, gpu, net }
        }
    }

    /// Total number of GPU workers, the paper's `N`.
    pub fn world(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        assert!(rank < self.world(), "rank {rank} out of range");
        rank / self.gpus_per_node
    }

    /// Whether two ranks share a node (and therefore use the intra link).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Nominal point-to-point bandwidth between two ranks. Inter-node flows
    /// share the node NIC among the node's GPUs.
    pub fn link_bw(&self, a: usize, b: usize) -> f64 {
        if self.same_node(a, b) {
            self.net.intra_bw
        } else {
            self.net.inter_bw / self.gpus_per_node as f64
        }
    }

    /// The slowest point-to-point bandwidth any collective over the full
    /// cluster must traverse — the `B` of the paper's Table 2 analysis.
    pub fn bottleneck_bw(&self) -> f64 {
        if self.nodes == 1 {
            self.net.intra_bw
        } else {
            f64::min(self.net.intra_bw, self.net.inter_bw / self.gpus_per_node as f64)
        }
    }

    /// Startup latency β.
    pub fn latency(&self) -> f64 {
        self.net.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_cluster_shapes() {
        assert_eq!(Cluster::rtx3090(4).nodes, 1);
        assert_eq!(Cluster::rtx3090(4).gpus_per_node, 4);
        assert_eq!(Cluster::rtx3090(8).nodes, 2);
        assert_eq!(Cluster::rtx3090(16).nodes, 4);
        assert_eq!(Cluster::rtx3090(16).world(), 16);
        assert_eq!(Cluster::rtx2080(16).gpu, GpuKind::Rtx2080);
    }

    #[test]
    fn small_worlds_fit_one_node() {
        let c = Cluster::rtx3090(2);
        assert_eq!(c.nodes, 1);
        assert_eq!(c.gpus_per_node, 2);
    }

    #[test]
    #[should_panic(expected = "whole nodes")]
    fn ragged_world_panics() {
        Cluster::rtx3090(6);
    }

    #[test]
    fn rank_to_node_mapping() {
        let c = Cluster::rtx3090(16);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(3), 0);
        assert_eq!(c.node_of(4), 1);
        assert_eq!(c.node_of(15), 3);
        assert!(c.same_node(4, 7));
        assert!(!c.same_node(3, 4));
    }

    #[test]
    fn link_bandwidths() {
        let c = Cluster::rtx3090(16);
        assert_eq!(c.link_bw(0, 1), c.net.intra_bw);
        assert_eq!(c.link_bw(0, 4), c.net.inter_bw / 4.0);
        // Single-node cluster bottleneck is the intra link.
        assert_eq!(Cluster::rtx3090(4).bottleneck_bw(), c.net.intra_bw);
        // Multi-node bottleneck is the shared NIC.
        assert_eq!(c.bottleneck_bw(), c.net.inter_bw / 4.0);
        // Fig. 4b: one GPU per node gets the whole NIC.
        assert_eq!(Cluster::fig4b().bottleneck_bw(), Cluster::fig4b().net.inter_bw);
    }

    #[test]
    fn bw_eff_monotone_and_bounded() {
        let p = NetworkParams::infiniband_pcie4();
        let small = p.bw_eff(p.inter_bw, 1024.0);
        let big = p.bw_eff(p.inter_bw, 1e9);
        assert!(small < big);
        assert!(big <= p.inter_bw);
        // Half bandwidth exactly at the half-ramp size.
        let half = p.bw_eff(p.inter_bw, p.half_ramp_bytes);
        assert!((half - p.inter_bw / 2.0).abs() < 1.0);
        // Zero-byte message: nominal bandwidth (time is pure latency).
        assert_eq!(p.bw_eff(p.inter_bw, 0.0), p.inter_bw);
    }
}
