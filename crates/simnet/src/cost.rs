//! Communication-cost functions.
//!
//! Two layers:
//!
//! * [`analytic`] — the *exact* closed forms of the paper's Table 2,
//!   parameterised by (α, M, N, n, S, B, β). Used by tests and by the
//!   `table2` bench binary to print the paper's comparison.
//! * [`CostModel`] — the practical model used by the training simulator.
//!   It refines Table 2 with the cluster's actual traffic pattern: a ring
//!   AllReduce crosses each node NIC once per direction, whereas AlltoAll
//!   and AllGather flows from all of a node's GPUs *share* that NIC; and
//!   per-message effective bandwidth (`bw_eff`) makes small messages
//!   underutilise links (§4.1.2's "practical training scenario" caveat).
//!   With one GPU per node and no bandwidth ramp, every form below reduces
//!   exactly to its Table 2 counterpart — see the tests.

use crate::topology::Cluster;

/// Closed-form costs of Table 2. `alpha` is gradient density (α), `m_bytes`
/// the dense tensor size (M), `world` the GPU count (N), `bw` the uniform
/// bandwidth (B, bytes/s) and `beta` the startup latency (β, s).
pub mod analytic {
    /// AlltoAll: `2(N-1)(αM/(NB) + β)` — both per-step calls (lookup
    /// redistribution + gradient exchange).
    pub fn alltoall(alpha: f64, m_bytes: f64, world: f64, bw: f64, beta: f64) -> f64 {
        2.0 * (world - 1.0) * (alpha * m_bytes / (world * bw) + beta)
    }

    /// Ring AllReduce on the dense tensor: `2(N-1)(M/(NB) + β)`.
    pub fn allreduce(m_bytes: f64, world: f64, bw: f64, beta: f64) -> f64 {
        2.0 * (world - 1.0) * (m_bytes / (world * bw) + beta)
    }

    /// Parameter server with `servers` shards: `2N(αM/(SB) + β)`.
    pub fn ps(alpha: f64, m_bytes: f64, world: f64, servers: f64, bw: f64, beta: f64) -> f64 {
        2.0 * world * (alpha * m_bytes / (servers * bw) + beta)
    }

    /// AllGather of the sparse tensor: `(N-1)(αM/B + β)`.
    pub fn allgather(alpha: f64, m_bytes: f64, world: f64, bw: f64, beta: f64) -> f64 {
        (world - 1.0) * (alpha * m_bytes / bw + beta)
    }

    /// Wire constants of the sparse-native split allreduce, mirroring
    /// `embrace-tensor`'s `INDEX_BYTES`/`F32_BYTES` and
    /// `embrace-collectives`' `SEG_HEADER_BYTES` (simnet deliberately
    /// depends on neither crate).
    pub const SSAR_INDEX_BYTES: f64 = 8.0;
    pub const SSAR_F32_BYTES: f64 = 4.0;
    pub const SSAR_SEG_HEADER_BYTES: f64 = 8.0;

    /// Expected density of the union of `k` independent per-rank row
    /// draws, each at density `delta`: `1 − (1−δ)^k`. Fractional `k` is
    /// meaningful — per-step stream counts are averaged over ranks when
    /// the world is not a power of two.
    pub fn union_density(delta: f64, k: f64) -> f64 {
        1.0 - (1.0 - delta.clamp(0.0, 1.0)).powf(k)
    }

    fn prev_pow2(n: usize) -> usize {
        debug_assert!(n >= 1);
        1 << (usize::BITS - 1 - n.leading_zeros())
    }

    /// Per-step expected wire bytes of the sparse-native split allreduce
    /// (SSAR) over a `vocab × dim` f32 embedding gradient at per-rank
    /// density `delta`, densifying a stream once its accumulated density
    /// reaches `crossover` (pass `f64::INFINITY` for never, `0.0` for
    /// always). Steps in critical-path order: fold-in (worlds that are
    /// not powers of two), `log₂ p` recursive-halving reduce-scatter
    /// exchanges, `log₂ p` recursive-doubling allgather exchanges,
    /// fold-out. At reduce-scatter step `j` a rank's stream aggregates
    /// `2^j · N/p` contributions over a `vocab/2^j` range and ships half
    /// of it; allgather segments all sit at the final union density.
    /// Mirrors `plan::sparse_allreduce_plan`'s byte accounting in
    /// expectation.
    pub fn sparse_allreduce_step_bytes(
        delta: f64,
        world: usize,
        vocab: f64,
        dim: f64,
        crossover: f64,
    ) -> Vec<f64> {
        if world <= 1 {
            return Vec::new();
        }
        let p = prev_pow2(world);
        let extra = world - p;
        let l = p.trailing_zeros() as i32;
        // Average contributing streams per surviving rank after fold-in.
        let kf = world as f64 / p as f64;
        let sparse_row = SSAR_INDEX_BYTES + dim * SSAR_F32_BYTES;
        let dense_row = dim * SSAR_F32_BYTES;
        // One segment of `rows` range at `density`: the crossover rule
        // picks the representation, exactly as `ops::mk_body` does.
        let seg = |rows: f64, density: f64| {
            SSAR_SEG_HEADER_BYTES
                + if density >= crossover { rows * dense_row } else { density * rows * sparse_row }
        };
        let mut steps = Vec::new();
        if extra > 0 {
            steps.push(seg(vocab, union_density(delta, 1.0)));
        }
        for j in 0..l {
            let density = union_density(delta, kf * f64::powi(2.0, j));
            steps.push(seg(vocab / f64::powi(2.0, j + 1), density));
        }
        let final_density = union_density(delta, world as f64);
        for j in 0..l {
            steps.push(f64::powi(2.0, j) * seg(vocab / p as f64, final_density));
        }
        if extra > 0 {
            steps.push(p as f64 * seg(vocab / p as f64, final_density));
        }
        steps
    }

    /// Closed-form SSAR time: one latency plus one bandwidth term per
    /// step of [`sparse_allreduce_step_bytes`].
    pub fn sparse_allreduce(
        delta: f64,
        world: usize,
        vocab: f64,
        dim: f64,
        crossover: f64,
        bw: f64,
        beta: f64,
    ) -> f64 {
        sparse_allreduce_step_bytes(delta, world, vocab, dim, crossover)
            .iter()
            .map(|b| beta + b / bw)
            .sum()
    }

    /// The per-rank density at which the never-densifying SSAR closed
    /// form intersects the dense ring [`allreduce`] on the same tensor:
    /// below it sparse-native wins, above it dense wins. Clamped to
    /// `[0, 1]`; returns 1.0 when sparse wins everywhere (latency-bound
    /// regimes, where SSAR's `2·log₂ N` steps beat the ring's `2(N−1)`).
    pub fn sparse_crossover_density(world: usize, vocab: f64, dim: f64, bw: f64, beta: f64) -> f64 {
        let dense = allreduce(vocab * dim * SSAR_F32_BYTES, world as f64, bw, beta);
        let gap = |d: f64| sparse_allreduce(d, world, vocab, dim, f64::INFINITY, bw, beta) - dense;
        if gap(0.0) >= 0.0 {
            return 0.0;
        }
        if gap(1.0) <= 0.0 {
            return 1.0;
        }
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if gap(mid) <= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Which collective a communication task uses; carried in DES task metadata
/// and by the baselines when they emit communication operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Pairwise-exchange AlltoAll (sparse embedding plane of EmbRace).
    AlltoAll,
    /// Ring AllReduce (dense plane; Horovod's default).
    RingAllReduce,
    /// AllGather of sparse tensors (Horovod ≥0.22 sparse path).
    AllGather,
    /// Sharded parameter-server push+pull.
    ParamServer,
    /// OmniReduce-style block-sparse AllReduce.
    OmniReduce,
}

/// Practical cost model over a concrete cluster.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    pub cluster: Cluster,
    /// Block size (bytes) OmniReduce splits tensors into; the paper
    /// observes its "excessive divided messages" underutilise bandwidth.
    pub omnireduce_block: f64,
    /// Effective per-server processing bandwidth of CPU-side parameter
    /// servers. PS shards aggregate sparse rows in host memory, so they
    /// are RAM/memcpy bound rather than NIC bound — the paper's testbeds
    /// have slow RAM, which it blames for BytePS's losses (§5.3).
    pub ps_server_bw: f64,
}

impl CostModel {
    pub fn new(cluster: Cluster) -> Self {
        CostModel { cluster, omnireduce_block: 256.0 * 1024.0, ps_server_bw: cluster.net.host_bw }
    }

    fn beta(&self) -> f64 {
        self.cluster.latency()
    }

    /// Effective bandwidth of a link of nominal `bw` carrying messages of
    /// `msg` bytes.
    fn eff(&self, bw: f64, msg: f64) -> f64 {
        self.cluster.net.bw_eff(bw, msg)
    }

    /// One AlltoAll over `total_bytes` of payload distributed uniformly:
    /// every rank sends `total/N` to each peer. Latency: `(N-1)` exchange
    /// rounds. Bandwidth: the busier of the intra-node plane and the
    /// shared node NIC. (The paper's Table 2 counts both per-step AlltoAll
    /// calls, hence its leading 2; callers here emit the two calls
    /// separately.)
    pub fn alltoall(&self, total_bytes: f64) -> f64 {
        let n = self.cluster.world() as f64;
        if n <= 1.0 {
            return 0.0;
        }
        let w = self.cluster.gpus_per_node as f64;
        let msg = total_bytes / n;
        // Per-GPU bytes to local peers, over the intra link.
        let intra =
            if w > 1.0 { msg * (w - 1.0) / self.eff(self.cluster.net.intra_bw, msg) } else { 0.0 };
        // Per-NIC bytes to remote GPUs: w local senders × (N−w) remote peers.
        let inter = if self.cluster.nodes > 1 {
            msg * w * (n - w) / self.eff(self.cluster.net.inter_bw, msg)
        } else {
            0.0
        };
        (n - 1.0) * self.beta() + intra.max(inter)
    }

    /// AlltoAllv with explicit per-source-per-destination payloads
    /// (`bytes[i][j]` = bytes rank `i` sends to rank `j`). Executes the
    /// classic rotation schedule (round `r` pairs `i ↔ (i+r) mod N`); each
    /// round lasts as long as its slowest pair — this is what makes
    /// row-wise-partitioned (imbalanced) embeddings slow (§4.1.1).
    pub fn alltoallv(&self, bytes: &[Vec<f64>]) -> f64 {
        let n = self.cluster.world();
        assert_eq!(bytes.len(), n, "need one payload row per rank");
        let mut total = 0.0;
        for r in 1..n {
            let mut round = 0.0_f64;
            for (i, row) in bytes.iter().enumerate() {
                let j = (i + r) % n;
                let m = f64::max(row[j], bytes[j][i]);
                let bw = self.cluster.link_bw(i, j);
                let t = self.beta() + m / self.eff(bw, m);
                round = round.max(t);
            }
            total += round;
        }
        total
    }

    /// Ring AllReduce over a dense tensor of `dense_bytes`: reduce-scatter
    /// then all-gather, `2(N-1)` steps of `M/N` bytes. The ring is laid
    /// out to cross each node NIC exactly once per direction (NCCL-style),
    /// so the governing bandwidth is `min(intra, inter)` — the NIC is
    /// *not* divided among the node's GPUs.
    pub fn ring_allreduce(&self, dense_bytes: f64) -> f64 {
        let n = self.cluster.world() as f64;
        if n <= 1.0 {
            return 0.0;
        }
        let unit = dense_bytes / n;
        let bw = if self.cluster.nodes == 1 {
            self.cluster.net.intra_bw
        } else {
            f64::min(self.cluster.net.intra_bw, self.cluster.net.inter_bw)
        };
        2.0 * (n - 1.0) * (self.beta() + unit / self.eff(bw, unit))
    }

    /// AllGather of a sparse tensor of `sparse_bytes` per worker: every
    /// worker sends its full tensor to every other worker, so a node NIC
    /// carries `w × (N−w)` copies.
    pub fn allgather(&self, sparse_bytes: f64) -> f64 {
        let n = self.cluster.world() as f64;
        if n <= 1.0 {
            return 0.0;
        }
        let w = self.cluster.gpus_per_node as f64;
        let msg = sparse_bytes;
        let intra =
            if w > 1.0 { msg * (w - 1.0) / self.eff(self.cluster.net.intra_bw, msg) } else { 0.0 };
        // Per-NIC egress: each of the w local GPUs sends its full tensor to
        // every one of the (N−w) remote GPUs (ingress is symmetric).
        let inter = if self.cluster.nodes > 1 {
            msg * w * (n - w) / self.eff(self.cluster.net.inter_bw, msg)
        } else {
            0.0
        };
        (n - 1.0) * self.beta() + intra.max(inter)
    }

    /// Parameter-server push+pull of `sparse_bytes` with `servers` CPU-side
    /// shards: every worker moves `αM/S` to and from each shard, so each
    /// server processes `N·αM/S` per direction (Table 2's bandwidth term).
    /// Requests to the `S` servers are pipelined, so only two round-trip
    /// latencies sit on the critical path; the governing bandwidth is the
    /// lesser of the server link and its RAM-bound processing rate.
    pub fn ps(&self, sparse_bytes: f64, servers: usize) -> f64 {
        let n = self.cluster.world() as f64;
        let s = servers.max(1) as f64;
        let msg = sparse_bytes / s;
        let link = if self.cluster.nodes == 1 {
            self.cluster.net.intra_bw
        } else {
            self.cluster.net.inter_bw
        };
        let bw = link.min(self.ps_server_bw);
        2.0 * self.beta() + 2.0 * n * msg / self.eff(bw, msg)
    }

    /// BytePS-style hierarchical PS transfer: gradients are first reduced
    /// inside each node (NCCL ring over the `w` local GPUs), then one
    /// aggregated copy per node moves through the PS shards — this
    /// node-level aggregation is BytePS's core optimisation, without which
    /// dense PS traffic would scale with `N` instead of `n`.
    pub fn ps_hierarchical(&self, dense_bytes: f64, servers: usize) -> f64 {
        let s = servers.max(1) as f64;
        let w = self.cluster.gpus_per_node as f64;
        let nodes = self.cluster.nodes as f64;
        // Intra-node reduce + broadcast (ring over w GPUs, both phases).
        let intra = if w > 1.0 {
            2.0 * (w - 1.0) / w * dense_bytes / self.cluster.net.intra_bw
        } else {
            0.0
        };
        let msg = dense_bytes / s;
        // Dense chunks are contiguous buffers; server-side summation runs
        // at near-link speed (unlike the sparse row scatter of `ps`), so
        // the NIC governs.
        let bw = if self.cluster.nodes == 1 {
            self.cluster.net.intra_bw
        } else {
            self.cluster.net.inter_bw
        };
        2.0 * self.beta() + intra + 2.0 * nodes * msg / self.eff(bw, msg)
    }

    /// Hierarchical AllReduce (BlueConnect-style, related work §6):
    /// intra-node reduce-scatter, inter-node ring over one GPU per node,
    /// then intra-node all-gather. On multi-node clusters this shortens
    /// the latency chain from `2(N−1)` steps to `2(w−1) + 2(n−1)` while
    /// moving the same bytes, so it wins when β dominates (many small
    /// tensors) and roughly ties on bandwidth-bound transfers.
    pub fn hierarchical_allreduce(&self, dense_bytes: f64) -> f64 {
        let w = self.cluster.gpus_per_node as f64;
        let nodes = self.cluster.nodes as f64;
        if self.cluster.world() <= 1 {
            return 0.0;
        }
        if self.cluster.nodes == 1 {
            return self.ring_allreduce(dense_bytes);
        }
        // Intra phase: reduce-scatter + all-gather over w local GPUs.
        let intra_unit = dense_bytes / w.max(1.0);
        let intra = if w > 1.0 {
            2.0 * (w - 1.0)
                * (self.beta() + intra_unit / self.eff(self.cluster.net.intra_bw, intra_unit))
        } else {
            0.0
        };
        // Inter phase: ring over n node leaders on 1/w of the data each.
        let inter_bytes = dense_bytes / w.max(1.0);
        let inter_unit = inter_bytes / nodes;
        let inter = 2.0
            * (nodes - 1.0)
            * (self.beta() + inter_unit / self.eff(self.cluster.net.inter_bw, inter_unit));
        intra + inter
    }

    /// Sparse-native split allreduce (SSAR) of a `vocab × dim` f32
    /// embedding gradient at per-rank density `delta`, densifying once
    /// the accumulated stream density crosses `crossover`. The recursive
    /// halving/doubling exchanges cross node NICs pairwise like the ring,
    /// so `min(intra, inter)` governs and the per-step message size feeds
    /// the bandwidth ramp. Reduces exactly to
    /// [`analytic::sparse_allreduce`] on a uniform cluster.
    pub fn sparse_allreduce(&self, delta: f64, vocab: f64, dim: f64, crossover: f64) -> f64 {
        let n = self.cluster.world();
        if n <= 1 {
            return 0.0;
        }
        let bw = if self.cluster.nodes == 1 {
            self.cluster.net.intra_bw
        } else {
            f64::min(self.cluster.net.intra_bw, self.cluster.net.inter_bw)
        };
        analytic::sparse_allreduce_step_bytes(delta, n, vocab, dim, crossover)
            .iter()
            .map(|&b| self.beta() + b / self.eff(bw, b))
            .sum()
    }

    /// OmniReduce: ring AllReduce restricted to non-zero blocks. The payload
    /// shrinks to `density × dense_bytes` but travels in `omnireduce_block`-
    /// sized messages whose effective bandwidth is reduced, reproducing the
    /// paper's observation that it trails AlltoAll despite sparsity-awareness.
    pub fn omnireduce(&self, dense_bytes: f64, density: f64) -> f64 {
        let n = self.cluster.world() as f64;
        if n <= 1.0 {
            return 0.0;
        }
        let payload = dense_bytes * density.clamp(0.0, 1.0);
        let unit = payload / n;
        let bw = if self.cluster.nodes == 1 {
            self.cluster.net.intra_bw
        } else {
            f64::min(self.cluster.net.intra_bw, self.cluster.net.inter_bw)
        };
        let eff = self.eff(bw, self.omnireduce_block.min(unit.max(1.0)));
        // Each of the 2(N-1) ring steps moves `unit` bytes in `unit/block`
        // messages, each paying the startup latency.
        let msgs_per_step = (unit / self.omnireduce_block).max(1.0);
        2.0 * (n - 1.0) * (msgs_per_step * self.beta() + unit / eff)
    }

    /// Dispatch by collective kind; `bytes` is the sparse payload for
    /// AlltoAll/AllGather/PS/OmniReduce and the dense size for AllReduce.
    pub fn collective(
        &self,
        kind: CollectiveKind,
        bytes: f64,
        dense_bytes: f64,
        servers: usize,
    ) -> f64 {
        match kind {
            CollectiveKind::AlltoAll => self.alltoall(bytes),
            CollectiveKind::RingAllReduce => self.ring_allreduce(dense_bytes),
            CollectiveKind::AllGather => self.allgather(bytes),
            CollectiveKind::ParamServer => self.ps(bytes, servers),
            CollectiveKind::OmniReduce => {
                let density = if dense_bytes > 0.0 { (bytes / dense_bytes).min(1.0) } else { 0.0 };
                self.omnireduce(dense_bytes, density)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Cluster, GpuKind, NetworkParams};

    /// One GPU per node, uniform bandwidth, no ramp: the practical model
    /// must match the analytic Table 2 forms exactly.
    fn uniform_cluster(world: usize) -> Cluster {
        Cluster {
            nodes: world,
            gpus_per_node: 1,
            gpu: GpuKind::Rtx3090,
            net: NetworkParams {
                inter_bw: 1e9,
                intra_bw: 1e9,
                latency: 1e-5,
                half_ramp_bytes: 0.0,
                host_bw: 1e9,
            },
        }
    }

    #[test]
    fn alltoall_matches_table2() {
        let model = CostModel::new(uniform_cluster(8));
        let (alpha, m) = (0.1, 250e6);
        let two_calls = 2.0 * model.alltoall(alpha * m);
        let expect = analytic::alltoall(alpha, m, 8.0, 1e9, 1e-5);
        assert!((two_calls - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn allreduce_matches_table2() {
        let model = CostModel::new(uniform_cluster(8));
        let got = model.ring_allreduce(250e6);
        let expect = analytic::allreduce(250e6, 8.0, 1e9, 1e-5);
        assert!((got - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn allgather_matches_table2() {
        let model = CostModel::new(uniform_cluster(8));
        let got = model.allgather(0.1 * 250e6);
        let expect = analytic::allgather(0.1, 250e6, 8.0, 1e9, 1e-5);
        assert!((got - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn ps_matches_table2_bandwidth_term() {
        // The practical PS model pipelines server round-trips (2β instead
        // of Table 2's 2Nβ) but keeps the same bandwidth term 2NαM/(SB).
        let mut model = CostModel::new(uniform_cluster(8));
        model.ps_server_bw = 1e9; // match the uniform link
        let got = model.ps(0.1 * 250e6, 8);
        let expect_bw = analytic::ps(0.1, 250e6, 8.0, 8.0, 1e9, 0.0);
        assert!((got - (expect_bw + 2.0 * 1e-5)).abs() / expect_bw < 1e-9);
    }

    #[test]
    fn hierarchical_ps_beats_flat_ps_for_dense() {
        // BytePS's node-level aggregation: with 4 GPUs/node the flat PS
        // moves 4x the inter-node volume of the hierarchical one.
        let model = CostModel::new(Cluster::rtx3090(16));
        let bytes = 100e6;
        assert!(model.ps_hierarchical(bytes, 4) < model.ps(bytes, 4));
    }

    #[test]
    fn paper_ordering_sparse_tensors() {
        // For α << 1 on a multi-node cluster, the paper's ordering holds:
        // AlltoAll < PS < AllReduce, and AllGather is slowest at large N.
        let model = CostModel::new(Cluster::rtx3090(16));
        let m = 252.5e6; // GNMT-8 embedding
        let alpha = 0.1;
        let a2a = 2.0 * model.alltoall(alpha * m);
        let ar = model.ring_allreduce(m);
        let ag = model.allgather(alpha * m);
        let ps = model.ps(alpha * m, 4);
        assert!(a2a < ar, "alltoall {a2a} should beat dense allreduce {ar}");
        assert!(a2a < ps, "alltoall {a2a} should beat PS {ps}");
        assert!(a2a < ag, "alltoall {a2a} should beat allgather {ag}");
    }

    #[test]
    fn allgather_scales_linearly_with_world() {
        let m = 0.05 * 252.5e6;
        let t4 = CostModel::new(uniform_cluster(4)).allgather(m);
        let t16 = CostModel::new(uniform_cluster(16)).allgather(m);
        let ratio = t16 / t4;
        assert!(ratio > 4.5 && ratio < 5.5, "allgather should scale ~(N-1): {ratio}");
    }

    #[test]
    fn alltoall_scales_well_with_world() {
        let m = 0.05 * 252.5e6;
        let t4 = CostModel::new(uniform_cluster(4)).alltoall(m);
        let t16 = CostModel::new(uniform_cluster(16)).alltoall(m);
        // (N-1)/N bandwidth shape plus latency terms: going 4→16 should
        // stay well under 2×, unlike AllGather's ~5×.
        assert!(t16 / t4 < 2.0, "alltoall should scale nearly flat: {}", t16 / t4);
    }

    #[test]
    fn alltoallv_uniform_matches_rotation_bound() {
        let model = CostModel::new(uniform_cluster(4));
        let per = 1e6;
        let bytes = vec![vec![per; 4]; 4];
        let v = model.alltoallv(&bytes);
        let per_round = model.beta() + per / model.eff(1e9, per);
        assert!((v - 3.0 * per_round).abs() < 1e-12);
    }

    #[test]
    fn alltoallv_imbalance_costs_more() {
        let model = CostModel::new(uniform_cluster(4));
        let balanced = vec![vec![1e6; 4]; 4];
        let mut skewed = vec![vec![0.5e6; 4]; 4];
        for row in skewed.iter_mut() {
            row[0] = 2.5e6; // rank 0 holds the hot rows
        }
        let tb = model.alltoallv(&balanced);
        let ts = model.alltoallv(&skewed);
        assert!(ts > tb, "skewed {ts} should exceed balanced {tb}");
    }

    #[test]
    fn omnireduce_between_sparse_and_dense() {
        let model = CostModel::new(Cluster::fig4b());
        let m = 252.5e6;
        let dense = model.ring_allreduce(m);
        let omni_dense = model.omnireduce(m, 1.0);
        let omni_sparse = model.omnireduce(m, 0.05);
        assert!(omni_sparse < omni_dense, "sparsity must help OmniReduce");
        assert!(omni_dense >= dense * 0.9, "dense OmniReduce no faster than plain ring");
        let a2a = 2.0 * model.alltoall(0.05 * m);
        assert!(a2a < omni_sparse, "paper Fig4b: AlltoAll beats OmniReduce");
    }

    #[test]
    fn costs_monotone_in_payload() {
        let model = CostModel::new(Cluster::rtx3090(8));
        let mut last = 0.0;
        for mb in [1.0, 10.0, 100.0, 1000.0] {
            let t = model.alltoall(mb * 1e6);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn multi_gpu_nodes_share_nic_for_alltoall_but_not_ring() {
        // Same world size, 4 GPUs/node vs 1 GPU/node (same link params):
        // AlltoAll gets slower when flows share the NIC; ring AllReduce
        // crosses each NIC once regardless, so it stays comparable.
        let net = NetworkParams::infiniband_pcie4();
        let packed = Cluster { nodes: 2, gpus_per_node: 4, gpu: GpuKind::Rtx3090, net };
        let spread = Cluster { nodes: 8, gpus_per_node: 1, gpu: GpuKind::Rtx3090, net };
        let mp = CostModel::new(packed);
        let ms = CostModel::new(spread);
        let payload = 100e6;
        assert!(mp.alltoall(payload) > ms.alltoall(payload) * 0.99);
        let rp = mp.ring_allreduce(payload);
        let rs = ms.ring_allreduce(payload);
        assert!((rp - rs).abs() / rs < 0.6, "ring times should be same order: {rp} vs {rs}");
    }

    #[test]
    fn hierarchical_allreduce_beats_flat_ring_on_latency() {
        // Many small tensors: the shorter latency chain wins.
        let model = CostModel::new(Cluster::rtx3090(16));
        let small = 256.0 * 1024.0;
        assert!(model.hierarchical_allreduce(small) < model.ring_allreduce(small));
        // Large tensors: same order of magnitude (bandwidth-bound).
        let big = 500e6;
        let h = model.hierarchical_allreduce(big);
        let r = model.ring_allreduce(big);
        assert!(h < r * 1.5 && h > r * 0.3, "h={h} r={r}");
    }

    #[test]
    fn hierarchical_allreduce_degenerates_on_one_node() {
        let model = CostModel::new(Cluster::rtx3090(4));
        assert_eq!(model.hierarchical_allreduce(1e6), model.ring_allreduce(1e6));
    }

    #[test]
    fn union_density_is_exact_and_monotone() {
        assert!((analytic::union_density(0.3, 1.0) - 0.3).abs() < 1e-12);
        // Two independent draws: 1 − (1−δ)² = 2δ − δ².
        assert!((analytic::union_density(0.25, 2.0) - (0.5 - 0.0625)).abs() < 1e-12);
        let mut last = 0.0;
        for k in [1.0, 1.5, 2.0, 4.0, 16.0, 256.0] {
            let d = analytic::union_density(0.1, k);
            assert!(d > last && d <= 1.0, "k={k}: {d}");
            last = d;
        }
    }

    #[test]
    fn sparse_allreduce_matches_analytic_on_uniform_cluster() {
        for world in [2usize, 3, 4, 8, 16] {
            let model = CostModel::new(uniform_cluster(world));
            for delta in [1e-4, 1e-2, 0.3, 1.0] {
                for crossover in [f64::INFINITY, 0.25, 0.0] {
                    let got = model.sparse_allreduce(delta, 1e6, 64.0, crossover);
                    let expect =
                        analytic::sparse_allreduce(delta, world, 1e6, 64.0, crossover, 1e9, 1e-5);
                    assert!(
                        (got - expect).abs() / expect < 1e-9,
                        "w={world} d={delta} x={crossover}: {got} vs {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_allreduce_cost_shape() {
        // Monotone in density; never-densify beats forced-dense at low
        // density and loses to it at full density (index overhead).
        let (vocab, dim) = (1e6, 64.0);
        let mut last = 0.0;
        for delta in [1e-4, 1e-3, 1e-2, 0.1, 1.0] {
            let t = analytic::sparse_allreduce(delta, 8, vocab, dim, f64::INFINITY, 1e9, 1e-5);
            assert!(t > last, "delta={delta}");
            last = t;
        }
        let sparse_lo = analytic::sparse_allreduce(1e-3, 8, vocab, dim, f64::INFINITY, 1e9, 1e-5);
        let dense_lo = analytic::sparse_allreduce(1e-3, 8, vocab, dim, 0.0, 1e9, 1e-5);
        assert!(sparse_lo < dense_lo, "{sparse_lo} vs {dense_lo}");
        let sparse_hi = analytic::sparse_allreduce(1.0, 8, vocab, dim, f64::INFINITY, 1e9, 1e-5);
        let dense_hi = analytic::sparse_allreduce(1.0, 8, vocab, dim, 0.0, 1e9, 1e-5);
        assert!(sparse_hi > dense_hi, "{sparse_hi} vs {dense_hi}");
    }

    #[test]
    fn sparse_crossover_density_sits_on_the_intersection() {
        let (vocab, dim, bw, beta) = (1e6, 64.0, 1e9, 1e-5);
        for world in [2usize, 4, 8, 16] {
            let star = analytic::sparse_crossover_density(world, vocab, dim, bw, beta);
            assert!(star > 0.0 && star < 1.0, "w={world}: {star}");
            let dense =
                analytic::allreduce(vocab * dim * analytic::SSAR_F32_BYTES, world as f64, bw, beta);
            let at =
                |d: f64| analytic::sparse_allreduce(d, world, vocab, dim, f64::INFINITY, bw, beta);
            assert!((at(star) - dense).abs() / dense < 1e-6, "w={world}");
            assert!(at(star * 0.9) < dense, "w={world}: sparse must win below the crossover");
            assert!(at((star * 1.1).min(1.0)) > dense, "w={world}: dense must win above it");
        }
    }

    #[test]
    fn single_worker_costs_nothing() {
        let model = CostModel::new(Cluster::rtx3090(1));
        assert_eq!(model.alltoall(1e6), 0.0);
        assert_eq!(model.ring_allreduce(1e6), 0.0);
        assert_eq!(model.allgather(1e6), 0.0);
        assert_eq!(model.hierarchical_allreduce(1e6), 0.0);
        assert_eq!(model.sparse_allreduce(0.1, 1e6, 64.0, 0.5), 0.0);
    }
}
