//! Multi-worker discrete-event simulation with explicit per-worker
//! compute streams.
//!
//! The main [`crate::event::Sim`] models a synchronous SPMD job with one
//! representative (compute, network) stream pair — correct when workers
//! are symmetric. This module drops that assumption: each worker owns a
//! compute stream, and *collective* tasks act as barriers — they start
//! only once every dependency (typically one per worker) has finished,
//! occupy the shared network, and release all successors together. That
//! exposes straggler effects: one slow worker stalls every synchronous
//! collective behind it.

use crate::event::Res;
use crate::trace::{Span, Trace};

/// Identifier of a task inside one [`MultiSim`].
pub type MwTaskId = usize;

/// Where a multi-worker task runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MwKind {
    /// On worker `w`'s compute stream.
    Compute(usize),
    /// On the shared network, as a barrier collective.
    Collective,
}

/// One task of the asymmetric step DAG.
#[derive(Clone, Debug)]
pub struct MwTask {
    pub name: String,
    pub dur: f64,
    pub kind: MwKind,
    pub deps: Vec<MwTaskId>,
}

impl MwTask {
    pub fn compute(worker: usize, name: impl Into<String>, dur: f64) -> Self {
        MwTask { name: name.into(), dur, kind: MwKind::Compute(worker), deps: vec![] }
    }

    pub fn collective(name: impl Into<String>, dur: f64) -> Self {
        MwTask { name: name.into(), dur, kind: MwKind::Collective, deps: vec![] }
    }

    pub fn after(mut self, deps: impl IntoIterator<Item = MwTaskId>) -> Self {
        self.deps.extend(deps);
        self
    }
}

/// Result of a multi-worker simulation.
#[derive(Clone, Debug)]
pub struct MwResult {
    pub makespan: f64,
    /// Busy time per worker compute stream.
    pub worker_busy: Vec<f64>,
    /// Busy time of the shared network.
    pub network_busy: f64,
    pub trace: Trace,
}

/// A DAG of per-worker compute tasks and barrier collectives.
#[derive(Clone, Debug)]
pub struct MultiSim {
    pub(crate) workers: usize,
    pub(crate) tasks: Vec<MwTask>,
}

impl MultiSim {
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0);
        MultiSim { workers, tasks: Vec::new() }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Add a task; dependencies must already exist.
    pub fn add(&mut self, task: MwTask) -> MwTaskId {
        for &d in &task.deps {
            assert!(d < self.tasks.len(), "dependency {d} does not exist yet");
        }
        if let MwKind::Compute(w) = task.kind {
            assert!(w < self.workers, "worker {w} out of range");
        }
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    /// Execute: per-worker compute streams run ready tasks in id order;
    /// the network runs collectives FIFO (first-ready-first-served).
    pub fn run(&self) -> MwResult {
        let n = self.tasks.len();
        let mut indegree: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let mut succs: Vec<Vec<MwTaskId>> = vec![Vec::new(); n];
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                succs[d].push(id);
            }
        }

        // Ready queues: per worker (sorted by id) + network FIFO.
        let mut ready_w: Vec<Vec<MwTaskId>> = vec![Vec::new(); self.workers];
        let mut ready_net: std::collections::VecDeque<MwTaskId> = Default::default();
        let push_ready = |id: usize,
                          rw: &mut Vec<Vec<MwTaskId>>,
                          rn: &mut std::collections::VecDeque<MwTaskId>| {
            match self.tasks[id].kind {
                MwKind::Compute(w) => {
                    let pos = rw[w].partition_point(|&x| x < id);
                    rw[w].insert(pos, id);
                }
                MwKind::Collective => rn.push_back(id),
            }
        };
        for (id, &deg) in indegree.iter().enumerate() {
            if deg == 0 {
                push_ready(id, &mut ready_w, &mut ready_net);
            }
        }

        let mut now = 0.0_f64;
        // One running slot per worker + one for the network: (end, id, start).
        let mut running: Vec<Option<(f64, MwTaskId, f64)>> = vec![None; self.workers + 1];
        let net = self.workers;
        let mut spans = Vec::with_capacity(n);
        let mut worker_busy = vec![0.0; self.workers];
        let mut network_busy = 0.0;
        let mut done = 0usize;

        loop {
            // Fill free slots.
            for w in 0..self.workers {
                if running[w].is_none() {
                    if let Some(&id) = ready_w[w].first() {
                        ready_w[w].remove(0);
                        running[w] = Some((now + self.tasks[id].dur, id, now));
                    }
                }
            }
            if running[net].is_none() {
                if let Some(id) = ready_net.pop_front() {
                    running[net] = Some((now + self.tasks[id].dur, id, now));
                }
            }

            // Earliest completion.
            let next = running.iter().flatten().map(|&(e, _, _)| e).fold(f64::INFINITY, f64::min);
            if !next.is_finite() {
                break;
            }
            now = next;
            for slot in 0..=self.workers {
                if let Some((end, id, start)) = running[slot] {
                    if end <= now {
                        let t = &self.tasks[id];
                        let res = if slot == net { Res::Comm } else { Res::Compute };
                        if slot == net {
                            network_busy += end - start;
                        } else {
                            worker_busy[slot] += end - start;
                        }
                        spans.push(Span { task: id, name: t.name.clone(), res, start, end });
                        done += 1;
                        for &s in &succs[id] {
                            indegree[s] -= 1;
                            if indegree[s] == 0 {
                                push_ready(s, &mut ready_w, &mut ready_net);
                            }
                        }
                        running[slot] = None;
                    }
                }
            }
        }

        assert_eq!(done, n, "deadlock: {done} of {n} tasks completed");
        let makespan = spans.iter().map(|s| s.end).fold(0.0, f64::max);
        MwResult { makespan, worker_busy, network_busy, trace: Trace { spans } }
    }
}

/// Build one synchronous data-parallel step: per-worker backward compute
/// (scaled by `compute_scale[w]`), a gradient collective joining all
/// workers, then per-worker forward compute. Returns the step makespan —
/// the building block of the straggler ablation.
pub fn synchronous_step(compute_scale: &[f64], bp: f64, comm: f64, fp: f64) -> MwResult {
    let workers = compute_scale.len();
    let mut sim = MultiSim::new(workers);
    let mut bp_ids = Vec::with_capacity(workers);
    for (w, &scale) in compute_scale.iter().enumerate() {
        bp_ids.push(sim.add(MwTask::compute(w, format!("w{w}/bp"), bp * scale)));
    }
    let coll = sim.add(MwTask::collective("allreduce", comm).after(bp_ids));
    for (w, &scale) in compute_scale.iter().enumerate() {
        sim.add(MwTask::compute(w, format!("w{w}/fp"), fp * scale).after([coll]));
    }
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_step_equals_serial_sum() {
        let r = synchronous_step(&[1.0; 4], 2.0, 1.0, 1.0);
        assert!((r.makespan - 4.0).abs() < 1e-12);
        for w in 0..4 {
            assert!((r.worker_busy[w] - 3.0).abs() < 1e-12);
        }
        assert!((r.network_busy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn straggler_delays_every_worker() {
        // Worker 0 is 50% slower: the barrier waits for it.
        let r = synchronous_step(&[1.5, 1.0, 1.0, 1.0], 2.0, 1.0, 1.0);
        assert!((r.makespan - (3.0 + 1.0 + 1.5)).abs() < 1e-12, "got {}", r.makespan);
    }

    #[test]
    fn collective_is_a_barrier() {
        let mut sim = MultiSim::new(2);
        let a = sim.add(MwTask::compute(0, "fast", 1.0));
        let b = sim.add(MwTask::compute(1, "slow", 5.0));
        let c = sim.add(MwTask::collective("sync", 1.0).after([a, b]));
        sim.add(MwTask::compute(0, "post", 1.0).after([c]));
        let r = sim.run();
        assert!((r.trace.first_start("sync").unwrap() - 5.0).abs() < 1e-12);
        assert!((r.makespan - 7.0).abs() < 1e-12);
    }

    #[test]
    fn workers_run_in_parallel() {
        let mut sim = MultiSim::new(3);
        for w in 0..3 {
            sim.add(MwTask::compute(w, format!("k{w}"), 2.0));
        }
        let r = sim.run();
        assert!((r.makespan - 2.0).abs() < 1e-12, "independent workers overlap");
    }

    #[test]
    fn same_worker_tasks_serialise() {
        let mut sim = MultiSim::new(2);
        sim.add(MwTask::compute(0, "a", 1.0));
        sim.add(MwTask::compute(0, "b", 1.0));
        sim.add(MwTask::compute(1, "c", 1.0));
        let r = sim.run();
        assert!((r.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn network_serialises_collectives() {
        let mut sim = MultiSim::new(1);
        sim.add(MwTask::collective("x", 2.0));
        sim.add(MwTask::collective("y", 2.0));
        let r = sim.run();
        assert!((r.makespan - 4.0).abs() < 1e-12);
        assert!((r.network_busy - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_worker_rejected() {
        let mut sim = MultiSim::new(2);
        sim.add(MwTask::compute(5, "bad", 1.0));
    }
}
