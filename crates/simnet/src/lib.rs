//! Simulated cluster substrate for the EmbRace reproduction.
//!
//! The paper's quantitative results are functions of *time*: collective
//! latencies under an α–β (startup-latency / bandwidth) model, and training
//! step timelines produced by scheduling compute and communication tasks on
//! a GPU stream and a network stream. This crate provides:
//!
//! * [`topology`] — cluster shapes (nodes × GPUs/node, GPU kind, link
//!   bandwidths) mirroring the paper's RTX3090 and RTX2080 testbeds;
//! * [`cost`] — analytic communication-cost functions for AlltoAll,
//!   ring-AllReduce, AllGather, Parameter Server and OmniReduce (paper
//!   Table 2 plus the effective-bandwidth refinement of §4.1.2);
//! * [`event`] — a discrete-event engine executing a DAG of compute and
//!   communication tasks with FIFO or priority-queue network scheduling;
//! * [`trace`] — timeline spans and an ASCII Gantt renderer (paper Figs 2/6).
//!
//! # Example
//!
//! ```
//! use embrace_simnet::{Cluster, CommOrder, CostModel, Sim, Task};
//!
//! // Price a sparse AlltoAll on the paper's 16-GPU RTX3090 testbed.
//! let cm = CostModel::new(Cluster::rtx3090(16));
//! let t = cm.alltoall(12.0 * 1024.0 * 1024.0); // 12 MiB of gradient rows
//! assert!(t > 0.0 && t < 0.05);
//!
//! // Schedule a two-task step on the compute + network streams.
//! let mut sim = Sim::new(CommOrder::Priority);
//! let bp = sim.add(Task::compute("bp", 1e-3));
//! sim.add(Task::comm("grads", 2e-3, 0).after([bp]));
//! let result = sim.run();
//! assert!((result.makespan - 3e-3).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]

pub mod cost;
pub mod event;
pub mod failure;
pub mod multiworker;
pub mod topology;
pub mod trace;

pub use cost::{CollectiveKind, CostModel};
pub use event::{CommOrder, QueueSample, Res, Sim, SimResult, Task, TaskId};
pub use failure::{
    synchronous_step_with_crash, FaultEvent, FaultOutcome, Recovery, RecoveryModel,
    RecoveryModelError,
};
pub use multiworker::{synchronous_step, MultiSim, MwKind, MwResult, MwTask, MwTaskId};
pub use topology::{Cluster, GpuKind, NetworkParams};
pub use trace::{Span, Trace};
