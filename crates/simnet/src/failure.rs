//! Failure events in the discrete-event engine, and a recovery cost model.
//!
//! The transport layer injects faults into *real* communication
//! ([`embrace-collectives`]'s `FaultPlan`); this module injects the same
//! fault shapes into *simulated time*, so the price of a failure — work
//! lost, detection latency, recovery strategy — can be studied at cluster
//! scales the in-process mesh cannot reach.
//!
//! Two pieces:
//!
//! * [`MultiSim::run_with_faults`] — executes the step DAG under a list of
//!   [`FaultEvent`]s. A crashed worker kills its running task and never
//!   schedules another; when the DAG can make no further progress (a
//!   collective barrier waits on the dead worker forever), the job aborts
//!   `detect_timeout` later — the simulated analogue of survivors
//!   observing `PeerGone`/`Timeout` on the real transport.
//! * [`RecoveryModel`] — prices the two standard responses to losing a
//!   rank: **checkpoint/restart** (pay a rollback to the last checkpoint
//!   plus restart overhead, keep full throughput) versus **group shrink**
//!   (pay a one-off re-form, then run every remaining step slower on
//!   fewer workers).

use crate::event::Res;
use crate::multiworker::{MultiSim, MwKind};
use crate::trace::{Span, Trace};

/// A fault injected into simulated time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Worker `worker` dies at time `at`: its running task is killed and
    /// it never schedules another.
    WorkerCrash { worker: usize, at: f64 },
    /// From time `at` on, every collective that *starts* takes
    /// `factor`× its nominal duration (congestion, flaky NIC, failover to
    /// a slower path). Later events override earlier ones.
    LinkDegrade { at: f64, factor: f64 },
    /// Persistent straggler: from time `at` on, every *compute* task
    /// worker `worker` starts takes `factor`× its nominal duration — the
    /// simulated-time twin of the threaded transport's
    /// `FaultPlan::straggle_rank`. Later events override earlier ones.
    WorkerStraggle { worker: usize, at: f64, factor: f64 },
    /// Flaky link: collectives that start inside `[at, until)` take
    /// `factor`× their nominal duration, after which the link heals and
    /// timing reverts — the simulated-time twin of the threaded
    /// transport's `FaultPlan::flaky_link`. Composes multiplicatively
    /// with [`FaultEvent::LinkDegrade`].
    LinkFlaky { at: f64, until: f64, factor: f64 },
}

impl FaultEvent {
    fn at(&self) -> f64 {
        match *self {
            FaultEvent::WorkerCrash { at, .. }
            | FaultEvent::LinkDegrade { at, .. }
            | FaultEvent::WorkerStraggle { at, .. }
            | FaultEvent::LinkFlaky { at, .. } => at,
        }
    }
}

/// Outcome of [`MultiSim::run_with_faults`].
#[derive(Clone, Debug)]
pub struct FaultOutcome {
    /// Tasks that ran to completion.
    pub completed: usize,
    /// Tasks in the DAG.
    pub total: usize,
    /// `Some(t)` if the job aborted at time `t` (stall detected
    /// `detect_timeout` after the last possible progress); `None` if every
    /// task completed.
    pub aborted_at: Option<f64>,
    /// End of the run: last span end, or the abort time.
    pub makespan: f64,
    /// Spans of the tasks that completed (killed tasks leave no span).
    pub trace: Trace,
}

impl FaultOutcome {
    pub fn is_clean(&self) -> bool {
        self.aborted_at.is_none() && self.completed == self.total
    }
}

impl MultiSim {
    /// Execute the DAG under injected faults. Semantics:
    ///
    /// * scheduling is identical to [`MultiSim::run`] until a fault fires;
    /// * a [`FaultEvent::WorkerCrash`] kills the worker's running task
    ///   (no span is recorded for it) and removes the worker from service;
    /// * a [`FaultEvent::LinkDegrade`] scales the duration of collectives
    ///   that start after it;
    /// * when no task is running and none can become ready (dependencies
    ///   died with a crashed worker), survivors are deemed to detect the
    ///   failure `detect_timeout` after the stall and the job aborts.
    ///
    /// With an empty fault list this reproduces [`MultiSim::run`] exactly.
    pub fn run_with_faults(&self, events: &[FaultEvent], detect_timeout: f64) -> FaultOutcome {
        let n = self.tasks.len();
        let mut pending: Vec<FaultEvent> = events.to_vec();
        pending.sort_by(|a, b| a.at().total_cmp(&b.at()));
        let mut pending = std::collections::VecDeque::from(pending);

        let mut indegree: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                succs[d].push(id);
            }
        }

        let mut ready_w: Vec<Vec<usize>> = vec![Vec::new(); self.workers];
        let mut ready_net: std::collections::VecDeque<usize> = Default::default();
        let push_ready =
            |id: usize, rw: &mut Vec<Vec<usize>>, rn: &mut std::collections::VecDeque<usize>| {
                match self.tasks[id].kind {
                    MwKind::Compute(w) => {
                        let pos = rw[w].partition_point(|&x| x < id);
                        rw[w].insert(pos, id);
                    }
                    MwKind::Collective => rn.push_back(id),
                }
            };
        for (id, &deg) in indegree.iter().enumerate() {
            if deg == 0 {
                push_ready(id, &mut ready_w, &mut ready_net);
            }
        }

        let mut now = 0.0_f64;
        let mut crashed = vec![false; self.workers];
        let mut degrade = 1.0_f64;
        let mut straggle = vec![1.0_f64; self.workers];
        // Active flaky window, if any: (until, factor).
        let mut flaky: Option<(f64, f64)> = None;
        // One running slot per worker + one for the network: (end, id, start).
        let mut running: Vec<Option<(f64, usize, f64)>> = vec![None; self.workers + 1];
        let net = self.workers;
        let mut spans: Vec<Span> = Vec::new();
        let mut done = 0usize;

        loop {
            // Apply fault events due at or before `now`.
            while pending.front().is_some_and(|e| e.at() <= now) {
                match pending.pop_front().unwrap() {
                    FaultEvent::WorkerCrash { worker, .. } => {
                        assert!(worker < self.workers, "crashing unknown worker {worker}");
                        crashed[worker] = true;
                        running[worker] = None; // running task killed, no span
                        ready_w[worker].clear();
                    }
                    FaultEvent::LinkDegrade { factor, .. } => degrade = factor,
                    FaultEvent::WorkerStraggle { worker, factor, .. } => {
                        assert!(worker < self.workers, "straggling unknown worker {worker}");
                        straggle[worker] = factor;
                    }
                    FaultEvent::LinkFlaky { until, factor, .. } => flaky = Some((until, factor)),
                }
            }

            // Fill free slots (crashed workers excluded).
            for w in 0..self.workers {
                if !crashed[w] && running[w].is_none() {
                    if let Some(&id) = ready_w[w].first() {
                        ready_w[w].remove(0);
                        running[w] = Some((now + self.tasks[id].dur * straggle[w], id, now));
                    }
                }
            }
            if running[net].is_none() {
                if let Some(id) = ready_net.pop_front() {
                    let mut scale = degrade;
                    if let Some((until, factor)) = flaky {
                        if now < until {
                            scale *= factor;
                        }
                    }
                    running[net] = Some((now + self.tasks[id].dur * scale, id, now));
                }
            }

            // Next event: earliest task completion or fault firing.
            let next_end =
                running.iter().flatten().map(|&(e, _, _)| e).fold(f64::INFINITY, f64::min);
            let next_fault = pending.front().map_or(f64::INFINITY, |e| e.at());
            if !next_end.is_finite() && done == n {
                break; // all tasks completed; any later fault is moot
            }
            if !next_end.is_finite() && !next_fault.is_finite() {
                // Nothing running, nothing can become ready. Tasks stranded
                // on the crashed worker itself are merely *lost*; a task
                // stranded on a surviving worker or the network means
                // survivors are blocked on the dead rank — that is the
                // failure they detect `detect_timeout` later.
                let mut finished = vec![false; n];
                for s in &spans {
                    finished[s.task] = true;
                }
                let survivor_stuck = self.tasks.iter().enumerate().any(|(id, t)| {
                    !finished[id] && !matches!(t.kind, MwKind::Compute(w) if crashed[w])
                });
                if !survivor_stuck {
                    break; // clean finish for every surviving resource
                }
                let makespan = now + detect_timeout;
                return FaultOutcome {
                    completed: done,
                    total: n,
                    aborted_at: Some(makespan),
                    makespan,
                    trace: Trace { spans },
                };
            }
            now = next_end.min(next_fault);

            for (slot, r) in running.iter_mut().enumerate() {
                if let Some((end, id, start)) = *r {
                    if end <= now {
                        let t = &self.tasks[id];
                        let res = if slot == net { Res::Comm } else { Res::Compute };
                        spans.push(Span { task: id, name: t.name.clone(), res, start, end });
                        done += 1;
                        for &s in &succs[id] {
                            indegree[s] -= 1;
                            if indegree[s] == 0 {
                                push_ready(s, &mut ready_w, &mut ready_net);
                            }
                        }
                        *r = None;
                    }
                }
            }
        }

        let makespan = spans.iter().map(|s| s.end).fold(0.0, f64::max);
        FaultOutcome {
            completed: done,
            total: n,
            aborted_at: None,
            makespan,
            trace: Trace { spans },
        }
    }
}

/// Which recovery strategy to take after losing a rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recovery {
    /// Roll back to the last checkpoint, restart the full group.
    CheckpointRestart,
    /// Re-form the group without the lost rank and keep going slower.
    GroupShrink,
}

/// Prices the recovery choice after a worker loss.
///
/// All times in seconds; `step_time` is the fault-free synchronous step
/// time of the full group (e.g. a [`crate::synchronous_step`] makespan).
#[derive(Clone, Copy, Debug)]
pub struct RecoveryModel {
    /// Fault-free time of one training step on the full group.
    pub step_time: f64,
    /// Wall-clock cost of writing one checkpoint.
    pub checkpoint_write: f64,
    /// Steps between checkpoints.
    pub checkpoint_interval: u64,
    /// Time to reschedule + reload + rebuild communicators on restart.
    pub restart_overhead: f64,
    /// Time to re-form the communicator excluding the lost rank.
    pub shrink_overhead: f64,
    /// Per-step slowdown factor once the group has shrunk (≥ 1).
    pub shrink_slowdown: f64,
}

/// A [`RecoveryModel`] whose parameters cannot price anything meaningful.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RecoveryModelError {
    /// `shrink_slowdown < 1` claims the job runs *faster* after losing a
    /// rank, which silently makes shrink win every comparison.
    SlowdownBelowOne { got: f64 },
    /// `checkpoint_interval == 0` makes the steady-state checkpoint tax
    /// infinite (division by zero).
    ZeroCheckpointInterval,
}

impl std::fmt::Display for RecoveryModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryModelError::SlowdownBelowOne { got } => {
                write!(f, "shrink_slowdown must be ≥ 1, got {got}")
            }
            RecoveryModelError::ZeroCheckpointInterval => {
                write!(f, "checkpoint_interval must be ≥ 1 step")
            }
        }
    }
}

impl std::error::Error for RecoveryModelError {}

impl RecoveryModel {
    /// Check the model's parameters are priceable.
    pub fn validate(&self) -> Result<(), RecoveryModelError> {
        if self.shrink_slowdown < 1.0 {
            return Err(RecoveryModelError::SlowdownBelowOne { got: self.shrink_slowdown });
        }
        if self.checkpoint_interval == 0 {
            return Err(RecoveryModelError::ZeroCheckpointInterval);
        }
        Ok(())
    }

    /// A model whose shrink slowdown comes from pure data-parallel
    /// arithmetic: losing one of `workers` ranks leaves `workers − 1`
    /// ranks doing the same total work, so each step slows by
    /// `workers / (workers − 1)`.
    pub fn data_parallel(
        step_time: f64,
        checkpoint_write: f64,
        checkpoint_interval: u64,
        restart_overhead: f64,
        shrink_overhead: f64,
        workers: usize,
    ) -> Self {
        assert!(workers > 1, "cannot shrink a single-worker group");
        RecoveryModel {
            step_time,
            checkpoint_write,
            checkpoint_interval,
            restart_overhead,
            shrink_overhead,
            shrink_slowdown: workers as f64 / (workers - 1) as f64,
        }
    }

    /// Steady-state checkpointing tax added to every step. Panics on an
    /// invalid model — use [`RecoveryModel::try_checkpoint_overhead_per_step`]
    /// to handle it.
    pub fn checkpoint_overhead_per_step(&self) -> f64 {
        self.try_checkpoint_overhead_per_step().expect("invalid recovery model")
    }

    /// Fallible [`RecoveryModel::checkpoint_overhead_per_step`].
    pub fn try_checkpoint_overhead_per_step(&self) -> Result<f64, RecoveryModelError> {
        self.validate()?;
        Ok(self.checkpoint_write / self.checkpoint_interval as f64)
    }

    /// Total time to finish the job via checkpoint/restart, given the
    /// crash happened `steps_since_checkpoint` steps after the last
    /// checkpoint with `remaining_steps` still to run. Lost steps are
    /// re-executed at full speed.
    pub fn checkpoint_restart_cost(
        &self,
        steps_since_checkpoint: u64,
        remaining_steps: u64,
    ) -> f64 {
        self.restart_overhead + (steps_since_checkpoint + remaining_steps) as f64 * self.step_time
    }

    /// Total time to finish the job via group shrink: nothing is lost or
    /// re-run, but every remaining step pays the slowdown.
    pub fn group_shrink_cost(&self, remaining_steps: u64) -> f64 {
        self.shrink_overhead + remaining_steps as f64 * self.step_time * self.shrink_slowdown
    }

    /// The cheaper strategy for this crash point (ties go to shrink,
    /// which also preserves the job's memory footprint headroom). Panics
    /// on an invalid model — use [`RecoveryModel::try_cheaper`] to
    /// handle it.
    pub fn cheaper(&self, steps_since_checkpoint: u64, remaining_steps: u64) -> Recovery {
        self.try_cheaper(steps_since_checkpoint, remaining_steps).expect("invalid recovery model")
    }

    /// Fallible [`RecoveryModel::cheaper`].
    pub fn try_cheaper(
        &self,
        steps_since_checkpoint: u64,
        remaining_steps: u64,
    ) -> Result<Recovery, RecoveryModelError> {
        self.validate()?;
        let restart = self.checkpoint_restart_cost(steps_since_checkpoint, remaining_steps);
        let shrink = self.group_shrink_cost(remaining_steps);
        Ok(if restart < shrink { Recovery::CheckpointRestart } else { Recovery::GroupShrink })
    }
}

/// One synchronous data-parallel step (as [`crate::synchronous_step`])
/// with worker `crash_worker` dying at `crash_at`; survivors detect the
/// failure `detect_timeout` after the DAG stalls.
pub fn synchronous_step_with_crash(
    compute_scale: &[f64],
    bp: f64,
    comm: f64,
    fp: f64,
    crash_worker: usize,
    crash_at: f64,
    detect_timeout: f64,
) -> FaultOutcome {
    use crate::multiworker::MwTask;
    let workers = compute_scale.len();
    let mut sim = MultiSim::new(workers);
    let mut bp_ids = Vec::with_capacity(workers);
    for (w, &scale) in compute_scale.iter().enumerate() {
        bp_ids.push(sim.add(MwTask::compute(w, format!("w{w}/bp"), bp * scale)));
    }
    let coll = sim.add(MwTask::collective("allreduce", comm).after(bp_ids));
    for (w, &scale) in compute_scale.iter().enumerate() {
        sim.add(MwTask::compute(w, format!("w{w}/fp"), fp * scale).after([coll]));
    }
    sim.run_with_faults(
        &[FaultEvent::WorkerCrash { worker: crash_worker, at: crash_at }],
        detect_timeout,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiworker::{synchronous_step, MwTask};

    #[test]
    fn empty_fault_list_matches_plain_run() {
        let clean = synchronous_step(&[1.0, 1.2, 1.0], 2.0, 1.0, 1.0);
        let mut sim = MultiSim::new(3);
        let mut bp = Vec::new();
        for (w, s) in [1.0, 1.2, 1.0].iter().enumerate() {
            bp.push(sim.add(MwTask::compute(w, format!("w{w}/bp"), 2.0 * s)));
        }
        let c = sim.add(MwTask::collective("allreduce", 1.0).after(bp));
        for (w, s) in [1.0f64, 1.2, 1.0].iter().enumerate() {
            sim.add(MwTask::compute(w, format!("w{w}/fp"), *s).after([c]));
        }
        let faulty = sim.run_with_faults(&[], 10.0);
        assert!(faulty.is_clean());
        assert!((faulty.makespan - clean.makespan).abs() < 1e-12);
        assert_eq!(faulty.trace.spans.len(), clean.trace.spans.len());
    }

    #[test]
    fn crash_before_barrier_aborts_after_detect_timeout() {
        // bp takes 2s; worker 1 dies at t=1 mid-bp. Survivors finish bp at
        // t=2, the collective never becomes ready, stall detected, abort
        // at 2 + detect.
        let out = synchronous_step_with_crash(&[1.0; 4], 2.0, 1.0, 1.0, 1, 1.0, 5.0);
        assert_eq!(out.aborted_at, Some(7.0));
        assert!((out.makespan - 7.0).abs() < 1e-12);
        // 3 surviving bp tasks completed, nothing else.
        assert_eq!(out.completed, 3);
        assert_eq!(out.total, 4 + 1 + 4);
    }

    #[test]
    fn crash_after_last_dependency_still_completes_rest() {
        // Worker 3 dies after its bp finished and after the collective's
        // dependencies are satisfied: the collective and the other
        // workers' fp still run; only w3/fp is lost.
        let out = synchronous_step_with_crash(&[1.0; 4], 2.0, 1.0, 1.0, 3, 2.5, 5.0);
        assert_eq!(out.aborted_at, None, "{out:?}");
        assert_eq!(out.completed, out.total - 1);
        assert!((out.makespan - 4.0).abs() < 1e-12);
    }

    #[test]
    fn link_degradation_slows_collectives_started_after_it() {
        let mut sim = MultiSim::new(1);
        sim.add(MwTask::collective("early", 1.0));
        sim.add(MwTask::collective("late", 1.0));
        // Degrade fires at t=0.5: "early" (started at 0) is unaffected,
        // "late" (starts at 1.0) takes 3x.
        let out = sim.run_with_faults(&[FaultEvent::LinkDegrade { at: 0.5, factor: 3.0 }], 10.0);
        assert!(out.is_clean());
        assert!((out.makespan - 4.0).abs() < 1e-12, "{}", out.makespan);
    }

    #[test]
    fn recovery_model_prefers_shrink_near_the_end() {
        // Expensive restart, mild slowdown: with few steps left, shrink
        // wins; with a whole job left and a fresh checkpoint, restart wins.
        let m = RecoveryModel::data_parallel(1.0, 5.0, 100, 120.0, 10.0, 16);
        assert_eq!(m.cheaper(99, 10), Recovery::GroupShrink);
        assert_eq!(m.cheaper(0, 10_000), Recovery::CheckpointRestart);
    }

    #[test]
    fn recovery_costs_are_consistent() {
        let m = RecoveryModel::data_parallel(2.0, 4.0, 50, 60.0, 5.0, 4);
        assert!((m.checkpoint_overhead_per_step() - 0.08).abs() < 1e-12);
        // Restart re-runs lost steps at full speed.
        assert!((m.checkpoint_restart_cost(10, 100) - (60.0 + 110.0 * 2.0)).abs() < 1e-12);
        // Shrink runs remaining steps at 4/3 the step time.
        let shrink = m.group_shrink_cost(100);
        assert!((shrink - (5.0 + 100.0 * 2.0 * (4.0 / 3.0))).abs() < 1e-9);
    }

    #[test]
    fn crash_at_time_zero_kills_everything_downstream() {
        let out = synchronous_step_with_crash(&[1.0, 1.0], 1.0, 1.0, 1.0, 0, 0.0, 2.0);
        // Worker 1's bp completes at t=1; stall; abort at 3.
        assert_eq!(out.completed, 1);
        assert_eq!(out.aborted_at, Some(3.0));
    }

    #[test]
    fn worker_straggle_slows_only_that_workers_compute() {
        // Two workers, bp 2s each, then a 1s collective. Worker 1
        // straggles 3x from t=0: its bp takes 6s, the barrier waits for
        // it, makespan = 6 + 1.
        let mut sim = MultiSim::new(2);
        let mut bp = Vec::new();
        for w in 0..2 {
            bp.push(sim.add(MwTask::compute(w, format!("w{w}/bp"), 2.0)));
        }
        sim.add(MwTask::collective("allreduce", 1.0).after(bp));
        let out = sim.run_with_faults(
            &[FaultEvent::WorkerStraggle { worker: 1, at: 0.0, factor: 3.0 }],
            10.0,
        );
        assert!(out.is_clean());
        assert!((out.makespan - 7.0).abs() < 1e-12, "{}", out.makespan);
    }

    #[test]
    fn straggle_is_persistent_across_steps() {
        // Two chained compute tasks on the straggler keep paying the
        // factor — unlike a one-shot delay.
        let mut sim = MultiSim::new(1);
        let a = sim.add(MwTask::compute(0, "s0", 1.0));
        sim.add(MwTask::compute(0, "s1", 1.0).after([a]));
        let out = sim.run_with_faults(
            &[FaultEvent::WorkerStraggle { worker: 0, at: 0.0, factor: 2.0 }],
            5.0,
        );
        assert!((out.makespan - 4.0).abs() < 1e-12, "{}", out.makespan);
    }

    #[test]
    fn flaky_link_degrades_inside_window_then_heals() {
        // Three back-to-back 1s collectives; flaky window [0.5, 1.5) at
        // 4x. "c0" starts at 0 (clean, ends 1), "c1" starts at 1 (inside
        // the window: 4s, ends 5), "c2" starts at 5 (healed, ends 6).
        let mut sim = MultiSim::new(1);
        let c0 = sim.add(MwTask::collective("c0", 1.0));
        let c1 = sim.add(MwTask::collective("c1", 1.0).after([c0]));
        sim.add(MwTask::collective("c2", 1.0).after([c1]));
        let out = sim
            .run_with_faults(&[FaultEvent::LinkFlaky { at: 0.5, until: 1.5, factor: 4.0 }], 10.0);
        assert!(out.is_clean());
        assert!((out.makespan - 6.0).abs() < 1e-12, "{}", out.makespan);
    }

    #[test]
    fn recovery_model_rejects_nonsense_parameters() {
        let mut m = RecoveryModel::data_parallel(1.0, 5.0, 100, 120.0, 10.0, 16);
        assert_eq!(m.validate(), Ok(()));
        m.shrink_slowdown = 0.5;
        assert_eq!(m.try_cheaper(0, 10), Err(RecoveryModelError::SlowdownBelowOne { got: 0.5 }));
        m.shrink_slowdown = 1.1;
        m.checkpoint_interval = 0;
        assert_eq!(
            m.try_checkpoint_overhead_per_step(),
            Err(RecoveryModelError::ZeroCheckpointInterval)
        );
    }

    #[test]
    fn crossover_point_matches_analytic_formula() {
        // restart = R + (s + n)·t; shrink = S + n·t·σ. Equal at
        // n* = (R + s·t − S) / (t·(σ − 1)). With t=1, R=120, s=0, S=10,
        // σ=1.1 → n* = 110 / 0.1 = 1100.
        let m = RecoveryModel {
            step_time: 1.0,
            checkpoint_write: 5.0,
            checkpoint_interval: 100,
            restart_overhead: 120.0,
            shrink_overhead: 10.0,
            shrink_slowdown: 1.1,
        };
        assert_eq!(m.cheaper(0, 1099), Recovery::GroupShrink);
        // Exactly at the crossover the costs tie; ties go to shrink.
        assert!((m.checkpoint_restart_cost(0, 1100) - m.group_shrink_cost(1100)).abs() < 1e-9);
        assert_eq!(m.cheaper(0, 1100), Recovery::GroupShrink);
        assert_eq!(m.cheaper(0, 1101), Recovery::CheckpointRestart);
    }

    #[test]
    fn two_tenants_share_links_by_priority() {
        use crate::event::{CommOrder, Res, Sim, Task};
        // Job A (latency-critical, priority 0) and job B (batch,
        // priority 5) each issue two collectives at t=0 over the shared
        // network. Under Priority ordering all of A's traffic drains
        // before B's; under FIFO they interleave in submission order.
        let build = |order: CommOrder| {
            let mut sim = Sim::new(order);
            sim.add(Task::comm("b/0", 2.0, 5));
            sim.add(Task::comm("a/0", 1.0, 0));
            sim.add(Task::comm("b/1", 2.0, 5));
            sim.add(Task::comm("a/1", 1.0, 0));
            sim.run()
        };
        let end_of = |r: &crate::event::SimResult, name: &str| {
            r.trace.spans.iter().find(|s| s.name == name).unwrap().end
        };
        let prio = build(CommOrder::Priority);
        assert_eq!(prio.occupancy(Res::Comm), 1.0);
        // Tenant A's last collective finishes before tenant B's first.
        assert!((end_of(&prio, "a/1") - 2.0).abs() < 1e-12, "{prio:?}");
        assert!(end_of(&prio, "b/0") >= 4.0 - 1e-12);
        let fifo = build(CommOrder::Fifo);
        // FIFO makes A wait behind B's first transfer.
        assert!(end_of(&fifo, "a/0") >= 3.0 - 1e-12, "{fifo:?}");
        // Total makespan is work-conserving either way.
        assert!((prio.makespan - fifo.makespan).abs() < 1e-12);
    }
}
