//! Execution traces: per-task spans plus an ASCII Gantt renderer used by the
//! `fig6_timeline` bench binary to reproduce the paper's Figure 2/6
//! execution-timeline comparisons.

use crate::event::{QueueSample, Res, TaskId};
use embrace_obs::{ClockDomain, CounterSeries, SpanSet};

/// One executed task occurrence.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    pub task: TaskId,
    pub name: String,
    pub res: Res,
    pub start: f64,
    pub end: f64,
}

impl Span {
    pub fn dur(&self) -> f64 {
        self.end - self.start
    }
}

/// All spans of one simulation, in start order per stream.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub spans: Vec<Span>,
}

impl Trace {
    /// Spans on one resource, sorted by start time.
    pub fn on(&self, res: Res) -> Vec<&Span> {
        let mut v: Vec<&Span> = self.spans.iter().filter(|s| s.res == res).collect();
        v.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        v
    }

    /// Earliest start of a span whose name contains `pat`.
    pub fn first_start(&self, pat: &str) -> Option<f64> {
        self.spans
            .iter()
            .filter(|s| s.name.contains(pat))
            .map(|s| s.start)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Latest end of a span whose name contains `pat`.
    pub fn last_end(&self, pat: &str) -> Option<f64> {
        self.spans
            .iter()
            .filter(|s| s.name.contains(pat))
            .map(|s| s.end)
            .max_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Total busy time on a resource inside the window `[from, to)`.
    pub fn busy_in(&self, res: Res, from: f64, to: f64) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.res == res)
            .map(|s| (s.end.min(to) - s.start.max(from)).max(0.0))
            .sum()
    }

    /// Display character for a span: the first letter of the second
    /// `/`-separated segment of its name (so `s0/fp/enc_emb` renders as
    /// `f`, `s0/allreduce/blk3` as `a`), falling back to the name's first
    /// character.
    fn span_char(name: &str) -> char {
        name.split('/')
            .nth(1)
            .and_then(|seg| seg.chars().next())
            .or_else(|| name.chars().next())
            .unwrap_or('#')
    }

    /// Category of a span for the observability layer: the second
    /// `/`-segment of its name (`s0/fp/enc_emb` → `fp`), or the whole
    /// name when it has no step prefix.
    fn span_cat(name: &str) -> &str {
        name.split('/').nth(1).filter(|s| !s.is_empty()).unwrap_or(name)
    }

    /// Convert to an [`embrace_obs::SpanSet`] in the `Virtual` clock
    /// domain: one track per stream (`gpu compute` / `network`), flat
    /// spans (a DES stream runs one task at a time), categories derived
    /// from the `s{step}/<kind>/<module>` naming convention. This is the
    /// bridge the Chrome-trace exporter (`embrace_sim trace`) rides on.
    pub fn to_spans(&self) -> SpanSet {
        let mut set = SpanSet::new(ClockDomain::Virtual);
        let compute = set.add_track("gpu compute");
        let network = set.add_track("network");
        for (track, res) in [(compute, Res::Compute), (network, Res::Comm)] {
            for s in self.on(res) {
                set.record(track, &s.name, Self::span_cat(&s.name), s.start, s.end);
            }
        }
        set
    }

    /// Per-priority queue-depth counter series (one per priority class)
    /// from DES [`QueueSample`]s, for Chrome `C` events.
    pub fn queue_depth_series(samples: &[QueueSample]) -> Vec<CounterSeries> {
        let mut prios: Vec<i64> = samples.iter().map(|q| q.priority).collect();
        prios.sort_unstable();
        prios.dedup();
        prios
            .into_iter()
            .map(|p| {
                let mut s = CounterSeries::new(&format!("comm queue depth (prio {p})"));
                for q in samples.iter().filter(|q| q.priority == p) {
                    s.push(q.t, q.depth as f64);
                }
                s
            })
            .collect()
    }

    /// Render both streams as a two-row ASCII Gantt chart, `width`
    /// characters wide. Each span is drawn with a letter derived from its
    /// name (see [`Self::span_char`]); idle time is `.`.
    pub fn render_ascii(&self, width: usize) -> String {
        let makespan = self.spans.iter().map(|s| s.end).fold(0.0, f64::max);
        if makespan <= 0.0 || width == 0 {
            return String::from("(empty trace)\n");
        }
        let mut out = String::new();
        for (label, res) in [("compute ", Res::Compute), ("network ", Res::Comm)] {
            let mut row = vec!['.'; width];
            for s in self.on(res) {
                let a = ((s.start / makespan) * width as f64).floor() as usize;
                let b = (((s.end / makespan) * width as f64).ceil() as usize).min(width);
                let ch = Self::span_char(&s.name);
                for cell in row.iter_mut().take(b).skip(a.min(width)) {
                    *cell = ch;
                }
            }
            out.push_str(label);
            out.push('|');
            out.extend(row);
            out.push('|');
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CommOrder, Sim, Task};

    fn sample() -> Trace {
        let mut s = Sim::new(CommOrder::Fifo);
        let a = s.add(Task::compute("alpha", 1.0));
        let b = s.add(Task::comm("beta", 2.0, 0).after([a]));
        s.add(Task::compute("gamma", 1.0).after([b]));
        s.run().trace
    }

    #[test]
    fn spans_ordered_and_located() {
        let t = sample();
        assert_eq!(t.on(Res::Compute).len(), 2);
        assert_eq!(t.on(Res::Comm).len(), 1);
        assert_eq!(t.first_start("beta"), Some(1.0));
        assert_eq!(t.last_end("gamma"), Some(4.0));
        assert_eq!(t.first_start("missing"), None);
    }

    #[test]
    fn busy_in_window() {
        let t = sample();
        assert!((t.busy_in(Res::Comm, 0.0, 4.0) - 2.0).abs() < 1e-12);
        assert!((t.busy_in(Res::Comm, 0.0, 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(t.busy_in(Res::Comm, 3.5, 4.0), 0.0);
    }

    #[test]
    fn ascii_render_has_two_rows() {
        let g = sample().render_ascii(40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("compute "));
        assert!(lines[0].contains('a'));
        assert!(lines[1].contains('b'));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = Trace::default();
        assert_eq!(t.render_ascii(10), "(empty trace)\n");
    }

    #[test]
    fn to_spans_preserves_times_and_streams() {
        let t = sample();
        let set = t.to_spans();
        assert_eq!(set.domain(), embrace_obs::ClockDomain::Virtual);
        assert_eq!(set.tracks(), &["gpu compute".to_string(), "network".to_string()]);
        assert_eq!(set.len(), t.spans.len());
        set.check_well_nested().expect("DES streams are serial, hence trivially nested");
        assert!((set.max_end() - 4.0).abs() < 1e-12);
        let beta = set.spans().iter().find(|s| s.name == "beta").expect("beta span");
        assert_eq!(set.track_name(beta.track), "network");
        assert!((beta.start - 1.0).abs() < 1e-12 && (beta.end - 3.0).abs() < 1e-12);
    }

    #[test]
    fn queue_series_split_by_priority() {
        use crate::event::QueueSample;
        let samples = [
            QueueSample { t: 0.0, priority: 0, depth: 1 },
            QueueSample { t: 0.5, priority: 2, depth: 1 },
            QueueSample { t: 1.0, priority: 0, depth: 0 },
        ];
        let series = Trace::queue_depth_series(&samples);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name, "comm queue depth (prio 0)");
        assert_eq!(series[0].points, vec![(0.0, 1.0), (1.0, 0.0)]);
        assert_eq!(series[1].points, vec![(0.5, 1.0)]);
    }
}

#[cfg(test)]
mod span_char_tests {
    use super::*;

    #[test]
    fn picks_second_segment() {
        assert_eq!(Trace::span_char("s0/fp/enc_emb"), 'f');
        assert_eq!(Trace::span_char("s3/allreduce/blk7"), 'a');
        assert_eq!(Trace::span_char("s1/prior_grad/dec_emb"), 'p');
    }

    #[test]
    fn falls_back_to_first_char() {
        assert_eq!(Trace::span_char("bulk"), 'b');
        assert_eq!(Trace::span_char(""), '#');
    }
}
