//! Execution traces: per-task spans plus an ASCII Gantt renderer used by the
//! `fig6_timeline` bench binary to reproduce the paper's Figure 2/6
//! execution-timeline comparisons.

use crate::event::{Res, TaskId};

/// One executed task occurrence.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    pub task: TaskId,
    pub name: String,
    pub res: Res,
    pub start: f64,
    pub end: f64,
}

impl Span {
    pub fn dur(&self) -> f64 {
        self.end - self.start
    }
}

/// All spans of one simulation, in start order per stream.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub spans: Vec<Span>,
}

impl Trace {
    /// Spans on one resource, sorted by start time.
    pub fn on(&self, res: Res) -> Vec<&Span> {
        let mut v: Vec<&Span> = self.spans.iter().filter(|s| s.res == res).collect();
        v.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        v
    }

    /// Earliest start of a span whose name contains `pat`.
    pub fn first_start(&self, pat: &str) -> Option<f64> {
        self.spans
            .iter()
            .filter(|s| s.name.contains(pat))
            .map(|s| s.start)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Latest end of a span whose name contains `pat`.
    pub fn last_end(&self, pat: &str) -> Option<f64> {
        self.spans
            .iter()
            .filter(|s| s.name.contains(pat))
            .map(|s| s.end)
            .max_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Total busy time on a resource inside the window `[from, to)`.
    pub fn busy_in(&self, res: Res, from: f64, to: f64) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.res == res)
            .map(|s| (s.end.min(to) - s.start.max(from)).max(0.0))
            .sum()
    }

    /// Display character for a span: the first letter of the second
    /// `/`-separated segment of its name (so `s0/fp/enc_emb` renders as
    /// `f`, `s0/allreduce/blk3` as `a`), falling back to the name's first
    /// character.
    fn span_char(name: &str) -> char {
        name.split('/')
            .nth(1)
            .and_then(|seg| seg.chars().next())
            .or_else(|| name.chars().next())
            .unwrap_or('#')
    }

    /// Render both streams as a two-row ASCII Gantt chart, `width`
    /// characters wide. Each span is drawn with a letter derived from its
    /// name (see [`Self::span_char`]); idle time is `.`.
    pub fn render_ascii(&self, width: usize) -> String {
        let makespan = self.spans.iter().map(|s| s.end).fold(0.0, f64::max);
        if makespan <= 0.0 || width == 0 {
            return String::from("(empty trace)\n");
        }
        let mut out = String::new();
        for (label, res) in [("compute ", Res::Compute), ("network ", Res::Comm)] {
            let mut row = vec!['.'; width];
            for s in self.on(res) {
                let a = ((s.start / makespan) * width as f64).floor() as usize;
                let b = (((s.end / makespan) * width as f64).ceil() as usize).min(width);
                let ch = Self::span_char(&s.name);
                for cell in row.iter_mut().take(b).skip(a.min(width)) {
                    *cell = ch;
                }
            }
            out.push_str(label);
            out.push('|');
            out.extend(row);
            out.push('|');
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CommOrder, Sim, Task};

    fn sample() -> Trace {
        let mut s = Sim::new(CommOrder::Fifo);
        let a = s.add(Task::compute("alpha", 1.0));
        let b = s.add(Task::comm("beta", 2.0, 0).after([a]));
        s.add(Task::compute("gamma", 1.0).after([b]));
        s.run().trace
    }

    #[test]
    fn spans_ordered_and_located() {
        let t = sample();
        assert_eq!(t.on(Res::Compute).len(), 2);
        assert_eq!(t.on(Res::Comm).len(), 1);
        assert_eq!(t.first_start("beta"), Some(1.0));
        assert_eq!(t.last_end("gamma"), Some(4.0));
        assert_eq!(t.first_start("missing"), None);
    }

    #[test]
    fn busy_in_window() {
        let t = sample();
        assert!((t.busy_in(Res::Comm, 0.0, 4.0) - 2.0).abs() < 1e-12);
        assert!((t.busy_in(Res::Comm, 0.0, 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(t.busy_in(Res::Comm, 3.5, 4.0), 0.0);
    }

    #[test]
    fn ascii_render_has_two_rows() {
        let g = sample().render_ascii(40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("compute "));
        assert!(lines[0].contains('a'));
        assert!(lines[1].contains('b'));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = Trace::default();
        assert_eq!(t.render_ascii(10), "(empty trace)\n");
    }
}

#[cfg(test)]
mod span_char_tests {
    use super::*;

    #[test]
    fn picks_second_segment() {
        assert_eq!(Trace::span_char("s0/fp/enc_emb"), 'f');
        assert_eq!(Trace::span_char("s3/allreduce/blk7"), 'a');
        assert_eq!(Trace::span_char("s1/prior_grad/dec_emb"), 'p');
    }

    #[test]
    fn falls_back_to_first_char() {
        assert_eq!(Trace::span_char("bulk"), 'b');
        assert_eq!(Trace::span_char(""), '#');
    }
}
