//! Property tests for the comm-plan verifier (ISSUE satellite): every
//! valid randomly-sized plan passes clean, and each single seeded
//! mutation — drop a send, retarget a send, skew a priority, shrink a
//! byte count, drop a partition row — is rejected with the right
//! diagnostic kind. The wait-for-graph analyzer is held to the same
//! standard *and* cross-checked against both the legacy matcher
//! (`verify_p2p`) and greedy enumeration (`enumerate_p2p`) so the three
//! verdicts can never drift apart.

use embrace_analyzer::graph::{analyze_p2p, enumerate_p2p, graph_deadlocks};
use embrace_analyzer::plan::{
    allgather_plan, alltoall_plan, barrier_plan, broadcast_plan, horizontal_schedule_plan,
    ring_allreduce_plan,
};
use embrace_analyzer::verify::{mutate_p2p, mutate_partition, mutate_schedule};
use embrace_analyzer::{
    verify_p2p, verify_partition, verify_schedule, DiagnosticKind, PlanMutation,
};
use embrace_core::horizontal::Priorities;
use embrace_models::{ModelId, ModelSpec};
use embrace_simnet::GpuKind;
use embrace_tensor::row_partition;
use proptest::prelude::*;

fn kinds(diags: &[embrace_analyzer::Diagnostic]) -> Vec<DiagnosticKind> {
    diags.iter().map(|d| d.kind).collect()
}

/// A random valid point-to-point plan of any of the five shapes.
fn p2p_case(shape: usize, world: usize, elems: usize, sizes: &[u64]) -> embrace_analyzer::P2pPlan {
    match shape % 5 {
        0 => barrier_plan(world),
        1 => broadcast_plan(world, elems % world, sizes[0]),
        2 => ring_allreduce_plan(world, elems),
        3 => allgather_plan(world, &sizes[..world]),
        _ => {
            let bytes: Vec<Vec<u64>> = (0..world)
                .map(|r| (0..world).map(|c| sizes[(r * world + c) % sizes.len()]).collect())
                .collect();
            alltoall_plan("alltoall_dense", &bytes)
        }
    }
}

fn schedule_case(model: usize, world: usize) -> embrace_analyzer::SchedulePlan {
    let id = ModelId::ALL[model % ModelId::ALL.len()];
    let graph = ModelSpec::get(id).graph(GpuKind::Rtx3090);
    horizontal_schedule_plan(&Priorities::assign(&graph), world)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn valid_random_p2p_plans_are_clean(
        shape in 0usize..5,
        world in 2usize..=4,
        elems in 1usize..48,
        sizes in prop::collection::vec(0u64..8192, 16),
    ) {
        let plan = p2p_case(shape, world, elems, &sizes);
        prop_assert!(verify_p2p(&plan).is_empty(), "shape {shape} world {world}");
    }

    #[test]
    fn graph_agrees_with_matcher_and_enumeration_on_valid_plans(
        shape in 0usize..5,
        world in 2usize..=16,
        elems in 1usize..48,
        sizes in prop::collection::vec(0u64..8192, 16),
    ) {
        let plan = p2p_case(shape, world, elems, &sizes);
        // Three independent verdicts on the same plan: the wait-for
        // graph, the legacy FIFO matcher, and greedy enumeration. All
        // must call a valid plan clean.
        let diags = analyze_p2p(&plan);
        prop_assert!(diags.is_empty(), "graph findings on valid plan: {diags:?}");
        prop_assert!(verify_p2p(&plan).is_empty(), "matcher disagrees with graph");
        prop_assert!(enumerate_p2p(&plan).deadlock_free(), "enumeration disagrees with graph");
    }

    #[test]
    fn send_removal_and_retargeting_break_the_graph(
        shape in 2usize..5, // shapes with sends on every rank
        retarget in 0usize..2,
        world in 3usize..=8, // retargeting needs a third rank
        elems in 1usize..48,
        rank in 0usize..8,
        index in 0usize..8,
        sizes in prop::collection::vec(1u64..8192, 16),
    ) {
        let mut plan = p2p_case(shape, world, elems, &sizes);
        let m = if retarget == 1 {
            PlanMutation::RetargetSend { rank, index }
        } else {
            PlanMutation::DropSend { rank, index }
        };
        if mutate_p2p(&mut plan, m) {
            let diags = analyze_p2p(&plan);
            let ks = kinds(&diags);
            prop_assert!(
                ks.iter().any(|k| matches!(
                    k,
                    DiagnosticKind::WaitCycle
                        | DiagnosticKind::RecvWithoutSend
                        | DiagnosticKind::OrphanSend
                )),
                "a misrouted send must surface a cycle or an orphan, got {ks:?}"
            );
            // The graph's deadlock verdict must match what actually
            // happens when the broken plan is executed.
            prop_assert_eq!(
                graph_deadlocks(&diags),
                !enumerate_p2p(&plan).deadlock_free(),
                "graph and enumeration disagree on the mutated plan"
            );
        }
    }

    #[test]
    fn dropped_send_is_always_rejected(
        shape in 2usize..5, // shapes with sends on every rank
        world in 2usize..=4,
        elems in 1usize..48,
        rank in 0usize..4,
        index in 0usize..8,
        sizes in prop::collection::vec(1u64..8192, 16),
    ) {
        let mut plan = p2p_case(shape, world, elems, &sizes);
        if mutate_p2p(&mut plan, PlanMutation::DropSend { rank, index }) {
            let ks = kinds(&verify_p2p(&plan));
            prop_assert!(
                ks.contains(&DiagnosticKind::RecvWithoutSend),
                "dropped send must surface a static deadlock, got {ks:?}"
            );
        }
    }

    #[test]
    fn shrunk_bytes_are_always_rejected(
        shape in 2usize..5,
        world in 2usize..=4,
        elems in 1usize..48,
        rank in 0usize..4,
        index in 0usize..8,
        sizes in prop::collection::vec(1u64..8192, 16),
    ) {
        let mut plan = p2p_case(shape, world, elems, &sizes);
        if mutate_p2p(&mut plan, PlanMutation::ShrinkBytes { rank, index }) {
            let ks = kinds(&verify_p2p(&plan));
            prop_assert!(
                ks.contains(&DiagnosticKind::ByteMismatch),
                "shrunk send must break byte conservation, got {ks:?}"
            );
        }
    }

    #[test]
    fn valid_schedules_are_clean_and_skew_is_always_rejected(
        model in 0usize..4,
        world in 2usize..=4,
        rank in 0usize..4,
        index in 0usize..64,
        raw_delta in 1i64..2000,
    ) {
        // Fold into a nonzero signed delta: ±(1..=1000).
        let delta = if raw_delta % 2 == 0 { raw_delta / 2 } else { -(raw_delta / 2 + 1) };
        let mut plan = schedule_case(model, world);
        prop_assert!(verify_schedule(&plan).is_empty(), "valid schedule must be clean");
        if mutate_schedule(&mut plan, PlanMutation::SkewPriority { rank, index, delta }) {
            let ks = kinds(&verify_schedule(&plan));
            prop_assert!(
                ks.contains(&DiagnosticKind::PrioritySkew),
                "skewed priority must be caught, got {ks:?}"
            );
        }
    }

    #[test]
    fn partition_coverage_and_dropped_row(
        domain in 1usize..500,
        world in 1usize..=6,
        rank in 0usize..6,
    ) {
        let shards: Vec<(usize, usize)> =
            row_partition(domain, world).iter().map(|r| (r.start, r.end)).collect();
        prop_assert!(verify_partition(&shards, domain).is_empty(), "row_partition must cover");
        let mut mutated = shards.clone();
        if mutate_partition(&mut mutated, PlanMutation::DropPartitionRow { rank }) {
            let ks = kinds(&verify_partition(&mutated, domain));
            prop_assert!(
                ks.contains(&DiagnosticKind::PartitionGap),
                "dropped shard must leave a gap, got {ks:?}"
            );
        }
    }
}
