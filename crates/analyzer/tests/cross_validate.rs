//! Fidelity bridges: the analyzer's static artefacts (plans, model
//! states) must agree with the *real* threaded implementation.
//!
//! * generated [`P2pPlan`]s match the per-peer send counters of real
//!   endpoints after running each collective on a live mesh;
//! * real (generic) collectives driven over a [`RecordingEndpoint`]
//!   reproduce the planned op sequence exactly;
//! * model-checker terminal results equal the real collectives' outputs
//!   bitwise, on the same inputs;
//! * the scheduled trainer's live submission logs verify SPMD-clean.

use embrace_analyzer::model_check::{
    self, alltoallv_part, broadcast_payload, check_collective, gather_local, ring_init, Collective,
    RankOutcome,
};
use embrace_analyzer::plan::{
    allgather_plan, alltoall_plan, barrier_plan, broadcast_plan, ring_allreduce_plan,
    sparse_allreduce_plan,
};
use embrace_analyzer::verify::mutate_p2p;
use embrace_analyzer::{
    analyze_p2p, enumerate_p2p, graph_deadlocks, verify_p2p, verify_schedule, P2pOp, PlanMutation,
    RecordingEndpoint, SchedulePlan,
};
use embrace_collectives::ops::{sparse_allreduce, SsarConfig};
use embrace_collectives::{run_group, run_group_on, Comm, Endpoint, Packet};
use embrace_tensor::{DenseTensor, RowSparse, TokenBuf, F32_BYTES, TOKEN_BYTES};
use embrace_trainer::scheduled::train_convergence_traced;

/// After running `f` on a live mesh, every rank's per-peer (msgs, bytes)
/// send counters must equal the plan's link traffic — on *both*
/// transports: the two-sided channel mesh and the one-sided slot mesh
/// (whose sequence-stamped headers are transport metadata, invisible to
/// the byte accounting the plans mirror).
fn assert_counters_match_plan<F>(world: usize, plan: &embrace_analyzer::P2pPlan, f: F)
where
    F: Fn(usize, &mut Endpoint) + Sync,
{
    assert!(verify_p2p(plan).is_empty(), "plan for {} must be clean", plan.kind);
    for endpoints in [embrace_collectives::mesh(world), embrace_collectives::slot_mesh(world)] {
        let counters = run_group_on(endpoints, |rank, ep| {
            let one_sided = ep.is_one_sided();
            f(rank, ep);
            let sent = (0..world)
                .map(|peer| (ep.msgs_sent_to(peer), ep.bytes_sent_to(peer)))
                .collect::<Vec<_>>();
            (one_sided, sent)
        });
        for (from, (one_sided, sent)) in counters.iter().enumerate() {
            for (to, &real) in sent.iter().enumerate() {
                if from == to {
                    continue;
                }
                let (msgs, bytes) = plan.link_traffic(from, to);
                assert_eq!(
                    real,
                    (msgs, bytes),
                    "{} link {from}->{to} (one_sided={one_sided}): real (msgs, bytes) vs plan",
                    plan.kind
                );
            }
        }
    }
}

#[test]
fn barrier_plan_matches_real_traffic() {
    for world in 2..=4 {
        assert_counters_match_plan(world, &barrier_plan(world), |_rank, ep| {
            embrace_collectives::ops::barrier(ep);
        });
    }
}

#[test]
fn broadcast_plan_matches_real_traffic() {
    for world in 2..=4 {
        let payload = vec![1u32, 2, 3];
        let plan = broadcast_plan(world, 0, (payload.len() * TOKEN_BYTES) as u64);
        assert_counters_match_plan(world, &plan, move |rank, ep| {
            let p = (rank == 0).then(|| Packet::Tokens(payload.clone().into()));
            embrace_collectives::ops::broadcast(ep, 0, p);
        });
    }
}

#[test]
fn ring_allreduce_plan_matches_real_traffic() {
    for world in 2..=4 {
        let elems = 2 * world + 3; // uneven chunks
        assert_counters_match_plan(world, &ring_allreduce_plan(world, elems), move |rank, ep| {
            let mut buf: Vec<f32> = (0..elems).map(|i| (rank + i) as f32).collect();
            embrace_collectives::ops::ring_allreduce(ep, &mut buf);
        });
    }
}

#[test]
fn allgather_plan_matches_real_traffic() {
    for world in 2..=4 {
        let locals: Vec<Vec<u32>> = (0..world).map(gather_local).collect();
        let local_bytes: Vec<u64> = locals.iter().map(|l| (l.len() * TOKEN_BYTES) as u64).collect();
        let plan = allgather_plan(world, &local_bytes);
        assert_counters_match_plan(world, &plan, move |rank, ep| {
            embrace_collectives::ops::allgather_tokens(ep, locals[rank].clone());
        });
    }
}

#[test]
fn alltoall_plan_matches_real_traffic() {
    for world in 2..=4 {
        // parts[r][c]: a (r+c+1)-element dense row from rank r to rank c.
        let bytes: Vec<Vec<u64>> = (0..world)
            .map(|r| (0..world).map(|c| ((r + c + 1) * F32_BYTES) as u64).collect())
            .collect();
        let plan = alltoall_plan("alltoall_dense", &bytes);
        assert_counters_match_plan(world, &plan, move |rank, ep| {
            let parts: Vec<DenseTensor> = (0..world)
                .map(|c| DenseTensor::from_vec(1, rank + c + 1, vec![rank as f32; rank + c + 1]))
                .collect();
            embrace_collectives::ops::alltoall_dense(ep, parts);
        });
    }
}

/// Deterministic duplicate-free per-rank index sets with partial overlap —
/// the same sets handed to the plan generator and to the live collective.
fn ssar_locals(world: usize, vocab: usize) -> Vec<Vec<u32>> {
    (0..world).map(|r| (r % 3..vocab).step_by(r % 4 + 2).map(|i| i as u32).collect()).collect()
}

#[test]
fn sparse_allreduce_plan_matches_real_traffic() {
    // The SSAR plan simulates index-set unions and the representation
    // switch; the live collective sends real index–value streams. Their
    // per-link (msgs, bytes) must agree exactly at every crossover mode.
    let (vocab, dim) = (24usize, 3usize);
    for world in 2..=5 {
        for crossover in [2.0, 0.5, 0.0] {
            let locals = ssar_locals(world, vocab);
            let plan = sparse_allreduce_plan(world, &locals, dim, vocab, crossover);
            let l = locals.clone();
            assert_counters_match_plan(world, &plan, move |rank, ep| {
                let idx = l[rank].clone();
                let n = idx.len();
                let grad = RowSparse::new(idx, DenseTensor::full(n, dim, 0.25));
                let out = sparse_allreduce(ep, &grad, &SsarConfig { vocab, crossover });
                std::hint::black_box(&out);
            });
        }
    }
}

#[test]
fn mutated_sparse_allreduce_plans_fail_all_three_analyses() {
    // Seeded single defects on the SSAR plan family: the FIFO pairing
    // verifier, the wait-for graph, and the greedy enumeration must each
    // catch DropSend and RetargetSend, and the two deadlock verdicts must
    // agree with actual execution.
    let (vocab, dim) = (24usize, 3usize);
    for world in [2usize, 3, 4, 5] {
        let plan0 = sparse_allreduce_plan(world, &ssar_locals(world, vocab), dim, vocab, 0.5);
        assert!(verify_p2p(&plan0).is_empty(), "world {world}: baseline plan must be clean");
        assert!(!graph_deadlocks(&analyze_p2p(&plan0)));
        assert!(enumerate_p2p(&plan0).deadlock_free());
        for rank in 0..world {
            for mutation in [
                PlanMutation::DropSend { rank, index: 0 },
                PlanMutation::RetargetSend { rank, index: 0 },
            ] {
                let mut plan = plan0.clone();
                if !mutate_p2p(&mut plan, mutation) {
                    continue; // world 2 has no alternative retarget peer
                }
                let verdicts = verify_p2p(&plan);
                assert!(!verdicts.is_empty(), "verifier missed {mutation:?} at world {world}");
                let graph = analyze_p2p(&plan);
                assert!(!graph.is_empty(), "wait-graph missed {mutation:?} at world {world}");
                let exec = enumerate_p2p(&plan);
                // A dropped or misdirected send starves its matching
                // receive: the mutated plan must actually deadlock, and
                // the structural verdict must say the same.
                assert!(!exec.deadlock_free(), "{mutation:?} at world {world} still completes");
                assert_eq!(
                    graph_deadlocks(&graph),
                    !exec.deadlock_free(),
                    "graph vs enumeration disagree on {mutation:?} at world {world}"
                );
            }
        }
    }
}

#[test]
fn recorded_allgather_trace_equals_plan() {
    // Drive the *real* generic allgather over a RecordingEndpoint whose
    // receives replay the peers' payloads: the recorded op sequence must
    // be exactly the planned one, op for op, byte for byte.
    let world = 4;
    let locals: Vec<Vec<u32>> = (0..world).map(gather_local).collect();
    let local_bytes: Vec<u64> = locals.iter().map(|l| (l.len() * TOKEN_BYTES) as u64).collect();
    let plan = allgather_plan(world, &local_bytes);
    for rank in 0..world {
        let mut rec = RecordingEndpoint::new(rank, world);
        for (src, local) in locals.iter().enumerate() {
            if src != rank {
                rec.script(src, Packet::Tokens(local.clone().into()));
            }
        }
        let out = embrace_collectives::ops::allgather_tokens(&mut rec, locals[rank].clone());
        assert_eq!(out, locals, "rank {rank} gathered payloads");
        assert_eq!(rec.trace(), &plan.ranks[rank][..], "rank {rank} trace vs plan");
    }
}

#[test]
fn recorded_lookup_trace_equals_plan() {
    // The sharded-service lookup RPC is two chained collectives: the
    // deduplicated id requests (alltoallv_tokens) and the owners' row
    // responses (alltoall_dense). Drive both real ops over a
    // RecordingEndpoint; the recorded trace must equal lookup_plan
    // op for op, byte for byte.
    let world = 3;
    let dim = 5;
    let reqs: Vec<Vec<usize>> = vec![vec![1, 2, 0], vec![4, 1, 3], vec![2, 0, 1]];
    let plan = embrace_analyzer::plan::lookup_plan(&reqs, dim);
    for (rank, my_reqs) in reqs.iter().enumerate() {
        let mut rec = RecordingEndpoint::new(rank, world);
        for src in (0..world).filter(|&s| s != rank) {
            rec.script(src, Packet::Tokens(vec![7u32; reqs[src][rank]].into()));
        }
        let requests: Vec<TokenBuf> = my_reqs.iter().map(|&n| vec![7u32; n].into()).collect();
        let incoming = embrace_collectives::ops::alltoallv_tokens(&mut rec, requests);
        // Phase 2: serve each requester's rows, receive my own.
        for src in (0..world).filter(|&s| s != rank) {
            rec.script(src, Packet::Dense(DenseTensor::zeros(my_reqs[src], dim)));
        }
        let responses: Vec<DenseTensor> =
            incoming.iter().map(|ids| DenseTensor::zeros(ids.len(), dim)).collect();
        let _rows = embrace_collectives::ops::alltoall_dense(&mut rec, responses);
        assert_eq!(rec.trace(), &plan.ranks[rank][..], "rank {rank} trace vs plan");
    }
}

#[test]
fn recorded_barrier_trace_equals_plan() {
    let world = 3;
    let plan = barrier_plan(world);
    for rank in 0..world {
        let mut rec = RecordingEndpoint::new(rank, world);
        // Dissemination rounds at distances 1 and 2: with world = 3 each
        // rank receives exactly one signal from every other rank.
        let mut dist = 1;
        while dist < world {
            rec.script((rank + world - dist) % world, Packet::Empty);
            dist *= 2;
        }
        embrace_collectives::ops::barrier(&mut rec);
        assert_eq!(rec.trace(), &plan.ranks[rank][..], "rank {rank} trace vs plan");
    }
}

/// Extract the unique all-ok outcome of a fault-free check.
fn unique_ok(report: &model_check::CheckReport) -> &[RankOutcome] {
    assert!(report.deterministic_success(), "{}", report.summary());
    report.unique_outcome().expect("deterministic")
}

#[test]
fn model_allgather_matches_real_results_bitwise() {
    for world in 2..=4 {
        let report = check_collective(world, Collective::AllgatherTokens);
        let model = unique_ok(&report);
        let real = run_group(world, |rank, ep| {
            embrace_collectives::ops::allgather_tokens(ep, gather_local(rank))
        });
        for rank in 0..world {
            let RankOutcome::Ok { out, .. } = &model[rank] else { panic!("model rank failed") };
            assert_eq!(out, &real[rank], "world {world} rank {rank}");
        }
    }
}

#[test]
fn model_ring_allreduce_matches_real_results_bitwise() {
    for world in 2..=4 {
        let elems = 2 * world + 1;
        let report = check_collective(world, Collective::RingAllreduce { elems });
        let model = unique_ok(&report);
        let real = run_group(world, |rank, ep| {
            let mut buf: Vec<f32> =
                ring_init(rank, elems).iter().map(|&b| f32::from_bits(b)).collect();
            embrace_collectives::ops::ring_allreduce(ep, &mut buf);
            buf.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        });
        for rank in 0..world {
            let RankOutcome::Ok { buf, .. } = &model[rank] else { panic!("model rank failed") };
            assert_eq!(buf, &real[rank], "world {world} rank {rank} (bitwise)");
        }
    }
}

#[test]
fn model_broadcast_matches_real_results() {
    for world in 2..=4 {
        let report = check_collective(world, Collective::Broadcast { root: 0 });
        let model = unique_ok(&report);
        let real = run_group(world, |rank, ep| {
            let p = (rank == 0).then(|| Packet::Tokens(broadcast_payload(world).into()));
            embrace_collectives::ops::broadcast(ep, 0, p).into_tokens()
        });
        for rank in 0..world {
            let RankOutcome::Ok { out, .. } = &model[rank] else { panic!("model rank failed") };
            assert_eq!(&out[0], &real[rank], "world {world} rank {rank}");
        }
    }
}

#[test]
fn model_alltoallv_matches_real_results() {
    // The alltoallv model mirrors the rotated-send structure shared by
    // `alltoall_dense` and `alltoallv_sparse`; replay its token parts as
    // 1-row dense tensors (small integers are exact in f32).
    for world in 2..=4 {
        let report = check_collective(world, Collective::Alltoallv);
        let model = unique_ok(&report);
        let real = run_group(world, |rank, ep| {
            let parts: Vec<DenseTensor> = (0..world)
                .map(|dst| {
                    let vals: Vec<f32> =
                        alltoallv_part(rank, dst).iter().map(|&t| t as f32).collect();
                    DenseTensor::from_vec(1, vals.len(), vals)
                })
                .collect();
            embrace_collectives::ops::alltoall_dense(ep, parts)
        });
        for rank in 0..world {
            let RankOutcome::Ok { out, .. } = &model[rank] else { panic!("model rank failed") };
            for src in 0..world {
                let got: Vec<u32> = real[rank][src].as_slice().iter().map(|&v| v as u32).collect();
                assert_eq!(out[src], got, "world {world} rank {rank} from {src}");
            }
        }
    }
}

#[test]
fn traced_trainer_schedule_verifies_spmd_clean() {
    // The live scheduled pipeline's submission logs, fed to the static
    // verifier: SPMD multiset + priority consistency must hold.
    let cfg = embrace_trainer::real::ConvergenceConfig { world: 3, steps: 4, ..Default::default() };
    let (result, logs) = train_convergence_traced(&cfg);
    assert_eq!(result.losses.len(), 4);
    assert_eq!(logs.len(), 3);
    for (rank, log) in logs.iter().enumerate() {
        assert!(!log.is_empty(), "rank {rank} submitted nothing");
    }
    let plan = SchedulePlan::from_logs(&logs);
    let diags = verify_schedule(&plan);
    assert!(diags.is_empty(), "live trainer schedule has diagnostics: {diags:?}");
}

#[test]
fn recording_endpoint_is_a_comm() {
    // Sanity: the recorder reports the same topology the ops see.
    let rec = RecordingEndpoint::new(2, 5);
    assert_eq!(rec.rank(), 2);
    assert_eq!(rec.world(), 5);
    let _: &dyn std::any::Any = &rec;
    let _ = P2pOp::Send { to: 0, bytes: 1 };
}
