//! The communication-plan IR.
//!
//! A *plan* is what a collective (or a whole training step) intends to do
//! on the wire, extracted without executing any transport. Two levels:
//!
//! * **Point-to-point plans** ([`P2pPlan`]): per rank, the ordered
//!   send/recv records — peer and byte count — a collective will perform.
//!   The generators here mirror `embrace_collectives::ops` *exactly*
//!   (same peers, same order, same payload sizes); the `recording`
//!   cross-validation tests in this crate run the real generic algorithms
//!   over a [`RecordingEndpoint`] and diff the trace against the plan, so
//!   the mirror cannot silently drift.
//! * **Schedule plans** ([`SchedulePlan`]): per rank, the ordered
//!   collective submissions — tag, kind, priority, payload bytes — either
//!   built statically from `embrace_core::Priorities::schedule_ops` or
//!   harvested from a live `CommScheduler`'s [`SubmittedOp`] log.
//!
//! `verify` consumes both levels; `model_check` executes the same
//! collectives under a virtual scheduler.

use embrace_collectives::{Comm, CommError, Packet, ReformMsg, SubmittedOp, SEG_HEADER_BYTES};
use embrace_core::{CommKind, Priorities};
use embrace_tensor::{column_partition, row_partition, F32_BYTES, INDEX_BYTES, TOKEN_BYTES};

/// One point-to-point record in a rank's plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum P2pOp {
    /// This rank sends `bytes` to rank `to`.
    Send { to: usize, bytes: u64 },
    /// This rank receives `bytes` from rank `from`.
    Recv { from: usize, bytes: u64 },
}

/// A whole group's point-to-point plan for one collective: `ranks[r]` is
/// rank `r`'s ordered op list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct P2pPlan {
    /// Which collective this plan describes (diagnostic provenance).
    pub kind: &'static str,
    pub world: usize,
    pub ranks: Vec<Vec<P2pOp>>,
}

impl P2pPlan {
    fn new(kind: &'static str, world: usize) -> Self {
        P2pPlan { kind, world, ranks: vec![Vec::new(); world] }
    }

    /// Total bytes rank `r` plans to send.
    pub fn bytes_sent(&self, r: usize) -> u64 {
        self.ranks[r]
            .iter()
            .map(|op| if let P2pOp::Send { bytes, .. } = op { *bytes } else { 0 })
            .sum()
    }

    /// Total bytes rank `r` plans to receive.
    pub fn bytes_received(&self, r: usize) -> u64 {
        self.ranks[r]
            .iter()
            .map(|op| if let P2pOp::Recv { bytes, .. } = op { *bytes } else { 0 })
            .sum()
    }

    /// Planned (messages, bytes) on the ordered link `from → to`.
    pub fn link_traffic(&self, from: usize, to: usize) -> (u64, u64) {
        let mut msgs = 0;
        let mut bytes = 0;
        for op in &self.ranks[from] {
            if let P2pOp::Send { to: t, bytes: b } = op {
                if *t == to {
                    msgs += 1;
                    bytes += b;
                }
            }
        }
        (msgs, bytes)
    }
}

fn empty_bytes() -> u64 {
    0
}

/// Plan of [`embrace_collectives::ops::barrier`]: the dissemination
/// barrier — in round `k` (distance `2^k`) every rank sends one empty
/// packet to `(rank + 2^k) mod N` and receives one from
/// `(rank − 2^k) mod N`, for ⌈log₂ N⌉ rounds. Mirrors `try_barrier`
/// op-for-op.
pub fn barrier_plan(world: usize) -> P2pPlan {
    let mut plan = P2pPlan::new("barrier", world);
    if world == 1 {
        return plan;
    }
    for (r, ops) in plan.ranks.iter_mut().enumerate() {
        let mut dist = 1;
        while dist < world {
            ops.push(P2pOp::Send { to: (r + dist) % world, bytes: empty_bytes() });
            ops.push(P2pOp::Recv { from: (r + world - dist) % world, bytes: empty_bytes() });
            dist *= 2;
        }
    }
    plan
}

/// Plan of [`embrace_collectives::ops::broadcast`] of a `bytes`-sized
/// payload from `root`.
pub fn broadcast_plan(world: usize, root: usize, bytes: u64) -> P2pPlan {
    let mut plan = P2pPlan::new("broadcast", world);
    for dst in 0..world {
        if dst != root {
            plan.ranks[root].push(P2pOp::Send { to: dst, bytes });
            plan.ranks[dst].push(P2pOp::Recv { from: root, bytes });
        }
    }
    plan
}

/// Plan of [`embrace_collectives::ops::ring_allreduce`] over a buffer of
/// `elems` f32 values: N−1 reduce-scatter steps then N−1 all-gather steps,
/// each moving one [`row_partition`] chunk to the next rank on the ring.
pub fn ring_allreduce_plan(world: usize, elems: usize) -> P2pPlan {
    let mut plan = P2pPlan::new("ring_allreduce", world);
    if world == 1 {
        return plan;
    }
    let chunks = row_partition(elems, world);
    let chunk_bytes = |c: usize| (chunks[c].len() * F32_BYTES) as u64;
    for rank in 0..world {
        let next = (rank + 1) % world;
        let prev = (rank + world - 1) % world;
        for step in 0..world - 1 {
            let send_c = (rank + world - step) % world;
            let recv_c = (rank + world - step - 1) % world;
            plan.ranks[rank].push(P2pOp::Send { to: next, bytes: chunk_bytes(send_c) });
            plan.ranks[rank].push(P2pOp::Recv { from: prev, bytes: chunk_bytes(recv_c) });
        }
        for step in 0..world - 1 {
            let send_c = (rank + 1 + world - step) % world;
            let recv_c = (rank + world - step) % world;
            plan.ranks[rank].push(P2pOp::Send { to: next, bytes: chunk_bytes(send_c) });
            plan.ranks[rank].push(P2pOp::Recv { from: prev, bytes: chunk_bytes(recv_c) });
        }
    }
    plan
}

/// Plan of the allgather family: rank `r` sends `local_bytes[r]` to every
/// peer in rank order, then receives every peer's contribution in rank
/// order (own kept locally). Covers `allgather_dense`, `allgather_sparse`
/// and `allgather_tokens`, which share the communication structure.
pub fn allgather_plan(world: usize, local_bytes: &[u64]) -> P2pPlan {
    assert_eq!(local_bytes.len(), world, "one payload size per rank");
    let mut plan = P2pPlan::new("allgather", world);
    for rank in 0..world {
        for dst in 0..world {
            if dst != rank {
                plan.ranks[rank].push(P2pOp::Send { to: dst, bytes: local_bytes[rank] });
            }
        }
        for (src, &bytes) in local_bytes.iter().enumerate() {
            if src != rank {
                plan.ranks[rank].push(P2pOp::Recv { from: src, bytes });
            }
        }
    }
    plan
}

/// Plan of the alltoall family: `bytes[i][j]` is what rank `i` sends rank
/// `j`. Sends go out in the rotated order the implementation uses
/// (destination `(rank + off) % world` for `off` in `1..world`); receives
/// drain in source-rank order. Covers `alltoall_dense` and
/// `alltoallv_sparse` (pass a per-pair byte matrix for the latter).
pub fn alltoall_plan(kind: &'static str, bytes: &[Vec<u64>]) -> P2pPlan {
    let world = bytes.len();
    assert!(bytes.iter().all(|row| row.len() == world), "square byte matrix");
    let mut plan = P2pPlan::new(kind, world);
    for (rank, row) in bytes.iter().enumerate() {
        for off in 1..world {
            let dst = (rank + off) % world;
            plan.ranks[rank].push(P2pOp::Send { to: dst, bytes: row[dst] });
        }
        for (src, srow) in bytes.iter().enumerate() {
            if src != rank {
                plan.ranks[rank].push(P2pOp::Recv { from: src, bytes: srow[rank] });
            }
        }
    }
    plan
}

/// Plan of the chunked scheduler's segmented ring allreduce (kind
/// `"ring_allreduce_chunked"`): each ring step's chunk splits into
/// `seg_elems`-element segments, one send+recv pair per *unit*, with the
/// unit count per step equal on every rank (`ceil(max_chunk /
/// seg_elems)`, `row_partition` being global). Units where a rank's
/// chunk has no `i`-th segment contribute no op — exactly the occupancy
/// of `ChunkedExec::Ring::advance`, so per-link FIFO pairing and byte
/// totals match the runtime wire traffic. Total bytes equal
/// [`ring_allreduce_plan`]'s for the same `elems`.
pub fn chunked_ring_allreduce_plan(world: usize, elems: usize, seg_elems: usize) -> P2pPlan {
    assert!(seg_elems > 0, "segment size must be positive");
    let mut plan = P2pPlan::new("ring_allreduce_chunked", world);
    if world == 1 {
        return plan;
    }
    let chunks = row_partition(elems, world);
    let max_chunk = chunks.iter().map(|c| c.len()).max().unwrap_or(0);
    let units_per_step = max_chunk.div_ceil(seg_elems).max(1);
    for rank in 0..world {
        let next = (rank + 1) % world;
        let prev = (rank + world - 1) % world;
        for step in 0..2 * (world - 1) {
            let (phase, s) = (step / (world - 1), step % (world - 1));
            let (send_c, recv_c) = if phase == 0 {
                ((rank + world - s) % world, (rank + world - s - 1) % world)
            } else {
                ((rank + 1 + world - s) % world, (rank + world - s) % world)
            };
            for i in 0..units_per_step {
                let send = chunks[send_c];
                let lo = send.start + i * seg_elems;
                if lo < send.end {
                    let hi = (lo + seg_elems).min(send.end);
                    plan.ranks[rank]
                        .push(P2pOp::Send { to: next, bytes: ((hi - lo) * F32_BYTES) as u64 });
                }
                let recv = chunks[recv_c];
                let rlo = recv.start + i * seg_elems;
                if rlo < recv.end {
                    let rhi = (rlo + seg_elems).min(recv.end);
                    plan.ranks[rank]
                        .push(P2pOp::Recv { from: prev, bytes: ((rhi - rlo) * F32_BYTES) as u64 });
                }
            }
        }
    }
    plan
}

/// Plan of the chunked scheduler's fan-out collectives (alltoall dense /
/// sparse and the token allgather, which all share `ChunkedExec`'s unit
/// structure): in unit `u` rank `r` sends its block for `(r + u + 1) %
/// world` and receives from `(r + world - u - 1) % world`. Unlike the
/// whole-op [`alltoall_plan`] (all sends posted, then receives drained in
/// source order), sends and receives interleave pairwise — each unit
/// sends before it receives, and on every ordered link the two ends use
/// the same unit index, so the plan is deadlock-free without buffering
/// assumptions. `bytes[i][j]` is what rank `i` sends rank `j`; pass a
/// row of identical entries per rank for the allgather case.
pub fn chunked_alltoall_plan(kind: &'static str, bytes: &[Vec<u64>]) -> P2pPlan {
    let world = bytes.len();
    assert!(bytes.iter().all(|row| row.len() == world), "square byte matrix");
    let mut plan = P2pPlan::new(kind, world);
    for (rank, row) in bytes.iter().enumerate() {
        for u in 0..world.saturating_sub(1) {
            let dst = (rank + u + 1) % world;
            let src = (rank + world - u - 1) % world;
            plan.ranks[rank].push(P2pOp::Send { to: dst, bytes: row[dst] });
            plan.ranks[rank].push(P2pOp::Recv { from: src, bytes: bytes[src][rank] });
        }
    }
    plan
}

/// Byte matrix of EmbRace's **AlltoAll #1** (lookup-result redistribution,
/// §4.1.1): rank `i` sends rank `j` the lookup of `j`'s batch against
/// `i`'s column shard — a dense block of `batch_rows[j] × shard_dim(i)`
/// f32 values.
pub fn lookup_alltoall_bytes(batch_rows: &[usize], dim_total: usize) -> Vec<Vec<u64>> {
    let world = batch_rows.len();
    let cols = column_partition(dim_total, world);
    (0..world)
        .map(|i| (0..world).map(|j| (batch_rows[j] * cols[i].width() * F32_BYTES) as u64).collect())
        .collect()
}

/// Byte matrix of EmbRace's **AlltoAll #2** (gradient exchange): rank `i`
/// sends rank `j` its gradient rows sliced to `j`'s column range — a
/// row-sparse block of `grad_rows[i]` rows, each `shard_dim(j)` wide plus
/// one COO index.
pub fn grad_alltoall_bytes(grad_rows: &[usize], dim_total: usize) -> Vec<Vec<u64>> {
    let world = grad_rows.len();
    let cols = column_partition(dim_total, world);
    (0..world)
        .map(|i| {
            (0..world)
                .map(|j| (grad_rows[i] * (cols[j].width() * F32_BYTES + INDEX_BYTES)) as u64)
                .collect()
        })
        .collect()
}

/// Plan of the sharded-embedding-service lookup RPC
/// (`embrace_ps::EmbeddingService::try_lookup`): two back-to-back
/// alltoall phases — the deduplicated row-id requests out
/// (`alltoallv_tokens`, [`TOKEN_BYTES`] per id), then each owner's
/// embedding rows back (`alltoall_dense`, `dim × F32_BYTES` per row).
/// `reqs[i][j]` is the number of distinct uncached rows rank `i` requests
/// from owner `j`; the response matrix is its transpose scaled to row
/// width. Both phases use the rotated-send / source-order-receive
/// structure of [`alltoall_plan`], and the byte counts equal the runtime
/// `Packet::Tokens` / `Packet::Dense` wire sizes (cross-validated by the
/// `recording` tests).
pub fn lookup_plan(reqs: &[Vec<usize>], dim: usize) -> P2pPlan {
    let world = reqs.len();
    assert!(reqs.iter().all(|row| row.len() == world), "square request matrix");
    let id_bytes: Vec<Vec<u64>> =
        reqs.iter().map(|row| row.iter().map(|&n| (n * TOKEN_BYTES) as u64).collect()).collect();
    let row_bytes: Vec<Vec<u64>> = (0..world)
        .map(|j| (0..world).map(|i| (reqs[i][j] * dim * F32_BYTES) as u64).collect())
        .collect();
    let mut plan = alltoall_plan("lookup", &id_bytes);
    let response = alltoall_plan("lookup", &row_bytes);
    for (ops, resp) in plan.ranks.iter_mut().zip(response.ranks) {
        ops.extend(resp);
    }
    plan
}

/// Deterministic demo instance of the lookup plan for the verification
/// sweeps: rank `i`'s request count to owner `j` varies with both ends
/// (`(3i + 5j) mod 7 + 1`), so no two links carry equal volume.
pub fn lookup_demo_plan(world: usize) -> P2pPlan {
    let reqs: Vec<Vec<usize>> =
        (0..world).map(|i| (0..world).map(|j| (3 * i + 5 * j) % 7 + 1).collect()).collect();
    lookup_plan(&reqs, 16)
}

/// Plan of the fault-free elastic re-form handshake
/// (`ElasticWorker::reform`, model-checked as `Collective::Reform`): every
/// rank probes every other current member with a [`ReformMsg::Report`] in
/// ascending member order; the minimum alive rank (rank 0 fault-free)
/// gathers one report per peer and then commits the agreed membership to
/// each with a [`ReformMsg::Commit`]. A non-coordinator's await loop first
/// drains the coordinator's own (stale) probe report before the commit,
/// and the probe reports of the other non-coordinators are drained by the
/// next collective's epoch filter — the plan includes those drains, so
/// every planned send has a matching planned receive.
pub fn reform_plan(world: usize) -> P2pPlan {
    let mut plan = P2pPlan::new("reform", world);
    if world <= 1 {
        return plan;
    }
    let report = ReformMsg::Report { origin: 0, epoch: 0 }.nbytes() as u64;
    let commit = ReformMsg::Commit { epoch: 1, members: (0..world).collect() }.nbytes() as u64;
    // Coordinator (rank 0): probe all, gather one report per peer, commit.
    for peer in 1..world {
        plan.ranks[0].push(P2pOp::Send { to: peer, bytes: report });
    }
    for peer in 1..world {
        plan.ranks[0].push(P2pOp::Recv { from: peer, bytes: report });
    }
    for peer in 1..world {
        plan.ranks[0].push(P2pOp::Send { to: peer, bytes: commit });
    }
    // Members: probe all, drain the coordinator's probe, take the commit,
    // then drain the other members' probes (stale-epoch drops).
    for rank in 1..world {
        for peer in (0..world).filter(|&p| p != rank) {
            plan.ranks[rank].push(P2pOp::Send { to: peer, bytes: report });
        }
        plan.ranks[rank].push(P2pOp::Recv { from: 0, bytes: report });
        plan.ranks[rank].push(P2pOp::Recv { from: 0, bytes: commit });
        for peer in (1..world).filter(|&p| p != rank) {
            plan.ranks[rank].push(P2pOp::Recv { from: peer, bytes: report });
        }
    }
    plan
}

/// One simulated SSAR segment: an index range plus the representation the
/// runtime would carry for it. While sparse, `set` is the exact union of
/// contributing coalesced index sets restricted to `[lo, hi)` — the merge
/// kernel sums duplicates but never prunes zero rows, so the planned nnz
/// equals the runtime nnz regardless of values.
#[derive(Clone, Debug)]
struct SimSeg {
    lo: u32,
    hi: u32,
    dense: bool,
    set: Vec<u32>,
}

impl SimSeg {
    /// Wire bytes of this segment, matching `SparseSeg::nbytes`.
    fn nbytes(&self, dim: usize) -> u64 {
        let body = if self.dense {
            (self.hi - self.lo) as usize * dim * F32_BYTES
        } else {
            self.set.len() * (INDEX_BYTES + dim * F32_BYTES)
        };
        (SEG_HEADER_BYTES + body) as u64
    }
}

/// The runtime's crossover rule (`ops::mk_body`): densify when the
/// density of the freshly produced stream reaches `crossover`.
fn ssar_crossed(nnz: usize, lo: u32, hi: u32, crossover: f64) -> bool {
    hi > lo && nnz as f64 / (hi - lo) as f64 >= crossover
}

/// Merge two same-range segments the way `ops::merge_bodies` does:
/// sparse+sparse unions the index sets and re-applies the crossover rule;
/// a dense operand keeps the result dense (densification is one-way).
fn ssar_merge(a: SimSeg, b: SimSeg, crossover: f64) -> SimSeg {
    debug_assert_eq!((a.lo, a.hi), (b.lo, b.hi));
    let mut set = Vec::with_capacity(a.set.len() + b.set.len());
    let (mut i, mut j) = (0, 0);
    while i < a.set.len() && j < b.set.len() {
        match a.set[i].cmp(&b.set[j]) {
            std::cmp::Ordering::Less => {
                set.push(a.set[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                set.push(b.set[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                set.push(a.set[i]);
                i += 1;
                j += 1;
            }
        }
    }
    set.extend_from_slice(&a.set[i..]);
    set.extend_from_slice(&b.set[j..]);
    let dense = a.dense || b.dense || ssar_crossed(set.len(), a.lo, a.hi, crossover);
    SimSeg { lo: a.lo, hi: a.hi, dense, set }
}

/// Split a segment at `mid` the way `ops::split_body` does: the index set
/// partitions; a dense segment yields two dense halves.
fn ssar_split(seg: &SimSeg, mid: u32) -> (SimSeg, SimSeg) {
    let pos = seg.set.partition_point(|&i| i < mid);
    (
        SimSeg { lo: seg.lo, hi: mid, dense: seg.dense, set: seg.set[..pos].to_vec() },
        SimSeg { lo: mid, hi: seg.hi, dense: seg.dense, set: seg.set[pos..].to_vec() },
    )
}

fn prev_pow2(n: usize) -> usize {
    debug_assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// Plan of [`embrace_collectives::ops::sparse_allreduce`] (SSAR): fold-in
/// of non-power-of-two extras, recursive-halving reduce-scatter,
/// recursive-doubling allgather, fold-out. `locals[r]` is rank `r`'s raw
/// (possibly duplicated, unsorted) gradient row indices; the generator
/// coalesces them and simulates the exact per-step index-set unions and
/// sparse→dense crossover decisions, so every planned byte count equals
/// the runtime's `Packet::SparseSegs` wire size for the same inputs.
pub fn sparse_allreduce_plan(
    world: usize,
    locals: &[Vec<u32>],
    dim: usize,
    vocab: usize,
    crossover: f64,
) -> P2pPlan {
    assert_eq!(locals.len(), world, "one index list per rank");
    assert!(u32::try_from(vocab).is_ok(), "vocab must fit u32");
    let vocab32 = vocab as u32;
    let mut plan = P2pPlan::new("sparse_allreduce", world);
    if world == 1 {
        return plan;
    }
    let init: Vec<SimSeg> = locals
        .iter()
        .map(|raw| {
            let mut set = raw.clone();
            set.sort_unstable();
            set.dedup();
            if let Some(&max) = set.last() {
                assert!(max < vocab32, "row index {max} out of vocab {vocab}");
            }
            let dense = ssar_crossed(set.len(), 0, vocab32, crossover);
            SimSeg { lo: 0, hi: vocab32, dense, set }
        })
        .collect();
    let p = prev_pow2(world);
    let extra = world - p;

    // Fold-in: extras ship their whole stream to rank − p.
    let mut acc: Vec<SimSeg> = init[..p].to_vec();
    for r in p..world {
        let bytes = init[r].nbytes(dim);
        plan.ranks[r].push(P2pOp::Send { to: r - p, bytes });
        plan.ranks[r - p].push(P2pOp::Recv { from: r, bytes });
        let folded = std::mem::replace(
            &mut acc[r - p],
            SimSeg { lo: 0, hi: vocab32, dense: false, set: Vec::new() },
        );
        acc[r - p] = ssar_merge(folded, init[r].clone(), crossover);
    }

    // Recursive-halving reduce-scatter. Partners at distance d differ only
    // in bit d, and every consumed bit is below d, so both hold the same
    // range and split at the same midpoint.
    let mut d = 1;
    while d < p {
        let prev = acc.clone();
        for r in 0..p {
            let partner = r ^ d;
            let mid = prev[r].lo + (prev[r].hi - prev[r].lo) / 2;
            let (low, high) = ssar_split(&prev[r], mid);
            let (keep, sent) = if r & d == 0 { (low, high) } else { (high, low) };
            let (plow, phigh) = ssar_split(&prev[partner], mid);
            let incoming = if r & d == 0 { plow } else { phigh };
            plan.ranks[r].push(P2pOp::Send { to: partner, bytes: sent.nbytes(dim) });
            plan.ranks[r].push(P2pOp::Recv { from: partner, bytes: incoming.nbytes(dim) });
            acc[r] = ssar_merge(keep, incoming, crossover);
        }
        d *= 2;
    }

    // Recursive-doubling allgather: whole accumulated segment lists cross.
    let mut lists: Vec<Vec<SimSeg>> = acc.into_iter().map(|s| vec![s]).collect();
    let mut d = 1;
    while d < p {
        let prev_bytes: Vec<u64> =
            lists.iter().map(|l| l.iter().map(|s| s.nbytes(dim)).sum()).collect();
        let snapshot = lists.clone();
        for r in 0..p {
            let partner = r ^ d;
            plan.ranks[r].push(P2pOp::Send { to: partner, bytes: prev_bytes[r] });
            plan.ranks[r].push(P2pOp::Recv { from: partner, bytes: prev_bytes[partner] });
            lists[r].extend(snapshot[partner].iter().cloned());
        }
        d *= 2;
    }

    // Fold-out: assembled result back to the extras.
    for (r, list) in lists.iter().enumerate().take(extra) {
        let bytes: u64 = list.iter().map(|s| s.nbytes(dim)).sum();
        plan.ranks[r].push(P2pOp::Send { to: r + p, bytes });
        plan.ranks[r + p].push(P2pOp::Recv { from: r, bytes });
    }
    plan
}

/// Deterministic demo instance of the SSAR plan for the verification
/// sweeps: a fixed small vocabulary with rank-dependent stride patterns
/// (rank `r` touches every `(r mod 5 + 2)`-th row starting at `r`), at a
/// mid-range crossover so both sparse and densified segments appear.
/// Cheap enough to generate at world 1024 for the wait-graph sweep.
pub fn sparse_allreduce_demo_plan(world: usize) -> P2pPlan {
    let vocab = 512;
    let locals: Vec<Vec<u32>> = (0..world)
        .map(|r| (r % 17..vocab).step_by(r % 5 + 2).map(|i| i as u32).collect())
        .collect();
    sparse_allreduce_plan(world, &locals, 4, vocab, 0.5)
}

/// One collective in a rank's schedule plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedCollective {
    /// Cross-rank consistency tag.
    pub tag: String,
    /// Operation kind (`CommOp::kind_str` vocabulary).
    pub kind: &'static str,
    /// Queue priority (lower = sooner).
    pub priority: i64,
    /// This rank's outgoing payload bytes (may differ across ranks).
    pub bytes: u64,
}

/// A whole group's schedule plan: `ranks[r]` is rank `r`'s submissions in
/// submission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedulePlan {
    pub world: usize,
    pub ranks: Vec<Vec<PlannedCollective>>,
}

impl SchedulePlan {
    /// Harvest a schedule plan from live `CommScheduler` submission logs
    /// (one log per rank, via `CommScheduler::submitted`).
    pub fn from_logs(logs: &[Vec<SubmittedOp>]) -> Self {
        SchedulePlan {
            world: logs.len(),
            ranks: logs
                .iter()
                .map(|log| {
                    log.iter()
                        .map(|op| PlannedCollective {
                            tag: op.tag.clone(),
                            kind: op.kind,
                            priority: op.priority,
                            bytes: op.bytes,
                        })
                        .collect()
                })
                .collect(),
        }
    }
}

/// Stable tag and scheduler kind of a horizontal-schedule operation.
fn comm_kind_planned(kind: CommKind, priority: i64) -> PlannedCollective {
    let (tag, op_kind) = match kind {
        CommKind::DenseBlock(m) => (format!("dense_block/{m}"), "allreduce_dense"),
        CommKind::EmbData(m) => (format!("emb_data/{m}"), "alltoall_dense"),
        CommKind::PriorGrad(m) => (format!("prior_grad/{m}"), "alltoallv_sparse"),
        CommKind::DelayedGrad(m) => (format!("delayed_grad/{m}"), "alltoallv_sparse"),
    };
    // Payload bytes are model-dependent; the horizontal plan checks
    // ordering and SPMD shape, so they are recorded as 0 here.
    PlannedCollective { tag, kind: op_kind, priority, bytes: 0 }
}

/// Build the static SPMD schedule plan of one training step from the
/// horizontal priority assignment: every rank submits the same ops with
/// the same priorities (the EmbRace guarantee the verifier then checks).
pub fn horizontal_schedule_plan(priorities: &Priorities, world: usize) -> SchedulePlan {
    let ops: Vec<PlannedCollective> =
        priorities.schedule_ops().into_iter().map(|(k, p)| comm_kind_planned(k, p)).collect();
    SchedulePlan { world, ranks: vec![ops; world] }
}

/// A [`Comm`] endpoint that performs no communication but records the
/// point-to-point trace as plan ops. Receives are satisfied from a queue
/// of scripted packets (typically produced by a paired in-process run);
/// when the script runs dry the recv still records and yields
/// [`Packet::Empty`], which is fine for plan extraction of send-shapes.
pub struct RecordingEndpoint {
    rank: usize,
    world: usize,
    trace: Vec<P2pOp>,
    scripted: Vec<std::collections::VecDeque<Packet>>,
}

impl RecordingEndpoint {
    pub fn new(rank: usize, world: usize) -> Self {
        RecordingEndpoint {
            rank,
            world,
            trace: Vec::new(),
            scripted: (0..world).map(|_| std::collections::VecDeque::new()).collect(),
        }
    }

    /// Queue a packet to be returned by a later `try_recv(from)`.
    pub fn script(&mut self, from: usize, packet: Packet) {
        self.scripted[from].push_back(packet);
    }

    /// The point-to-point trace recorded so far.
    pub fn trace(&self) -> &[P2pOp] {
        &self.trace
    }

    pub fn into_trace(self) -> Vec<P2pOp> {
        self.trace
    }
}

impl Comm for RecordingEndpoint {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.world
    }

    fn try_send(&mut self, to: usize, packet: Packet) -> Result<(), CommError> {
        self.trace.push(P2pOp::Send { to, bytes: packet.nbytes() as u64 });
        Ok(())
    }

    fn try_recv(&mut self, from: usize) -> Result<Packet, CommError> {
        let packet = self.scripted[from].pop_front().unwrap_or(Packet::Empty);
        self.trace.push(P2pOp::Recv { from, bytes: packet.nbytes() as u64 });
        Ok(packet)
    }
}

/// Scheduler token-gather priority used by the trainer (kept in sync with
/// `embrace-trainer`; the verifier only needs relative order).
pub const TOKEN_GATHER_PRIORITY: i64 = -4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_plan_shape() {
        // Dissemination barrier: ⌈log₂ world⌉ rounds, one send + one recv
        // per rank per round, distances 1, 2, 4, ...
        let p = barrier_plan(3);
        for r in 0..3 {
            assert_eq!(p.ranks[r].len(), 4); // 2 rounds × (send + recv)
        }
        assert_eq!(
            p.ranks[1],
            vec![
                P2pOp::Send { to: 2, bytes: 0 },
                P2pOp::Recv { from: 0, bytes: 0 },
                P2pOp::Send { to: 0, bytes: 0 },
                P2pOp::Recv { from: 2, bytes: 0 },
            ]
        );
        assert_eq!(barrier_plan(1).ranks[0], vec![]);
    }

    #[test]
    fn chunked_ring_plan_matches_unchunked_bytes_and_verifies() {
        for world in [2, 3, 4] {
            for elems in [7usize, 12, 65, 256] {
                for seg in [1usize, 3, 16, 1024] {
                    let chunked = chunked_ring_allreduce_plan(world, elems, seg);
                    let whole = ring_allreduce_plan(world, elems);
                    for r in 0..world {
                        assert_eq!(
                            chunked.bytes_sent(r),
                            whole.bytes_sent(r),
                            "world {world} elems {elems} seg {seg} rank {r}"
                        );
                        assert_eq!(chunked.bytes_received(r), whole.bytes_received(r));
                    }
                    let diags = crate::verify::verify_p2p(&chunked);
                    assert!(diags.is_empty(), "chunked ring plan clean, got {diags:?}");
                }
            }
        }
        // seg >= max chunk degenerates to exactly one unit per step.
        let p = chunked_ring_allreduce_plan(3, 12, 100);
        assert_eq!(p.ranks[0].len(), ring_allreduce_plan(3, 12).ranks[0].len());
    }

    #[test]
    fn chunked_alltoall_plan_pairs_units_per_link() {
        let bytes = vec![vec![0, 10, 20], vec![30, 0, 40], vec![50, 60, 0]];
        let p = chunked_alltoall_plan("alltoall_dense_chunked", &bytes);
        assert!(crate::verify::verify_p2p(&p).is_empty(), "chunked alltoall plan clean");
        for (r, row) in bytes.iter().enumerate() {
            // world-1 units, each one send + one recv.
            assert_eq!(p.ranks[r].len(), 4);
            let sent: u64 = row.iter().sum();
            assert_eq!(p.bytes_sent(r), sent);
        }
        // Same totals as the whole-op plan, different interleaving.
        let whole = alltoall_plan("alltoall_dense", &bytes);
        for r in 0..3 {
            assert_eq!(p.bytes_sent(r), whole.bytes_sent(r));
            assert_eq!(p.bytes_received(r), whole.bytes_received(r));
        }
        // Allgather shape: identical row entries per rank.
        let gather = chunked_alltoall_plan(
            "allgather_chunked",
            &(0..3).map(|r| vec![(r as u64 + 1) * 8; 3]).collect::<Vec<_>>(),
        );
        assert!(crate::verify::verify_p2p(&gather).is_empty(), "chunked allgather plan clean");
        assert_eq!(gather.bytes_received(0), 16 + 24);
    }

    #[test]
    fn ring_plan_conserves_bytes_per_rank() {
        for world in [2, 3, 4] {
            // Evenly divisible chunks: per-rank symmetry holds exactly.
            let p = ring_allreduce_plan(world, 12);
            for r in 0..world {
                assert_eq!(p.bytes_sent(r), p.bytes_received(r), "rank {r}");
                assert_eq!(p.ranks[r].len(), 4 * (world - 1));
            }
            // Uneven chunks: conservation holds globally.
            let p = ring_allreduce_plan(world, 11);
            let sent: u64 = (0..world).map(|r| p.bytes_sent(r)).sum();
            let recv: u64 = (0..world).map(|r| p.bytes_received(r)).sum();
            assert_eq!(sent, recv);
        }
    }

    #[test]
    fn alltoall_plan_links_match_matrix() {
        let bytes = vec![vec![0, 10, 20], vec![30, 0, 40], vec![50, 60, 0]];
        let p = alltoall_plan("alltoall_dense", &bytes);
        assert_eq!(p.link_traffic(0, 1), (1, 10));
        assert_eq!(p.link_traffic(2, 1), (1, 60));
        assert_eq!(p.link_traffic(1, 1), (0, 0));
    }

    #[test]
    fn lookup_bytes_depend_on_dest_batch_and_own_shard() {
        let m = lookup_alltoall_bytes(&[2, 5], 8);
        // rank 0 shard is 4 cols wide; to rank 1 it sends 5 rows × 4 cols.
        assert_eq!(m[0][1], (5 * 4 * F32_BYTES) as u64);
        assert_eq!(m[1][0], (2 * 4 * F32_BYTES) as u64);
    }

    #[test]
    fn lookup_plan_is_two_transposed_phases() {
        let reqs = vec![vec![0, 2, 1], vec![3, 1, 0], vec![2, 2, 4]];
        let dim = 8;
        let p = lookup_plan(&reqs, dim);
        assert!(crate::verify::verify_p2p(&p).is_empty(), "lookup plan clean");
        // Each rank: (world-1) sends + recvs per phase, two phases.
        for ops in &p.ranks {
            assert_eq!(ops.len(), 2 * 2 * 2);
        }
        // Request link 0→1 carries 2 ids; response link 1→0 carries the
        // matching 2 rows.
        let id = TOKEN_BYTES as u64;
        let row = (dim * F32_BYTES) as u64;
        assert_eq!(p.link_traffic(0, 1), (2, 2 * id + 3 * row));
        assert_eq!(p.link_traffic(1, 0), (2, 3 * id + 2 * row));
        // Bytes conserve globally across both phases.
        let sent: u64 = (0..3).map(|r| p.bytes_sent(r)).sum();
        let recv: u64 = (0..3).map(|r| p.bytes_received(r)).sum();
        assert_eq!(sent, recv);
    }

    #[test]
    fn lookup_demo_plan_scales_clean() {
        for world in [1usize, 2, 3, 4, 8, 16] {
            let p = lookup_demo_plan(world);
            let diags = crate::verify::verify_p2p(&p);
            assert!(diags.is_empty(), "world {world}: {diags:?}");
        }
    }

    #[test]
    fn reform_plan_is_matched_and_sized() {
        assert!(reform_plan(1).ranks[0].is_empty());
        for world in [2usize, 3, 4, 8] {
            let p = reform_plan(world);
            let diags = crate::verify::verify_p2p(&p);
            assert!(diags.is_empty(), "world {world}: {diags:?}");
            // Coordinator: one probe out + one report in + one commit out
            // per peer; members: world-1 probes out, commit + world-1
            // stale reports in.
            assert_eq!(p.ranks[0].len(), 3 * (world - 1));
            for r in 1..world {
                assert_eq!(p.ranks[r].len(), 2 * world - 1);
            }
            // Report = rank id + epoch; commit carries the member list.
            assert_eq!(p.link_traffic(1, 0), (1, (TOKEN_BYTES + 8) as u64));
            let commit = (8 + world * TOKEN_BYTES) as u64;
            assert_eq!(p.link_traffic(0, 1), (2, (TOKEN_BYTES + 8) as u64 + commit));
        }
    }

    #[test]
    fn sparse_allreduce_plan_is_clean_and_conserves_bytes() {
        for world in [2usize, 3, 4, 5, 7, 8] {
            for crossover in [2.0, 0.5, 0.0] {
                let locals: Vec<Vec<u32>> = (0..world)
                    .map(|r| (r as u32..64).step_by(r + 2).chain([r as u32]).collect())
                    .collect();
                let p = sparse_allreduce_plan(world, &locals, 4, 64, crossover);
                assert_eq!(p.kind, "sparse_allreduce");
                let diags = crate::verify::verify_p2p(&p);
                assert!(diags.is_empty(), "world {world} x {crossover}: {diags:?}");
                let sent: u64 = (0..world).map(|r| p.bytes_sent(r)).sum();
                let recv: u64 = (0..world).map(|r| p.bytes_received(r)).sum();
                assert_eq!(sent, recv, "world {world} x {crossover}");
            }
        }
        assert!(sparse_allreduce_plan(1, &[vec![3, 1]], 4, 8, 0.5).ranks[0].is_empty());
    }

    #[test]
    fn sparse_allreduce_plan_crossover_bounds_bytes() {
        // crossover 0.0 forces dense segments everywhere: every wire byte
        // count is the dense range size, independent of index sets.
        let locals: Vec<Vec<u32>> = vec![vec![0], vec![1], vec![2], vec![3]];
        let dense = sparse_allreduce_plan(4, &locals, 2, 16, 0.0);
        let expect_half = (SEG_HEADER_BYTES + 8 * 2 * F32_BYTES) as u64;
        let expect_quarter = (SEG_HEADER_BYTES + 4 * 2 * F32_BYTES) as u64;
        assert_eq!(
            dense.ranks[0],
            vec![
                P2pOp::Send { to: 1, bytes: expect_half },
                P2pOp::Recv { from: 1, bytes: expect_half },
                P2pOp::Send { to: 2, bytes: expect_quarter },
                P2pOp::Recv { from: 2, bytes: expect_quarter },
                P2pOp::Send { to: 1, bytes: expect_quarter },
                P2pOp::Recv { from: 1, bytes: expect_quarter },
                P2pOp::Send { to: 2, bytes: 2 * expect_quarter },
                P2pOp::Recv { from: 2, bytes: 2 * expect_quarter },
            ]
        );
        // crossover > 1.0 never densifies: byte counts track nnz exactly,
        // and sparse traffic undercuts dense when density is low.
        let sparse = sparse_allreduce_plan(4, &locals, 2, 16, 2.0);
        for r in 0..4 {
            assert!(sparse.bytes_sent(r) < dense.bytes_sent(r), "rank {r}");
        }
        let row = (INDEX_BYTES + 2 * F32_BYTES) as u64;
        // Rank 0 step 1: upper half [8,16) is empty, lower-half recv from
        // rank 1 carries its single row {1}.
        assert_eq!(sparse.ranks[0][0], P2pOp::Send { to: 1, bytes: SEG_HEADER_BYTES as u64 });
        assert_eq!(
            sparse.ranks[0][1],
            P2pOp::Recv { from: 1, bytes: SEG_HEADER_BYTES as u64 + row }
        );
    }

    #[test]
    fn sparse_allreduce_demo_plan_scales() {
        for world in [1usize, 2, 3, 4, 8, 16, 64] {
            let p = sparse_allreduce_demo_plan(world);
            let diags = crate::verify::verify_p2p(&p);
            assert!(diags.is_empty(), "world {world}: {diags:?}");
        }
    }

    #[test]
    fn tokens_plan_roundtrip_constant() {
        let p = allgather_plan(2, &[(3 * TOKEN_BYTES) as u64, TOKEN_BYTES as u64]);
        assert_eq!(p.bytes_sent(0), (3 * TOKEN_BYTES) as u64);
        assert_eq!(p.bytes_received(0), TOKEN_BYTES as u64);
    }
}
