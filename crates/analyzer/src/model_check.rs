//! Deterministic interleaving model checker ("loom-lite").
//!
//! Replaces the threaded mesh with a virtual single-threaded scheduler
//! for small worlds (2–4 ranks) and exhaustively enumerates every
//! schedule of the collective algorithms in `embrace_collectives::ops`:
//!
//! * **Choice points** are blocking receives: a scheduled step picks one
//!   rank whose pending receive is resolvable, completes it, then runs
//!   that rank forward through its (non-blocking) sends to its next
//!   receive or termination.
//! * **Partial-order reduction**: sends never block and are invisible to
//!   every rank except their consumer, so they are executed eagerly as
//!   part of the step that enables them rather than scheduled separately.
//!   Receives addressed to distinct ranks are the only operations whose
//!   order matters, and all of their orders are explored.
//! * The state graph is acyclic (every step advances some program
//!   counter); states are deduplicated and the number of *interleavings*
//!   (paths from the initial state to a terminal state) is computed by
//!   dynamic programming over the DAG in `u128`.
//!
//! Checked properties:
//!
//! * **deadlock-freedom** — no reachable state has running ranks but no
//!   enabled step;
//! * **determinism** — every terminal state carries bitwise-identical
//!   per-rank results (f32 payloads are tracked as bit patterns);
//! * **abort termination** — with a crashed rank injected, every
//!   interleaving still terminates: PR 1's abort broadcast reaches every
//!   survivor in every ordering;
//! * **re-form safety** — the elastic shrink handshake
//!   ([`Collective::Reform`] / [`Collective::ReformMidway`]) is
//!   deadlock-free and commits one agreed membership containing every
//!   survivor, even when a rank crashes *mid-handshake* (including the
//!   coordinator, exercising failover).
//!
//! The virtual programs mirror `ops.rs` exactly — same peers, same
//! send/receive order, same chunking ([`row_partition`]), same abort
//! protocol (origin broadcasts [`Packet::Abort`]-equivalents, receivers
//! of an abort do not re-broadcast). Terminal results are cross-checked
//! against the real threaded implementation in this crate's tests.
//!
//! [`Packet::Abort`]: embrace_collectives::Packet::Abort

use embrace_tensor::row_partition;
use std::collections::{HashMap, HashSet, VecDeque};

/// Which collective algorithm to model-check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Collective {
    Barrier,
    Broadcast {
        root: usize,
    },
    RingAllreduce {
        elems: usize,
    },
    AllgatherTokens,
    Alltoallv,
    /// The sparse-native split allreduce (SSAR) of
    /// `ops::sparse_allreduce`: fold-in of non-power-of-two extras,
    /// recursive-halving reduce-scatter of (index, value) streams with
    /// on-the-fly duplicate-summing merge, recursive-doubling allgather,
    /// fold-out. The model carries sorted `(row, f32-bits)` pair streams
    /// over a fixed [`SSAR_VOCAB`]-row vocabulary; the sparse→dense
    /// crossover only changes payload *encoding*, never the peer/order
    /// schedule or the pairwise summation tree, so one virtual program
    /// covers every crossover setting.
    SparseAllreduce,
    /// The chunked scheduler's segmented ring allreduce: `seg`-element
    /// units, one optional send + one optional recv per unit, mirroring
    /// `ChunkedExec::Ring::advance` (and `plan::chunked_ring_allreduce_plan`).
    ChunkedRingAllreduce {
        elems: usize,
        seg: usize,
    },
    /// Chunked fan-out gather: unit `u` sends to `(rank+u+1) % w`,
    /// receives from `(rank+w-u-1) % w` — `ChunkedExec::Tokens`.
    ChunkedAllgather,
    /// Chunked fan-out alltoallv — `ChunkedExec::Sparse`/`Dense`.
    ChunkedAlltoallv,
    /// A chunked ring allreduce preempted after `preempt_at` units by a
    /// whole chunked allgather (the §5.2 scenario: urgent sparse op
    /// interleaved mid-tensor into a bulk dense op), then resumed. The
    /// cut is unit-aligned on every rank, exactly as the controller's
    /// between-unit preemption point guarantees.
    PreemptedRing {
        elems: usize,
        seg: usize,
        preempt_at: usize,
    },
    /// The elastic shrink re-form handshake of
    /// `embrace_collectives::ElasticWorker::reform`: probe every current
    /// member with a `Report`, elect the minimum presumed-alive rank
    /// coordinator, gather one report per alive peer, commit the
    /// membership, with coordinator-failover re-probe rounds when the
    /// coordinator dies mid-handshake. Combine with [`CheckConfig::crash`]
    /// for a rank that is dead before the re-form begins.
    ///
    /// Unlike the data collectives, re-form sends *observe* peer liveness
    /// (`try_send` → `PeerGone` removes the peer from the candidate set),
    /// so the model schedules every send as a choice point instead of
    /// executing sends eagerly.
    Reform,
    /// Re-form with `victim` crashing *mid-handshake*: it probes (so its
    /// reports may or may not be seen), gathers if it elected itself
    /// coordinator, then its endpoint drops before it commits. Every
    /// interleaving of the victim's death against the survivors' probes
    /// is explored.
    ReformMidway {
        victim: usize,
    },
}

impl Collective {
    pub fn name(&self) -> &'static str {
        match self {
            Collective::Barrier => "barrier",
            Collective::Broadcast { .. } => "broadcast",
            Collective::RingAllreduce { .. } => "ring_allreduce",
            Collective::AllgatherTokens => "allgather",
            Collective::Alltoallv => "alltoallv",
            Collective::SparseAllreduce => "sparse_allreduce",
            Collective::ChunkedRingAllreduce { .. } => "ring_allreduce_chunked",
            Collective::ChunkedAllgather => "allgather_chunked",
            Collective::ChunkedAlltoallv => "alltoallv_chunked",
            Collective::PreemptedRing { .. } => "ring_preempted",
            Collective::Reform => "reform",
            Collective::ReformMidway { .. } => "reform_midway",
        }
    }

    /// Is this one of the elastic re-form handshake programs?
    pub fn is_reform(&self) -> bool {
        matches!(self, Collective::Reform | Collective::ReformMidway { .. })
    }

    /// The mid-handshake crash victim, if this is [`Collective::ReformMidway`].
    fn midway_victim(&self) -> Option<usize> {
        match self {
            Collective::ReformMidway { victim } => Some(*victim),
            _ => None,
        }
    }

    /// The re-form handshake programs: fault-free plus a mid-handshake
    /// crash of every rank.
    pub fn reform(world: usize) -> Vec<Collective> {
        let mut v = vec![Collective::Reform];
        v.extend((0..world).map(|victim| Collective::ReformMidway { victim }));
        v
    }

    /// The whole-op collectives at their default check sizes.
    pub fn all(world: usize) -> Vec<Collective> {
        vec![
            Collective::Barrier,
            Collective::Broadcast { root: 0 },
            Collective::RingAllreduce { elems: 2 * world + 1 },
            Collective::AllgatherTokens,
            Collective::Alltoallv,
            Collective::SparseAllreduce,
        ]
    }

    /// The chunked-execution programs at their default check sizes: a
    /// segment size of 2 forces multiple units per ring step, and the
    /// preempted variant cuts the ring after `world` units — mid
    /// reduce-scatter.
    pub fn chunked(world: usize) -> Vec<Collective> {
        vec![
            Collective::ChunkedRingAllreduce { elems: 2 * world + 1, seg: 2 },
            Collective::ChunkedAllgather,
            Collective::ChunkedAlltoallv,
            Collective::PreemptedRing { elems: 2 * world + 1, seg: 2, preempt_at: world },
        ]
    }
}

/// One model-checking run: a collective, a world size, and optionally a
/// rank that is crashed from the start (to prove abort termination).
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    pub world: usize,
    pub collective: Collective,
    /// Rank that is dead before the collective begins (its endpoint
    /// dropped): peers observe `PeerGone` and must abort-terminate.
    pub crash: Option<usize>,
}

/// Virtual communication failure (the model's `CommError` subset).
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq, PartialOrd, Ord)]
pub enum VErr {
    PeerGone {
        peer: usize,
    },
    Aborted {
        origin: usize,
    },
    /// This rank was the injected crash victim.
    Crashed,
}

/// A packet on a virtual link. f32 payloads are carried as bit patterns so
/// states hash and results compare bitwise.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
enum VPacket {
    Data(Vec<u32>),
    Empty,
    Abort { origin: usize },
}

#[derive(Clone, Debug, Hash, PartialEq, Eq)]
enum Status {
    Running,
    Done(Result<(), VErr>),
}

#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct RankState {
    pc: u32,
    /// Working buffer (ring-allreduce accumulator, as f32 bit patterns).
    buf: Vec<u32>,
    /// Collected results, indexed by source rank where applicable.
    out: Vec<Vec<u32>>,
    status: Status,
}

/// The whole virtual world. `queues[to][from]` is the FIFO link
/// `from → to`, exactly the transport's per-ordered-pair channel.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct World {
    ranks: Vec<RankState>,
    queues: Vec<Vec<VecDeque<VPacket>>>,
}

/// What a rank's next instruction is (computed from its pc).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    Send(usize),
    Recv(usize),
    Finish,
}

/// Peers of `rank` in ascending order (the iteration order of `ops.rs`
/// gather loops).
fn peers(world: usize, rank: usize) -> impl Iterator<Item = usize> {
    (0..world).filter(move |&p| p != rank)
}

/// One instruction of a chunked virtual program (pc-indexed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Micro {
    /// Send `buf[lo..hi]` to the ring successor.
    SegSend {
        lo: usize,
        hi: usize,
    },
    /// Receive into `buf[lo..hi]` from the ring predecessor: accumulate
    /// during reduce-scatter, overwrite during the allgather phase.
    SegRecv {
        lo: usize,
        hi: usize,
        reduce: bool,
    },
    /// Fan-out block exchange (chunked gather / alltoallv unit).
    BlockSend {
        to: usize,
    },
    BlockRecv {
        from: usize,
    },
}

/// The segmented ring allreduce as per-*unit* op lists (0–2 ops each):
/// unit `(step, i)` sends segment `i` of the step's send chunk if it
/// exists and receives segment `i` of the recv chunk if it exists. The
/// unit count is `2(w−1) · ceil(max_chunk/seg)` on every rank
/// (`row_partition` is global), so unit indices align across ranks —
/// which is what makes a unit-aligned preemption cut coherent.
fn ring_units(w: usize, rank: usize, elems: usize, seg: usize) -> Vec<Vec<Micro>> {
    assert!(seg > 0, "segment size must be positive");
    let mut units = Vec::new();
    if w == 1 {
        return units;
    }
    let chunks = row_partition(elems, w);
    let max_chunk = chunks.iter().map(|c| c.len()).max().unwrap_or(0);
    let ups = max_chunk.div_ceil(seg).max(1);
    for step in 0..2 * (w - 1) {
        let (phase, s) = (step / (w - 1), step % (w - 1));
        let (send_c, recv_c) = if phase == 0 {
            ((rank + w - s) % w, (rank + w - s - 1) % w)
        } else {
            ((rank + 1 + w - s) % w, (rank + w - s) % w)
        };
        for i in 0..ups {
            let mut unit = Vec::new();
            let send = chunks[send_c];
            let lo = send.start + i * seg;
            if lo < send.end {
                unit.push(Micro::SegSend { lo, hi: (lo + seg).min(send.end) });
            }
            let recv = chunks[recv_c];
            let rlo = recv.start + i * seg;
            if rlo < recv.end {
                unit.push(Micro::SegRecv {
                    lo: rlo,
                    hi: (rlo + seg).min(recv.end),
                    reduce: phase == 0,
                });
            }
            units.push(unit);
        }
    }
    units
}

/// Chunked fan-out units: send before recv within each unit, matched
/// unit indices on both ends of every link — deadlock-free by
/// construction.
fn fanout_units(w: usize, rank: usize) -> Vec<Micro> {
    let mut prog = Vec::new();
    for u in 0..w.saturating_sub(1) {
        prog.push(Micro::BlockSend { to: (rank + u + 1) % w });
        prog.push(Micro::BlockRecv { from: (rank + w - u - 1) % w });
    }
    prog
}

/// The flat pc-indexed program of a chunked collective; `None` for the
/// whole-op collectives (which stay arithmetic in [`action`]).
fn micro_prog(cfg: &CheckConfig, rank: usize) -> Option<Vec<Micro>> {
    let w = cfg.world;
    match cfg.collective {
        Collective::ChunkedRingAllreduce { elems, seg } => {
            Some(ring_units(w, rank, elems, seg).concat())
        }
        Collective::ChunkedAllgather | Collective::ChunkedAlltoallv => Some(fanout_units(w, rank)),
        Collective::PreemptedRing { elems, seg, preempt_at } => {
            let units = ring_units(w, rank, elems, seg);
            let k = preempt_at.min(units.len());
            let mut prog = units[..k].concat();
            prog.extend(fanout_units(w, rank));
            prog.extend(units[k..].concat());
            Some(prog)
        }
        _ => None,
    }
}

// --- Sparse-native split allreduce (SSAR) virtual program ----------------

/// Vocabulary rows of the SSAR model (power of two keeps the halving
/// midpoints clean; small enough for exhaustive enumeration).
pub const SSAR_VOCAB: usize = 8;

/// Rank `rank`'s coalesced `(row, f32-bits)` pair stream for the SSAR
/// model: rank-dependent strides give per-rank index sets that partially
/// overlap (shared rows exercise the duplicate-summing merge, unique rows
/// the disjoint path); values are distinct per `(rank, row)`. Public so
/// tests can replay the identical inputs through the real threaded
/// collective and compare results bitwise.
pub fn ssar_local(rank: usize) -> Vec<u32> {
    let stride = rank % 3 + 1;
    (rank % 2..SSAR_VOCAB)
        .step_by(stride)
        .flat_map(|i| [i as u32, ((rank * 7 + i) as f32 * 0.25 + 1.0).to_bits()])
        .collect()
}

fn prev_pow2(n: usize) -> usize {
    debug_assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// One decoded SSAR instruction (`j` is the exchange-distance exponent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SsarOp {
    /// Extra rank ships its whole local stream to `rank − p`.
    FoldSend,
    /// Extra rank receives the assembled final result from `rank − p`.
    FoldRecvResult,
    /// Rank < extra merges the folded stream from `rank + p`.
    FoldRecvMerge,
    RsSend(u32),
    RsRecv(u32),
    AgSend(u32),
    AgRecv(u32),
    /// Rank < extra ships the assembled result to `rank + p`.
    FoldSendResult,
    Done,
}

/// Decode rank `rank`'s pc into its SSAR instruction — the same program
/// order as `ops::try_sparse_allreduce` and `plan::sparse_allreduce_plan`.
fn ssar_op(w: usize, rank: usize, pc: usize) -> SsarOp {
    if w == 1 {
        return SsarOp::Done;
    }
    let p = prev_pow2(w);
    let extra = w - p;
    if rank >= p {
        return match pc {
            0 => SsarOp::FoldSend,
            1 => SsarOp::FoldRecvResult,
            _ => SsarOp::Done,
        };
    }
    let l = p.trailing_zeros() as usize;
    let mut pc = pc;
    if rank < extra {
        if pc == 0 {
            return SsarOp::FoldRecvMerge;
        }
        pc -= 1;
    }
    if pc < 2 * l {
        let j = (pc / 2) as u32;
        return if pc.is_multiple_of(2) { SsarOp::RsSend(j) } else { SsarOp::RsRecv(j) };
    }
    pc -= 2 * l;
    if pc < 2 * l {
        let j = (pc / 2) as u32;
        return if pc.is_multiple_of(2) { SsarOp::AgSend(j) } else { SsarOp::AgRecv(j) };
    }
    pc -= 2 * l;
    if rank < extra && pc == 0 {
        return SsarOp::FoldSendResult;
    }
    SsarOp::Done
}

/// The vocabulary range rank `rank` owns after `steps` reduce-scatter
/// halvings (bit `i` of the rank decides which half survives step `i`).
fn ssar_range(rank: usize, steps: usize) -> (u32, u32) {
    let (mut lo, mut hi) = (0u32, SSAR_VOCAB as u32);
    for i in 0..steps {
        let mid = lo + (hi - lo) / 2;
        if rank & (1 << i) == 0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    (lo, hi)
}

/// The pairs of a sorted `(row, bits)` stream whose row lies in `[lo, hi)`.
fn ssar_pairs_in(buf: &[u32], lo: u32, hi: u32) -> Vec<u32> {
    buf.chunks(2).filter(|p| p[0] >= lo && p[0] < hi).flatten().copied().collect()
}

/// Merge two sorted pair streams, summing the f32 payloads of duplicate
/// rows left-then-right — the model twin of `merge_rowsparse`.
fn ssar_merge(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::with_capacity(a.len() + b.len());
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.extend_from_slice(&a[i..i + 2]);
                i += 2;
            }
            std::cmp::Ordering::Greater => {
                out.extend_from_slice(&b[j..j + 2]);
                j += 2;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                out.push((f32::from_bits(a[i + 1]) + f32::from_bits(b[j + 1])).to_bits());
                i += 2;
                j += 2;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

// --- Elastic re-form handshake state machine -----------------------------
//
// Re-form ranks keep their protocol state in `RankState::buf` instead of a
// static pc-indexed program, because the handshake is data-dependent: which
// peers answer a probe decides who coordinates, and coordinator failover
// loops back to a fresh probe round over a strictly smaller candidate set.
// Membership sets are bitmasks (worlds ≤ 32).

/// `buf` slots of a re-form rank.
const B_PHASE: usize = 0;
const B_CAND: usize = 1;
const B_ALIVE: usize = 2;
const B_CUR: usize = 3;
const B_MASK: usize = 4;

/// Re-form phases. Probe/commit rest at a *send* choice point; gather and
/// await rest at receives; crash is the midway victim's scheduled death.
const P_PROBE: u32 = 0;
const P_GATHER: u32 = 1;
const P_AWAIT: u32 = 2;
const P_COMMIT: u32 = 3;
const P_CRASH: u32 = 4;
const P_DONE: u32 = 5;

/// Smallest rank ≥ `from` in `mask`, excluding `me`.
fn next_member(mask: u32, from: u32, me: usize) -> Option<usize> {
    (from as usize..32).find(|&i| i != me && mask & (1 << i) != 0)
}

/// Advance a re-form rank through exhausted phase boundaries so `buf`
/// always points at a real pending operation (or a terminal phase).
/// Mirrors `ElasticWorker::reform`'s control flow: probe → elect min
/// alive → gather (coordinator) or await-commit (member); the midway
/// victim substitutes its crash for await/commit.
fn reform_normalize(buf: &mut [u32], me: usize, victim: bool) {
    loop {
        match buf[B_PHASE] {
            P_PROBE => {
                if next_member(buf[B_CAND], buf[B_CUR], me).is_some() {
                    return;
                }
                // `alive` always contains `me`, so the minimum exists.
                let coord = buf[B_ALIVE].trailing_zeros();
                if coord as usize == me {
                    buf[B_PHASE] = P_GATHER;
                    buf[B_CUR] = 0;
                } else if victim {
                    buf[B_PHASE] = P_CRASH;
                } else {
                    buf[B_PHASE] = P_AWAIT;
                    buf[B_CUR] = coord;
                }
            }
            P_GATHER => {
                if next_member(buf[B_ALIVE], buf[B_CUR], me).is_some() {
                    return;
                }
                if victim {
                    buf[B_PHASE] = P_CRASH;
                } else {
                    buf[B_PHASE] = P_COMMIT;
                    buf[B_CUR] = 0;
                }
            }
            P_COMMIT => {
                if next_member(buf[B_MASK], buf[B_CUR], me).is_some() {
                    return;
                }
                buf[B_PHASE] = P_DONE;
            }
            _ => return, // await / crash / done rest as they are
        }
    }
}

fn action(cfg: &CheckConfig, rank: usize, pc: u32) -> Action {
    if let Some(prog) = micro_prog(cfg, rank) {
        return match prog.get(pc as usize) {
            None => Action::Finish,
            Some(Micro::SegSend { .. }) => Action::Send((rank + 1) % cfg.world),
            Some(Micro::SegRecv { .. }) => Action::Recv((rank + cfg.world - 1) % cfg.world),
            Some(Micro::BlockSend { to }) => Action::Send(*to),
            Some(Micro::BlockRecv { from }) => Action::Recv(*from),
        };
    }
    let w = cfg.world;
    let pc = pc as usize;
    match cfg.collective {
        Collective::Barrier => {
            // Dissemination barrier: round k (k = 0, 1, ...) sends a signal
            // at distance 2^k and waits for one from the same distance the
            // other way; ⌈log₂ w⌉ rounds total. Mirrors `ops::try_barrier`
            // and `plan::barrier_plan`.
            if w == 1 {
                return Action::Finish;
            }
            let round = pc / 2;
            let dist = 1usize << round;
            if dist >= w {
                Action::Finish
            } else if pc.is_multiple_of(2) {
                Action::Send((rank + dist) % w)
            } else {
                Action::Recv((rank + w - dist) % w)
            }
        }
        Collective::Broadcast { root } => {
            if rank == root {
                match peers(w, root).nth(pc) {
                    Some(dst) => Action::Send(dst),
                    None => Action::Finish,
                }
            } else {
                match pc {
                    0 => Action::Recv(root),
                    _ => Action::Finish,
                }
            }
        }
        Collective::RingAllreduce { .. } => {
            if w == 1 || pc >= 4 * (w - 1) {
                return Action::Finish;
            }
            let next = (rank + 1) % w;
            let prev = (rank + w - 1) % w;
            if pc.is_multiple_of(2) {
                Action::Send(next)
            } else {
                Action::Recv(prev)
            }
        }
        Collective::AllgatherTokens | Collective::Alltoallv => {
            if pc < w - 1 {
                let dst = match cfg.collective {
                    // Alltoall sends in the rotated order of `ops.rs`.
                    Collective::Alltoallv => (rank + pc + 1) % w,
                    _ => peers(w, rank).nth(pc).expect("peer index in range"),
                };
                Action::Send(dst)
            } else if pc < 2 * (w - 1) {
                Action::Recv(peers(w, rank).nth(pc - (w - 1)).expect("peer index in range"))
            } else {
                Action::Finish
            }
        }
        Collective::SparseAllreduce => {
            let p = prev_pow2(w);
            match ssar_op(w, rank, pc) {
                SsarOp::Done => Action::Finish,
                SsarOp::FoldSend => Action::Send(rank - p),
                SsarOp::FoldRecvResult => Action::Recv(rank - p),
                SsarOp::FoldRecvMerge => Action::Recv(rank + p),
                SsarOp::FoldSendResult => Action::Send(rank + p),
                SsarOp::RsSend(j) | SsarOp::AgSend(j) => Action::Send(rank ^ (1 << j)),
                SsarOp::RsRecv(j) | SsarOp::AgRecv(j) => Action::Recv(rank ^ (1 << j)),
            }
        }
        Collective::ChunkedRingAllreduce { .. }
        | Collective::ChunkedAllgather
        | Collective::ChunkedAlltoallv
        | Collective::PreemptedRing { .. } => {
            unreachable!("chunked collectives are handled by their micro program")
        }
        Collective::Reform | Collective::ReformMidway { .. } => {
            unreachable!("re-form is handled by its own interpreter")
        }
    }
}

/// This rank's initial local payload for the allgather model. Values are
/// distinct per rank and lengths vary to exercise variable payloads;
/// public so tests can replay the identical inputs through the real
/// threaded collectives and compare results bitwise.
pub fn gather_local(rank: usize) -> Vec<u32> {
    (0..=rank as u32).map(|i| (rank as u32) * 16 + i).collect()
}

/// Rank `rank`'s part destined for `dst` in the alltoallv model (see
/// [`gather_local`] for why this is public).
pub fn alltoallv_part(rank: usize, dst: usize) -> Vec<u32> {
    let len = (rank + dst) % 2 + 1;
    vec![(rank as u32) * 16 + dst as u32; len]
}

/// Rank `rank`'s initial buffer in the ring-allreduce model, as f32 bit
/// patterns (see [`gather_local`] for why this is public).
pub fn ring_init(rank: usize, elems: usize) -> Vec<u32> {
    (0..elems).map(|i| ((rank * 100 + i) as f32).to_bits()).collect()
}

/// The payload the broadcast model's root transmits (see
/// [`gather_local`] for why this is public).
pub fn broadcast_payload(world: usize) -> Vec<u32> {
    vec![7, 42, world as u32]
}

fn ring_chunks(cfg: &CheckConfig) -> Vec<embrace_tensor::RowRange> {
    let elems = match cfg.collective {
        Collective::RingAllreduce { elems } => elems,
        _ => unreachable!("ring chunks queried for non-ring collective"),
    };
    row_partition(elems, cfg.world)
}

/// The payload of the send at `pc` (computed from current state, since
/// ring-allreduce payloads depend on received data).
fn send_payload(cfg: &CheckConfig, rank: usize, st: &RankState) -> VPacket {
    let w = cfg.world;
    if let Some(prog) = micro_prog(cfg, rank) {
        return match prog[st.pc as usize] {
            Micro::SegSend { lo, hi } => VPacket::Data(st.buf[lo..hi].to_vec()),
            Micro::BlockSend { to } => match cfg.collective {
                Collective::ChunkedAlltoallv => VPacket::Data(alltoallv_part(rank, to)),
                // Chunked gather and the preemptor inside PreemptedRing.
                _ => VPacket::Data(gather_local(rank)),
            },
            other => unreachable!("send scheduled at {other:?}"),
        };
    }
    match cfg.collective {
        Collective::Barrier => VPacket::Empty,
        Collective::Broadcast { .. } => VPacket::Data(broadcast_payload(w)),
        Collective::AllgatherTokens => VPacket::Data(gather_local(rank)),
        Collective::Alltoallv => {
            let dst = (rank + st.pc as usize + 1) % w;
            VPacket::Data(alltoallv_part(rank, dst))
        }
        Collective::RingAllreduce { .. } => {
            let chunks = ring_chunks(cfg);
            let step = (st.pc / 2) as usize;
            let send_c = if step < w - 1 {
                (rank + w - step) % w
            } else {
                let s2 = step - (w - 1);
                (rank + 1 + w - s2) % w
            };
            VPacket::Data(st.buf[chunks[send_c].start..chunks[send_c].end].to_vec())
        }
        Collective::SparseAllreduce => match ssar_op(w, rank, st.pc as usize) {
            // Fold-in, allgather and fold-out ship the whole stream.
            SsarOp::FoldSend | SsarOp::FoldSendResult | SsarOp::AgSend(_) => {
                VPacket::Data(st.buf.clone())
            }
            SsarOp::RsSend(j) => {
                let (lo, hi) = ssar_range(rank, j as usize);
                let mid = lo + (hi - lo) / 2;
                let (slo, shi) = if rank & (1 << j) == 0 { (mid, hi) } else { (lo, mid) };
                VPacket::Data(ssar_pairs_in(&st.buf, slo, shi))
            }
            other => unreachable!("SSAR send scheduled at {other:?}"),
        },
        Collective::ChunkedRingAllreduce { .. }
        | Collective::ChunkedAllgather
        | Collective::ChunkedAlltoallv
        | Collective::PreemptedRing { .. } => {
            unreachable!("chunked collectives are handled by their micro program")
        }
        Collective::Reform | Collective::ReformMidway { .. } => {
            unreachable!("re-form is handled by its own interpreter")
        }
    }
}

/// Fold a received packet into the rank's state (the recv at `pc`).
fn handle_recv(cfg: &CheckConfig, rank: usize, st: &mut RankState, from: usize, p: VPacket) {
    let w = cfg.world;
    if let Some(prog) = micro_prog(cfg, rank) {
        match (prog[st.pc as usize], p) {
            (Micro::SegRecv { lo, hi, reduce }, VPacket::Data(d)) => {
                let dst = &mut st.buf[lo..hi];
                if reduce {
                    for (acc, inc) in dst.iter_mut().zip(&d) {
                        *acc = (f32::from_bits(*acc) + f32::from_bits(*inc)).to_bits();
                    }
                } else {
                    dst.copy_from_slice(&d);
                }
            }
            (Micro::BlockRecv { .. }, VPacket::Data(d)) => st.out[from] = d,
            (m, p) => unreachable!("model protocol violation: {m:?} received {p:?}"),
        }
        return;
    }
    match (cfg.collective, p) {
        (Collective::Barrier, VPacket::Empty) => {}
        (Collective::Broadcast { .. }, VPacket::Data(d)) => st.out = vec![d],
        (Collective::AllgatherTokens, VPacket::Data(d))
        | (Collective::Alltoallv, VPacket::Data(d)) => st.out[from] = d,
        (Collective::RingAllreduce { .. }, VPacket::Data(d)) => {
            let chunks = ring_chunks(cfg);
            let step = (st.pc / 2) as usize;
            if step < w - 1 {
                // Reduce-scatter: accumulate into the receiving chunk,
                // bit-exactly as the real implementation does.
                let recv_c = (rank + w - step - 1) % w;
                let dst = &mut st.buf[chunks[recv_c].start..chunks[recv_c].end];
                for (acc, inc) in dst.iter_mut().zip(&d) {
                    *acc = (f32::from_bits(*acc) + f32::from_bits(*inc)).to_bits();
                }
            } else {
                let s2 = step - (w - 1);
                let recv_c = (rank + w - s2) % w;
                st.buf[chunks[recv_c].start..chunks[recv_c].end].copy_from_slice(&d);
            }
        }
        (Collective::SparseAllreduce, VPacket::Data(d)) => {
            match ssar_op(w, rank, st.pc as usize) {
                // Fold-out delivers the finished result verbatim.
                SsarOp::FoldRecvResult => st.buf = d,
                // Fold-in and allgather merge whole streams (allgather
                // segments are disjoint, so no sums actually occur there).
                SsarOp::FoldRecvMerge | SsarOp::AgRecv(_) => st.buf = ssar_merge(&st.buf, &d),
                SsarOp::RsRecv(j) => {
                    let (lo, hi) = ssar_range(rank, j as usize);
                    let mid = lo + (hi - lo) / 2;
                    let (klo, khi) = if rank & (1 << j) == 0 { (lo, mid) } else { (mid, hi) };
                    let kept = ssar_pairs_in(&st.buf, klo, khi);
                    st.buf = ssar_merge(&kept, &d);
                }
                other => unreachable!("SSAR recv scheduled at {other:?}"),
            }
        }
        (c, p) => unreachable!("model protocol violation: {c:?} received {p:?}"),
    }
}

impl World {
    fn new(cfg: &CheckConfig) -> World {
        let w = cfg.world;
        let ranks = (0..w)
            .map(|rank| {
                let (buf, out, status) = match cfg.collective {
                    Collective::RingAllreduce { elems }
                    | Collective::ChunkedRingAllreduce { elems, .. } => {
                        (ring_init(rank, elems), Vec::new(), Status::Running)
                    }
                    Collective::AllgatherTokens
                    | Collective::Alltoallv
                    | Collective::ChunkedAllgather
                    | Collective::ChunkedAlltoallv => {
                        (Vec::new(), vec![Vec::new(); w], Status::Running)
                    }
                    Collective::SparseAllreduce => (ssar_local(rank), Vec::new(), Status::Running),
                    // The preempted ring carries both the ring buffer and
                    // the preemptor gather's output slots.
                    Collective::PreemptedRing { elems, .. } => {
                        (ring_init(rank, elems), vec![Vec::new(); w], Status::Running)
                    }
                    // Re-form: protocol state, not payload, lives in `buf`.
                    // Everyone starts probing the full membership, presuming
                    // only itself alive and committed.
                    Collective::Reform | Collective::ReformMidway { .. } => {
                        let full = ((1u64 << w) - 1) as u32;
                        let me = 1u32 << rank;
                        (vec![P_PROBE, full, me, 0, me], Vec::new(), Status::Running)
                    }
                    _ => (Vec::new(), Vec::new(), Status::Running),
                };
                let status =
                    if cfg.crash == Some(rank) { Status::Done(Err(VErr::Crashed)) } else { status };
                RankState { pc: 0, buf, out, status }
            })
            .collect();
        let queues = (0..w).map(|_| (0..w).map(|_| VecDeque::new()).collect()).collect();
        World { ranks, queues }
    }

    fn running(&self, r: usize) -> bool {
        self.ranks[r].status == Status::Running
    }

    /// Abort broadcast + terminate with `err` — mirrors `ops::fail`:
    /// locally detected failures notify every live peer; received aborts
    /// (handled at the recv site) are not re-broadcast.
    fn fail(&mut self, r: usize, err: VErr) {
        if !matches!(err, VErr::Aborted { .. }) {
            for dst in 0..self.ranks.len() {
                if dst != r && self.running(dst) {
                    self.queues[dst][r].push_back(VPacket::Abort { origin: r });
                }
            }
        }
        self.finish(r, Err(err));
    }

    /// Terminate rank `r`: its endpoint drops, so in-flight packets to it
    /// are discarded (crossbeam disconnect semantics) — also keeps states
    /// canonical for deduplication.
    fn finish(&mut self, r: usize, result: Result<(), VErr>) {
        self.ranks[r].status = Status::Done(result);
        for q in &mut self.queues[r] {
            q.clear();
        }
    }

    /// A peer a re-form probe can deliver to: running, or finished
    /// cleanly (its endpoint outlives the handshake). Only a *crashed*
    /// rank's endpoint is gone, which is exactly what `try_send`'s
    /// `PeerGone` detects in the real transport.
    fn reachable(&self, r: usize) -> bool {
        !matches!(self.ranks[r].status, Status::Done(Err(_)))
    }

    /// Run re-form rank `r` forward by up to `budget` scheduled
    /// operations. Every probe/commit send, gather/await receive, and the
    /// midway victim's crash is a separate choice point: sends observe
    /// peer liveness here, so their order against a peer's death matters
    /// and must be explored.
    fn advance_reform(&mut self, cfg: &CheckConfig, r: usize, mut budget: u32) {
        let victim = cfg.collective.midway_victim() == Some(r);
        while self.running(r) {
            reform_normalize(&mut self.ranks[r].buf, r, victim);
            let phase = self.ranks[r].buf[B_PHASE];
            if phase == P_DONE {
                // Committed: the membership mask is the result; the
                // protocol scratch state is not part of it.
                let mask = self.ranks[r].buf[B_MASK];
                self.ranks[r].out = vec![vec![mask]];
                self.ranks[r].buf = Vec::new();
                self.finish(r, Ok(()));
                return;
            }
            if budget == 0 {
                return;
            }
            match phase {
                P_CRASH => {
                    // Mid-handshake death: endpoint drops silently — no
                    // abort broadcast, peers discover it by probe/timeout.
                    self.finish(r, Err(VErr::Crashed));
                    return;
                }
                P_PROBE => {
                    let st = &self.ranks[r];
                    let c = next_member(st.buf[B_CAND], st.buf[B_CUR], r)
                        .expect("normalized probe has a target");
                    if self.running(c) {
                        self.queues[c][r].push_back(VPacket::Empty);
                    }
                    if self.reachable(c) {
                        // Delivered (a finished peer just never reads it):
                        // the peer is presumed alive.
                        self.ranks[r].buf[B_ALIVE] |= 1 << c;
                    }
                    self.ranks[r].buf[B_CUR] = c as u32 + 1;
                }
                P_COMMIT => {
                    let st = &self.ranks[r];
                    let c = next_member(st.buf[B_MASK], st.buf[B_CUR], r)
                        .expect("normalized commit has a target");
                    let mask = st.buf[B_MASK];
                    if self.running(c) {
                        self.queues[c][r].push_back(VPacket::Data(vec![mask]));
                    }
                    // A member dying between gather and commit is tolerated
                    // (`let _ = try_send`): the next collective re-forms.
                    self.ranks[r].buf[B_CUR] = c as u32 + 1;
                }
                P_GATHER => {
                    let st = &self.ranks[r];
                    let p = next_member(st.buf[B_ALIVE], st.buf[B_CUR], r)
                        .expect("normalized gather has a target");
                    match self.queues[r][p].pop_front() {
                        Some(VPacket::Empty) => {
                            // The peer's report: it is in the next epoch.
                            self.ranks[r].buf[B_MASK] |= 1 << p;
                            self.ranks[r].buf[B_CUR] = p as u32 + 1;
                        }
                        Some(other) => {
                            unreachable!("re-form gather from {p} received {other:?}")
                        }
                        None if !self.running(p) => {
                            // Timeout / disconnect: the peer drops out.
                            self.ranks[r].buf[B_CUR] = p as u32 + 1;
                        }
                        None => return, // blocked on a live peer's report
                    }
                }
                P_AWAIT => {
                    let coord = self.ranks[r].buf[B_CUR] as usize;
                    match self.queues[r][coord].pop_front() {
                        Some(VPacket::Data(m)) => {
                            let mask = m[0];
                            assert!(
                                mask & (1 << r) != 0,
                                "model protocol violation: live rank {r} evicted by {coord}"
                            );
                            self.ranks[r].buf[B_MASK] = mask;
                            self.ranks[r].buf[B_PHASE] = P_DONE;
                        }
                        Some(VPacket::Empty) => {
                            // The coordinator's own probe report: stale,
                            // dropped without leaving the await loop.
                        }
                        Some(other) => {
                            unreachable!("re-form await from {coord} received {other:?}")
                        }
                        None if !self.running(coord) => {
                            // Coordinator died (or will never answer):
                            // failover round without it. The candidate set
                            // strictly shrinks, so this terminates.
                            let alive = self.ranks[r].buf[B_ALIVE];
                            self.ranks[r].buf[B_CAND] = alive & !(1u32 << coord);
                            self.ranks[r].buf[B_ALIVE] = 1 << r;
                            self.ranks[r].buf[B_CUR] = 0;
                            self.ranks[r].buf[B_PHASE] = P_PROBE;
                        }
                        None => return, // blocked: coordinator still running
                    }
                }
                _ => unreachable!("re-form rank {r} scheduled at phase {phase}"),
            }
            self.ranks[r].pc += 1;
            budget -= 1;
        }
    }

    /// Run rank `r` forward: complete up to `recv_budget` receives, then
    /// keep executing non-blocking sends until the next receive choice
    /// point or termination. With budget 0 this is the normalisation pass
    /// (flush initial sends).
    fn advance(&mut self, cfg: &CheckConfig, r: usize, mut recv_budget: u32) {
        if cfg.collective.is_reform() {
            return self.advance_reform(cfg, r, recv_budget);
        }
        while self.running(r) {
            match action(cfg, r, self.ranks[r].pc) {
                Action::Finish => {
                    let outcome = finish_payload(cfg, r);
                    if let Some(out) = outcome {
                        self.ranks[r].out = out_merge(std::mem::take(&mut self.ranks[r].out), out);
                    }
                    self.finish(r, Ok(()));
                    return;
                }
                Action::Send(to) => {
                    if !self.running(to) {
                        // Peer's endpoint is gone: typed failure + abort.
                        self.fail(r, VErr::PeerGone { peer: to });
                        return;
                    }
                    let payload = send_payload(cfg, r, &self.ranks[r]);
                    self.queues[to][r].push_back(payload);
                    self.ranks[r].pc += 1;
                }
                Action::Recv(from) => {
                    if recv_budget == 0 {
                        return; // choice point: wait to be scheduled
                    }
                    match self.queues[r][from].pop_front() {
                        Some(VPacket::Abort { origin }) => {
                            // Received abort: terminate, do NOT re-broadcast.
                            self.fail(r, VErr::Aborted { origin });
                            return;
                        }
                        Some(p) => {
                            let mut st = std::mem::replace(
                                &mut self.ranks[r],
                                RankState {
                                    pc: 0,
                                    buf: Vec::new(),
                                    out: Vec::new(),
                                    status: Status::Running,
                                },
                            );
                            handle_recv(cfg, r, &mut st, from, p);
                            st.pc += 1;
                            self.ranks[r] = st;
                            recv_budget -= 1;
                        }
                        None => {
                            if self.running(from) {
                                return; // genuinely blocked
                            }
                            // Sender finished/crashed with nothing queued.
                            self.fail(r, VErr::PeerGone { peer: from });
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Is completing rank `r`'s pending receive possible right now?
    fn enabled(&self, cfg: &CheckConfig, r: usize) -> bool {
        if !self.running(r) {
            return false;
        }
        if cfg.collective.is_reform() {
            let st = &self.ranks[r];
            return match st.buf[B_PHASE] {
                // Sends and the victim's crash are always executable.
                P_PROBE | P_COMMIT | P_CRASH | P_DONE => true,
                P_GATHER => {
                    let p = next_member(st.buf[B_ALIVE], st.buf[B_CUR], r)
                        .expect("normalized gather has a target");
                    !self.queues[r][p].is_empty() || !self.running(p)
                }
                P_AWAIT => {
                    let c = st.buf[B_CUR] as usize;
                    !self.queues[r][c].is_empty() || !self.running(c)
                }
                phase => unreachable!("re-form rank {r} resting at phase {phase}"),
            };
        }
        match action(cfg, r, self.ranks[r].pc) {
            Action::Recv(from) => !self.queues[r][from].is_empty() || !self.running(from),
            // After normalisation a running rank always sits at a recv;
            // anything else would be a driver bug.
            other => unreachable!("running rank {r} scheduled at {other:?}"),
        }
    }
}

/// What a rank's own contribution to its gather output is (merged at
/// finish so the result matches the real collectives, which keep the
/// local part in place).
fn finish_payload(cfg: &CheckConfig, rank: usize) -> Option<Vec<(usize, Vec<u32>)>> {
    match cfg.collective {
        Collective::AllgatherTokens | Collective::ChunkedAllgather => {
            Some(vec![(rank, gather_local(rank))])
        }
        Collective::Alltoallv | Collective::ChunkedAlltoallv => {
            Some(vec![(rank, alltoallv_part(rank, rank))])
        }
        Collective::PreemptedRing { .. } => Some(vec![(rank, gather_local(rank))]),
        Collective::Broadcast { root } if rank == root => {
            Some(vec![(0, broadcast_payload(cfg.world))])
        }
        _ => None,
    }
}

fn out_merge(mut out: Vec<Vec<u32>>, own: Vec<(usize, Vec<u32>)>) -> Vec<Vec<u32>> {
    for (i, v) in own {
        if out.len() <= i {
            out.resize(i + 1, Vec::new());
        }
        out[i] = v;
    }
    out
}

/// One rank's terminal result.
#[derive(Clone, Debug, Hash, PartialEq, Eq, PartialOrd, Ord)]
pub enum RankOutcome {
    /// Completed: gather outputs (by source rank) and/or the final buffer
    /// (ring-allreduce, as f32 bit patterns).
    Ok {
        out: Vec<Vec<u32>>,
        buf: Vec<u32>,
    },
    Err(VErr),
}

fn outcome(w: &World) -> Vec<RankOutcome> {
    w.ranks
        .iter()
        .map(|st| match &st.status {
            Status::Done(Ok(())) => RankOutcome::Ok { out: st.out.clone(), buf: st.buf.clone() },
            Status::Done(Err(e)) => RankOutcome::Err(*e),
            Status::Running => unreachable!("outcome of a non-terminal world"),
        })
        .collect()
}

/// The result of exhaustively exploring one [`CheckConfig`].
#[derive(Clone, Debug)]
pub struct CheckReport {
    pub world: usize,
    pub collective: &'static str,
    pub crash: Option<usize>,
    /// Distinct states visited (after partial-order reduction).
    pub states: usize,
    /// Total schedules (paths through the state DAG), counted exactly.
    pub interleavings: u128,
    /// Reachable states with running ranks but no enabled step.
    pub deadlock_states: usize,
    /// Largest per-link queue depth over every reachable state — the
    /// in-flight bound the one-sided slot transport must cover: when this
    /// is ≤ `SLOT_CAPACITY`, no schedule of this collective can ever take
    /// the rendezvous fallback, so steady state is provably pure payload.
    pub max_link_in_flight: usize,
    /// Distinct terminal results (sorted).
    pub outcomes: Vec<Vec<RankOutcome>>,
}

impl CheckReport {
    /// No interleaving gets stuck: every schedule terminates.
    pub fn deadlock_free(&self) -> bool {
        self.deadlock_states == 0
    }

    /// Every interleaving produced the same bitwise result, with every
    /// rank succeeding.
    pub fn deterministic_success(&self) -> bool {
        self.deadlock_free()
            && self.outcomes.len() == 1
            && self.outcomes[0].iter().all(|o| matches!(o, RankOutcome::Ok { .. }))
    }

    /// The unique all-ranks-ok outcome, if there is one.
    pub fn unique_outcome(&self) -> Option<&[RankOutcome]> {
        if self.outcomes.len() == 1 {
            Some(&self.outcomes[0])
        } else {
            None
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} w={}{}: {} states, {} interleavings, {} deadlocks, {} distinct outcomes",
            self.collective,
            self.world,
            self.crash.map(|c| format!(" crash={c}")).unwrap_or_default(),
            self.states,
            self.interleavings,
            self.deadlock_states,
            self.outcomes.len()
        )
    }
}

struct Explorer<'a> {
    cfg: &'a CheckConfig,
    /// state → number of schedules from it to any terminal.
    memo: HashMap<World, u128>,
    terminals: HashSet<Vec<RankOutcome>>,
    deadlocks: usize,
    /// Deepest any single link's queue has been in any reachable state.
    max_link_in_flight: usize,
}

impl Explorer<'_> {
    fn paths(&mut self, w: World) -> u128 {
        if let Some(&p) = self.memo.get(&w) {
            return p;
        }
        let depth = w.queues.iter().flat_map(|row| row.iter().map(|q| q.len())).max().unwrap_or(0);
        self.max_link_in_flight = self.max_link_in_flight.max(depth);
        let enabled: Vec<usize> = (0..w.ranks.len()).filter(|&r| w.enabled(self.cfg, r)).collect();
        let p = if enabled.is_empty() {
            if w.ranks.iter().any(|st| st.status == Status::Running) {
                self.deadlocks += 1;
            } else {
                self.terminals.insert(outcome(&w));
            }
            1
        } else {
            let mut total: u128 = 0;
            for r in enabled {
                let mut next = w.clone();
                next.advance(self.cfg, r, 1);
                total += self.paths(next);
            }
            total
        };
        self.memo.insert(w, p);
        p
    }
}

/// Exhaustively model-check one configuration.
pub fn check(cfg: &CheckConfig) -> CheckReport {
    assert!(cfg.world >= 1, "world must be positive");
    assert!(cfg.crash.is_none_or(|c| c < cfg.world), "crash rank out of range");
    if let Collective::ReformMidway { victim } = cfg.collective {
        assert!(victim < cfg.world, "midway victim out of range");
        assert!(cfg.crash.is_none(), "midway re-form models its own crash");
    }
    let mut init = World::new(cfg);
    for r in 0..cfg.world {
        if init.running(r) {
            init.advance(cfg, r, 0);
        }
    }
    let mut ex = Explorer {
        cfg,
        memo: HashMap::new(),
        terminals: HashSet::new(),
        deadlocks: 0,
        max_link_in_flight: 0,
    };
    let interleavings = ex.paths(init);
    let mut outcomes: Vec<Vec<RankOutcome>> = ex.terminals.into_iter().collect();
    outcomes.sort();
    CheckReport {
        world: cfg.world,
        collective: cfg.collective.name(),
        crash: cfg.crash,
        states: ex.memo.len(),
        interleavings,
        deadlock_states: ex.deadlocks,
        max_link_in_flight: ex.max_link_in_flight,
        outcomes,
    }
}

/// Fault-free convenience wrapper.
pub fn check_collective(world: usize, collective: Collective) -> CheckReport {
    check(&CheckConfig { world, collective, crash: None })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_is_deterministic_and_deadlock_free() {
        for world in 2..=4 {
            let r = check_collective(world, Collective::Barrier);
            assert!(r.deterministic_success(), "{}", r.summary());
            assert!(r.interleavings >= 1);
        }
    }

    #[test]
    fn all_collectives_worlds_2_to_4() {
        for world in 2..=4 {
            for c in Collective::all(world) {
                let r = check_collective(world, c);
                assert!(r.deterministic_success(), "{}", r.summary());
            }
        }
    }

    #[test]
    fn link_in_flight_bound_fits_slot_capacity() {
        // The slot transport's zero-control claim rests on this: no
        // schedule of any modeled collective ever queues more than
        // SLOT_CAPACITY packets on one link, so the one-sided put always
        // finds a registered slot and never pays a rendezvous.
        for world in 2..=4 {
            for c in Collective::all(world) {
                let r = check_collective(world, c);
                assert!(
                    r.max_link_in_flight <= embrace_collectives::SLOT_CAPACITY,
                    "{}: in-flight {} exceeds slot capacity {}",
                    r.summary(),
                    r.max_link_in_flight,
                    embrace_collectives::SLOT_CAPACITY
                );
                assert!(r.max_link_in_flight >= 1, "{}: no packet ever queued?", r.summary());
            }
        }
    }

    #[test]
    fn interleaving_counts_grow_with_world() {
        let w2 = check_collective(2, Collective::AllgatherTokens);
        let w4 = check_collective(4, Collective::AllgatherTokens);
        assert!(w4.interleavings > w2.interleavings, "{} vs {}", w4.summary(), w2.summary());
        // w=4 allgather: 12 addressed receives, 3 per rank, every order:
        // 12! / (3!)^4 schedules.
        assert_eq!(w4.interleavings, 369_600);
    }

    #[test]
    fn ring_allreduce_result_is_the_sum() {
        let elems = 5;
        let r = check_collective(3, Collective::RingAllreduce { elems });
        let out = r.unique_outcome().expect("deterministic");
        for o in out {
            let RankOutcome::Ok { buf, .. } = o else { panic!("rank failed") };
            let vals: Vec<f32> = buf.iter().map(|&b| f32::from_bits(b)).collect();
            // Sum over ranks of (rank*100 + i).
            let expect: Vec<f32> =
                (0..elems).map(|i| (0..3).map(|r| (r * 100 + i) as f32).sum()).collect();
            assert_eq!(vals, expect);
        }
    }

    #[test]
    fn crashed_rank_aborts_terminate_in_every_ordering() {
        for world in 2..=4 {
            for c in Collective::all(world) {
                for crash in 0..world {
                    let r = check(&CheckConfig { world, collective: c, crash: Some(crash) });
                    assert!(
                        r.deadlock_free(),
                        "{}: {} deadlocked orderings",
                        r.summary(),
                        r.deadlock_states
                    );
                    // The victim reports the injection; no rank hangs.
                    for out in &r.outcomes {
                        assert_eq!(out[crash], RankOutcome::Err(VErr::Crashed));
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_allreduce_result_is_the_rowwise_sum() {
        for world in 1..=5 {
            let r = check_collective(world, Collective::SparseAllreduce);
            assert!(r.deterministic_success(), "{}", r.summary());
            // Reference: the inputs are small multiples of 0.25, so f32
            // addition is exact and the row sums are order-independent.
            let mut expect: Vec<Option<f32>> = vec![None; SSAR_VOCAB];
            for rank in 0..world {
                for p in ssar_local(rank).chunks(2) {
                    let e = &mut expect[p[0] as usize];
                    *e = Some(e.unwrap_or(0.0) + f32::from_bits(p[1]));
                }
            }
            let pairs: Vec<u32> = expect
                .iter()
                .enumerate()
                .filter_map(|(i, v)| v.map(|v| [i as u32, v.to_bits()]))
                .flatten()
                .collect();
            for o in r.unique_outcome().expect("deterministic") {
                let RankOutcome::Ok { buf, .. } = o else { panic!("rank failed") };
                assert_eq!(buf, &pairs, "world {world}");
            }
        }
    }

    #[test]
    fn chunked_collectives_deterministic_and_deadlock_free() {
        for world in 2..=4 {
            for c in Collective::chunked(world) {
                let r = check_collective(world, c);
                assert!(r.deterministic_success(), "{}", r.summary());
                assert!(r.interleavings >= 1);
            }
        }
    }

    #[test]
    fn chunked_ring_matches_unchunked_ring_bitwise() {
        // Splitting into segments — and even preempting mid-tensor with a
        // whole gather — must not change a single bit of the reduction.
        for world in 2..=3 {
            let elems = 2 * world + 1;
            let whole = check_collective(world, Collective::RingAllreduce { elems });
            let whole_out = whole.unique_outcome().expect("deterministic");
            for c in [
                Collective::ChunkedRingAllreduce { elems, seg: 2 },
                Collective::PreemptedRing { elems, seg: 2, preempt_at: world },
            ] {
                let r = check_collective(world, c);
                assert!(r.deterministic_success(), "{}", r.summary());
                let out = r.unique_outcome().expect("deterministic");
                for (rank, (got, want)) in out.iter().zip(whole_out).enumerate() {
                    let RankOutcome::Ok { buf: got_buf, .. } = got else { panic!("rank failed") };
                    let RankOutcome::Ok { buf: want_buf, .. } = want else { panic!("rank failed") };
                    assert_eq!(got_buf, want_buf, "{} rank {rank}", c.name());
                }
            }
        }
    }

    #[test]
    fn preempted_ring_gather_results_are_exact() {
        let world = 3;
        let r = check_collective(
            world,
            Collective::PreemptedRing { elems: 2 * world + 1, seg: 2, preempt_at: world },
        );
        let out = r.unique_outcome().expect("deterministic");
        for o in out {
            let RankOutcome::Ok { out, .. } = o else { panic!("rank failed") };
            for (src, v) in out.iter().enumerate() {
                assert_eq!(v, &gather_local(src), "preemptor gather from rank {src}");
            }
        }
    }

    #[test]
    fn chunked_crash_aborts_terminate_in_every_ordering() {
        for world in 2..=3 {
            for c in Collective::chunked(world) {
                for crash in 0..world {
                    let r = check(&CheckConfig { world, collective: c, crash: Some(crash) });
                    assert!(
                        r.deadlock_free(),
                        "{}: {} deadlocked orderings",
                        r.summary(),
                        r.deadlock_states
                    );
                    for out in &r.outcomes {
                        assert_eq!(out[crash], RankOutcome::Err(VErr::Crashed));
                    }
                }
            }
        }
    }

    fn rank_mask(ranks: impl Iterator<Item = usize>) -> u32 {
        ranks.map(|r| 1u32 << r).sum()
    }

    #[test]
    fn reform_fault_free_commits_full_membership() {
        for world in 1..=4 {
            let r = check_collective(world, Collective::Reform);
            assert!(r.deterministic_success(), "{}", r.summary());
            let full = rank_mask(0..world);
            for o in r.unique_outcome().expect("deterministic") {
                let RankOutcome::Ok { out, .. } = o else { panic!("rank failed: {o:?}") };
                assert_eq!(out[0], vec![full]);
            }
        }
    }

    #[test]
    fn reform_with_dead_rank_commits_exactly_the_survivors() {
        for world in 2..=4 {
            for crash in 0..world {
                let cfg = CheckConfig { world, collective: Collective::Reform, crash: Some(crash) };
                let r = check(&cfg);
                assert!(r.deadlock_free(), "{}", r.summary());
                // Membership is deterministic: a dead-from-the-start rank
                // fails every probe, so no interleaving can include it.
                assert_eq!(r.outcomes.len(), 1, "{}", r.summary());
                let survivors = rank_mask((0..world).filter(|&x| x != crash));
                for (rank, o) in r.outcomes[0].iter().enumerate() {
                    if rank == crash {
                        assert_eq!(*o, RankOutcome::Err(VErr::Crashed));
                    } else {
                        let RankOutcome::Ok { out, .. } = o else {
                            panic!("rank {rank} failed: {o:?}")
                        };
                        assert_eq!(out[0], vec![survivors], "rank {rank}");
                    }
                }
            }
        }
    }

    #[test]
    fn reform_midway_crash_terminates_with_agreed_membership() {
        for world in 2..=4 {
            for victim in 0..world {
                let c = Collective::ReformMidway { victim };
                let r = check(&CheckConfig { world, collective: c, crash: None });
                assert!(
                    r.deadlock_free(),
                    "{}: {} deadlocked orderings",
                    r.summary(),
                    r.deadlock_states
                );
                let survivors = rank_mask((0..world).filter(|&x| x != victim));
                for out in &r.outcomes {
                    assert_eq!(out[victim], RankOutcome::Err(VErr::Crashed));
                    // Within one interleaving every survivor commits the
                    // *same* membership (exactly one rank ever commits),
                    // containing all survivors and at most the victim
                    // (who may die after reporting; the stale member is
                    // shed on the group's next re-form).
                    let masks: Vec<u32> = out
                        .iter()
                        .enumerate()
                        .filter(|&(rank, _)| rank != victim)
                        .map(|(rank, o)| {
                            let RankOutcome::Ok { out, .. } = o else {
                                panic!("rank {rank} failed: {o:?}")
                            };
                            out[0][0]
                        })
                        .collect();
                    for &m in &masks {
                        assert_eq!(m, masks[0], "survivors disagree on membership");
                        assert_eq!(m & survivors, survivors, "a survivor was evicted");
                        assert_eq!(m & !(survivors | (1 << victim)), 0, "ghost member");
                    }
                    // A victim that would have coordinated (rank 0) can
                    // never be committed: its successor only commits after
                    // observing its death.
                    if victim == 0 {
                        assert_eq!(masks[0], survivors);
                    }
                }
            }
        }
    }

    #[test]
    fn reform_midway_victim_inclusion_depends_on_timing() {
        // A non-coordinator victim reports before dying, so interleavings
        // where the coordinator probes it in time commit it (to be shed on
        // the next re-form), and interleavings where the probe finds it
        // dead do not: both memberships must be reachable.
        let r = check(&CheckConfig {
            world: 3,
            collective: Collective::ReformMidway { victim: 2 },
            crash: None,
        });
        assert!(r.deadlock_free(), "{}", r.summary());
        let masks: std::collections::BTreeSet<u32> = r
            .outcomes
            .iter()
            .map(|out| {
                let RankOutcome::Ok { out, .. } = &out[0] else { panic!("rank 0 failed") };
                out[0][0]
            })
            .collect();
        assert_eq!(masks, [0b011u32, 0b111u32].into_iter().collect(), "{}", r.summary());
    }

    #[test]
    fn single_rank_world_trivially_terminates() {
        for c in
            Collective::all(1).into_iter().chain(Collective::chunked(1)).chain([Collective::Reform])
        {
            let r = check_collective(1, c);
            assert!(r.deterministic_success(), "{}", r.summary());
            assert_eq!(r.interleavings, 1);
        }
    }
}
