//! The static comm-plan verifier.
//!
//! Consumes the plan IR of [`crate::plan`] and emits structured
//! [`Diagnostic`]s with rank/op provenance. Checked invariants:
//!
//! * **SPMD consistency** — every rank's schedule plan carries the same
//!   multiset of `(tag, kind)` submissions ([`DiagnosticKind::SpmdMismatch`])
//!   with identical priorities per tag ([`DiagnosticKind::PrioritySkew`]);
//! * **send/recv pairing** — on every ordered link, planned sends and
//!   receives match one-to-one: an unmatched send is an orphan
//!   ([`DiagnosticKind::OrphanSend`]), an unmatched receive is a static
//!   deadlock ([`DiagnosticKind::RecvWithoutSend`]), and a matched pair
//!   with different byte counts breaks byte conservation
//!   ([`DiagnosticKind::ByteMismatch`]);
//! * **byte conservation** — ring-allreduce plans keep neighbour-only
//!   topology with 2(w-1) messages each way and conserve bytes globally,
//!   and alltoall plans conserve bytes on every link;
//! * **exact-once partition coverage** — a sharding of `0..domain` covers
//!   every index exactly once ([`DiagnosticKind::PartitionGap`] /
//!   [`DiagnosticKind::PartitionOverlap`]);
//! * **priority monotonicity** — the horizontal schedule orders prior
//!   gradients before embedding data before dense blocks (in FP order)
//!   before delayed gradients ([`DiagnosticKind::PriorityInversion`]).

use crate::plan::{P2pOp, P2pPlan, SchedulePlan};
use embrace_core::CommKind;
use std::collections::BTreeMap;
use std::fmt;

/// What kind of invariant a diagnostic reports.
///
/// The `Ord` derive is the tie-breaker of [`sort_diagnostics`]; new
/// variants go at the end so existing relative orders stay stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiagnosticKind {
    /// Ranks disagree on the multiset of submitted collectives.
    SpmdMismatch,
    /// The same tag is submitted with different priorities across ranks.
    PrioritySkew,
    /// A planned send has no matching receive on the destination.
    OrphanSend,
    /// A planned receive has no matching send — a static deadlock.
    RecvWithoutSend,
    /// A matched send/recv pair disagrees on byte count.
    ByteMismatch,
    /// Part of the domain is covered by no partition shard.
    PartitionGap,
    /// Part of the domain is covered by more than one shard.
    PartitionOverlap,
    /// The horizontal schedule violates §4.2.1 priority ordering.
    PriorityInversion,
    /// The wait-for graph of a p2p plan contains a dependency cycle — a
    /// deadlock no interleaving can escape (reported with the full cycle).
    WaitCycle,
    /// Ranks executed collectives in different orders even though the
    /// scheduler's controller imposes one global order.
    DeterminismViolation,
    /// Two conflicting scheduler-state accesses completed in opposite
    /// orders on different ranks with no happens-before edge between them.
    UnorderedAccess,
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagnosticKind::SpmdMismatch => "spmd-mismatch",
            DiagnosticKind::PrioritySkew => "priority-skew",
            DiagnosticKind::OrphanSend => "orphan-send",
            DiagnosticKind::RecvWithoutSend => "recv-without-send",
            DiagnosticKind::ByteMismatch => "byte-mismatch",
            DiagnosticKind::PartitionGap => "partition-gap",
            DiagnosticKind::PartitionOverlap => "partition-overlap",
            DiagnosticKind::PriorityInversion => "priority-inversion",
            DiagnosticKind::WaitCycle => "wait-cycle",
            DiagnosticKind::DeterminismViolation => "determinism-violation",
            DiagnosticKind::UnorderedAccess => "unordered-access",
        };
        f.write_str(s)
    }
}

/// One verifier finding, with provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub kind: DiagnosticKind,
    /// Rank the finding is attributed to (`None` for whole-group findings).
    pub rank: Option<usize>,
    /// The op or plan element involved (tag, link, shard index, …).
    pub op: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rank {
            Some(r) => write!(f, "[{}] rank {} {}: {}", self.kind, r, self.op, self.message),
            None => write!(f, "[{}] {}: {}", self.kind, self.op, self.message),
        }
    }
}

fn diag(
    kind: DiagnosticKind,
    rank: Option<usize>,
    op: impl Into<String>,
    msg: String,
) -> Diagnostic {
    Diagnostic { kind, rank, op: op.into(), message: msg }
}

/// Put diagnostics in the deterministic emission order every verifier
/// uses: rank (whole-group findings last), then op, then kind. The sort
/// is stable, so equal keys keep their discovery order — `verify-plan`
/// output diffs cleanly across runs and machines.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        let ka = (a.rank.map_or(usize::MAX, |r| r), &a.op, a.kind);
        let kb = (b.rank.map_or(usize::MAX, |r| r), &b.op, b.kind);
        ka.cmp(&kb)
    });
}

/// Verify a point-to-point plan: link pairing, byte conservation.
pub fn verify_p2p(plan: &P2pPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let w = plan.world;
    // Per ordered link, the k-th send pairs with the k-th recv (the
    // transport's per-link FIFO guarantees exactly this matching).
    for from in 0..w {
        for to in 0..w {
            if from == to {
                continue;
            }
            let sends: Vec<u64> = plan.ranks[from]
                .iter()
                .filter_map(|op| match op {
                    P2pOp::Send { to: t, bytes } if *t == to => Some(*bytes),
                    _ => None,
                })
                .collect();
            let recvs: Vec<u64> = plan.ranks[to]
                .iter()
                .filter_map(|op| match op {
                    P2pOp::Recv { from: f, bytes } if *f == from => Some(*bytes),
                    _ => None,
                })
                .collect();
            let link = format!("{}:{from}->{to}", plan.kind);
            for (k, bytes) in sends.iter().enumerate().skip(recvs.len()) {
                out.push(diag(
                    DiagnosticKind::OrphanSend,
                    Some(from),
                    link.clone(),
                    format!("send #{k} ({bytes} B) has no matching receive on rank {to}"),
                ));
            }
            for (k, bytes) in recvs.iter().enumerate().skip(sends.len()) {
                out.push(diag(
                    DiagnosticKind::RecvWithoutSend,
                    Some(to),
                    link.clone(),
                    format!(
                        "receive #{k} ({bytes} B) has no matching send on rank {from}: static deadlock"
                    ),
                ));
            }
            for (k, (s, r)) in sends.iter().zip(&recvs).enumerate() {
                if s != r {
                    out.push(diag(
                        DiagnosticKind::ByteMismatch,
                        Some(to),
                        link.clone(),
                        format!("message #{k}: sender plans {s} B, receiver expects {r} B"),
                    ));
                }
            }
        }
    }
    // Ring structure: every rank talks only to its neighbours, with
    // 2(w-1) messages each way, and bytes are conserved globally (each
    // rank's per-rank totals legitimately differ when `row_partition`
    // produces uneven chunks).
    if plan.kind == "ring_allreduce" && w > 1 {
        for r in 0..w {
            let next = (r + 1) % w;
            let prev = (r + w - 1) % w;
            let (mut sends, mut recvs) = (0usize, 0usize);
            for op in &plan.ranks[r] {
                match op {
                    P2pOp::Send { to, .. } => {
                        sends += 1;
                        if *to != next {
                            out.push(diag(
                                DiagnosticKind::ByteMismatch,
                                Some(r),
                                plan.kind,
                                format!("ring rank sends to {to}, expected neighbour {next}"),
                            ));
                        }
                    }
                    P2pOp::Recv { from, .. } => {
                        recvs += 1;
                        if *from != prev {
                            out.push(diag(
                                DiagnosticKind::ByteMismatch,
                                Some(r),
                                plan.kind,
                                format!("ring rank receives from {from}, expected {prev}"),
                            ));
                        }
                    }
                }
            }
            if sends != 2 * (w - 1) || recvs != 2 * (w - 1) {
                out.push(diag(
                    DiagnosticKind::ByteMismatch,
                    Some(r),
                    plan.kind,
                    format!(
                        "ring rank has {sends} sends / {recvs} recvs, expected {} each",
                        2 * (w - 1)
                    ),
                ));
            }
        }
        let total_sent: u64 = (0..w).map(|r| plan.bytes_sent(r)).sum();
        let total_recv: u64 = (0..w).map(|r| plan.bytes_received(r)).sum();
        if total_sent != total_recv {
            out.push(diag(
                DiagnosticKind::ByteMismatch,
                None,
                plan.kind,
                format!("ring circulates {total_sent} B sent vs {total_recv} B received"),
            ));
        }
    }
    sort_diagnostics(&mut out);
    out
}

/// Verify SPMD consistency of a schedule plan across ranks.
pub fn verify_schedule(plan: &SchedulePlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if plan.ranks.is_empty() {
        return out;
    }
    // Multiset of (tag, kind) per rank, plus the priority each rank gave
    // each tag.
    let shapes: Vec<BTreeMap<(String, &'static str), usize>> = plan
        .ranks
        .iter()
        .map(|ops| {
            let mut m = BTreeMap::new();
            for op in ops {
                *m.entry((op.tag.clone(), op.kind)).or_insert(0) += 1;
            }
            m
        })
        .collect();
    for (r, shape) in shapes.iter().enumerate().skip(1) {
        if shape != &shapes[0] {
            // Name one differing tag for provenance.
            let offending = shapes[0]
                .keys()
                .find(|k| shape.get(*k) != shapes[0].get(*k))
                .or_else(|| shape.keys().find(|k| !shapes[0].contains_key(*k)))
                .map(|(t, k)| format!("{t} ({k})"))
                .unwrap_or_else(|| "<unknown>".into());
            out.push(diag(
                DiagnosticKind::SpmdMismatch,
                Some(r),
                offending,
                format!("rank {r}'s submission multiset differs from rank 0's"),
            ));
        }
    }
    // Priority skew: same tag, different priority anywhere.
    let mut prio: BTreeMap<&str, (usize, i64)> = BTreeMap::new();
    for (r, ops) in plan.ranks.iter().enumerate() {
        for op in ops {
            match prio.get(op.tag.as_str()) {
                None => {
                    prio.insert(&op.tag, (r, op.priority));
                }
                Some(&(r0, p0)) if p0 != op.priority => {
                    out.push(diag(
                        DiagnosticKind::PrioritySkew,
                        Some(r),
                        op.tag.clone(),
                        format!(
                            "priority {} disagrees with rank {r0}'s priority {p0}",
                            op.priority
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
    }
    sort_diagnostics(&mut out);
    out
}

/// Verify §4.2.1 priority monotonicity of a horizontal schedule (as
/// produced by `Priorities::schedule_ops`): prior gradients before
/// embedding data before dense blocks (ascending in FP order) before
/// delayed gradients.
pub fn verify_horizontal(ops: &[(CommKind, i64)]) -> Vec<Diagnostic> {
    // Class rank: the coarse §4.2.1 tier of an op.
    fn tier(k: CommKind) -> u8 {
        match k {
            CommKind::PriorGrad(_) => 0,
            CommKind::EmbData(_) => 1,
            CommKind::DenseBlock(_) => 2,
            CommKind::DelayedGrad(_) => 3,
        }
    }
    let mut out = Vec::new();
    let mut sorted = ops.to_vec();
    sorted.sort_by_key(|&(_, p)| p);
    for w in sorted.windows(2) {
        let ((ka, pa), (kb, pb)) = (w[0], w[1]);
        let inverted = match (tier(ka), tier(kb)) {
            (ta, tb) if ta > tb => true,
            // Dense blocks must additionally ascend in FP/block order.
            (2, 2) => {
                matches!((ka, kb), (CommKind::DenseBlock(a), CommKind::DenseBlock(b)) if a > b)
            }
            _ => false,
        };
        if inverted {
            out.push(diag(
                DiagnosticKind::PriorityInversion,
                None,
                format!("{ka:?} (prio {pa}) vs {kb:?} (prio {pb})"),
                "horizontal schedule violates §4.2.1 ordering".into(),
            ));
        }
    }
    sort_diagnostics(&mut out);
    out
}

/// Verify that `shards` (half-open `(start, end)` ranges, one per rank)
/// cover `0..domain` exactly once — the hybrid split's correctness
/// precondition (every vocab row / embedding column owned by exactly one
/// shard).
pub fn verify_partition(shards: &[(usize, usize)], domain: usize) -> Vec<Diagnostic> {
    let mut cover = vec![0u32; domain];
    for &(start, end) in shards {
        for c in cover.iter_mut().take(end.min(domain)).skip(start) {
            *c += 1;
        }
    }
    let mut out = Vec::new();
    let mut i = 0;
    while i < domain {
        if cover[i] == 1 {
            i += 1;
            continue;
        }
        let bad = cover[i];
        let start = i;
        while i < domain && cover[i] == bad {
            i += 1;
        }
        let owner = shards.iter().position(|&(s, e)| start >= s && start < e);
        if bad == 0 {
            out.push(diag(
                DiagnosticKind::PartitionGap,
                None,
                format!("rows {start}..{i}"),
                "covered by no shard".into(),
            ));
        } else {
            out.push(diag(
                DiagnosticKind::PartitionOverlap,
                owner,
                format!("rows {start}..{i}"),
                format!("covered by {bad} shards"),
            ));
        }
    }
    sort_diagnostics(&mut out);
    out
}

/// A single seeded defect to plant in a valid plan — the verifier must
/// catch each with the right [`DiagnosticKind`] (property-tested).
#[derive(Clone, Copy, Debug)]
pub enum PlanMutation {
    /// Delete rank `rank`'s `index`-th send (→ the peer's matching
    /// receive becomes a static deadlock).
    DropSend { rank: usize, index: usize },
    /// Redirect rank `rank`'s `index`-th send to the next peer over (→
    /// the intended receiver starves and the accidental one gets an
    /// orphan message). Needs `world ≥ 3`; a 2-rank misroute would have
    /// to target the sender itself.
    RetargetSend { rank: usize, index: usize },
    /// Change the priority of rank `rank`'s `index`-th submission.
    SkewPriority { rank: usize, index: usize, delta: i64 },
    /// Halve-and-truncate the byte count of rank `rank`'s `index`-th send.
    ShrinkBytes { rank: usize, index: usize },
    /// Remove shard `rank` from a partition (→ coverage gap).
    DropPartitionRow { rank: usize },
}

/// Apply [`PlanMutation::DropSend`] / [`PlanMutation::RetargetSend`] /
/// [`PlanMutation::ShrinkBytes`] to a p2p plan. `index` counts the
/// rank's *sends* (receives are untouched).
/// Returns `false` if the mutation had no target (e.g. index past the
/// send count) and the plan is unchanged.
pub fn mutate_p2p(plan: &mut P2pPlan, m: PlanMutation) -> bool {
    match m {
        PlanMutation::DropSend { rank, index } => {
            let rank = rank % plan.world;
            let pos = plan.ranks[rank]
                .iter()
                .enumerate()
                .filter(|(_, op)| matches!(op, P2pOp::Send { .. }))
                .map(|(i, _)| i)
                .nth(index);
            match pos {
                Some(i) => {
                    plan.ranks[rank].remove(i);
                    true
                }
                None => false,
            }
        }
        PlanMutation::RetargetSend { rank, index } => {
            let rank = rank % plan.world;
            let mut seen = 0;
            for op in plan.ranks[rank].iter_mut() {
                if let P2pOp::Send { to, .. } = op {
                    if seen == index {
                        let mut new_to = (*to + 1) % plan.world;
                        if new_to == rank {
                            new_to = (new_to + 1) % plan.world;
                        }
                        if new_to == *to {
                            return false; // world < 3: no third rank to misroute to
                        }
                        *to = new_to;
                        return true;
                    }
                    seen += 1;
                }
            }
            false
        }
        PlanMutation::ShrinkBytes { rank, index } => {
            let rank = rank % plan.world;
            let mut seen = 0;
            for op in plan.ranks[rank].iter_mut() {
                if let P2pOp::Send { bytes, .. } = op {
                    if seen == index {
                        if *bytes == 0 {
                            return false; // nothing to shrink
                        }
                        *bytes /= 2;
                        return true;
                    }
                    seen += 1;
                }
            }
            false
        }
        _ => false,
    }
}

/// Apply [`PlanMutation::SkewPriority`] to a schedule plan. Returns
/// `false` when out of range or when `delta` is zero.
pub fn mutate_schedule(plan: &mut SchedulePlan, m: PlanMutation) -> bool {
    if let PlanMutation::SkewPriority { rank, index, delta } = m {
        if delta == 0 || plan.world < 2 {
            return false;
        }
        let rank = rank % plan.world;
        let ops = &mut plan.ranks[rank];
        if ops.is_empty() {
            return false;
        }
        let index = index % ops.len();
        ops[index].priority = ops[index].priority.saturating_add(delta);
        true
    } else {
        false
    }
}

/// Apply [`PlanMutation::DropPartitionRow`] to a shard list.
pub fn mutate_partition(shards: &mut Vec<(usize, usize)>, m: PlanMutation) -> bool {
    if let PlanMutation::DropPartitionRow { rank } = m {
        if shards.is_empty() {
            return false;
        }
        let rank = rank % shards.len();
        // Only a non-empty shard produces a gap.
        if shards[rank].0 == shards[rank].1 {
            return false;
        }
        shards.remove(rank);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{allgather_plan, alltoall_plan, barrier_plan, ring_allreduce_plan};

    fn kinds(diags: &[Diagnostic]) -> Vec<DiagnosticKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn valid_plans_are_clean() {
        assert!(verify_p2p(&barrier_plan(4)).is_empty());
        assert!(verify_p2p(&ring_allreduce_plan(3, 11)).is_empty());
        assert!(verify_p2p(&allgather_plan(3, &[4, 8, 12])).is_empty());
        let bytes = vec![vec![0, 5], vec![7, 0]];
        assert!(verify_p2p(&alltoall_plan("alltoall_dense", &bytes)).is_empty());
    }

    #[test]
    fn dropped_send_is_a_static_deadlock() {
        let mut p = allgather_plan(3, &[4, 4, 4]);
        assert!(mutate_p2p(&mut p, PlanMutation::DropSend { rank: 1, index: 0 }));
        let diags = verify_p2p(&p);
        assert!(kinds(&diags).contains(&DiagnosticKind::RecvWithoutSend), "{diags:?}");
        // The receiver of the dropped message is named.
        let d = diags.iter().find(|d| d.kind == DiagnosticKind::RecvWithoutSend).unwrap();
        assert_eq!(d.rank, Some(0)); // rank 1's first send goes to rank 0
    }

    #[test]
    fn extra_send_is_orphan() {
        let mut p = barrier_plan(2);
        p.ranks[1].push(P2pOp::Send { to: 0, bytes: 8 });
        let diags = verify_p2p(&p);
        assert_eq!(kinds(&diags), vec![DiagnosticKind::OrphanSend]);
    }

    #[test]
    fn shrunk_bytes_is_byte_mismatch() {
        let mut p = ring_allreduce_plan(2, 8);
        assert!(mutate_p2p(&mut p, PlanMutation::ShrinkBytes { rank: 0, index: 0 }));
        let diags = verify_p2p(&p);
        assert!(kinds(&diags).contains(&DiagnosticKind::ByteMismatch), "{diags:?}");
    }

    #[test]
    fn skewed_priority_is_detected() {
        use crate::plan::horizontal_schedule_plan;
        let graph = embrace_dlsim::graph::ModelGraph::translation(
            (10, 4),
            (10, 4),
            2,
            2,
            8,
            0.1,
            0.1,
            0.1,
            0.1,
        );
        let pri = embrace_core::Priorities::assign(&graph);
        let mut plan = horizontal_schedule_plan(&pri, 3);
        assert!(verify_schedule(&plan).is_empty());
        assert!(mutate_schedule(
            &mut plan,
            PlanMutation::SkewPriority { rank: 2, index: 1, delta: 7 }
        ));
        let diags = verify_schedule(&plan);
        assert!(kinds(&diags).contains(&DiagnosticKind::PrioritySkew), "{diags:?}");
    }

    #[test]
    fn missing_op_is_spmd_mismatch() {
        use crate::plan::SchedulePlan;
        use embrace_collectives::SubmittedOp;
        let full = vec![
            SubmittedOp { priority: -1, tag: "a".into(), kind: "gather_tokens", bytes: 4 },
            SubmittedOp { priority: 0, tag: "b".into(), kind: "allreduce_dense", bytes: 8 },
        ];
        let short = vec![full[0].clone()];
        let plan = SchedulePlan::from_logs(&[full.clone(), short, full]);
        let diags = verify_schedule(&plan);
        assert_eq!(kinds(&diags), vec![DiagnosticKind::SpmdMismatch]);
        assert_eq!(diags[0].rank, Some(1));
    }

    #[test]
    fn partition_gap_and_overlap() {
        assert!(verify_partition(&[(0, 3), (3, 7)], 7).is_empty());
        let gap = verify_partition(&[(0, 3), (4, 7)], 7);
        assert_eq!(kinds(&gap), vec![DiagnosticKind::PartitionGap]);
        assert!(gap[0].op.contains("3..4"), "{gap:?}");
        let overlap = verify_partition(&[(0, 4), (3, 7)], 7);
        assert_eq!(kinds(&overlap), vec![DiagnosticKind::PartitionOverlap]);
        let mut shards = vec![(0, 3), (3, 7)];
        assert!(mutate_partition(&mut shards, PlanMutation::DropPartitionRow { rank: 0 }));
        assert_eq!(kinds(&verify_partition(&shards, 7)), vec![DiagnosticKind::PartitionGap]);
    }

    #[test]
    fn diagnostics_come_out_in_stable_sorted_order() {
        // Plant two defects whose discovery order (link iteration) differs
        // from the sorted order: emission must be rank-major anyway.
        let mut p = allgather_plan(3, &[4, 4, 4]);
        assert!(mutate_p2p(&mut p, PlanMutation::DropSend { rank: 2, index: 1 }));
        p.ranks[2].push(P2pOp::Send { to: 0, bytes: 8 });
        let diags = verify_p2p(&p);
        assert!(diags.len() >= 2, "{diags:?}");
        let mut resorted = diags.clone();
        sort_diagnostics(&mut resorted);
        assert_eq!(diags, resorted, "verify_p2p emits pre-sorted diagnostics");
        for w in diags.windows(2) {
            let ra = w[0].rank.map_or(usize::MAX, |r| r);
            let rb = w[1].rank.map_or(usize::MAX, |r| r);
            assert!(ra <= rb, "rank-major order: {diags:?}");
        }
    }

    #[test]
    fn horizontal_monotonicity() {
        use embrace_core::CommKind::*;
        let good = vec![
            (PriorGrad(0), -2),
            (EmbData(0), -1),
            (DenseBlock(1), 0),
            (DenseBlock(2), 1),
            (DelayedGrad(0), 100),
        ];
        assert!(verify_horizontal(&good).is_empty());
        // Delayed gradients jumping ahead of dense blocks is an inversion.
        let bad = vec![(DenseBlock(1), 5), (DelayedGrad(0), 0)];
        assert_eq!(kinds(&verify_horizontal(&bad)), vec![DiagnosticKind::PriorityInversion]);
        // Dense blocks out of FP order is an inversion too.
        let bad2 = vec![(DenseBlock(2), 0), (DenseBlock(1), 1)];
        assert_eq!(kinds(&verify_horizontal(&bad2)), vec![DiagnosticKind::PriorityInversion]);
    }
}
