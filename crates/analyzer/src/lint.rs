//! Workspace lint pass for the collective stack (`embrace-lint`).
//!
//! Text-level checks that enforce repo rules the compiler cannot:
//!
//! * **comm-unwrap** — no `.unwrap()` in non-test code of the comm-path
//!   crates (`collectives`, `core`, `trainer`): communication failures
//!   are typed [`CommError`]s and must propagate, not panic. Invariants
//!   may use `.expect("why this cannot fail")`.
//! * **comm-expect** — same scope: no `.expect(..)` directly on the
//!   result of a communication call (a `try_*` collective, `recv_retry`,
//!   `recv_timeout`, or a ticket `.wait()`), which would replace the
//!   typed error with an opaque panic message; either propagate the
//!   error or panic with it rendered.
//! * **epoch-raw-send** — in the elastic-membership modules, a packet
//!   sent through the raw endpoint must be a `Packet::Reform` handshake
//!   or wrapped in `Packet::Tagged { epoch, .. }`: an untagged payload
//!   could be consumed by a stale-epoch peer as current traffic.
//! * **comm-infallible** — no calls to the legacy infallible
//!   `ep.send(..)` / `ep.recv(..)` endpoint methods outside tests; real
//!   comm paths use `try_send` / `try_recv` / `recv_retry`.
//! * **packet-match** — every non-test `match` with `Packet::` arms
//!   handles all `Packet` variants or carries a catch-all arm, so adding
//!   a packet kind cannot silently fall through.
//! * **commop-match** — the same for `CommOp`: every scheduler match
//!   covers every submitted operation kind.
//! * **payload-clone** — no `Packet::…(x.clone())` constructor at send
//!   sites outside `transport.rs`: tensor payloads are `Arc`-backed, so
//!   fan-out sends must use the O(1) `share()` (dense/sparse) instead of
//!   deep-copying; deliberate deep copies (e.g. `Vec<u32>` token buffers)
//!   are allowlisted individually.
//! * **scalar-reduce** — no hand-rolled element-wise `+=` float loops in
//!   the reduce sites (`ops.rs`, `merge.rs`): every collective reduce
//!   goes through the explicit-width lane kernels in
//!   `embrace_tensor::kernels` (`add_assign` / `scaled_add` / …), so the
//!   autovectorized fast path and its bitwise-equivalence guarantees are
//!   shared rather than re-derived per call site.
//! * **forbid-unsafe** — every workspace crate root declares
//!   `#![forbid(unsafe_code)]`.
//!
//! Findings can be suppressed via an allowlist file (`lint-allow.txt` at
//! the workspace root): each line is `rule path-substring line-substring`
//! (whitespace-separated; `#` starts a comment). The variant inventories
//! for `packet-match` / `commop-match` are extracted from the enum
//! definitions in `transport.rs` / `scheduler.rs` at lint time, so the
//! lint tracks the code rather than a hardcoded list.
//!
//! The pass is deliberately text-based (no `syn` available in this
//! offline workspace); it masks comments and string literals and tracks
//! `#[cfg(test)]` brace regions, which is exact for rustfmt-formatted
//! code like this repo's.
//!
//! [`CommError`]: embrace_collectives::CommError

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose `src/` is subject to the comm-path rules.
const COMM_PATH_CRATES: &[&str] =
    &["crates/collectives", "crates/core", "crates/trainer", "crates/ps"];

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line number.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// One allowlist entry: suppresses findings whose rule matches and whose
/// path / flagged line contain the given substrings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path_substr: String,
    pub line_substr: String,
}

/// Parse `lint-allow.txt` content: `rule path-substring line-substring`
/// per line, `#` comments, blank lines ignored. The line-substring is
/// the remainder of the line so it may contain spaces.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.splitn(3, char::is_whitespace);
            let rule = parts.next()?.to_string();
            let path_substr = parts.next()?.to_string();
            let line_substr = parts.next().unwrap_or("").trim().to_string();
            Some(AllowEntry { rule, path_substr, line_substr })
        })
        .collect()
}

fn allowed(entry: &AllowEntry, finding: &Finding, flagged_line: &str) -> bool {
    entry.rule == finding.rule
        && finding.path.contains(&entry.path_substr)
        && (entry.line_substr.is_empty() || flagged_line.contains(&entry.line_substr))
}

/// Result of a full lint pass.
#[derive(Clone, Debug)]
pub struct LintReport {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub suppressed: usize,
}

impl LintReport {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Replace the contents of comments, string literals, and char literals
/// with spaces (newlines preserved) so structural scans see only code.
/// Handles nested block comments and the lifetime-vs-char-literal
/// ambiguity (a `'` not closed within a short escape window is treated
/// as a lifetime).
pub fn mask_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'\n' {
                        out.push(b'\n');
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
                if i < b.len() {
                    out.push(b'"');
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal iff it closes within the escape window;
                // otherwise it is a lifetime and passes through.
                let lit_end = if i + 2 < b.len() && b[i + 1] == b'\\' {
                    (i + 2..(i + 5).min(b.len())).find(|&j| b[j] == b'\'')
                } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(end) = lit_end {
                    out.push(b'\'');
                    out.extend(std::iter::repeat_n(b' ', end - i - 1));
                    out.push(b'\'');
                    i = end + 1;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("masking only substitutes ASCII spaces")
}

/// Per-line flags: is this line inside a `#[cfg(test)]`-gated item?
/// Tracks the brace region of the item following each `#[cfg(test)]`
/// attribute (works on comment/string-masked source).
pub fn test_region_lines(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut idx = 0;
    while idx < lines.len() {
        if lines[idx].trim_start().starts_with("#[cfg(test)]") {
            // Mark from the attribute to the close of the item's braces.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = idx;
            while j < lines.len() {
                in_test[j] = true;
                for ch in lines[j].bytes() {
                    match ch {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            idx = j + 1;
        } else {
            idx += 1;
        }
    }
    in_test
}

/// Extract the variant names of `pub enum <name>` from (unmasked)
/// source. Returns `None` if the enum is not found.
pub fn enum_variants(src: &str, name: &str) -> Option<Vec<String>> {
    let masked = mask_comments_and_strings(src);
    let needle = format!("pub enum {name} ");
    let start = masked.find(&needle).or_else(|| {
        let alt = format!("pub enum {name}{{");
        masked.find(&alt)
    })?;
    let body_start = masked[start..].find('{')? + start + 1;
    let mut depth = 1i64;
    let mut end = body_start;
    for (off, ch) in masked[body_start..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = body_start + off;
                    break;
                }
            }
            _ => {}
        }
    }
    // Split the body at top-level commas; each piece's leading identifier
    // is a variant name (payloads in `(..)` / `{..}` stay inside pieces).
    let mut pieces = Vec::new();
    let mut depth = 0i64;
    let mut cur = String::new();
    for ch in masked[body_start..end].chars() {
        match ch {
            '{' | '(' | '[' => {
                depth += 1;
                cur.push(ch);
            }
            '}' | ')' | ']' => {
                depth -= 1;
                cur.push(ch);
            }
            ',' if depth == 0 => pieces.push(std::mem::take(&mut cur)),
            _ => cur.push(ch),
        }
    }
    pieces.push(cur);
    let variants = pieces
        .iter()
        .filter_map(|p| {
            let name: String =
                p.trim_start().chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if name.is_empty() {
                None
            } else {
                Some(name)
            }
        })
        .collect();
    Some(variants)
}

/// Does `haystack` contain `Name::` as a path whose first segment is
/// exactly `Name` (not a suffix of a longer identifier, e.g. `VPacket::`
/// must not count as `Packet::`)?
fn contains_path_of(haystack: &str, name: &str) -> bool {
    find_path_of(haystack, name).is_some()
}

fn find_path_of(haystack: &str, name: &str) -> Option<usize> {
    let pat = format!("{name}::");
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(&pat) {
        let abs = from + pos;
        let preceded_by_ident = abs > 0
            && haystack[..abs].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !preceded_by_ident {
            return Some(abs);
        }
        from = abs + pat.len();
    }
    None
}

/// A `match` expression found in masked source: the byte span of its
/// body and the 1-indexed line it starts on.
struct MatchBlock {
    line: usize,
    body: String,
}

/// Find all `match ... { ... }` expressions in masked source.
fn match_blocks(masked: &str) -> Vec<MatchBlock> {
    let b = masked.as_bytes();
    let mut blocks = Vec::new();
    let mut from = 0;
    while let Some(pos) = masked[from..].find("match ") {
        let abs = from + pos;
        let is_word_start = abs == 0
            || !(b[abs - 1].is_ascii_alphanumeric() || b[abs - 1] == b'_' || b[abs - 1] == b'.');
        from = abs + "match ".len();
        if !is_word_start {
            continue;
        }
        // The match body is the first `{` at brace-depth zero relative to
        // the scrutinee (the scrutinee may contain method-call parens).
        let mut i = abs + "match ".len();
        let mut paren = 0i64;
        let mut bracket = 0i64;
        while i < b.len() {
            match b[i] {
                b'(' => paren += 1,
                b')' => paren -= 1,
                b'[' => bracket += 1,
                b']' => bracket -= 1,
                b'{' if paren == 0 && bracket == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if i >= b.len() {
            break;
        }
        let body_start = i + 1;
        let mut depth = 1i64;
        let mut end = body_start;
        while end < b.len() {
            match b[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let line = masked[..abs].bytes().filter(|&c| c == b'\n').count() + 1;
        blocks.push(MatchBlock { line, body: masked[body_start..end.min(b.len())].to_string() });
        from = body_start;
    }
    blocks
}

fn is_bare_binding(head: &str) -> bool {
    !head.is_empty()
        && head.chars().all(|c| c.is_alphanumeric() || c == '_')
        && head.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
}

/// Does a match body contain a catch-all arm (`_ =>`, `_ if ... =>`, or a
/// bare binding like `other =>`, possibly inside one constructor such as
/// `Ok(p) =>`) at arm level?
fn has_catch_all(body: &str) -> bool {
    for line in body.lines() {
        let t = line.trim_start();
        if let Some((pat, _)) = t.split_once("=>") {
            let pat = pat.trim();
            let mut head = pat.split(" if ").next().unwrap_or(pat).trim();
            // See through one constructor wrapper: in a match on
            // `Result<Packet>` the arm `Ok(p) =>` catches every packet.
            if let Some((ctor, rest)) = head.split_once('(') {
                let plain_ctor = ctor.chars().all(|c| c.is_alphanumeric() || c == '_');
                if plain_ctor {
                    if let Some(inner) = rest.strip_suffix(')') {
                        head = inner.trim();
                    }
                }
            }
            if head == "_" || is_bare_binding(head) {
                return true;
            }
        }
    }
    false
}

/// Inventory of enum variants that exhaustiveness rules check against.
#[derive(Clone, Debug)]
pub struct VariantInventory {
    pub packet: Vec<String>,
    pub comm_op: Vec<String>,
}

impl VariantInventory {
    /// Extract from the workspace sources under `root`.
    pub fn from_workspace(root: &Path) -> Result<VariantInventory, String> {
        let transport = std::fs::read_to_string(root.join("crates/collectives/src/transport.rs"))
            .map_err(|e| format!("read transport.rs: {e}"))?;
        let scheduler = std::fs::read_to_string(root.join("crates/collectives/src/scheduler.rs"))
            .map_err(|e| format!("read scheduler.rs: {e}"))?;
        let packet =
            enum_variants(&transport, "Packet").ok_or("enum Packet not found in transport.rs")?;
        let comm_op =
            enum_variants(&scheduler, "CommOp").ok_or("enum CommOp not found in scheduler.rs")?;
        if packet.is_empty() || comm_op.is_empty() {
            return Err("extracted an empty variant inventory".into());
        }
        Ok(VariantInventory { packet, comm_op })
    }
}

/// Lint a single file's source. `rel` is the workspace-relative path
/// (used for rule scoping and reporting).
pub fn lint_source(rel: &str, src: &str, inv: &VariantInventory) -> Vec<Finding> {
    let mut findings = Vec::new();
    let masked = mask_comments_and_strings(src);
    let in_test = test_region_lines(&masked);
    let masked_lines: Vec<&str> = masked.lines().collect();
    let comm_path = COMM_PATH_CRATES.iter().any(|c| rel.starts_with(c))
        && rel.contains("/src/")
        && !rel.contains("/tests/");

    if comm_path {
        // Heuristic for "this line performs a communication call": the
        // fallible-collective prefix or one of the blocking primitives.
        const COMM_CALL_HINTS: &[&str] = &["try_", "recv_retry(", "recv_timeout(", ".wait()"];
        for (i, line) in masked_lines.iter().enumerate() {
            if in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            if line.contains(".unwrap()") {
                findings.push(Finding {
                    rule: "comm-unwrap",
                    path: rel.to_string(),
                    line: i + 1,
                    message: "`.unwrap()` on a comm path: propagate a typed CommError or use \
                              `.expect(\"invariant\")`"
                        .to_string(),
                });
            }
            if line.contains(".expect(") && COMM_CALL_HINTS.iter().any(|h| line.contains(h)) {
                findings.push(Finding {
                    rule: "comm-expect",
                    path: rel.to_string(),
                    line: i + 1,
                    message: "`.expect(..)` on a communication result swallows the typed \
                              CommError: propagate it, or panic with the error rendered"
                        .to_string(),
                });
            }
            if line.contains("ep.send(") || line.contains("ep.recv(") {
                findings.push(Finding {
                    rule: "comm-infallible",
                    path: rel.to_string(),
                    line: i + 1,
                    message: "infallible endpoint send/recv outside tests: use try_send/try_recv \
                              or recv_retry"
                        .to_string(),
                });
            }
        }
    }

    // payload-clone: constructing a Packet from a `.clone()` deep-copies
    // the payload once per link; Arc-backed tensors make `share()` free.
    // transport.rs itself (the Packet definition and loopback paths) is
    // exempt — the rule targets send sites.
    if !rel.ends_with("collectives/src/transport.rs") {
        for (i, line) in masked_lines.iter().enumerate() {
            if in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            if contains_path_of(line, "Packet") && line.contains(".clone()") {
                findings.push(Finding {
                    rule: "payload-clone",
                    path: rel.to_string(),
                    line: i + 1,
                    message: "Packet built from `.clone()`: use `share()` for O(1) fan-out \
                              (allowlist deliberate deep copies)"
                        .to_string(),
                });
            }
        }
    }

    // scalar-reduce: a zipped `.iter_mut()` feeding an element-wise `+=`
    // in a reduce site re-rolls what `embrace_tensor::kernels` provides
    // as a single autovectorized (and bitwise-specified) kernel.
    if rel.ends_with("ops.rs") || rel.ends_with("merge.rs") {
        for (i, line) in masked_lines.iter().enumerate() {
            if in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            if !(line.contains(".iter_mut()") && line.contains(".zip(")) {
                continue;
            }
            // The `+=` may sit on the same line or inside the short loop
            // body that follows (rustfmt keeps these within a few lines).
            let window = &masked_lines[i..(i + 4).min(masked_lines.len())];
            if window.iter().any(|l| l.contains("+=")) {
                findings.push(Finding {
                    rule: "scalar-reduce",
                    path: rel.to_string(),
                    line: i + 1,
                    message: "element-wise `+=` reduce loop: call the lane kernels in \
                              `embrace_tensor::kernels` (add_assign / scaled_add) instead"
                        .to_string(),
                });
            }
        }
    }

    // epoch-raw-send: inside the elastic-membership modules, every packet
    // leaving through the *raw* endpoint (not the epoch-tagging group
    // wrapper) must be a `Reform` handshake or an explicitly `Tagged`
    // payload — anything else could be consumed by a stale-epoch peer as
    // current traffic. The variant names come from the inventory so the
    // rule tracks `enum Packet`.
    if rel.contains("elastic") {
        for (i, line) in masked_lines.iter().enumerate() {
            if in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            if !(line.contains("ep.try_send(") || line.contains("ep.send(")) {
                continue;
            }
            let Some(pos) = find_path_of(line, "Packet") else { continue };
            let variant: String = line[pos + "Packet::".len()..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if inv.packet.contains(&variant) && variant != "Tagged" && variant != "Reform" {
                findings.push(Finding {
                    rule: "epoch-raw-send",
                    path: rel.to_string(),
                    line: i + 1,
                    message: format!(
                        "raw endpoint send of untagged `Packet::{variant}` in elastic code: \
                         wrap it in `Packet::Tagged {{ epoch, .. }}` or send via the group"
                    ),
                });
            }
        }
    }

    // Exhaustiveness rules apply to all non-test workspace code.
    for (enum_name, variants, rule) in
        [("Packet", &inv.packet, "packet-match"), ("CommOp", &inv.comm_op, "commop-match")]
    {
        for blk in match_blocks(&masked) {
            if in_test.get(blk.line - 1).copied().unwrap_or(false) {
                continue;
            }
            if !contains_path_of(&blk.body, enum_name) || has_catch_all(&blk.body) {
                continue;
            }
            let missing: Vec<&String> = variants
                .iter()
                .filter(|v| !blk.body.contains(&format!("{enum_name}::{v}")))
                .collect();
            if !missing.is_empty() {
                let names: Vec<&str> = missing.iter().map(|s| s.as_str()).collect();
                findings.push(Finding {
                    rule,
                    path: rel.to_string(),
                    line: blk.line,
                    message: format!(
                        "match on {enum_name} has no catch-all and misses variant(s): {}",
                        names.join(", ")
                    ),
                });
            }
        }
    }

    findings
}

/// Check that a crate-root file forbids unsafe code.
fn lint_crate_root(rel: &str, src: &str) -> Option<Finding> {
    if src.contains("#![forbid(unsafe_code)]") {
        None
    } else {
        Some(Finding {
            rule: "forbid-unsafe",
            path: rel.to_string(),
            line: 1,
            message: "crate root must declare #![forbid(unsafe_code)]".to_string(),
        })
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// All crate-root files subject to `forbid-unsafe`: the workspace lib,
/// every `crates/*` root, and every vendored shim.
fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![root.join("src/lib.rs")];
    for dir in ["crates", "vendor"] {
        let Ok(entries) = std::fs::read_dir(root.join(dir)) else { continue };
        let mut members: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        members.sort();
        for m in members {
            for candidate in ["src/lib.rs", "src/main.rs"] {
                let p = m.join(candidate);
                if p.exists() {
                    roots.push(p);
                }
            }
        }
    }
    roots.retain(|p| p.exists());
    roots
}

/// Run the full lint pass over the workspace at `root`, applying the
/// allowlist (if `lint-allow.txt` exists at `root`).
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let inv = VariantInventory::from_workspace(root)?;
    let allow = match std::fs::read_to_string(root.join("lint-allow.txt")) {
        Ok(text) => parse_allowlist(&text),
        Err(_) => Vec::new(),
    };

    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(root.join("crates")) else {
        return Err(format!("no crates/ directory under {}", root.display()));
    };
    let mut members: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    members.sort();
    for m in members {
        collect_rs_files(&m.join("src"), &mut files);
    }
    collect_rs_files(&root.join("src"), &mut files);

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let mut scanned = 0usize;
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else { continue };
        scanned += 1;
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let lines: Vec<&str> = src.lines().collect();
        for f in lint_source(&rel, &src, &inv) {
            let flagged = lines.get(f.line - 1).copied().unwrap_or("");
            if allow.iter().any(|e| allowed(e, &f, flagged)) {
                suppressed += 1;
            } else {
                findings.push(f);
            }
        }
    }

    for path in crate_roots(root) {
        let Ok(src) = std::fs::read_to_string(&path) else { continue };
        scanned += 1;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        if let Some(f) = lint_crate_root(&rel, &src) {
            if allow.iter().any(|e| allowed(e, &f, "")) {
                suppressed += 1;
            } else {
                findings.push(f);
            }
        }
    }

    Ok(LintReport { files_scanned: scanned, findings, suppressed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv() -> VariantInventory {
        VariantInventory {
            packet: ["Dense", "Sparse", "Tokens", "Empty", "Abort"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            comm_op: ["AllreduceDense", "Flush"].iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn masking_hides_comments_strings_and_char_literals() {
        let src = "let x = \"match { .unwrap() }\"; // .unwrap()\nlet c = '{'; let l: &'a str;";
        let m = mask_comments_and_strings(src);
        assert!(!m.contains(".unwrap()"));
        assert!(!m.contains('{'), "braces in literals must be masked: {m}");
        assert!(m.contains("&'a str"), "lifetimes must survive: {m}");
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn test_regions_cover_cfg_test_modules() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}";
        let mask = test_region_lines(src);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn unwrap_outside_tests_is_flagged_inside_tests_is_not() {
        let src =
            "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}";
        let f = lint_source("crates/collectives/src/x.rs", src, &inv());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "comm-unwrap");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_outside_comm_path_crates_is_ignored() {
        let src = "fn a() { x.unwrap(); }";
        let f = lint_source("crates/dlsim/src/x.rs", src, &inv());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn expect_on_comm_results_is_flagged_but_invariant_expects_are_not() {
        let src = "fn a(ep: &mut E) {\n    \
                   try_barrier(ep).expect(\"collective failed\");\n    \
                   let p = ep.recv_retry(1).expect(\"peer\");\n    \
                   let v = ticket.wait().expect(\"done\");\n    \
                   let x = map.get(&k).expect(\"key inserted above\");\n}";
        let f = lint_source("crates/collectives/src/x.rs", src, &inv());
        assert_eq!(f.iter().filter(|f| f.rule == "comm-expect").count(), 3, "{f:?}");
        // Outside comm-path crates the rule does not apply.
        let f = lint_source("crates/dlsim/src/x.rs", src, &inv());
        assert!(f.iter().all(|f| f.rule != "comm-expect"), "{f:?}");
    }

    #[test]
    fn raw_untagged_sends_in_elastic_code_are_flagged() {
        let src = "fn a(&mut self) {\n    \
                   let _ = self.ep.try_send(1, Packet::Tokens(words));\n    \
                   let _ = self.ep.try_send(1, Packet::Reform(report));\n    \
                   let _ = self.ep.try_send(1, Packet::Tagged { epoch, inner });\n    \
                   let _ = group.try_send(1, Packet::Dense(blob));\n}";
        let f = lint_source("crates/collectives/src/elastic.rs", src, &inv());
        let hits: Vec<_> = f.iter().filter(|f| f.rule == "epoch-raw-send").collect();
        assert_eq!(hits.len(), 1, "{f:?}");
        assert_eq!(hits[0].line, 2);
        assert!(hits[0].message.contains("Tokens"), "{}", hits[0].message);
        // Outside elastic modules raw sends are the transport's business.
        let f = lint_source("crates/collectives/src/ops.rs", src, &inv());
        assert!(f.iter().all(|f| f.rule != "epoch-raw-send"), "{f:?}");
    }

    #[test]
    fn infallible_send_recv_flagged() {
        let src = "fn a(ep: &mut Endpoint) {\n    ep.send(0, p);\n    let q = ep.recv(1);\n}";
        let f = lint_source("crates/core/src/x.rs", src, &inv());
        assert_eq!(f.iter().filter(|f| f.rule == "comm-infallible").count(), 2, "{f:?}");
    }

    #[test]
    fn non_exhaustive_packet_match_flagged() {
        let src = "fn a(p: Packet) { match p { Packet::Dense(d) => use_it(d), \
                   Packet::Empty => {} } }";
        let f = lint_source("crates/simnet/src/x.rs", src, &inv());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "packet-match");
        assert!(f[0].message.contains("Sparse"), "{}", f[0].message);
        assert!(f[0].message.contains("Abort"), "{}", f[0].message);
    }

    #[test]
    fn catch_all_match_is_exhaustive() {
        let src = "fn a(p: Packet) { match p {\n    Packet::Dense(d) => use_it(d),\n    \
                   other => drop(other),\n} }";
        let f = lint_source("crates/simnet/src/x.rs", src, &inv());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn vpacket_paths_do_not_count_as_packet() {
        let src = "fn a(p: VPacket) { match p { VPacket::Data(d) => use_it(d), _ => {} } }";
        let f = lint_source("crates/simnet/src/x.rs", src, &inv());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn payload_clone_flagged_outside_transport() {
        let src = "fn a(ep: &mut E, t: DenseTensor) {\n    \
                   let _ = ep.try_send(1, Packet::Dense(t.clone()));\n}";
        let f = lint_source("crates/collectives/src/ops.rs", src, &inv());
        assert_eq!(f.iter().filter(|f| f.rule == "payload-clone").count(), 1, "{f:?}");
        // transport.rs itself is exempt.
        let f = lint_source("crates/collectives/src/transport.rs", src, &inv());
        assert!(f.iter().all(|f| f.rule != "payload-clone"), "{f:?}");
    }

    #[test]
    fn payload_share_and_packet_clone_are_clean() {
        // share() fan-out and cloning a whole Packet (O(1) for Arc-backed
        // payloads, no constructor involved) must not be flagged.
        let src = "fn a(ep: &mut E, t: DenseTensor, p: Packet) {\n    \
                   let _ = ep.try_send(1, Packet::Dense(t.share()));\n    \
                   let _ = ep.try_send(2, p.clone());\n}";
        let f = lint_source("crates/simnet/src/x.rs", src, &inv());
        assert!(f.iter().all(|f| f.rule != "payload-clone"), "{f:?}");
    }

    #[test]
    fn scalar_reduce_flags_zipped_add_loops_in_reduce_sites_only() {
        // A zipped element-wise `+=` loop — flagged in ops.rs/merge.rs…
        let src = "fn reduce(dst: &mut [f32], src: &[f32]) {\n    \
                   for (d, s) in dst.iter_mut().zip(src) {\n        *d += *s;\n    }\n}";
        let f = lint_source("crates/collectives/src/ops.rs", src, &inv());
        assert!(f.iter().any(|f| f.rule == "scalar-reduce"), "{f:?}");
        let f = lint_source("crates/tensor/src/merge.rs", src, &inv());
        assert!(f.iter().any(|f| f.rule == "scalar-reduce"), "{f:?}");
        // …but not elsewhere (the kernels module is where such loops live).
        let f = lint_source("crates/tensor/src/kernels.rs", src, &inv());
        assert!(f.iter().all(|f| f.rule != "scalar-reduce"), "{f:?}");
        // Calling the lane kernel is the clean form.
        let clean = "fn reduce(dst: &mut [f32], src: &[f32]) {\n    \
                     kernels::add_assign(dst, src);\n}";
        let f = lint_source("crates/collectives/src/ops.rs", clean, &inv());
        assert!(f.iter().all(|f| f.rule != "scalar-reduce"), "{f:?}");
        // A zipped iter_mut that never accumulates (e.g. copy) is fine.
        let copy = "fn copy(dst: &mut [f32], src: &[f32]) {\n    \
                    for (d, s) in dst.iter_mut().zip(src) {\n        *d = *s;\n    }\n}";
        let f = lint_source("crates/collectives/src/ops.rs", copy, &inv());
        assert!(f.iter().all(|f| f.rule != "scalar-reduce"), "{f:?}");
    }

    #[test]
    fn enum_variants_extracts_names_with_payloads() {
        let src = "pub enum Packet {\n    Dense(DenseTensor),\n    Sparse(RowSparse),\n    \
                   Tokens(Vec<u32>),\n    Empty,\n    Abort { origin: usize },\n}";
        assert_eq!(
            enum_variants(src, "Packet").unwrap(),
            vec!["Dense", "Sparse", "Tokens", "Empty", "Abort"]
        );
    }

    #[test]
    fn allowlist_parsing_and_matching() {
        let allow = parse_allowlist(
            "# comment\n\ncomm-unwrap crates/trainer/src/sim.rs bp_done[m]\n\
             forbid-unsafe vendor/rand \n",
        );
        assert_eq!(allow.len(), 2);
        let f = Finding {
            rule: "comm-unwrap",
            path: "crates/trainer/src/sim.rs".into(),
            line: 3,
            message: String::new(),
        };
        assert!(allowed(&allow[0], &f, "let x = bp_done[m].unwrap();"));
        assert!(!allowed(&allow[0], &f, "let x = other.unwrap();"));
        assert!(!allowed(&allow[1], &f, ""));
    }

    #[test]
    fn forbid_unsafe_rule() {
        assert!(lint_crate_root("crates/x/src/lib.rs", "fn a() {}").is_some());
        assert!(
            lint_crate_root("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\nfn a() {}").is_none()
        );
    }

    #[test]
    fn workspace_is_lint_clean() {
        // The analyzer's own repo must pass its own lint. CARGO_MANIFEST_DIR
        // is crates/analyzer; the workspace root is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = run_lint(&root).expect("lint pass runs");
        assert!(report.files_scanned > 20, "scanned {}", report.files_scanned);
        let msgs: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
        assert!(report.clean(), "lint findings:\n{}", msgs.join("\n"));
    }
}
