//! Wait-for-graph deadlock analysis — `verify_p2p`-level guarantees at
//! worlds where enumeration is hopeless.
//!
//! The model checker ([`crate::model_check`]) proves deadlock-freedom by
//! exhaustively enumerating interleavings, which caps it at worlds 2–4.
//! This module proves the same property *structurally*, in O(ops):
//!
//! * **Nodes** are per-rank op instances of a [`P2pPlan`] (rank `r`'s
//!   `i`-th send or receive).
//! * **Edges** point from an op to what it waits for: program order
//!   (op `i` waits for op `i−1` of its rank) and message dependency (the
//!   `k`-th receive on an ordered link waits for the `k`-th send on that
//!   link — the transport's per-link FIFO guarantees exactly this
//!   matching). Sends ride unbounded channels and never block on their
//!   receiver, so there are no rendezvous back-edges; with that buffering
//!   model the dependency graph is exact, not an approximation.
//! * **Deadlock ⇔ cycle.** All dependencies are AND-dependencies, so ops
//!   can keep completing until none remain iff the graph is acyclic; any
//!   cycle starves every op on it in *every* interleaving. Cycles are
//!   found as non-trivial strongly connected components (iterative
//!   Tarjan — plans at world 1024 have millions of nodes, so no
//!   recursion) and reported as [`DiagnosticKind::WaitCycle`] with the
//!   full cycle's rank/op provenance. A receive whose send does not exist
//!   at all also never completes ([`DiagnosticKind::RecvWithoutSend`]).
//!
//! Byte conservation is proved in closed form by the same pass: the
//! FIFO pairing checks every matched message's size
//! ([`DiagnosticKind::ByteMismatch`]), and [`byte_conservation`] checks
//! the whole communicator round's planned totals.
//!
//! [`enumerate_p2p`] is the agreement oracle: an explicit-state greedy
//! executor of the plan (per-rank program counters + per-link FIFO
//! queues). Because sends never block, plan execution is confluent —
//! if any schedule gets stuck, the greedy one does — so its verdict is
//! the enumeration verdict, and tests assert it matches the graph verdict
//! on every plan family and every seeded [`crate::verify::PlanMutation`].
//!
//! **Credit mode** ([`WaitGraph::build_with_credits`],
//! [`analyze_p2p_credits`], [`enumerate_p2p_credits`]) models the
//! one-sided slot transport's flow control on top of all of the above:
//! send `#k` on a link additionally waits on receive `#(k−C)` of the same
//! link, i.e. the sender stalls when all `C` registered slots are armed.
//! Acyclicity under credit edges proves the credit protocol deadlock-free
//! at worlds far past enumeration — even for a strictly blocking put,
//! which the shipped transport's counted rendezvous fallback is strictly
//! safer than.

use crate::plan::{P2pOp, P2pPlan};
use crate::verify::{sort_diagnostics, Diagnostic, DiagnosticKind};
use std::collections::HashMap;

/// The wait-for graph of a plan, plus the unmatched-op findings produced
/// while building it.
pub struct WaitGraph {
    /// Per-node rank (parallel to the global node numbering).
    ranks: Vec<u32>,
    /// Per-node index of the op within its rank's program.
    ops: Vec<u32>,
    /// CSR adjacency: `adj[adj_off[v]..adj_off[v+1]]` are the nodes `v`
    /// waits for.
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    /// Pairing findings (orphan sends, receives without sends, per-message
    /// byte mismatches) discovered during FIFO matching.
    pairing: Vec<Diagnostic>,
}

impl WaitGraph {
    /// Build the wait-for graph of `plan`: program-order edges plus one
    /// dependency edge per FIFO-matched (send, recv) pair.
    pub fn build(plan: &P2pPlan) -> WaitGraph {
        WaitGraph::build_with_credits(plan, None)
    }

    /// [`WaitGraph::build`] with the slot transport's credit protocol
    /// modeled explicitly: with `credit = Some(C)`, send `#k` on an
    /// ordered link additionally waits on receive `#(k−C)` of the same
    /// link (for `k ≥ C`) — the sender may not reuse a slot until the
    /// receiver has consumed the message `C` sequence numbers back.
    /// Acyclicity of this graph proves the protocol deadlock-free even
    /// for a *strictly blocking* put with a `C`-slot pool; the shipped
    /// transport is safer still (an out-of-credit put falls back to a
    /// counted, non-blocking rendezvous).
    pub fn build_with_credits(plan: &P2pPlan, credit: Option<usize>) -> WaitGraph {
        let total: usize = plan.ranks.iter().map(Vec::len).sum();
        let mut base = Vec::with_capacity(plan.world + 1);
        let mut acc = 0u32;
        for ops in &plan.ranks {
            base.push(acc);
            acc += ops.len() as u32;
        }
        base.push(acc);

        let mut ranks = Vec::with_capacity(total);
        let mut ops = Vec::with_capacity(total);
        // Per ordered link: (node, bytes) of its sends and recvs, in
        // program order — which is FIFO order on the wire.
        type Ends = (Vec<(u32, u64)>, Vec<(u32, u64)>);
        let mut links: HashMap<(u32, u32), Ends> = HashMap::new();
        for (r, prog) in plan.ranks.iter().enumerate() {
            for (i, op) in prog.iter().enumerate() {
                let node = base[r] + i as u32;
                ranks.push(r as u32);
                ops.push(i as u32);
                match *op {
                    P2pOp::Send { to, bytes } => {
                        links.entry((r as u32, to as u32)).or_default().0.push((node, bytes));
                    }
                    P2pOp::Recv { from, bytes } => {
                        links.entry((from as u32, r as u32)).or_default().1.push((node, bytes));
                    }
                }
            }
        }

        let mut pairing = Vec::new();
        // Degree count, then CSR fill. Program order contributes one edge
        // per non-first op; matching contributes one edge per paired recv.
        let mut deg = vec![0u32; total];
        for r in 0..plan.world {
            for node in base[r] + 1..base[r + 1] {
                deg[node as usize] += 1;
            }
        }
        let mut matched: Vec<(u32, u32)> = Vec::new(); // (recv node, send node)
                                                       // (send node, recv node) credit edges: send #k waits on recv #(k−C).
        let mut credit_edges: Vec<(u32, u32)> = Vec::new();
        for (&(from, to), (sends, recvs)) in &links {
            let link = || format!("{}:{from}->{to}", plan.kind);
            if let Some(cap) = credit {
                for (k, (snode, _)) in sends.iter().enumerate().skip(cap) {
                    if let Some((rnode, _)) = recvs.get(k - cap) {
                        credit_edges.push((*snode, *rnode));
                        deg[*snode as usize] += 1;
                    }
                }
            }
            for (k, ((snode, sbytes), (rnode, rbytes))) in sends.iter().zip(recvs).enumerate() {
                matched.push((*rnode, *snode));
                deg[*rnode as usize] += 1;
                if sbytes != rbytes {
                    pairing.push(Diagnostic {
                        kind: DiagnosticKind::ByteMismatch,
                        rank: Some(to as usize),
                        op: link(),
                        message: format!(
                            "message #{k}: sender plans {sbytes} B, receiver expects {rbytes} B"
                        ),
                    });
                }
            }
            for (k, (_, bytes)) in sends.iter().enumerate().skip(recvs.len()) {
                pairing.push(Diagnostic {
                    kind: DiagnosticKind::OrphanSend,
                    rank: Some(from as usize),
                    op: link(),
                    message: format!("send #{k} ({bytes} B) has no matching receive on rank {to}"),
                });
            }
            for (k, (_, bytes)) in recvs.iter().enumerate().skip(sends.len()) {
                pairing.push(Diagnostic {
                    kind: DiagnosticKind::RecvWithoutSend,
                    rank: Some(to as usize),
                    op: link(),
                    message: format!(
                        "receive #{k} ({bytes} B) has no matching send on rank {from}: static deadlock"
                    ),
                });
            }
        }
        let mut adj_off = Vec::with_capacity(total + 1);
        let mut off = 0u32;
        for d in &deg {
            adj_off.push(off);
            off += d;
        }
        adj_off.push(off);
        let mut cursor = adj_off.clone();
        let mut adj = vec![0u32; off as usize];
        for r in 0..plan.world {
            for node in base[r] + 1..base[r + 1] {
                adj[cursor[node as usize] as usize] = node - 1;
                cursor[node as usize] += 1;
            }
        }
        for (rnode, snode) in matched {
            adj[cursor[rnode as usize] as usize] = snode;
            cursor[rnode as usize] += 1;
        }
        for (snode, rnode) in credit_edges {
            adj[cursor[snode as usize] as usize] = rnode;
            cursor[snode as usize] += 1;
        }
        WaitGraph { ranks, ops, adj_off, adj, pairing }
    }

    fn node_count(&self) -> usize {
        self.ranks.len()
    }

    /// Non-trivial strongly connected components (≥ 2 nodes), each a
    /// genuine wait cycle. Iterative Tarjan — plans at world 1024 reach
    /// millions of nodes, far past any recursion limit.
    fn cycles(&self) -> Vec<Vec<u32>> {
        let n = self.node_count();
        const UNSEEN: u32 = u32::MAX;
        let mut index = vec![UNSEEN; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next = 0u32;
        let mut out = Vec::new();
        // (node, next unexplored edge slot) — the explicit call stack.
        let mut work: Vec<(u32, u32)> = Vec::new();
        for start in 0..n as u32 {
            if index[start as usize] != UNSEEN {
                continue;
            }
            index[start as usize] = next;
            low[start as usize] = next;
            next += 1;
            stack.push(start);
            on_stack[start as usize] = true;
            work.push((start, self.adj_off[start as usize]));
            while let Some(&(v, ei)) = work.last() {
                let vi = v as usize;
                if ei < self.adj_off[vi + 1] {
                    work.last_mut().expect("work stack is non-empty inside the loop").1 = ei + 1;
                    let w = self.adj[ei as usize];
                    let wi = w as usize;
                    if index[wi] == UNSEEN {
                        index[wi] = next;
                        low[wi] = next;
                        next += 1;
                        stack.push(w);
                        on_stack[wi] = true;
                        work.push((w, self.adj_off[wi]));
                    } else if on_stack[wi] {
                        low[vi] = low[vi].min(index[wi]);
                    }
                } else {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        let pi = parent as usize;
                        low[pi] = low[pi].min(low[vi]);
                    }
                    if low[vi] == index[vi] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("SCC root is on the Tarjan stack");
                            on_stack[w as usize] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if scc.len() > 1 {
                            out.push(scc);
                        }
                    }
                }
            }
        }
        out
    }

    /// Walk one concrete cycle inside an SCC (follow intra-SCC edges from
    /// any member until a node repeats), for provenance reporting.
    fn concrete_cycle(&self, scc: &[u32]) -> Vec<u32> {
        let member: std::collections::HashSet<u32> = scc.iter().copied().collect();
        let mut seen: HashMap<u32, usize> = HashMap::new();
        let mut path = Vec::new();
        let mut v = scc[0];
        loop {
            if let Some(&at) = seen.get(&v) {
                return path.split_off(at);
            }
            seen.insert(v, path.len());
            path.push(v);
            let vi = v as usize;
            v = (self.adj_off[vi]..self.adj_off[vi + 1])
                .map(|e| self.adj[e as usize])
                .find(|t| member.contains(t))
                .expect("every SCC node has an intra-SCC successor");
        }
    }
}

fn describe_op(plan: &P2pPlan, rank: u32, op: u32) -> String {
    match plan.ranks[rank as usize][op as usize] {
        P2pOp::Send { to, bytes } => format!("rank {rank} op#{op} send->{to} ({bytes} B)"),
        P2pOp::Recv { from, bytes } => format!("rank {rank} op#{op} recv<-{from} ({bytes} B)"),
    }
}

/// Closed-form byte conservation of the whole communicator round: total
/// planned bytes sent must equal total planned bytes received. Returns
/// the conserved total, or the violation.
pub fn byte_conservation(plan: &P2pPlan) -> Result<u64, Diagnostic> {
    let sent: u64 = (0..plan.world).map(|r| plan.bytes_sent(r)).sum();
    let received: u64 = (0..plan.world).map(|r| plan.bytes_received(r)).sum();
    if sent == received {
        Ok(sent)
    } else {
        Err(Diagnostic {
            kind: DiagnosticKind::ByteMismatch,
            rank: None,
            op: plan.kind.to_string(),
            message: format!("round plans {sent} B sent but {received} B received"),
        })
    }
}

/// Analyze a plan through its wait-for graph: FIFO pairing findings
/// (orphans, receives without sends, per-message byte mismatches), wait
/// cycles as [`DiagnosticKind::WaitCycle`] with full cycle provenance,
/// and whole-round byte conservation. An empty result proves the plan
/// deadlock-free and byte-conserving in every interleaving, in O(ops).
pub fn analyze_p2p(plan: &P2pPlan) -> Vec<Diagnostic> {
    analyze_graph(plan, WaitGraph::build(plan))
}

/// [`analyze_p2p`] over the credit-augmented graph
/// ([`WaitGraph::build_with_credits`]): an empty result proves the plan
/// deadlock-free even under a strictly blocking `capacity`-slot one-sided
/// transport — the structural half of the slot transport's safety
/// argument at worlds past enumeration.
pub fn analyze_p2p_credits(plan: &P2pPlan, capacity: usize) -> Vec<Diagnostic> {
    analyze_graph(plan, WaitGraph::build_with_credits(plan, Some(capacity)))
}

fn analyze_graph(plan: &P2pPlan, g: WaitGraph) -> Vec<Diagnostic> {
    let mut out = g.pairing.clone();
    for scc in g.cycles() {
        let cycle = g.concrete_cycle(&scc);
        let min_rank = cycle.iter().map(|&v| g.ranks[v as usize]).min().unwrap_or(0);
        let shown = cycle
            .iter()
            .take(8)
            .map(|&v| describe_op(plan, g.ranks[v as usize], g.ops[v as usize]))
            .collect::<Vec<_>>()
            .join(" -> ");
        let elided = if cycle.len() > 8 {
            format!(" -> … ({} ops total)", cycle.len())
        } else {
            String::new()
        };
        out.push(Diagnostic {
            kind: DiagnosticKind::WaitCycle,
            rank: Some(min_rank as usize),
            op: plan.kind.to_string(),
            message: format!(
                "wait cycle over {} ops on {} ranks: {shown}{elided} -> (back to start)",
                cycle.len(),
                {
                    let mut rs: Vec<u32> = cycle.iter().map(|&v| g.ranks[v as usize]).collect();
                    rs.sort_unstable();
                    rs.dedup();
                    rs.len()
                },
            ),
        });
    }
    if let Err(d) = byte_conservation(plan) {
        out.push(d);
    }
    sort_diagnostics(&mut out);
    out
}

/// Does the graph analysis verdict say "this plan deadlocks"? True when
/// some op can never complete: a wait cycle or a receive with no send.
pub fn graph_deadlocks(diags: &[Diagnostic]) -> bool {
    diags
        .iter()
        .any(|d| matches!(d.kind, DiagnosticKind::WaitCycle | DiagnosticKind::RecvWithoutSend))
}

/// The enumeration verdict on one plan, from [`enumerate_p2p`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecReport {
    /// Ranks that could not finish, with the op index they blocked at.
    pub stuck: Vec<(usize, usize)>,
}

impl ExecReport {
    pub fn deadlock_free(&self) -> bool {
        self.stuck.is_empty()
    }
}

/// Execute the plan in an explicit-state machine: per-rank program
/// counters plus per-link FIFO depth. Sends never block (unbounded
/// channels), receives block until their link is non-empty — the same
/// semantics the model checker enumerates. Under those semantics
/// execution is confluent: completing an enabled receive never disables
/// another rank's receive, so one greedy schedule suffices to decide
/// whether *any* schedule completes.
pub fn enumerate_p2p(plan: &P2pPlan) -> ExecReport {
    enumerate_bounded(plan, None)
}

/// [`enumerate_p2p`] under a strictly blocking `capacity`-deep link (a
/// send blocks while its link already holds `capacity` undelivered
/// messages) — the executable counterpart of
/// [`WaitGraph::build_with_credits`]. Confluence still holds: each link
/// has one sender and one receiver, and completing any op only ever
/// *enables* others (a receive returns a credit, a send arms a slot), so
/// the greedy schedule's verdict is the enumeration verdict.
pub fn enumerate_p2p_credits(plan: &P2pPlan, capacity: usize) -> ExecReport {
    enumerate_bounded(plan, Some(capacity as u64))
}

fn enumerate_bounded(plan: &P2pPlan, capacity: Option<u64>) -> ExecReport {
    let w = plan.world;
    let mut pc = vec![0usize; w];
    let mut queued = vec![0u64; w * w]; // queued[from * w + to]
    let mut progressed = true;
    while progressed {
        progressed = false;
        for r in 0..w {
            while pc[r] < plan.ranks[r].len() {
                match plan.ranks[r][pc[r]] {
                    P2pOp::Send { to, .. } => {
                        let q = &mut queued[r * w + to];
                        if capacity.is_some_and(|cap| *q >= cap) {
                            break; // out of credits: wait for the receiver
                        }
                        *q += 1;
                    }
                    P2pOp::Recv { from, .. } => {
                        let q = &mut queued[from * w + r];
                        if *q == 0 {
                            break; // blocked: revisit after other ranks run
                        }
                        *q -= 1;
                    }
                }
                pc[r] += 1;
                progressed = true;
            }
        }
    }
    let stuck = (0..w).filter(|&r| pc[r] < plan.ranks[r].len()).map(|r| (r, pc[r])).collect();
    ExecReport { stuck }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_check::{check_collective, Collective};
    use crate::plan::{
        allgather_plan, alltoall_plan, barrier_plan, broadcast_plan, chunked_alltoall_plan,
        chunked_ring_allreduce_plan, grad_alltoall_bytes, lookup_alltoall_bytes, reform_plan,
        ring_allreduce_plan, sparse_allreduce_demo_plan,
    };
    use crate::verify::{mutate_p2p, verify_p2p, PlanMutation};

    fn family_plans(world: usize) -> Vec<P2pPlan> {
        let rows = vec![3 + world / 2; world];
        vec![
            barrier_plan(world),
            broadcast_plan(world, 0, 64),
            ring_allreduce_plan(world, 4 * world + 1),
            chunked_ring_allreduce_plan(world, 4 * world + 1, 2),
            allgather_plan(world, &vec![16; world]),
            alltoall_plan("alltoall_lookup", &lookup_alltoall_bytes(&rows, 8 * world)),
            alltoall_plan("alltoallv_grad", &grad_alltoall_bytes(&rows, 8 * world)),
            chunked_alltoall_plan("alltoall_chunked", &lookup_alltoall_bytes(&rows, 8 * world)),
            sparse_allreduce_demo_plan(world),
            reform_plan(world),
        ]
    }

    #[test]
    fn every_plan_family_is_clean_on_the_graph() {
        for world in [1usize, 2, 3, 4, 8, 16] {
            for plan in family_plans(world) {
                let diags = analyze_p2p(&plan);
                assert!(diags.is_empty(), "{} w={world}: {diags:?}", plan.kind);
                assert!(enumerate_p2p(&plan).deadlock_free(), "{} w={world}", plan.kind);
            }
        }
    }

    #[test]
    fn every_plan_family_survives_slot_credit_edges() {
        // The credit protocol at the shipped capacity: no plan family
        // deadlocks even if a put blocked when all slots were armed.
        let cap = embrace_collectives::SLOT_CAPACITY;
        for world in [1usize, 2, 3, 4, 8, 16] {
            for plan in family_plans(world) {
                let diags = analyze_p2p_credits(&plan, cap);
                assert!(diags.is_empty(), "{} w={world} cap={cap}: {diags:?}", plan.kind);
                assert!(
                    enumerate_p2p_credits(&plan, cap).deadlock_free(),
                    "{} w={world} cap={cap}",
                    plan.kind
                );
            }
        }
    }

    #[test]
    fn deep_pipelining_deadlocks_a_strictly_blocking_pool() {
        // The pipelined ring posts every segment of a step before
        // receiving any (`try_ring_allreduce_pipelined`): each rank sends
        // S segments to its successor, then drains S from its
        // predecessor. With fewer credits than segments a *blocking* put
        // would deadlock the whole ring — exactly why the slot
        // transport's overflow path falls back to a non-blocking
        // (counted) rendezvous instead. Both verdicts must spot it.
        let world = 4;
        let segments = 24usize;
        let mut plan =
            P2pPlan { kind: "ring_pipelined_step", world, ranks: vec![Vec::new(); world] };
        for r in 0..world {
            for _ in 0..segments {
                plan.ranks[r].push(P2pOp::Send { to: (r + 1) % world, bytes: 8 });
            }
            for _ in 0..segments {
                plan.ranks[r].push(P2pOp::Recv { from: (r + world - 1) % world, bytes: 8 });
            }
        }
        assert!(analyze_p2p(&plan).is_empty(), "unbounded links are fine");
        for cap in [1usize, 4, segments - 1] {
            let diags = analyze_p2p_credits(&plan, cap);
            assert!(graph_deadlocks(&diags), "cap={cap}: expected a credit cycle");
            assert!(!enumerate_p2p_credits(&plan, cap).deadlock_free(), "cap={cap}");
        }
        // A pool deep enough for every posted segment restores cleanliness.
        assert!(analyze_p2p_credits(&plan, segments).is_empty());
        assert!(enumerate_p2p_credits(&plan, segments).deadlock_free());
        // The *scheduler's* chunked ring interleaves unit sends with unit
        // receives, so it stays within even a tiny credit line.
        let chunked = chunked_ring_allreduce_plan(4, 64, 1);
        assert!(analyze_p2p_credits(&chunked, 2).is_empty());
    }

    #[test]
    fn credit_verdict_agrees_with_bounded_enumeration_across_capacities() {
        for world in [2usize, 3, 4, 8] {
            for plan in family_plans(world) {
                for cap in [1usize, 2, embrace_collectives::SLOT_CAPACITY] {
                    let graph_dead = graph_deadlocks(&analyze_p2p_credits(&plan, cap));
                    let exec_dead = !enumerate_p2p_credits(&plan, cap).deadlock_free();
                    assert_eq!(
                        graph_dead, exec_dead,
                        "{} w={world} cap={cap}: graph vs enumeration disagree",
                        plan.kind
                    );
                }
            }
        }
    }

    #[test]
    fn hand_built_cycle_is_reported_with_provenance() {
        // r0 waits for r1's send, r1 waits for r0's send: the classic
        // recv-before-send deadlock. Every op is on the cycle.
        let mut plan = P2pPlan { kind: "cyclic", world: 2, ranks: vec![Vec::new(); 2] };
        plan.ranks[0].push(P2pOp::Recv { from: 1, bytes: 4 });
        plan.ranks[0].push(P2pOp::Send { to: 1, bytes: 4 });
        plan.ranks[1].push(P2pOp::Recv { from: 0, bytes: 4 });
        plan.ranks[1].push(P2pOp::Send { to: 0, bytes: 4 });
        let diags = analyze_p2p(&plan);
        assert!(graph_deadlocks(&diags), "{diags:?}");
        let cycle = diags.iter().find(|d| d.kind == DiagnosticKind::WaitCycle).unwrap();
        assert!(cycle.message.contains("rank 0 op#0 recv<-1"), "{}", cycle.message);
        assert!(cycle.message.contains("rank 1 op#0 recv<-0"), "{}", cycle.message);
        // verify_p2p alone cannot see this: pairing is perfectly matched.
        assert!(verify_p2p(&plan).is_empty());
        // The enumeration verdict agrees.
        let exec = enumerate_p2p(&plan);
        assert_eq!(exec.stuck, vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn three_rank_rotated_cycle_is_found() {
        // Each rank receives from its predecessor before sending to its
        // successor — deadlocks only as a length-3 cycle through all ranks.
        let world = 3;
        let mut plan = P2pPlan { kind: "rotated", world, ranks: vec![Vec::new(); world] };
        for r in 0..world {
            plan.ranks[r].push(P2pOp::Recv { from: (r + world - 1) % world, bytes: 8 });
            plan.ranks[r].push(P2pOp::Send { to: (r + 1) % world, bytes: 8 });
        }
        let diags = analyze_p2p(&plan);
        let cycle = diags.iter().find(|d| d.kind == DiagnosticKind::WaitCycle).unwrap();
        assert!(cycle.message.contains("3 ranks"), "{}", cycle.message);
        assert!(!enumerate_p2p(&plan).deadlock_free());
    }

    #[test]
    fn graph_pairing_findings_match_verify_p2p() {
        // On matched-pair defects the graph pass reproduces verify_p2p's
        // findings exactly (same kinds, ranks, links, messages).
        for world in [2usize, 3, 4] {
            for mutation in [
                PlanMutation::DropSend { rank: 1, index: 0 },
                PlanMutation::ShrinkBytes { rank: 0, index: 0 },
            ] {
                let mut plan = allgather_plan(world, &vec![24; world]);
                assert!(mutate_p2p(&mut plan, mutation));
                let mut from_verify = verify_p2p(&plan);
                // Keep only the pairing findings: the graph pass also
                // emits the whole-round conservation diagnostic (rank
                // None), which verify_p2p does not have.
                let from_graph: Vec<Diagnostic> = analyze_p2p(&plan)
                    .into_iter()
                    .filter(|d| d.kind != DiagnosticKind::WaitCycle && d.rank.is_some())
                    .collect();
                crate::verify::sort_diagnostics(&mut from_verify);
                assert_eq!(from_graph, from_verify, "w={world} {mutation:?}");
            }
        }
    }

    #[test]
    fn dropped_send_verdicts_agree_with_enumeration() {
        for world in [2usize, 3, 4] {
            for plan0 in family_plans(world) {
                let sends = plan0
                    .ranks
                    .iter()
                    .flatten()
                    .filter(|op| matches!(op, P2pOp::Send { .. }))
                    .count();
                if sends == 0 {
                    continue;
                }
                for rank in 0..world {
                    let mut plan = plan0.clone();
                    if !mutate_p2p(&mut plan, PlanMutation::DropSend { rank, index: 0 }) {
                        continue;
                    }
                    let diags = analyze_p2p(&plan);
                    let exec = enumerate_p2p(&plan);
                    assert_eq!(
                        graph_deadlocks(&diags),
                        !exec.deadlock_free(),
                        "{} w={world} drop rank {rank}: {diags:?} vs {exec:?}",
                        plan.kind
                    );
                    // Removing a send always breaks the plan somehow.
                    assert!(!diags.is_empty(), "{} w={world}", plan.kind);
                }
            }
        }
    }

    #[test]
    fn graph_verdict_matches_model_checker_on_every_collective() {
        // Worlds 2–4: the structural verdict must equal the exhaustive
        // enumeration verdict of the model checker, plan by plan.
        for world in 2..=4usize {
            let cases: Vec<(Collective, P2pPlan)> = vec![
                (Collective::Barrier, barrier_plan(world)),
                (Collective::Broadcast { root: 0 }, broadcast_plan(world, 0, 12)),
                (
                    Collective::RingAllreduce { elems: 2 * world + 1 },
                    ring_allreduce_plan(world, 2 * world + 1),
                ),
                (
                    Collective::ChunkedRingAllreduce { elems: 2 * world + 1, seg: 2 },
                    chunked_ring_allreduce_plan(world, 2 * world + 1, 2),
                ),
                (Collective::SparseAllreduce, sparse_allreduce_demo_plan(world)),
                (Collective::Reform, reform_plan(world)),
            ];
            for (collective, plan) in cases {
                let report = check_collective(world, collective);
                let diags = analyze_p2p(&plan);
                assert_eq!(
                    report.deadlock_free(),
                    !graph_deadlocks(&diags),
                    "w={world} {}: model {} vs graph {diags:?}",
                    plan.kind,
                    report.summary()
                );
                assert!(enumerate_p2p(&plan).deadlock_free() == report.deadlock_free());
            }
        }
    }

    #[test]
    fn conservation_is_closed_form() {
        let plan = ring_allreduce_plan(4, 11);
        assert!(byte_conservation(&plan).unwrap() > 0);
        let mut bad = plan.clone();
        assert!(mutate_p2p(&mut bad, PlanMutation::ShrinkBytes { rank: 2, index: 0 }));
        let d = byte_conservation(&bad).unwrap_err();
        assert_eq!(d.kind, DiagnosticKind::ByteMismatch);
        assert_eq!(d.rank, None);
    }

    #[test]
    fn large_world_smoke_is_fast_enough_for_tests() {
        // A debug-build sanity bound; the release-mode sweep in
        // `embrace_sim verify-plan --large` covers worlds up to 1024.
        let plan = alltoall_plan("alltoall_large", &lookup_alltoall_bytes(&vec![4; 64], 256));
        assert!(analyze_p2p(&plan).is_empty());
        assert!(enumerate_p2p(&plan).deadlock_free());
    }
}
