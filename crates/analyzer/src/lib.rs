//! Static analysis for the EmbRace collective stack.
//!
//! Three engines, none of which execute the real transport:
//!
//! * [`plan`] — a per-rank communication-plan IR ([`plan::P2pPlan`] for
//!   point-to-point send/recv sequences, [`plan::SchedulePlan`] for
//!   prioritised collective submissions) plus generators that mirror the
//!   algorithms in `embrace_collectives::ops` and the 2D schedule from
//!   `embrace_core::horizontal`.
//! * [`verify`] — the static verifier: SPMD multiset/priority
//!   consistency, send/recv pairing (orphan sends, static deadlocks),
//!   byte conservation, exact-once partition coverage, and priority
//!   monotonicity, reported as structured [`verify::Diagnostic`]s with
//!   rank/op provenance. [`verify::PlanMutation`] seeds single defects
//!   for testing that each is caught with the right diagnostic kind.
//! * [`model_check`] — a deterministic interleaving model checker that
//!   exhaustively enumerates message-delivery orders for small worlds,
//!   proving deadlock-freedom, bitwise determinism, and abort
//!   termination.
//! * [`graph`] — wait-for-graph deadlock analysis: the same
//!   deadlock-freedom and byte-conservation guarantees as enumeration,
//!   but structural (cycles as SCCs, conservation in closed form) and
//!   O(ops), so it scales to worlds 64–1024; [`graph::enumerate_p2p`]
//!   is the explicit-state agreement oracle.
//! * [`hb`] — a vector-clock happens-before checker over recorded
//!   scheduler traces from live threaded runs: determinism violations,
//!   priority inversions, unordered conflicting accesses.
//!
//! The [`lint`] module (and the `embrace-lint` binary) is the workspace
//! lint pass enforcing repo rules on comm-path code.

#![forbid(unsafe_code)]

pub mod graph;
pub mod hb;
pub mod lint;
pub mod model_check;
pub mod plan;
pub mod verify;

pub use graph::{analyze_p2p, byte_conservation, enumerate_p2p, graph_deadlocks, WaitGraph};
pub use hb::{check_hb, check_op_timings, HbOp};
pub use model_check::{check, check_collective, CheckConfig, CheckReport, Collective};
pub use plan::{P2pOp, P2pPlan, PlannedCollective, RecordingEndpoint, SchedulePlan};
pub use verify::{
    sort_diagnostics, verify_horizontal, verify_p2p, verify_partition, verify_schedule, Diagnostic,
    DiagnosticKind, PlanMutation,
};
