//! Vector-clock happens-before analysis of live scheduler traces.
//!
//! The graph engine ([`crate::graph`]) proves properties of *plans*; this
//! module checks what a threaded run *actually did*, from the logs the
//! `obs`-instrumented scheduler records ([`OpTiming`] per executed op, or
//! the equivalent op-level spans of a [`SpanSet`]).
//!
//! Encoding: each rank's communication thread is a process with a vector
//! clock, and every collective `tag` is a synchronization object. When
//! rank `r` starts executing `tag` it ticks its own component and joins
//! its clock *into* the object's clock; when it finishes, it joins the
//! object's clock back — so op completions inherit a happens-before edge
//! from every participant that started earlier in wall time. Events are
//! replayed in the recorded wall-clock order (all ranks are threads of
//! one process sharing `obs::WallClock`).
//!
//! Detections, each a [`Diagnostic`]:
//!
//! * **Determinism violation** — the rank-0 controller imposes one global
//!   execution order on all ranks, so every rank's executed tag sequence
//!   must be identical ([`DiagnosticKind::DeterminismViolation`]).
//! * **Priority inversion** — an op executed while a strictly more urgent
//!   op was already *globally runnable* (submitted on every rank — a
//!   collective cannot start before that) and was left waiting
//!   ([`DiagnosticKind::PriorityInversion`]). A small slack (100 µs)
//!   absorbs the submit/dequeue handoff race so live runs don't flap.
//! * **Unordered conflicting accesses** — two collectives observed in
//!   opposite completion orders on different ranks whose completion
//!   clocks are incomparable: a real race on the scheduler's queue /
//!   preemption state machine ([`DiagnosticKind::UnorderedAccess`]).
//!
//! Clean traced runs — including chunked and preempted ones — must come
//! back empty; that is cross-checked against the model checker's
//! determinism verdict in this crate's tests and exercised on live runs
//! by `embrace_sim trace --check-hb`.

use crate::verify::{sort_diagnostics, Diagnostic, DiagnosticKind};
use embrace_collectives::OpTiming;
use embrace_obs::SpanSet;

/// Submit/dequeue handoff slack: an "urgent" op must have been submitted
/// at least this long before a less urgent op started for the scheduler
/// to be blamed for running the wrong one.
const INVERSION_SLACK_S: f64 = 1e-4;

/// One executed collective in a rank's trace, in execution (completion)
/// order.
#[derive(Clone, Debug, PartialEq)]
pub struct HbOp {
    pub tag: String,
    /// Queue priority (lower = more urgent). Zero when the source (span
    /// exports) does not carry priorities — disables inversion checks.
    pub priority: i64,
    /// When the op entered the queue; equal to `started_s` when the
    /// source does not record submission times.
    pub submitted_s: f64,
    pub started_s: f64,
    pub finished_s: f64,
}

/// Convert per-rank [`OpTiming`] logs (from `CommScheduler::observation`)
/// into happens-before traces.
pub fn from_timings(logs: &[Vec<OpTiming>]) -> Vec<Vec<HbOp>> {
    logs.iter()
        .map(|log| {
            log.iter()
                .map(|t| HbOp {
                    tag: t.tag.clone(),
                    priority: t.priority,
                    submitted_s: t.submitted_s,
                    started_s: t.started_s,
                    finished_s: t.finished_s,
                })
                .collect()
        })
        .collect()
}

/// Extract happens-before traces from an observed scheduler's span set:
/// one trace per track, op-level spans only (`"chunk"` segment spans are
/// resume bookkeeping, not separate queue transitions). Spans carry no
/// priorities or submit times, so only order/clock checks apply.
pub fn from_spans(spans: &SpanSet) -> Vec<Vec<HbOp>> {
    (0..spans.tracks().len())
        .map(|track| {
            spans
                .spans()
                .iter()
                .filter(|s| s.track == track && s.cat != "chunk")
                .map(|s| HbOp {
                    tag: s.name.clone(),
                    priority: 0,
                    submitted_s: s.start,
                    started_s: s.start,
                    finished_s: s.end,
                })
                .collect()
        })
        .collect()
}

type Clock = Vec<u64>;

fn join(into: &mut Clock, other: &Clock) {
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

/// Strict vector-clock order: `a` happened before `b`.
fn before(a: &Clock, b: &Clock) -> bool {
    a != b && a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Run the happens-before analysis over per-rank execution traces.
pub fn check_hb(ranks: &[Vec<HbOp>]) -> Vec<Diagnostic> {
    let w = ranks.len();
    let mut out = Vec::new();
    if w == 0 {
        return out;
    }

    // Determinism: every rank must execute the controller's one global
    // tag order.
    for (r, trace) in ranks.iter().enumerate().skip(1) {
        let head = &ranks[0];
        let diverge = (0..trace.len().max(head.len()))
            .find(|&i| trace.get(i).map(|o| &o.tag) != head.get(i).map(|o| &o.tag));
        if let Some(i) = diverge {
            let name = |t: Option<&HbOp>| t.map_or("<end>".to_string(), |o| o.tag.clone());
            out.push(Diagnostic {
                kind: DiagnosticKind::DeterminismViolation,
                rank: Some(r),
                op: name(trace.get(i)),
                message: format!(
                    "execution order diverges from rank 0 at op #{i}: {} vs {}",
                    name(trace.get(i)),
                    name(ranks[0].get(i))
                ),
            });
        }
    }

    // Priority inversion, per rank: an op ran while a strictly more
    // urgent one was already *globally runnable*. A collective cannot
    // start until every rank has submitted it, so the moment it becomes
    // runnable is the latest submission across ranks — judging by the
    // local submit time would flag the scheduler for correctly filling
    // the wait with lower-priority work.
    let mut global_ready: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
    for trace in ranks {
        for op in trace {
            let e = global_ready.entry(op.tag.as_str()).or_insert(op.submitted_s);
            *e = e.max(op.submitted_s);
        }
    }
    for (r, trace) in ranks.iter().enumerate() {
        for (i, ran) in trace.iter().enumerate() {
            for waited in &trace[i + 1..] {
                let ready = global_ready[waited.tag.as_str()];
                if waited.priority < ran.priority && ready + INVERSION_SLACK_S < ran.started_s {
                    out.push(Diagnostic {
                        kind: DiagnosticKind::PriorityInversion,
                        rank: Some(r),
                        op: waited.tag.clone(),
                        message: format!(
                            "priority {} op waited {:.1} ms while '{}' (priority {}) ran",
                            waited.priority,
                            (ran.started_s - ready) * 1e3,
                            ran.tag,
                            ran.priority
                        ),
                    });
                }
            }
        }
    }

    // Vector clocks: replay start/finish events in wall-clock order.
    #[derive(Clone, Copy)]
    enum Ev {
        Start,
        Finish,
    }
    let mut events: Vec<(f64, usize, usize, Ev)> = Vec::new();
    for (r, trace) in ranks.iter().enumerate() {
        for (i, op) in trace.iter().enumerate() {
            events.push((op.started_s, r, i, Ev::Start));
            events.push((op.finished_s, r, i, Ev::Finish));
        }
    }
    // Ties: earlier log index first, Start before Finish of the same op.
    events.sort_by(|a, b| {
        a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)).then(match (a.3, b.3) {
            (Ev::Start, Ev::Finish) => std::cmp::Ordering::Less,
            (Ev::Finish, Ev::Start) => std::cmp::Ordering::Greater,
            _ => std::cmp::Ordering::Equal,
        })
    });
    let mut vc: Vec<Clock> = vec![vec![0; w]; w];
    let mut objects: std::collections::HashMap<&str, Clock> = std::collections::HashMap::new();
    let mut finish_clock: Vec<Vec<Clock>> =
        ranks.iter().map(|t| vec![Vec::new(); t.len()]).collect();
    for (_, r, i, ev) in events {
        let tag = ranks[r][i].tag.as_str();
        match ev {
            Ev::Start => {
                vc[r][r] += 1;
                let obj = objects.entry(tag).or_insert_with(|| vec![0; w]);
                join(obj, &vc[r]);
            }
            Ev::Finish => {
                if let Some(obj) = objects.get(tag) {
                    join(&mut vc[r], obj);
                }
                finish_clock[r][i] = vc[r].clone();
            }
        }
    }

    // Unordered conflicting accesses: tags completed in opposite orders
    // on different ranks, with incomparable completion clocks. Completion
    // clock of a tag = join of its per-rank finish clocks.
    let mut done: std::collections::BTreeMap<&str, (Clock, Vec<usize>)> =
        std::collections::BTreeMap::new();
    for (r, trace) in ranks.iter().enumerate() {
        for (i, op) in trace.iter().enumerate() {
            let e =
                done.entry(op.tag.as_str()).or_insert_with(|| (vec![0; w], vec![usize::MAX; w]));
            join(&mut e.0, &finish_clock[r][i]);
            // First completion position per rank decides observed order.
            if e.1[r] == usize::MAX {
                e.1[r] = i;
            }
        }
    }
    let tags: Vec<&str> = done.keys().copied().collect();
    for (x, &a) in tags.iter().enumerate() {
        for &b in &tags[x + 1..] {
            let (ca, pa) = &done[a];
            let (cb, pb) = &done[b];
            let orders: Vec<std::cmp::Ordering> = (0..w)
                .filter(|&r| pa[r] != usize::MAX && pb[r] != usize::MAX)
                .map(|r| pa[r].cmp(&pb[r]))
                .collect();
            let both_orders = orders.iter().any(|o| o.is_lt()) && orders.iter().any(|o| o.is_gt());
            if both_orders && !before(ca, cb) && !before(cb, ca) {
                out.push(Diagnostic {
                    kind: DiagnosticKind::UnorderedAccess,
                    rank: None,
                    op: format!("{a} vs {b}"),
                    message: format!(
                        "'{a}' and '{b}' completed in opposite orders on different ranks \
                         with no happens-before edge between them"
                    ),
                });
            }
        }
    }

    sort_diagnostics(&mut out);
    out
}

/// Convenience: analyze raw scheduler timing logs directly.
pub fn check_op_timings(logs: &[Vec<OpTiming>]) -> Vec<Diagnostic> {
    check_hb(&from_timings(logs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(tag: &str, priority: i64, submitted: f64, start: f64, finish: f64) -> HbOp {
        HbOp {
            tag: tag.into(),
            priority,
            submitted_s: submitted,
            started_s: start,
            finished_s: finish,
        }
    }

    /// A clean SPMD trace: same tags, same order, interleaved start times.
    fn clean(world: usize) -> Vec<Vec<HbOp>> {
        (0..world)
            .map(|r| {
                let skew = r as f64 * 1e-5;
                vec![
                    op("grad/0", -2, 0.0, 0.01 + skew, 0.02 + skew),
                    op("emb/0", -1, 0.0, 0.03 + skew, 0.04 + skew),
                    op("dense/0", 3, 0.0, 0.05 + skew, 0.06 + skew),
                ]
            })
            .collect()
    }

    #[test]
    fn clean_trace_reports_nothing() {
        for world in [1usize, 2, 4] {
            let diags = check_hb(&clean(world));
            assert!(diags.is_empty(), "world {world}: {diags:?}");
        }
    }

    #[test]
    fn divergent_order_is_a_determinism_violation() {
        let mut t = clean(3);
        t[2].swap(0, 1);
        let diags = check_hb(&t);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == DiagnosticKind::DeterminismViolation && d.rank == Some(2)),
            "{diags:?}"
        );
    }

    #[test]
    fn queued_urgent_op_losing_is_priority_inversion() {
        // The urgent op was submitted 40 ms before the bulk op started,
        // yet ran after it.
        let t = vec![vec![op("dense/0", 3, 0.00, 0.05, 0.10), op("grad/0", -2, 0.01, 0.10, 0.11)]];
        let diags = check_hb(&t);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, DiagnosticKind::PriorityInversion);
        assert_eq!(diags[0].op, "grad/0");
    }

    #[test]
    fn preemption_pattern_is_not_an_inversion() {
        // Urgent op submitted mid-execution of the bulk op and finishing
        // first (the chunked scheduler's preemption): clean.
        let t: Vec<Vec<HbOp>> = (0..2)
            .map(|_| {
                vec![
                    op("grad/0", -2, 0.05, 0.06, 0.07), // completes first
                    op("dense/0", 3, 0.00, 0.01, 0.09), // preempted around it
                ]
            })
            .collect();
        let diags = check_hb(&t);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn handoff_race_within_slack_is_tolerated() {
        // Urgent op submitted 10 µs before the bulk started: inside the
        // dequeue handoff window, not an inversion.
        let t = vec![vec![
            op("dense/0", 3, 0.0, 0.000_010, 0.01),
            op("grad/0", -2, 0.000_001, 0.01, 0.02),
        ]];
        assert!(check_hb(&t).is_empty());
    }

    #[test]
    fn opposite_completion_orders_are_unordered_access() {
        // Rank 0 runs a then b; rank 1 runs b then a, overlapping in time
        // so no clock orders the two completions.
        let t = vec![
            vec![op("a", 0, 0.0, 0.01, 0.02), op("b", 0, 0.0, 0.03, 0.04)],
            vec![op("b", 0, 0.0, 0.011, 0.021), op("a", 0, 0.0, 0.031, 0.041)],
        ];
        let diags = check_hb(&t);
        assert!(diags.iter().any(|d| d.kind == DiagnosticKind::UnorderedAccess), "{diags:?}");
        // The divergence itself is also a determinism violation.
        assert!(diags.iter().any(|d| d.kind == DiagnosticKind::DeterminismViolation));
    }

    #[test]
    fn span_extraction_matches_timing_extraction() {
        use embrace_obs::{ClockDomain, SpanSet};
        let mut spans = SpanSet::new(ClockDomain::Wall);
        let t0 = spans.add_track("comm-0");
        spans.record(t0, "grad/0", "alltoallv_sparse", 0.01, 0.02);
        spans.record(t0, "grad/0:seg", "chunk", 0.012, 0.014);
        spans.record(t0, "dense/0", "allreduce_dense", 0.03, 0.05);
        let traces = from_spans(&spans);
        assert_eq!(traces.len(), 1);
        let tags: Vec<&str> = traces[0].iter().map(|o| o.tag.as_str()).collect();
        assert_eq!(tags, ["grad/0", "dense/0"], "chunk spans are not queue transitions");
        assert!(check_hb(&traces).is_empty());
    }
}
