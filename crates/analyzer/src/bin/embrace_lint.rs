//! `embrace-lint`: workspace lint pass for the collective stack.
//!
//! Usage: `embrace-lint [workspace-root]` (default `.`). Prints findings
//! as `path:line: [rule] message` and exits non-zero if any finding is
//! not suppressed by `lint-allow.txt`. See [`embrace_analyzer::lint`]
//! for the rules.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));
    let report = match embrace_analyzer::lint::run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("embrace-lint: error: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    println!(
        "embrace-lint: {} files scanned, {} finding(s), {} allowlisted",
        report.files_scanned,
        report.findings.len(),
        report.suppressed
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
