//! Functional collective communication for the EmbRace reproduction.
//!
//! The paper's prototype drives NCCL through Horovod; here the same
//! primitives run over an in-memory full mesh of channels between worker
//! threads. Data really moves and is really reduced — the convergence
//! experiment (paper Fig. 11) and all algebraic identities of hybrid
//! communication are exercised for real, while *timing* is handled
//! separately by `embrace-simnet`'s cost model.
//!
//! Provided primitives (§2.2 of the paper):
//! * [`ops::ring_allreduce`] — bandwidth-optimal ring AllReduce (the dense
//!   gradient plane),
//! * [`ops::allgather_sparse`] — AllGather of COO row-sparse gradients
//!   (Horovod ≥ 0.22 sparse path),
//! * [`ops::alltoall_dense`] / [`ops::alltoallv_sparse`] — the AlltoAll
//!   exchanges EmbRace uses for embedding lookup results and gradients,
//! * [`ops::allgather_tokens`], [`ops::broadcast`], [`ops::barrier`] —
//!   support plumbing (token gathering feeds Algorithm 1's `D_cur`).
//!
//! # Example
//!
//! ```
//! use embrace_collectives::{ops::ring_allreduce, run_group};
//!
//! let sums = run_group(4, |rank, ep| {
//!     let mut buf = vec![rank as f32; 3];
//!     ring_allreduce(ep, &mut buf);
//!     buf[0]
//! });
//! assert_eq!(sums, vec![6.0; 4]); // 0+1+2+3 on every rank
//! ```

//! # Failure model
//!
//! Communication failure is typed, not fatal: every collective has a
//! `try_` variant returning [`transport::CommError`], faults are injected
//! deterministically through a seeded [`transport::FaultPlan`]
//! ([`transport::mesh_with_faults`]), and [`group::run_group_with_deadline`]
//! guards whole groups with a deadlock watchdog. See the module docs of
//! [`ops`] and [`transport`] for the survivor guarantees.

#![forbid(unsafe_code)]

pub mod elastic;
pub mod group;
pub mod ops;
pub mod scheduler;
pub mod transport;

pub use elastic::{ElasticError, ElasticWorker, ReformOutcome};
pub use group::{
    run_group, run_group_on, run_group_with_deadline, run_group_with_faults, GroupError,
};
pub use scheduler::{
    scheduler_metrics, CommOp, CommResult, CommScheduler, OpTiming, SubmittedOp, Ticket,
    DEFAULT_CHUNK_BYTES,
};
pub use transport::{
    mesh, mesh_with_faults, slot_mesh, slot_mesh_with_faults, Comm, CommError, Endpoint, FaultPlan,
    Packet, ReformMsg, RetryPolicy, SegBody, SparseSeg, SEG_HEADER_BYTES, SLOT_CAPACITY,
};
