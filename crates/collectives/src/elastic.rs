//! Elastic group membership over the threaded mesh.
//!
//! [`ElasticWorker`] wraps an [`Endpoint`] and implements [`Comm`] for a
//! *logical* group that can shrink and grow while the underlying physical
//! mesh stays put. Membership is a sorted set of physical ranks plus a
//! monotonically increasing **epoch**; every payload the worker sends is
//! wrapped in [`Packet::Tagged`] with the current epoch, so the receiving
//! side can tell live traffic from leftovers of a previous group
//! incarnation:
//!
//! * tag == our epoch → deliver the inner packet;
//! * tag < our epoch → a straggling packet from before a re-form;
//!   silently dropped (counted in [`ElasticWorker::stale_dropped`]);
//! * tag > our epoch → *we* are the stale one — the group re-formed
//!   without us — surfaced as [`CommError::StaleEpoch`].
//!
//! # The re-form protocol (shrink)
//!
//! When a collective fails (`PeerGone` / `Timeout` / `Aborted`), every
//! survivor calls [`ElasticWorker::reform`]:
//!
//! 1. **Probe + report.** Send [`ReformMsg::Report`] to every current
//!    member. A send that fails with `PeerGone` proves the peer's endpoint
//!    is gone (crashed endpoints drop their channels); a send that
//!    succeeds marks the peer presumed-alive.
//! 2. **Coordinator election.** The minimum presumed-alive physical rank
//!    is coordinator. Deterministic — every survivor that observes the
//!    same failures elects the same coordinator; survivors that observe
//!    *different* failure sets converge via the failover loop below.
//! 3. **Gather.** The coordinator collects one current-epoch `Report`
//!    from each presumed-alive peer (messages stashed by
//!    [`Comm::try_recv`] mid-collective are consulted first), dropping
//!    peers that time out or disconnect.
//! 4. **Commit.** The coordinator sends [`ReformMsg::Commit`] — epoch+1
//!    and the sorted survivor set — to every member of the new group.
//!    Non-coordinators wait for the commit, dropping stale traffic; if
//!    the coordinator itself dies mid-re-form, they remove it from the
//!    candidate set and run another round (failover). A survivor whose
//!    commit does not name it is **evicted** ([`ElasticError::Evicted`])
//!    and parks.
//!
//! Re-form messages are deliberately *untagged* so the handshake can
//! cross the epoch boundary; `Report`s carry the sender's epoch so
//! leftovers from an earlier re-form are filtered out.
//!
//! Known scope limit: if the coordinator dies *after* delivering the
//! commit to some survivors but not others, the two halves can commit
//! different epoch-N+1 memberships. The next collective between the
//! halves fails immediately (stale/newer epoch tags), which triggers
//! another re-form; full regression to a single group is the training
//! loop's checkpoint-restart fallback. The model checker covers the
//! crash-*before*-commit window (see `embrace-analyzer`).
//!
//! # Grow
//!
//! Growth is cooperative, at an agreed step boundary (the SLURM-style
//! "node coming back" case): remaining members call
//! [`ElasticWorker::depart`] when a rank [`ElasticWorker::leave`]s, and
//! later [`ElasticWorker::admit`] to re-add it while the parked rank
//! calls [`ElasticWorker::rejoin`]. Crashed ranks can never rejoin — their
//! channels are gone — re-admission is only for parked (voluntarily
//! departed or evicted-but-alive) ranks; getting a *crashed* rank back
//! requires the training loop's full checkpoint-restart path.

use crate::transport::{Comm, CommError, Endpoint, Packet, ReformMsg};
use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

/// Fallback deadline for re-form receives when the endpoint has no
/// configured receive deadline.
const REFORM_DEADLINE: Duration = Duration::from_secs(1);

/// Why an elastic operation could not produce a new working group.
#[derive(Clone, Debug, PartialEq)]
pub enum ElasticError {
    /// The group committed a membership at `epoch` that excludes this
    /// rank: it must park (and may later [`ElasticWorker::rejoin`]).
    Evicted { epoch: u64 },
    /// A transport failure the re-form protocol could not route around
    /// (e.g. this rank's own injected crash).
    Comm(CommError),
}

impl From<CommError> for ElasticError {
    fn from(e: CommError) -> Self {
        ElasticError::Comm(e)
    }
}

impl fmt::Display for ElasticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElasticError::Evicted { epoch } => {
                write!(f, "evicted from the group at epoch {epoch}")
            }
            ElasticError::Comm(e) => write!(f, "re-form failed: {e}"),
        }
    }
}

impl std::error::Error for ElasticError {}

/// The result of a successful membership change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReformOutcome {
    /// The committed epoch.
    pub epoch: u64,
    /// Sorted physical ranks of the new group.
    pub members: Vec<usize>,
    /// This rank's logical rank within the new group.
    pub rank: usize,
    /// The new logical world size.
    pub world: usize,
    /// Physical ranks that were members before and are not any more.
    pub removed: Vec<usize>,
}

/// A logical group membership over a physical [`Endpoint`]. See the
/// module docs for the protocol.
pub struct ElasticWorker<'a> {
    ep: &'a mut Endpoint,
    epoch: u64,
    /// Sorted physical ranks of the current group.
    members: Vec<usize>,
    /// Re-form messages that arrived (per physical peer) while a
    /// collective was mid-flight; `reform` consults these before reading
    /// the channel.
    stash: Vec<VecDeque<ReformMsg>>,
    /// Packets from older epochs silently discarded so far.
    stale_dropped: u64,
    /// True after [`ElasticWorker::leave`] / eviction: the rank holds its
    /// endpoint but is not a group member.
    parked: bool,
}

impl<'a> ElasticWorker<'a> {
    /// Wrap `ep` as a member of the full initial group (epoch 0, every
    /// physical rank a member).
    pub fn new(ep: &'a mut Endpoint) -> Self {
        let world = ep.world();
        ElasticWorker {
            ep,
            epoch: 0,
            members: (0..world).collect(),
            stash: (0..world).map(|_| VecDeque::new()).collect(),
            stale_dropped: 0,
            parked: false,
        }
    }

    /// The current group epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sorted physical ranks of the current group.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// This worker's physical rank (stable across re-forms).
    pub fn phys_rank(&self) -> usize {
        self.ep.rank()
    }

    /// Packets from older epochs this worker has silently dropped.
    pub fn stale_dropped(&self) -> u64 {
        self.stale_dropped
    }

    /// True when this rank is parked (left or evicted, endpoint intact).
    pub fn is_parked(&self) -> bool {
        self.parked
    }

    /// Delegate to [`Endpoint::begin_step`] (fires crash-at-step faults).
    pub fn begin_step(&mut self) -> Result<u64, CommError> {
        self.ep.begin_step()
    }

    /// Direct access to the wrapped endpoint (counters, deadline).
    pub fn endpoint(&self) -> &Endpoint {
        self.ep
    }

    fn recv_deadline(&self) -> Duration {
        self.ep.deadline().unwrap_or(REFORM_DEADLINE)
    }

    fn logical_of(&self, phys: usize) -> usize {
        self.members.binary_search(&phys).expect("physical rank not in group")
    }

    /// Run the shrink re-form protocol after a failed collective. On
    /// success the worker speaks for its logical rank in the committed
    /// group; the caller must rebuild any world-size-dependent state.
    pub fn reform(&mut self) -> Result<ReformOutcome, ElasticError> {
        let me = self.ep.rank();
        let mut candidates: Vec<usize> = self.members.clone();
        loop {
            // Probe: a successful send marks the peer presumed-alive.
            let mut alive = vec![me];
            for &c in &candidates {
                if c == me {
                    continue;
                }
                let report = ReformMsg::Report { origin: me, epoch: self.epoch };
                match self.ep.try_send(c, Packet::Reform(report)) {
                    Ok(()) => alive.push(c),
                    Err(CommError::PeerGone { .. }) => {}
                    Err(e) => return Err(e.into()),
                }
            }
            alive.sort_unstable();
            let coord = alive[0];
            if coord == me {
                // Gather one current-epoch report per presumed-alive peer;
                // peers that time out or disconnect drop out of the group.
                let mut committed = vec![me];
                for &p in alive.iter().skip(1) {
                    if self.await_report(p)? {
                        committed.push(p);
                    }
                }
                committed.sort_unstable();
                let next = self.epoch + 1;
                for &p in &committed {
                    if p == me {
                        continue;
                    }
                    let commit = ReformMsg::Commit { epoch: next, members: committed.clone() };
                    // A member dying between gather and commit surfaces on
                    // the group's next collective, which re-forms again.
                    let _ = self.ep.try_send(p, Packet::Reform(commit));
                }
                return Ok(self.adopt(next, committed));
            }
            match self.await_commit(coord)? {
                Some((epoch, members)) => {
                    if !members.contains(&me) {
                        self.parked = true;
                        self.members = members;
                        return Err(ElasticError::Evicted { epoch });
                    }
                    return Ok(self.adopt(epoch, members));
                }
                None => {
                    // Coordinator died mid-re-form: failover round without
                    // it. `alive` shrinks every round, so this terminates.
                    candidates = alive.into_iter().filter(|&c| c != coord).collect();
                }
            }
        }
    }

    /// Wait for `p`'s current-epoch report (stash first, then the wire).
    /// `Ok(false)` means `p` dropped out (timeout / disconnect).
    fn await_report(&mut self, p: usize) -> Result<bool, ElasticError> {
        while let Some(msg) = self.stash[p].pop_front() {
            match msg {
                ReformMsg::Report { epoch, .. } if epoch >= self.epoch => return Ok(true),
                _ => self.stale_dropped += 1,
            }
        }
        let deadline = self.recv_deadline();
        loop {
            match self.ep.recv_timeout(p, deadline) {
                Ok(Packet::Reform(ReformMsg::Report { epoch, .. })) if epoch >= self.epoch => {
                    return Ok(true)
                }
                // Stale reform leftovers and dead-collective payloads.
                Ok(_) => self.stale_dropped += 1,
                Err(CommError::Timeout { .. }) | Err(CommError::PeerGone { .. }) => {
                    return Ok(false)
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Wait for a newer-epoch commit from `coord` (stash first, then the
    /// wire). `Ok(None)` means the coordinator died (failover needed).
    fn await_commit(&mut self, coord: usize) -> Result<Option<(u64, Vec<usize>)>, ElasticError> {
        while let Some(msg) = self.stash[coord].pop_front() {
            match msg {
                ReformMsg::Commit { epoch, members } if epoch > self.epoch => {
                    return Ok(Some((epoch, members)))
                }
                _ => self.stale_dropped += 1,
            }
        }
        let deadline = self.recv_deadline();
        loop {
            match self.ep.recv_timeout(coord, deadline) {
                Ok(Packet::Reform(ReformMsg::Commit { epoch, members })) if epoch > self.epoch => {
                    return Ok(Some((epoch, members)))
                }
                // The coordinator's own probe, stale reform leftovers, and
                // dead-collective payloads.
                Ok(_) => self.stale_dropped += 1,
                Err(CommError::Timeout { .. }) | Err(CommError::PeerGone { .. }) => {
                    return Ok(None)
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn adopt(&mut self, epoch: u64, members: Vec<usize>) -> ReformOutcome {
        let removed: Vec<usize> =
            self.members.iter().copied().filter(|m| !members.contains(m)).collect();
        self.epoch = epoch;
        self.members = members;
        // One-sided transport: the committed epoch re-registers this
        // rank's slot pools so subsequent headers carry it (a no-op on
        // channel meshes, which have no registered pools).
        self.ep.reregister_slots(epoch);
        for q in &mut self.stash {
            q.retain(|m| m.epoch() >= epoch);
        }
        ReformOutcome {
            epoch,
            members: self.members.clone(),
            rank: self.logical_of(self.ep.rank()),
            world: self.members.len(),
            removed,
        }
    }

    /// Voluntarily leave the group at an agreed step boundary: the worker
    /// parks (endpoint intact) while the remaining members call
    /// [`ElasticWorker::depart`]. Mirrors the group's epoch bump so stale
    /// filtering stays consistent for a later [`ElasticWorker::rejoin`].
    pub fn leave(&mut self) {
        let me = self.ep.rank();
        self.members.retain(|&m| m != me);
        self.epoch += 1;
        self.parked = true;
    }

    /// Record the agreed departure of parked rank `phys` (each remaining
    /// member calls this at the same step boundary). Purely local: the
    /// boundary is part of the schedule, so no handshake is needed.
    pub fn depart(&mut self, phys: usize) {
        assert_ne!(phys, self.ep.rank(), "use leave() to remove yourself");
        self.members.retain(|&m| m != phys);
        self.epoch += 1;
    }

    /// Re-admit parked rank `phys` at an agreed step boundary (each
    /// current member calls this). The pre-admission coordinator (minimum
    /// current member) sends the parked rank its commit; everyone bumps
    /// the epoch and inserts the member locally.
    pub fn admit(&mut self, phys: usize) -> Result<ReformOutcome, ElasticError> {
        assert!(!self.parked, "a parked rank cannot admit");
        let me = self.ep.rank();
        let coord = *self.members.iter().min().expect("group is never empty");
        let mut members = self.members.clone();
        if !members.contains(&phys) {
            members.push(phys);
            members.sort_unstable();
        }
        let next = self.epoch + 1;
        if me == coord {
            let commit = ReformMsg::Commit { epoch: next, members: members.clone() };
            self.ep.try_send(phys, Packet::Reform(commit)).map_err(ElasticError::Comm)?;
        }
        Ok(self.adopt(next, members))
    }

    /// Parked-rank side of [`ElasticWorker::admit`]: wait for a commit
    /// naming us, scanning the remembered members coordinator-first so a
    /// coordinator that died while we were parked does not strand us.
    pub fn rejoin(&mut self) -> Result<ReformOutcome, ElasticError> {
        assert!(self.parked, "rejoin is only valid on a parked rank");
        let me = self.ep.rank();
        let remembered = self.members.clone();
        for &m in &remembered {
            match self.await_commit(m)? {
                Some((epoch, members)) if members.contains(&me) => {
                    self.parked = false;
                    return Ok(self.adopt(epoch, members));
                }
                Some((epoch, _)) => return Err(ElasticError::Evicted { epoch }),
                None => continue,
            }
        }
        Err(ElasticError::Comm(CommError::Timeout {
            peer: remembered.first().copied().unwrap_or(me),
            waited: self.recv_deadline(),
        }))
    }
}

impl Comm for ElasticWorker<'_> {
    fn rank(&self) -> usize {
        self.logical_of(self.ep.rank())
    }

    fn world(&self) -> usize {
        self.members.len()
    }

    fn try_send(&mut self, to: usize, packet: Packet) -> Result<(), CommError> {
        let phys = self.members[to];
        self.ep.try_send(phys, Packet::Tagged { epoch: self.epoch, inner: Box::new(packet) })
    }

    fn try_recv(&mut self, from: usize) -> Result<Packet, CommError> {
        let phys = self.members[from];
        // A reform message stashed earlier means a re-form is pending:
        // keep failing the collective until `reform` consumes it.
        if self.stash[phys].iter().any(|m| m.epoch() >= self.epoch) {
            return Err(CommError::Aborted { origin: phys });
        }
        loop {
            match self.ep.try_recv(phys)? {
                Packet::Tagged { epoch, inner } => {
                    if epoch == self.epoch {
                        return Ok(*inner);
                    }
                    if epoch < self.epoch {
                        self.stale_dropped += 1;
                        continue;
                    }
                    return Err(CommError::StaleEpoch { ours: self.epoch, theirs: epoch });
                }
                Packet::Reform(msg) => {
                    if msg.epoch() < self.epoch {
                        self.stale_dropped += 1;
                        continue;
                    }
                    // A peer has started a re-form; surface it as an abort
                    // so the collective unwinds, and keep the message for
                    // `reform` to consume.
                    self.stash[phys].push_back(msg);
                    return Err(CommError::Aborted { origin: phys });
                }
                other => return Err(CommError::Protocol { expected: "Tagged", got: other.kind() }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{try_barrier, try_ring_allreduce};
    use crate::transport::{mesh, mesh_with_faults, FaultPlan};
    use std::thread;

    const DL: Duration = Duration::from_millis(500);

    #[test]
    fn tagged_traffic_round_trips_at_matching_epoch() {
        let mut eps = mesh(2);
        let mut b_ep = eps.pop().unwrap();
        let mut a_ep = eps.pop().unwrap();
        let mut a = ElasticWorker::new(&mut a_ep);
        let mut b = ElasticWorker::new(&mut b_ep);
        a.try_send(1, Packet::Tokens(vec![1, 2].into())).unwrap();
        assert_eq!(b.try_recv(0).unwrap().into_tokens(), vec![1, 2]);
    }

    #[test]
    fn older_epoch_dropped_newer_epoch_is_stale_error() {
        let mut eps = mesh(2);
        let mut b_ep = eps.pop().unwrap();
        let mut a_ep = eps.pop().unwrap();
        // Simulate a re-formed receiver: b is already at epoch 2.
        let mut b = ElasticWorker::new(&mut b_ep);
        b.epoch = 2;
        // Old-epoch leftover: silently dropped, then the live packet lands.
        a_ep.try_send(1, Packet::Tagged { epoch: 1, inner: Box::new(Packet::Empty) }).unwrap();
        a_ep.try_send(1, Packet::Tagged { epoch: 2, inner: Box::new(Packet::Empty) }).unwrap();
        assert_eq!(b.try_recv(0).unwrap(), Packet::Empty);
        assert_eq!(b.stale_dropped(), 1);
        // Newer-epoch packet: the receiver itself is stale.
        a_ep.try_send(1, Packet::Tagged { epoch: 7, inner: Box::new(Packet::Empty) }).unwrap();
        assert_eq!(b.try_recv(0), Err(CommError::StaleEpoch { ours: 2, theirs: 7 }));
    }

    #[test]
    fn reform_message_mid_collective_aborts_then_reforms() {
        let mut eps = mesh(2);
        let mut b_ep = eps.pop().unwrap();
        b_ep.set_deadline(Some(DL));
        let mut a_ep = eps.pop().unwrap();
        // Peer 0 starts a re-form while 1 is still mid-collective.
        a_ep.try_send(1, Packet::Reform(ReformMsg::Report { origin: 0, epoch: 0 })).unwrap();
        let mut b = ElasticWorker::new(&mut b_ep);
        assert_eq!(b.try_recv(0), Err(CommError::Aborted { origin: 0 }));
        // The stashed report keeps failing collectives until reform runs.
        assert_eq!(b.try_recv(0), Err(CommError::Aborted { origin: 0 }));
        // b reforms: probes 0, elects 0 coordinator, and waits for the
        // commit, which we play from a's endpoint.
        a_ep.try_send(1, Packet::Reform(ReformMsg::Commit { epoch: 1, members: vec![0, 1] }))
            .unwrap();
        let out = b.reform().unwrap();
        assert_eq!(
            out,
            ReformOutcome { epoch: 1, members: vec![0, 1], rank: 1, world: 2, removed: vec![] }
        );
    }

    #[test]
    fn reform_after_crash_commits_surviving_set() {
        let mut eps = mesh_with_faults(3, &FaultPlan::default(), Some(DL));
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        drop(b); // rank 1 dies
        let run = |mut ep: Endpoint, want_rank: usize| {
            move || {
                let mut w = ElasticWorker::new(&mut ep);
                let out = w.reform().unwrap();
                assert_eq!(out.members, vec![0, 2]);
                assert_eq!(out.epoch, 1);
                assert_eq!(out.rank, want_rank);
                assert_eq!(out.removed, vec![1]);
                // The re-formed group is immediately usable.
                let mut buf = [1.0f32, 2.0];
                try_ring_allreduce(&mut w, &mut buf).unwrap();
                assert_eq!(buf, [2.0, 4.0]);
            }
        };
        thread::scope(|s| {
            s.spawn(run(a, 0));
            s.spawn(run(c, 1));
        });
    }

    #[test]
    fn coordinator_death_during_reform_fails_over() {
        let mut eps = mesh_with_faults(3, &FaultPlan::default(), Some(DL));
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        thread::scope(|s| {
            // Rank 0 probes like a re-forming coordinator, then dies
            // before committing.
            s.spawn(move || {
                for p in 1..3 {
                    a.try_send(p, Packet::Reform(ReformMsg::Report { origin: 0, epoch: 0 }))
                        .unwrap();
                }
                thread::sleep(Duration::from_millis(50));
                a.crash();
            });
            for (ep, want_rank) in [(b, 0usize), (c, 1usize)] {
                let mut ep = ep;
                s.spawn(move || {
                    let mut w = ElasticWorker::new(&mut ep);
                    let out = w.reform().unwrap();
                    assert_eq!(out.members, vec![1, 2], "failover must exclude rank 0");
                    assert_eq!(out.epoch, 1);
                    assert_eq!(out.rank, want_rank);
                    try_barrier(&mut w).unwrap();
                });
            }
        });
    }

    #[test]
    fn shrink_mid_allreduce_then_retry_succeeds() {
        // Rank 2 dies on its 4th send — inside the ring allreduce.
        let plan = FaultPlan::new(1).crash_rank_at_op(2, 3);
        let eps = mesh_with_faults(4, &plan, Some(DL));
        let results: Vec<_> = thread::scope(|s| {
            let handles: Vec<_> = eps
                .into_iter()
                .map(|mut ep| {
                    s.spawn(move || {
                        let mut w = ElasticWorker::new(&mut ep);
                        loop {
                            let mut buf = vec![(w.phys_rank() + 1) as f32; 12];
                            match try_ring_allreduce(&mut w, &mut buf) {
                                Ok(()) => return Ok((w.epoch(), w.world(), buf)),
                                Err(CommError::Injected { rank }) => {
                                    return Err(CommError::Injected { rank })
                                }
                                Err(_) => match w.reform() {
                                    Ok(_) => continue,
                                    Err(ElasticError::Comm(e)) => return Err(e),
                                    Err(ElasticError::Evicted { .. }) => {
                                        panic!("no eviction expected")
                                    }
                                },
                            }
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Survivors 0, 1, 3 re-formed to a 3-rank group and reduced
        // their fresh contributions: 1 + 2 + 4 = 7.
        for (rank, r) in results.iter().enumerate() {
            if rank == 2 {
                assert_eq!(r, &Err(CommError::Injected { rank: 2 }));
            } else {
                let (epoch, world, buf) = r.as_ref().unwrap();
                assert_eq!((*epoch, *world), (1, 3), "rank {rank}");
                assert!(buf.iter().all(|&v| v == 7.0), "rank {rank}: {buf:?}");
            }
        }
    }

    #[test]
    fn grow_then_shrink_in_one_run() {
        let mut eps = mesh_with_faults(3, &FaultPlan::default(), Some(DL));
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let stay = |mut ep: Endpoint| {
            move || {
                let mut w = ElasticWorker::new(&mut ep);
                let mut buf = vec![1.0f32; 6];
                try_ring_allreduce(&mut w, &mut buf).unwrap();
                assert_eq!(buf[0], 3.0);
                // Agreed boundary: rank 2 leaves.
                w.depart(2);
                let mut buf = vec![1.0f32; 6];
                try_ring_allreduce(&mut w, &mut buf).unwrap();
                assert_eq!(buf[0], 2.0);
                assert_eq!((w.epoch(), w.world()), (1, 2));
                // Agreed boundary: rank 2 comes back.
                let out = w.admit(2).unwrap();
                assert_eq!(out.members, vec![0, 1, 2]);
                let mut buf = vec![1.0f32; 6];
                try_ring_allreduce(&mut w, &mut buf).unwrap();
                assert_eq!(buf[0], 3.0);
                assert_eq!((w.epoch(), w.world()), (2, 3));
            }
        };
        let parked = |mut ep: Endpoint| {
            move || {
                let mut w = ElasticWorker::new(&mut ep);
                let mut buf = vec![1.0f32; 6];
                try_ring_allreduce(&mut w, &mut buf).unwrap();
                w.leave();
                assert!(w.is_parked());
                let out = w.rejoin().unwrap();
                assert_eq!(
                    out,
                    ReformOutcome {
                        epoch: 2,
                        members: vec![0, 1, 2],
                        rank: 2,
                        world: 3,
                        removed: vec![],
                    }
                );
                let mut buf = vec![1.0f32; 6];
                try_ring_allreduce(&mut w, &mut buf).unwrap();
                assert_eq!(buf[0], 3.0);
            }
        };
        thread::scope(|s| {
            s.spawn(stay(a));
            s.spawn(stay(b));
            s.spawn(parked(c));
        });
    }
}
